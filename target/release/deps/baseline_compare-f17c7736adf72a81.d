/root/repo/target/release/deps/baseline_compare-f17c7736adf72a81.d: crates/bench/src/bin/baseline_compare.rs

/root/repo/target/release/deps/baseline_compare-f17c7736adf72a81: crates/bench/src/bin/baseline_compare.rs

crates/bench/src/bin/baseline_compare.rs:
