/root/repo/target/release/deps/mirage_bench-bc669f9ea975bd22.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/harness.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libmirage_bench-bc669f9ea975bd22.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/harness.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libmirage_bench-bc669f9ea975bd22.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/harness.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/harness.rs:
crates/bench/src/table.rs:
