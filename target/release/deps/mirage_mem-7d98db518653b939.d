/root/repo/target/release/deps/mirage_mem-7d98db518653b939.d: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/auxpte.rs crates/mem/src/namespace.rs crates/mem/src/page.rs crates/mem/src/pte.rs crates/mem/src/remap.rs crates/mem/src/segment.rs

/root/repo/target/release/deps/libmirage_mem-7d98db518653b939.rlib: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/auxpte.rs crates/mem/src/namespace.rs crates/mem/src/page.rs crates/mem/src/pte.rs crates/mem/src/remap.rs crates/mem/src/segment.rs

/root/repo/target/release/deps/libmirage_mem-7d98db518653b939.rmeta: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/auxpte.rs crates/mem/src/namespace.rs crates/mem/src/page.rs crates/mem/src/pte.rs crates/mem/src/remap.rs crates/mem/src/segment.rs

crates/mem/src/lib.rs:
crates/mem/src/addr.rs:
crates/mem/src/auxpte.rs:
crates/mem/src/namespace.rs:
crates/mem/src/page.rs:
crates/mem/src/pte.rs:
crates/mem/src/remap.rs:
crates/mem/src/segment.rs:
