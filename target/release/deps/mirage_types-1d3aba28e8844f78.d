/root/repo/target/release/deps/mirage_types-1d3aba28e8844f78.d: crates/types/src/lib.rs crates/types/src/access.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/rng.rs crates/types/src/time.rs

/root/repo/target/release/deps/libmirage_types-1d3aba28e8844f78.rlib: crates/types/src/lib.rs crates/types/src/access.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/rng.rs crates/types/src/time.rs

/root/repo/target/release/deps/libmirage_types-1d3aba28e8844f78.rmeta: crates/types/src/lib.rs crates/types/src/access.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/rng.rs crates/types/src/time.rs

crates/types/src/lib.rs:
crates/types/src/access.rs:
crates/types/src/error.rs:
crates/types/src/ids.rs:
crates/types/src/rng.rs:
crates/types/src/time.rs:
