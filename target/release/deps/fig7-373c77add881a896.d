/root/repo/target/release/deps/fig7-373c77add881a896.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-373c77add881a896: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
