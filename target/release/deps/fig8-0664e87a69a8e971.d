/root/repo/target/release/deps/fig8-0664e87a69a8e971.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-0664e87a69a8e971: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
