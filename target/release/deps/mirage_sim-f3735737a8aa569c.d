/root/repo/target/release/deps/mirage_sim-f3735737a8aa569c.d: crates/sim/src/lib.rs crates/sim/src/instrument.rs crates/sim/src/process.rs crates/sim/src/program.rs crates/sim/src/site.rs crates/sim/src/world.rs

/root/repo/target/release/deps/libmirage_sim-f3735737a8aa569c.rlib: crates/sim/src/lib.rs crates/sim/src/instrument.rs crates/sim/src/process.rs crates/sim/src/program.rs crates/sim/src/site.rs crates/sim/src/world.rs

/root/repo/target/release/deps/libmirage_sim-f3735737a8aa569c.rmeta: crates/sim/src/lib.rs crates/sim/src/instrument.rs crates/sim/src/process.rs crates/sim/src/program.rs crates/sim/src/site.rs crates/sim/src/world.rs

crates/sim/src/lib.rs:
crates/sim/src/instrument.rs:
crates/sim/src/process.rs:
crates/sim/src/program.rs:
crates/sim/src/site.rs:
crates/sim/src/world.rs:
