/root/repo/target/release/deps/mirage_baseline-c79536d65a8acb60.d: crates/baseline/src/lib.rs crates/baseline/src/common.rs crates/baseline/src/li_central.rs crates/baseline/src/li_distributed.rs crates/baseline/src/mirage_adapter.rs

/root/repo/target/release/deps/libmirage_baseline-c79536d65a8acb60.rlib: crates/baseline/src/lib.rs crates/baseline/src/common.rs crates/baseline/src/li_central.rs crates/baseline/src/li_distributed.rs crates/baseline/src/mirage_adapter.rs

/root/repo/target/release/deps/libmirage_baseline-c79536d65a8acb60.rmeta: crates/baseline/src/lib.rs crates/baseline/src/common.rs crates/baseline/src/li_central.rs crates/baseline/src/li_distributed.rs crates/baseline/src/mirage_adapter.rs

crates/baseline/src/lib.rs:
crates/baseline/src/common.rs:
crates/baseline/src/li_central.rs:
crates/baseline/src/li_distributed.rs:
crates/baseline/src/mirage_adapter.rs:
