/root/repo/target/release/deps/mirage_net-d199c4c541345fc1.d: crates/net/src/lib.rs crates/net/src/circuit.rs crates/net/src/costs.rs crates/net/src/message.rs crates/net/src/topology.rs crates/net/src/wire.rs

/root/repo/target/release/deps/libmirage_net-d199c4c541345fc1.rlib: crates/net/src/lib.rs crates/net/src/circuit.rs crates/net/src/costs.rs crates/net/src/message.rs crates/net/src/topology.rs crates/net/src/wire.rs

/root/repo/target/release/deps/libmirage_net-d199c4c541345fc1.rmeta: crates/net/src/lib.rs crates/net/src/circuit.rs crates/net/src/costs.rs crates/net/src/message.rs crates/net/src/topology.rs crates/net/src/wire.rs

crates/net/src/lib.rs:
crates/net/src/circuit.rs:
crates/net/src/costs.rs:
crates/net/src/message.rs:
crates/net/src/topology.rs:
crates/net/src/wire.rs:
