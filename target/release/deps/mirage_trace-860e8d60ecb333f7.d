/root/repo/target/release/deps/mirage_trace-860e8d60ecb333f7.d: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/log.rs crates/trace/src/migrate.rs

/root/repo/target/release/deps/libmirage_trace-860e8d60ecb333f7.rlib: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/log.rs crates/trace/src/migrate.rs

/root/repo/target/release/deps/libmirage_trace-860e8d60ecb333f7.rmeta: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/log.rs crates/trace/src/migrate.rs

crates/trace/src/lib.rs:
crates/trace/src/analysis.rs:
crates/trace/src/log.rs:
crates/trace/src/migrate.rs:
