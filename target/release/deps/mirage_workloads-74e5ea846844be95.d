/root/repo/target/release/deps/mirage_workloads-74e5ea846844be95.d: crates/workloads/src/lib.rs crates/workloads/src/background.rs crates/workloads/src/decrement.rs crates/workloads/src/pingpong.rs crates/workloads/src/readers.rs crates/workloads/src/ring.rs crates/workloads/src/spinlock.rs

/root/repo/target/release/deps/libmirage_workloads-74e5ea846844be95.rlib: crates/workloads/src/lib.rs crates/workloads/src/background.rs crates/workloads/src/decrement.rs crates/workloads/src/pingpong.rs crates/workloads/src/readers.rs crates/workloads/src/ring.rs crates/workloads/src/spinlock.rs

/root/repo/target/release/deps/libmirage_workloads-74e5ea846844be95.rmeta: crates/workloads/src/lib.rs crates/workloads/src/background.rs crates/workloads/src/decrement.rs crates/workloads/src/pingpong.rs crates/workloads/src/readers.rs crates/workloads/src/ring.rs crates/workloads/src/spinlock.rs

crates/workloads/src/lib.rs:
crates/workloads/src/background.rs:
crates/workloads/src/decrement.rs:
crates/workloads/src/pingpong.rs:
crates/workloads/src/readers.rs:
crates/workloads/src/ring.rs:
crates/workloads/src/spinlock.rs:
