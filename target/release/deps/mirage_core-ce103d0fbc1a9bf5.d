/root/repo/target/release/deps/mirage_core-ce103d0fbc1a9bf5.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/event.rs crates/core/src/invariants.rs crates/core/src/library.rs crates/core/src/msg.rs crates/core/src/store.rs crates/core/src/table1.rs crates/core/src/using.rs

/root/repo/target/release/deps/libmirage_core-ce103d0fbc1a9bf5.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/event.rs crates/core/src/invariants.rs crates/core/src/library.rs crates/core/src/msg.rs crates/core/src/store.rs crates/core/src/table1.rs crates/core/src/using.rs

/root/repo/target/release/deps/libmirage_core-ce103d0fbc1a9bf5.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/event.rs crates/core/src/invariants.rs crates/core/src/library.rs crates/core/src/msg.rs crates/core/src/store.rs crates/core/src/table1.rs crates/core/src/using.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/event.rs:
crates/core/src/invariants.rs:
crates/core/src/library.rs:
crates/core/src/msg.rs:
crates/core/src/store.rs:
crates/core/src/table1.rs:
crates/core/src/using.rs:
