/root/repo/target/release/deps/mirage_host-6769c8af2615e3dd.d: crates/host/src/lib.rs crates/host/src/arch.rs crates/host/src/fault.rs crates/host/src/region.rs crates/host/src/runtime.rs crates/host/src/store.rs crates/host/src/sys.rs crates/host/src/sysv.rs

/root/repo/target/release/deps/libmirage_host-6769c8af2615e3dd.rlib: crates/host/src/lib.rs crates/host/src/arch.rs crates/host/src/fault.rs crates/host/src/region.rs crates/host/src/runtime.rs crates/host/src/store.rs crates/host/src/sys.rs crates/host/src/sysv.rs

/root/repo/target/release/deps/libmirage_host-6769c8af2615e3dd.rmeta: crates/host/src/lib.rs crates/host/src/arch.rs crates/host/src/fault.rs crates/host/src/region.rs crates/host/src/runtime.rs crates/host/src/store.rs crates/host/src/sys.rs crates/host/src/sysv.rs

crates/host/src/lib.rs:
crates/host/src/arch.rs:
crates/host/src/fault.rs:
crates/host/src/region.rs:
crates/host/src/runtime.rs:
crates/host/src/store.rs:
crates/host/src/sys.rs:
crates/host/src/sysv.rs:
