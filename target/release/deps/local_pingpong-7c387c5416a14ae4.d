/root/repo/target/release/deps/local_pingpong-7c387c5416a14ae4.d: crates/bench/src/bin/local_pingpong.rs

/root/repo/target/release/deps/local_pingpong-7c387c5416a14ae4: crates/bench/src/bin/local_pingpong.rs

crates/bench/src/bin/local_pingpong.rs:
