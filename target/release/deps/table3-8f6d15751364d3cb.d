/root/repo/target/release/deps/table3-8f6d15751364d3cb.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-8f6d15751364d3cb: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
