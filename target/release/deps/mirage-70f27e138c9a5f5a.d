/root/repo/target/release/deps/mirage-70f27e138c9a5f5a.d: src/lib.rs

/root/repo/target/release/deps/libmirage-70f27e138c9a5f5a.rlib: src/lib.rs

/root/repo/target/release/deps/libmirage-70f27e138c9a5f5a.rmeta: src/lib.rs

src/lib.rs:
