/root/repo/target/release/deps/msg_count-49a3396e14de63d8.d: crates/bench/src/bin/msg_count.rs

/root/repo/target/release/deps/msg_count-49a3396e14de63d8: crates/bench/src/bin/msg_count.rs

crates/bench/src/bin/msg_count.rs:
