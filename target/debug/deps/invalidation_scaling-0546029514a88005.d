/root/repo/target/debug/deps/invalidation_scaling-0546029514a88005.d: crates/bench/src/bin/invalidation_scaling.rs

/root/repo/target/debug/deps/invalidation_scaling-0546029514a88005: crates/bench/src/bin/invalidation_scaling.rs

crates/bench/src/bin/invalidation_scaling.rs:
