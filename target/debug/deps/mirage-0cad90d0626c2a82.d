/root/repo/target/debug/deps/mirage-0cad90d0626c2a82.d: src/lib.rs

/root/repo/target/debug/deps/libmirage-0cad90d0626c2a82.rlib: src/lib.rs

/root/repo/target/debug/deps/libmirage-0cad90d0626c2a82.rmeta: src/lib.rs

src/lib.rs:
