/root/repo/target/debug/deps/host_faults-87b10beafc429ddb.d: crates/host/tests/host_faults.rs

/root/repo/target/debug/deps/host_faults-87b10beafc429ddb: crates/host/tests/host_faults.rs

crates/host/tests/host_faults.rs:
