/root/repo/target/debug/deps/fig8-b453947701bfb4d4.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-b453947701bfb4d4: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
