/root/repo/target/debug/deps/delta_window-b9311637eb0b1ced.d: tests/delta_window.rs

/root/repo/target/debug/deps/delta_window-b9311637eb0b1ced: tests/delta_window.rs

tests/delta_window.rs:
