/root/repo/target/debug/deps/baseline_comparison-26d3f0da0525daa7.d: tests/baseline_comparison.rs

/root/repo/target/debug/deps/baseline_comparison-26d3f0da0525daa7: tests/baseline_comparison.rs

tests/baseline_comparison.rs:
