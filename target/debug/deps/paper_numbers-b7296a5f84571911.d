/root/repo/target/debug/deps/paper_numbers-b7296a5f84571911.d: crates/sim/tests/paper_numbers.rs

/root/repo/target/debug/deps/paper_numbers-b7296a5f84571911: crates/sim/tests/paper_numbers.rs

crates/sim/tests/paper_numbers.rs:
