/root/repo/target/debug/deps/table1-c47b0ea1d12d387f.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-c47b0ea1d12d387f: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
