/root/repo/target/debug/deps/mirage_core-4f72a551aa179aaf.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/event.rs crates/core/src/invariants.rs crates/core/src/library.rs crates/core/src/msg.rs crates/core/src/store.rs crates/core/src/table1.rs crates/core/src/using.rs

/root/repo/target/debug/deps/libmirage_core-4f72a551aa179aaf.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/event.rs crates/core/src/invariants.rs crates/core/src/library.rs crates/core/src/msg.rs crates/core/src/store.rs crates/core/src/table1.rs crates/core/src/using.rs

/root/repo/target/debug/deps/libmirage_core-4f72a551aa179aaf.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/event.rs crates/core/src/invariants.rs crates/core/src/library.rs crates/core/src/msg.rs crates/core/src/store.rs crates/core/src/table1.rs crates/core/src/using.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/event.rs:
crates/core/src/invariants.rs:
crates/core/src/library.rs:
crates/core/src/msg.rs:
crates/core/src/store.rs:
crates/core/src/table1.rs:
crates/core/src/using.rs:
