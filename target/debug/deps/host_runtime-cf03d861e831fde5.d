/root/repo/target/debug/deps/host_runtime-cf03d861e831fde5.d: tests/host_runtime.rs

/root/repo/target/debug/deps/host_runtime-cf03d861e831fde5: tests/host_runtime.rs

tests/host_runtime.rs:
