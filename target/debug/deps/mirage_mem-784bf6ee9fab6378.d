/root/repo/target/debug/deps/mirage_mem-784bf6ee9fab6378.d: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/auxpte.rs crates/mem/src/namespace.rs crates/mem/src/page.rs crates/mem/src/pte.rs crates/mem/src/remap.rs crates/mem/src/segment.rs

/root/repo/target/debug/deps/mirage_mem-784bf6ee9fab6378: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/auxpte.rs crates/mem/src/namespace.rs crates/mem/src/page.rs crates/mem/src/pte.rs crates/mem/src/remap.rs crates/mem/src/segment.rs

crates/mem/src/lib.rs:
crates/mem/src/addr.rs:
crates/mem/src/auxpte.rs:
crates/mem/src/namespace.rs:
crates/mem/src/page.rs:
crates/mem/src/pte.rs:
crates/mem/src/remap.rs:
crates/mem/src/segment.rs:
