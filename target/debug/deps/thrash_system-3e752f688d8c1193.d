/root/repo/target/debug/deps/thrash_system-3e752f688d8c1193.d: crates/bench/src/bin/thrash_system.rs

/root/repo/target/debug/deps/thrash_system-3e752f688d8c1193: crates/bench/src/bin/thrash_system.rs

crates/bench/src/bin/thrash_system.rs:
