/root/repo/target/debug/deps/baseline_compare-d8ee6253c04a1fed.d: crates/bench/src/bin/baseline_compare.rs

/root/repo/target/debug/deps/baseline_compare-d8ee6253c04a1fed: crates/bench/src/bin/baseline_compare.rs

crates/bench/src/bin/baseline_compare.rs:
