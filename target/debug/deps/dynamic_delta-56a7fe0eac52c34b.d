/root/repo/target/debug/deps/dynamic_delta-56a7fe0eac52c34b.d: crates/bench/src/bin/dynamic_delta.rs

/root/repo/target/debug/deps/dynamic_delta-56a7fe0eac52c34b: crates/bench/src/bin/dynamic_delta.rs

crates/bench/src/bin/dynamic_delta.rs:
