/root/repo/target/debug/deps/coherence_prop-9b891ae449d5ca26.d: crates/core/tests/coherence_prop.rs crates/core/tests/common/mod.rs

/root/repo/target/debug/deps/coherence_prop-9b891ae449d5ca26: crates/core/tests/coherence_prop.rs crates/core/tests/common/mod.rs

crates/core/tests/coherence_prop.rs:
crates/core/tests/common/mod.rs:
