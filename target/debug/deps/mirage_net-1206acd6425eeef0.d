/root/repo/target/debug/deps/mirage_net-1206acd6425eeef0.d: crates/net/src/lib.rs crates/net/src/circuit.rs crates/net/src/costs.rs crates/net/src/message.rs crates/net/src/topology.rs crates/net/src/wire.rs

/root/repo/target/debug/deps/libmirage_net-1206acd6425eeef0.rlib: crates/net/src/lib.rs crates/net/src/circuit.rs crates/net/src/costs.rs crates/net/src/message.rs crates/net/src/topology.rs crates/net/src/wire.rs

/root/repo/target/debug/deps/libmirage_net-1206acd6425eeef0.rmeta: crates/net/src/lib.rs crates/net/src/circuit.rs crates/net/src/costs.rs crates/net/src/message.rs crates/net/src/topology.rs crates/net/src/wire.rs

crates/net/src/lib.rs:
crates/net/src/circuit.rs:
crates/net/src/costs.rs:
crates/net/src/message.rs:
crates/net/src/topology.rs:
crates/net/src/wire.rs:
