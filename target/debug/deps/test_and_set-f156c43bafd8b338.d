/root/repo/target/debug/deps/test_and_set-f156c43bafd8b338.d: crates/bench/src/bin/test_and_set.rs

/root/repo/target/debug/deps/test_and_set-f156c43bafd8b338: crates/bench/src/bin/test_and_set.rs

crates/bench/src/bin/test_and_set.rs:
