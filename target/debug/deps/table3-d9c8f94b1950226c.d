/root/repo/target/debug/deps/table3-d9c8f94b1950226c.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-d9c8f94b1950226c: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
