/root/repo/target/debug/deps/mirage_bench-354de8113e752bcb.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/harness.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libmirage_bench-354de8113e752bcb.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/harness.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libmirage_bench-354de8113e752bcb.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/harness.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/harness.rs:
crates/bench/src/table.rs:
