/root/repo/target/debug/deps/mirage_sim-2e8802fa9948630a.d: crates/sim/src/lib.rs crates/sim/src/instrument.rs crates/sim/src/process.rs crates/sim/src/program.rs crates/sim/src/site.rs crates/sim/src/world.rs

/root/repo/target/debug/deps/mirage_sim-2e8802fa9948630a: crates/sim/src/lib.rs crates/sim/src/instrument.rs crates/sim/src/process.rs crates/sim/src/program.rs crates/sim/src/site.rs crates/sim/src/world.rs

crates/sim/src/lib.rs:
crates/sim/src/instrument.rs:
crates/sim/src/process.rs:
crates/sim/src/program.rs:
crates/sim/src/site.rs:
crates/sim/src/world.rs:
