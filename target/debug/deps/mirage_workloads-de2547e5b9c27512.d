/root/repo/target/debug/deps/mirage_workloads-de2547e5b9c27512.d: crates/workloads/src/lib.rs crates/workloads/src/background.rs crates/workloads/src/decrement.rs crates/workloads/src/pingpong.rs crates/workloads/src/readers.rs crates/workloads/src/ring.rs crates/workloads/src/spinlock.rs

/root/repo/target/debug/deps/libmirage_workloads-de2547e5b9c27512.rlib: crates/workloads/src/lib.rs crates/workloads/src/background.rs crates/workloads/src/decrement.rs crates/workloads/src/pingpong.rs crates/workloads/src/readers.rs crates/workloads/src/ring.rs crates/workloads/src/spinlock.rs

/root/repo/target/debug/deps/libmirage_workloads-de2547e5b9c27512.rmeta: crates/workloads/src/lib.rs crates/workloads/src/background.rs crates/workloads/src/decrement.rs crates/workloads/src/pingpong.rs crates/workloads/src/readers.rs crates/workloads/src/ring.rs crates/workloads/src/spinlock.rs

crates/workloads/src/lib.rs:
crates/workloads/src/background.rs:
crates/workloads/src/decrement.rs:
crates/workloads/src/pingpong.rs:
crates/workloads/src/readers.rs:
crates/workloads/src/ring.rs:
crates/workloads/src/spinlock.rs:
