/root/repo/target/debug/deps/mirage_sim-9640b02cd1c74b67.d: crates/sim/src/lib.rs crates/sim/src/instrument.rs crates/sim/src/process.rs crates/sim/src/program.rs crates/sim/src/site.rs crates/sim/src/world.rs

/root/repo/target/debug/deps/libmirage_sim-9640b02cd1c74b67.rlib: crates/sim/src/lib.rs crates/sim/src/instrument.rs crates/sim/src/process.rs crates/sim/src/program.rs crates/sim/src/site.rs crates/sim/src/world.rs

/root/repo/target/debug/deps/libmirage_sim-9640b02cd1c74b67.rmeta: crates/sim/src/lib.rs crates/sim/src/instrument.rs crates/sim/src/process.rs crates/sim/src/program.rs crates/sim/src/site.rs crates/sim/src/world.rs

crates/sim/src/lib.rs:
crates/sim/src/instrument.rs:
crates/sim/src/process.rs:
crates/sim/src/program.rs:
crates/sim/src/site.rs:
crates/sim/src/world.rs:
