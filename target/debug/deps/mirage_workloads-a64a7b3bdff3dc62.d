/root/repo/target/debug/deps/mirage_workloads-a64a7b3bdff3dc62.d: crates/workloads/src/lib.rs crates/workloads/src/background.rs crates/workloads/src/decrement.rs crates/workloads/src/pingpong.rs crates/workloads/src/readers.rs crates/workloads/src/ring.rs crates/workloads/src/spinlock.rs

/root/repo/target/debug/deps/mirage_workloads-a64a7b3bdff3dc62: crates/workloads/src/lib.rs crates/workloads/src/background.rs crates/workloads/src/decrement.rs crates/workloads/src/pingpong.rs crates/workloads/src/readers.rs crates/workloads/src/ring.rs crates/workloads/src/spinlock.rs

crates/workloads/src/lib.rs:
crates/workloads/src/background.rs:
crates/workloads/src/decrement.rs:
crates/workloads/src/pingpong.rs:
crates/workloads/src/readers.rs:
crates/workloads/src/ring.rs:
crates/workloads/src/spinlock.rs:
