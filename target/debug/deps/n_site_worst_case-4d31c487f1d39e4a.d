/root/repo/target/debug/deps/n_site_worst_case-4d31c487f1d39e4a.d: crates/bench/src/bin/n_site_worst_case.rs

/root/repo/target/debug/deps/n_site_worst_case-4d31c487f1d39e4a: crates/bench/src/bin/n_site_worst_case.rs

crates/bench/src/bin/n_site_worst_case.rs:
