/root/repo/target/debug/deps/mirage_bench-a238e9c1e61816e4.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/harness.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/mirage_bench-a238e9c1e61816e4: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/harness.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/harness.rs:
crates/bench/src/table.rs:
