/root/repo/target/debug/deps/mirage_trace-ba4a5639a0b28a4c.d: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/log.rs crates/trace/src/migrate.rs

/root/repo/target/debug/deps/libmirage_trace-ba4a5639a0b28a4c.rlib: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/log.rs crates/trace/src/migrate.rs

/root/repo/target/debug/deps/libmirage_trace-ba4a5639a0b28a4c.rmeta: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/log.rs crates/trace/src/migrate.rs

crates/trace/src/lib.rs:
crates/trace/src/analysis.rs:
crates/trace/src/log.rs:
crates/trace/src/migrate.rs:
