/root/repo/target/debug/deps/repro_all-4476b3e03ed5a57e.d: crates/bench/src/bin/repro_all.rs

/root/repo/target/debug/deps/repro_all-4476b3e03ed5a57e: crates/bench/src/bin/repro_all.rs

crates/bench/src/bin/repro_all.rs:
