/root/repo/target/debug/deps/mirage_baseline-93758e5241fe300b.d: crates/baseline/src/lib.rs crates/baseline/src/common.rs crates/baseline/src/li_central.rs crates/baseline/src/li_distributed.rs crates/baseline/src/mirage_adapter.rs

/root/repo/target/debug/deps/mirage_baseline-93758e5241fe300b: crates/baseline/src/lib.rs crates/baseline/src/common.rs crates/baseline/src/li_central.rs crates/baseline/src/li_distributed.rs crates/baseline/src/mirage_adapter.rs

crates/baseline/src/lib.rs:
crates/baseline/src/common.rs:
crates/baseline/src/li_central.rs:
crates/baseline/src/li_distributed.rs:
crates/baseline/src/mirage_adapter.rs:
