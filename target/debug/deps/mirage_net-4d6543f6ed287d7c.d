/root/repo/target/debug/deps/mirage_net-4d6543f6ed287d7c.d: crates/net/src/lib.rs crates/net/src/circuit.rs crates/net/src/costs.rs crates/net/src/message.rs crates/net/src/topology.rs crates/net/src/wire.rs

/root/repo/target/debug/deps/mirage_net-4d6543f6ed287d7c: crates/net/src/lib.rs crates/net/src/circuit.rs crates/net/src/costs.rs crates/net/src/message.rs crates/net/src/topology.rs crates/net/src/wire.rs

crates/net/src/lib.rs:
crates/net/src/circuit.rs:
crates/net/src/costs.rs:
crates/net/src/message.rs:
crates/net/src/topology.rs:
crates/net/src/wire.rs:
