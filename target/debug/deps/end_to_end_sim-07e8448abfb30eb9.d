/root/repo/target/debug/deps/end_to_end_sim-07e8448abfb30eb9.d: tests/end_to_end_sim.rs

/root/repo/target/debug/deps/end_to_end_sim-07e8448abfb30eb9: tests/end_to_end_sim.rs

tests/end_to_end_sim.rs:
