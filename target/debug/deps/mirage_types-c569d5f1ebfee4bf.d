/root/repo/target/debug/deps/mirage_types-c569d5f1ebfee4bf.d: crates/types/src/lib.rs crates/types/src/access.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/rng.rs crates/types/src/time.rs

/root/repo/target/debug/deps/mirage_types-c569d5f1ebfee4bf: crates/types/src/lib.rs crates/types/src/access.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/rng.rs crates/types/src/time.rs

crates/types/src/lib.rs:
crates/types/src/access.rs:
crates/types/src/error.rs:
crates/types/src/ids.rs:
crates/types/src/rng.rs:
crates/types/src/time.rs:
