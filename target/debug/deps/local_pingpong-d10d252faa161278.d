/root/repo/target/debug/deps/local_pingpong-d10d252faa161278.d: crates/bench/src/bin/local_pingpong.rs

/root/repo/target/debug/deps/local_pingpong-d10d252faa161278: crates/bench/src/bin/local_pingpong.rs

crates/bench/src/bin/local_pingpong.rs:
