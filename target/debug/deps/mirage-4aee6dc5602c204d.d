/root/repo/target/debug/deps/mirage-4aee6dc5602c204d.d: src/lib.rs

/root/repo/target/debug/deps/mirage-4aee6dc5602c204d: src/lib.rs

src/lib.rs:
