/root/repo/target/debug/deps/protocol_flows-9ce2e2ee98d5e6a4.d: crates/core/tests/protocol_flows.rs crates/core/tests/common/mod.rs

/root/repo/target/debug/deps/protocol_flows-9ce2e2ee98d5e6a4: crates/core/tests/protocol_flows.rs crates/core/tests/common/mod.rs

crates/core/tests/protocol_flows.rs:
crates/core/tests/common/mod.rs:
