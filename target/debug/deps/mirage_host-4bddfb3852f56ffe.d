/root/repo/target/debug/deps/mirage_host-4bddfb3852f56ffe.d: crates/host/src/lib.rs crates/host/src/arch.rs crates/host/src/fault.rs crates/host/src/region.rs crates/host/src/runtime.rs crates/host/src/store.rs crates/host/src/sys.rs crates/host/src/sysv.rs

/root/repo/target/debug/deps/libmirage_host-4bddfb3852f56ffe.rlib: crates/host/src/lib.rs crates/host/src/arch.rs crates/host/src/fault.rs crates/host/src/region.rs crates/host/src/runtime.rs crates/host/src/store.rs crates/host/src/sys.rs crates/host/src/sysv.rs

/root/repo/target/debug/deps/libmirage_host-4bddfb3852f56ffe.rmeta: crates/host/src/lib.rs crates/host/src/arch.rs crates/host/src/fault.rs crates/host/src/region.rs crates/host/src/runtime.rs crates/host/src/store.rs crates/host/src/sys.rs crates/host/src/sysv.rs

crates/host/src/lib.rs:
crates/host/src/arch.rs:
crates/host/src/fault.rs:
crates/host/src/region.rs:
crates/host/src/runtime.rs:
crates/host/src/store.rs:
crates/host/src/sys.rs:
crates/host/src/sysv.rs:
