/root/repo/target/debug/deps/mirage_host-77e6717cde653674.d: crates/host/src/lib.rs crates/host/src/arch.rs crates/host/src/fault.rs crates/host/src/region.rs crates/host/src/runtime.rs crates/host/src/store.rs crates/host/src/sys.rs crates/host/src/sysv.rs

/root/repo/target/debug/deps/mirage_host-77e6717cde653674: crates/host/src/lib.rs crates/host/src/arch.rs crates/host/src/fault.rs crates/host/src/region.rs crates/host/src/runtime.rs crates/host/src/store.rs crates/host/src/sys.rs crates/host/src/sysv.rs

crates/host/src/lib.rs:
crates/host/src/arch.rs:
crates/host/src/fault.rs:
crates/host/src/region.rs:
crates/host/src/runtime.rs:
crates/host/src/store.rs:
crates/host/src/sys.rs:
crates/host/src/sysv.rs:
