/root/repo/target/debug/deps/mirage_trace-90f6b76346b13ef3.d: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/log.rs crates/trace/src/migrate.rs

/root/repo/target/debug/deps/mirage_trace-90f6b76346b13ef3: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/log.rs crates/trace/src/migrate.rs

crates/trace/src/lib.rs:
crates/trace/src/analysis.rs:
crates/trace/src/log.rs:
crates/trace/src/migrate.rs:
