/root/repo/target/debug/deps/dynamic_delta-217fa20394d94aec.d: crates/core/tests/dynamic_delta.rs crates/core/tests/common/mod.rs

/root/repo/target/debug/deps/dynamic_delta-217fa20394d94aec: crates/core/tests/dynamic_delta.rs crates/core/tests/common/mod.rs

crates/core/tests/dynamic_delta.rs:
crates/core/tests/common/mod.rs:
