/root/repo/target/debug/deps/mirage_types-7cee1ac8c4c2c7f9.d: crates/types/src/lib.rs crates/types/src/access.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/rng.rs crates/types/src/time.rs

/root/repo/target/debug/deps/libmirage_types-7cee1ac8c4c2c7f9.rlib: crates/types/src/lib.rs crates/types/src/access.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/rng.rs crates/types/src/time.rs

/root/repo/target/debug/deps/libmirage_types-7cee1ac8c4c2c7f9.rmeta: crates/types/src/lib.rs crates/types/src/access.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/rng.rs crates/types/src/time.rs

crates/types/src/lib.rs:
crates/types/src/access.rs:
crates/types/src/error.rs:
crates/types/src/ids.rs:
crates/types/src/rng.rs:
crates/types/src/time.rs:
