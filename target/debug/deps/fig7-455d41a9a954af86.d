/root/repo/target/debug/deps/fig7-455d41a9a954af86.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-455d41a9a954af86: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
