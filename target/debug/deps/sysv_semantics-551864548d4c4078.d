/root/repo/target/debug/deps/sysv_semantics-551864548d4c4078.d: tests/sysv_semantics.rs

/root/repo/target/debug/deps/sysv_semantics-551864548d4c4078: tests/sysv_semantics.rs

tests/sysv_semantics.rs:
