/root/repo/target/debug/deps/mirage_baseline-1e2c7a3b71eeb279.d: crates/baseline/src/lib.rs crates/baseline/src/common.rs crates/baseline/src/li_central.rs crates/baseline/src/li_distributed.rs crates/baseline/src/mirage_adapter.rs

/root/repo/target/debug/deps/libmirage_baseline-1e2c7a3b71eeb279.rlib: crates/baseline/src/lib.rs crates/baseline/src/common.rs crates/baseline/src/li_central.rs crates/baseline/src/li_distributed.rs crates/baseline/src/mirage_adapter.rs

/root/repo/target/debug/deps/libmirage_baseline-1e2c7a3b71eeb279.rmeta: crates/baseline/src/lib.rs crates/baseline/src/common.rs crates/baseline/src/li_central.rs crates/baseline/src/li_distributed.rs crates/baseline/src/mirage_adapter.rs

crates/baseline/src/lib.rs:
crates/baseline/src/common.rs:
crates/baseline/src/li_central.rs:
crates/baseline/src/li_distributed.rs:
crates/baseline/src/mirage_adapter.rs:
