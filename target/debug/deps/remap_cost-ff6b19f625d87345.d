/root/repo/target/debug/deps/remap_cost-ff6b19f625d87345.d: crates/bench/src/bin/remap_cost.rs

/root/repo/target/debug/deps/remap_cost-ff6b19f625d87345: crates/bench/src/bin/remap_cost.rs

crates/bench/src/bin/remap_cost.rs:
