/root/repo/target/debug/deps/msg_count-83ad8c0894b62eda.d: crates/bench/src/bin/msg_count.rs

/root/repo/target/debug/deps/msg_count-83ad8c0894b62eda: crates/bench/src/bin/msg_count.rs

crates/bench/src/bin/msg_count.rs:
