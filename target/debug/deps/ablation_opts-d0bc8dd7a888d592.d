/root/repo/target/debug/deps/ablation_opts-d0bc8dd7a888d592.d: crates/bench/src/bin/ablation_opts.rs

/root/repo/target/debug/deps/ablation_opts-d0bc8dd7a888d592: crates/bench/src/bin/ablation_opts.rs

crates/bench/src/bin/ablation_opts.rs:
