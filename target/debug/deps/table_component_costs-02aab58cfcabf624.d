/root/repo/target/debug/deps/table_component_costs-02aab58cfcabf624.d: crates/bench/src/bin/table_component_costs.rs

/root/repo/target/debug/deps/table_component_costs-02aab58cfcabf624: crates/bench/src/bin/table_component_costs.rs

crates/bench/src/bin/table_component_costs.rs:
