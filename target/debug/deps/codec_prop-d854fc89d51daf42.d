/root/repo/target/debug/deps/codec_prop-d854fc89d51daf42.d: crates/core/tests/codec_prop.rs

/root/repo/target/debug/deps/codec_prop-d854fc89d51daf42: crates/core/tests/codec_prop.rs

crates/core/tests/codec_prop.rs:
