/root/repo/target/debug/examples/migration_advisor-a1aa1099138ef918.d: examples/migration_advisor.rs

/root/repo/target/debug/examples/migration_advisor-a1aa1099138ef918: examples/migration_advisor.rs

examples/migration_advisor.rs:
