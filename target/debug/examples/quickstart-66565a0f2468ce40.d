/root/repo/target/debug/examples/quickstart-66565a0f2468ce40.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-66565a0f2468ce40: examples/quickstart.rs

examples/quickstart.rs:
