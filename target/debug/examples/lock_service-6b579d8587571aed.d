/root/repo/target/debug/examples/lock_service-6b579d8587571aed.d: examples/lock_service.rs

/root/repo/target/debug/examples/lock_service-6b579d8587571aed: examples/lock_service.rs

examples/lock_service.rs:
