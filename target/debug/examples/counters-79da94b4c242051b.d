/root/repo/target/debug/examples/counters-79da94b4c242051b.d: examples/counters.rs

/root/repo/target/debug/examples/counters-79da94b4c242051b: examples/counters.rs

examples/counters.rs:
