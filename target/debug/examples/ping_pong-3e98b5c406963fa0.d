/root/repo/target/debug/examples/ping_pong-3e98b5c406963fa0.d: examples/ping_pong.rs

/root/repo/target/debug/examples/ping_pong-3e98b5c406963fa0: examples/ping_pong.rs

examples/ping_pong.rs:
