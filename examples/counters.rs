//! The paper's "representative" application (§8.0, Figure 8): two
//! processes decrement separate counters that share a page.
//!
//! Shows the Δ trade-off: contention (small Δ — the page ping-pongs) vs
//! retention (huge Δ — a finished process hoards the page).
//!
//! ```sh
//! cargo run --release --example counters
//! ```

use mirage::protocol::{
    DeltaPolicy,
    ProtocolConfig,
};
use mirage::sim::{
    SimConfig,
    World,
};
use mirage::types::{
    Delta,
    SimTime,
};
use mirage::workloads::Decrementer;

fn main() {
    println!("two conflicting read-writers, one page, 60 000 decrements each\n");
    println!("{:>6} {:>22} {:>14}", "Δ", "throughput (instr/s)", "makespan (s)");
    for delta in [0u32, 2, 12, 60, 120, 600] {
        let cfg = SimConfig {
            protocol: ProtocolConfig {
                delta: DeltaPolicy::Uniform(Delta(delta)),
                ..Default::default()
            },
            ..Default::default()
        };
        let mut w = World::new(2, cfg);
        let seg = w.create_segment(0, 1);
        // Same page, different words — the conflict is the experiment.
        w.spawn(0, Box::new(Decrementer::new(seg, 0, 60_000)), 1);
        w.spawn(1, Box::new(Decrementer::new(seg, 128, 60_000)), 1);
        w.run_to_completion(SimTime::from_millis(120_000));
        let secs = w.now().as_secs_f64();
        println!("{delta:>6} {:>22.0} {secs:>14.2}", w.total_accesses() as f64 / secs);
    }
    println!("\npaper (Figure 8): low below Δ≈small, best in a broad middle band,");
    println!("then a gradual retention falloff once Δ exceeds the useful hold time.");
}
