//! Quickstart: coherent shared memory across "sites" on real memory.
//!
//! Two sites (threads) share one 512-byte page. Site 0 creates the
//! segment (becoming its library site) and writes; site 1's first read
//! takes a genuine `SIGSEGV`, the Mirage protocol migrates the page, and
//! the value appears. Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mirage::host::HostCluster;
use mirage::protocol::ProtocolConfig;
use mirage::types::PageNum;

fn main() {
    // A two-site Mirage "network" in this process. The default protocol
    // configuration is the paper's: both §6.1 optimizations on, Δ = 0.
    let cluster = HostCluster::start(2, ProtocolConfig::default());

    // Site 0 creates a 4-page segment; it is the library site and starts
    // holding every page read-write (System V: the creator initializes).
    let seg = cluster.create_segment(0, 4);

    // Each site gets a view. Plain loads and stores — faults are handled
    // by the runtime exactly as the Locus kernel handled VAX faults.
    let producer = cluster.view(0, seg);
    let consumer = cluster.view(1, seg);

    let t = std::thread::spawn(move || {
        for page in 0..4u32 {
            producer.write_u32(PageNum(page), 0, 1000 + page);
        }
        println!("site 0: wrote 4 pages");
    });
    t.join().expect("producer");

    let t = std::thread::spawn(move || {
        for page in 0..4u32 {
            // First access per page: read fault -> library request ->
            // writer downgraded -> page granted read-only here.
            let v = consumer.read_u32(PageNum(page), 0);
            println!("site 1: page {page} = {v}");
            assert_eq!(v, 1000 + page);
        }
    });
    t.join().expect("consumer");

    // The library site logged site 1's page requests (§9).
    let log = cluster.ref_log(0);
    println!("library reference log: {} entries", log.len());
}
