//! The §9 reference log in action: page-heat analysis and the
//! process-migration advisor the paper envisions.
//!
//! Runs a workload where two remote processes fight over one page while
//! a third reads another page peacefully, then feeds the library site's
//! reference log through the analyses in `mirage-trace`.
//!
//! ```sh
//! cargo run --release --example migration_advisor
//! ```

use mirage::sim::{
    SimConfig,
    World,
};
use mirage::trace::{
    MigrationAdvisor,
    PageHeat,
    RefLog,
    SharingMatrix,
};
use mirage::types::{
    PageNum,
    SimTime,
};
use mirage::workloads::{
    Decrementer,
    Rereader,
};

fn main() {
    let mut w = World::new(3, SimConfig::default());
    w.enable_ref_log();
    let seg = w.create_segment(0, 2);
    // Sites 0 and 1 fight over page 0; site 2 re-reads page 1 quietly.
    w.spawn(0, Box::new(Decrementer::new(seg, 0, 30_000)), 2);
    w.spawn(1, Box::new(Decrementer::new(seg, 128, 30_000)), 2);
    w.spawn(
        2,
        Box::new(Rereader::new(seg, 200, mirage::types::SimDuration::from_millis(20))),
        2,
    );
    w.run_to_completion(SimTime::from_millis(120_000));

    // Rebuild the §9 log from the library's records.
    let mut log = RefLog::new();
    for e in &w.ref_log {
        log.record(mirage::trace::Entry {
            seg: e.seg,
            page: e.page,
            at: e.at,
            pid: e.pid,
            access: e.access,
        });
    }
    println!("library logged {} page requests\n", log.len());

    let heat = PageHeat::from_log(&log);
    println!("page heat (requests):");
    for ((s, p), n) in heat.hottest() {
        let (r, wr) = heat.page(s, p);
        println!("  {p:?}: {n} total ({r} read, {wr} write)");
    }
    println!(
        "\nhot-spot candidates (write-heavy, contended): {:?}",
        heat.hot_spot_candidates(10).iter().map(|&(_, p)| p).collect::<Vec<_>>()
    );

    let sharing = SharingMatrix::from_log(&log);
    println!(
        "page 0 sharers: {}   dominant requester: {:?}",
        sharing.sharers(seg, PageNum(0)),
        sharing.dominant_site(seg, PageNum(0)),
    );

    println!("\nmigration advice (move the process next to its data):");
    for advice in MigrationAdvisor::new(10).advise(&log) {
        println!(
            "  move {:?} to {:?} ({} conflicting requests)",
            advice.pid, advice.to, advice.conflicting_requests
        );
    }
}
