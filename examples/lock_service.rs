//! The test&set hazard (§7.2) on real memory, and the fix the paper
//! implies: keep the lock away from the data it protects.
//!
//! A locking writer and a busy-testing reader share a segment. The
//! tester's polls repeatedly pull the *lock page* across the network.
//! If the protected data lives on that same DSM page (the paper's
//! warning case), every steal also takes the data out from under the
//! writer mid-critical-section; if the data has its own page, it never
//! moves at all. The library's reference log (§9) shows the difference
//! directly.
//!
//! ```sh
//! cargo run --release --example lock_service
//! ```

use std::sync::atomic::{
    AtomicBool,
    Ordering,
};
use std::sync::Arc;
use std::time::Instant;

use mirage::host::HostCluster;
use mirage::protocol::ProtocolConfig;
use mirage::types::PageNum;

const LOCK: PageNum = PageNum(0);

/// Runs the workload for `seconds`; returns (sections/s, lock-page
/// requests, data-page requests) from the library's reference log.
fn run(data_page: PageNum, seconds: f64) -> (f64, usize, usize) {
    let cluster = HostCluster::start(2, ProtocolConfig::default());
    let seg = cluster.create_segment(0, 2);
    let holder = cluster.view(0, seg);
    let tester = cluster.view(1, seg);
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    // The busy tester the paper warns about.
    let t_tester = std::thread::spawn(move || {
        while !stop2.load(Ordering::Relaxed) {
            let _ = tester.read_u32(LOCK, 0);
            std::thread::yield_now();
        }
    });
    let started = Instant::now();
    let mut sections = 0u64;
    while started.elapsed().as_secs_f64() < seconds {
        holder.write_u32(LOCK, 0, 1); // acquire (test&set = write access)
        for k in 0..4 {
            holder.write_u32(data_page, 64 + 8 * k, sections as u32);
        }
        holder.write_u32(LOCK, 0, 0); // release
        sections += 1;
    }
    let elapsed = started.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    t_tester.join().expect("tester");
    let log = cluster.ref_log(0);
    let lock_reqs = log.for_page(seg, LOCK).count();
    let data_reqs =
        if data_page == LOCK { lock_reqs } else { log.for_page(seg, data_page).count() };
    (sections as f64 / elapsed, lock_reqs, data_reqs)
}

fn main() {
    let (same_rate, same_lock, same_data) = run(PageNum(0), 2.0);
    let (sep_rate, sep_lock, sep_data) = run(PageNum(1), 2.0);
    println!("locking writer vs remote busy-waiting tester (2 s each):\n");
    println!("configuration       sections/s   lock-page moves   data-page moves");
    println!("same page          {same_rate:>11.0}   {same_lock:>15}   {same_data:>15}");
    println!("separate pages     {sep_rate:>11.0}   {sep_lock:>15}   {sep_data:>15}");
    println!("\nWith lock and data on one page, every tester poll also rips the");
    println!("data out from under the critical section ({same_data} moves of the page");
    println!("holding the data). With separation the data page moved {sep_data} times.");
    println!("The paper: \"we recommend that the test&set instruction not be");
    println!("used because of its performance\" (§7.2).");
}
