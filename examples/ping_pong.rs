//! The paper's worst-case application (§7.2, Figure 4) on the simulator.
//!
//! Two processes at different sites alternately write adjacent locations
//! on the same page. Every access transfers the whole page — the DSM
//! equivalent of thrashing. The example shows how the time window Δ and
//! the `yield()` call change throughput.
//!
//! ```sh
//! cargo run --release --example ping_pong
//! ```

use mirage::protocol::{
    DeltaPolicy,
    ProtocolConfig,
};
use mirage::sim::{
    SimConfig,
    World,
};
use mirage::types::{
    Delta,
    SimTime,
};
use mirage::workloads::{
    PingPongPinger,
    PingPongPonger,
};

fn run(delta: u32, use_yield: bool, seconds: u64) -> (f64, f64) {
    let cfg = SimConfig {
        protocol: ProtocolConfig {
            delta: DeltaPolicy::Uniform(Delta(delta)),
            ..Default::default()
        },
        ..Default::default()
    };
    let mut w = World::new(2, cfg);
    let seg = w.create_segment(0, 1);
    w.spawn(0, Box::new(PingPongPinger::new(seg, u32::MAX / 4, use_yield)), 1);
    w.spawn(1, Box::new(PingPongPonger::new(seg, use_yield)), 1);
    w.run_until(SimTime::from_millis(seconds * 1000));
    let cycles = w.sites[0].procs[0].metric() as f64 / seconds as f64;
    let msgs = w.instr.msgs.total() as f64 / w.sites[0].procs[0].metric().max(1) as f64;
    (cycles, msgs)
}

fn main() {
    println!("worst-case ping-pong, 2 sites, 30 simulated seconds each\n");
    println!("{:>3} {:>18} {:>18} {:>14}", "Δ", "yield (cycles/s)", "no-yield", "msgs/cycle");
    for delta in [0u32, 2, 6, 10] {
        let (y, msgs) = run(delta, true, 30);
        let (n, _) = run(delta, false, 30);
        println!("{delta:>3} {y:>18.2} {n:>18.2} {msgs:>14.1}");
    }
    println!("\npaper: ≈9 messages per cycle; yield() ≈50% better at Δ=2;");
    println!("the communication bound is ≈9 cycles/s (§7.2).");
}
