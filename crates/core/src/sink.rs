//! [`ActionSink`]: the reusable action buffer every runtime drives the
//! engine through.
//!
//! The engine is sans-IO: each event produces a burst of [`Action`]s.
//! Allocating a fresh `Vec` per event would put a heap allocation on the
//! per-fault hot path, so the sink is owned by the caller (usually a
//! [`crate::ProtocolDriver`]) and reused: `begin` resets it without
//! releasing capacity, the engine fills it, and the runtime drains it.
//! After warm-up, steady-state event handling performs no heap
//! allocation at all.

use std::collections::VecDeque;

use mirage_types::SimTime;

use crate::{
    event::Action,
    msg::ProtoMsg,
};

/// A reusable buffer of engine output plus the per-dispatch context
/// (current time, pending loop-back deliveries, grant count).
#[derive(Debug, Default)]
pub struct ActionSink {
    now: SimTime,
    actions: Vec<Action>,
    /// Self-sends (library colocated with the requester, §7.3) delivered
    /// within the same dispatch instead of hitting the wire.
    loopback: VecDeque<ProtoMsg>,
    /// `PageGrant` sends accumulated since `begin` — runtimes charge
    /// server CPU per grant (Table 3 "serve processing") and need the
    /// count *before* consuming the actions.
    grants: u32,
}

impl ActionSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the sink for a new dispatch at `now`, retaining capacity.
    pub(crate) fn begin(&mut self, now: SimTime) {
        self.now = now;
        self.actions.clear();
        self.loopback.clear();
        self.grants = 0;
    }

    /// The time of the in-progress dispatch.
    pub(crate) fn now(&self) -> SimTime {
        self.now
    }

    /// Appends an action, maintaining the grant count.
    pub(crate) fn push(&mut self, action: Action) {
        if action.is_page_grant() {
            self.grants += 1;
        }
        self.actions.push(action);
    }

    /// Queues a message the engine sent to its own site.
    pub(crate) fn push_loopback(&mut self, msg: ProtoMsg) {
        self.loopback.push_back(msg);
    }

    /// Takes the next pending loop-back delivery.
    pub(crate) fn pop_loopback(&mut self) -> Option<ProtoMsg> {
        self.loopback.pop_front()
    }

    /// The actions accumulated by the current dispatch.
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// Number of accumulated actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True if the dispatch produced no actions.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// `PageGrant` sends accumulated by the current dispatch.
    pub fn grants(&self) -> u32 {
        self.grants
    }

    /// Moves the accumulated actions out, leaving the sink reusable.
    ///
    /// This is the compatibility path for callers that want an owned
    /// `Vec` (tests, the legacy [`crate::SiteEngine::handle`]); drivers
    /// use [`ActionSink::drain`] instead, which keeps the buffer.
    pub fn take_actions(&mut self) -> Vec<Action> {
        self.grants = 0;
        std::mem::take(&mut self.actions)
    }

    /// Drains the accumulated actions in order, keeping capacity.
    pub fn drain(&mut self) -> impl Iterator<Item = Action> + '_ {
        self.grants = 0;
        self.actions.drain(..)
    }
}
