//! Tardis-style timestamp coherence — the third rival protocol.
//!
//! Where Mirage keeps copies coherent with *physical*-time keepalive
//! windows and invalidation rounds, and the Li–Hudak degenerate
//! (`ProtocolConfig::li`) with plain invalidation fan-out, Tardis (Yu &
//! Devadas) replaces invalidation with **logical leases**:
//!
//! * every page has a **home site** (we reuse the segment's static
//!   library address) holding two logical counters — `wts`, the write
//!   timestamp of the current version, and `rts`, the read timestamp up
//!   to which outstanding copies may be read;
//! * a **read** reserves a lease: the home bumps `rts` to
//!   `max(rts, max(pts, wts) + ts_lease)` and replies with the page (or
//!   a data-free renewal when the requester's cached version is
//!   current). No record of the reader is kept — read copies are never
//!   chased by invalidations;
//! * a **write** serializes by timestamp: the home picks
//!   `wts' = max(wts, rts, pts) + 1`, which places the write *after*
//!   every lease it ever granted, and hands exclusive ownership to the
//!   writer (with the page, or in place when the writer's copy is
//!   current);
//! * each site carries a **program timestamp** `pts` — the logical time
//!   its accesses happen at. Installing version `wts` advances `pts` to
//!   at least `wts`; any lease whose `rts` falls behind `pts` has
//!   logically expired and the copy is dropped, to be re-leased (often
//!   by a data-free renewal) on the next access.
//!
//! The result is the structural opposite of Mirage on the wire: writes
//! cost one short round trip (plus at most one recall of the previous
//! owner) regardless of how many readers exist, while readers pay
//! periodic renewals. The cross-protocol experiments measure exactly
//! that trade.
//!
//! # Divergences from the paper's Tardis
//!
//! Yu & Devadas advance `pts` on every load/store and keep per-cache-line
//! state in hardware. This implementation is a *page-granularity DSM*
//! rendering: `pts` advances only at protocol events (installs, grants),
//! so a site's reads between protocol events share one logical instant.
//! Lease expiry is therefore checked when `pts` moves, not per access.
//! Exclusive ownership is surrendered through an explicit recall /
//! write-back exchange (the paper's directory would time the owner out);
//! recalls, write-backs and requests each carry their own retransmit
//! chain so the protocol rides the same lossy-network fault layer as
//! Mirage.
//!
//! # State machine (per page)
//!
//! ```text
//!            TsRead ── home: rts ⇐ max(rts, max(pts,wts)+lease)
//!   None ──────────────────────────────▶ Lease{wts, rts}
//!     ▲    (TsReadData with bytes, or TsRenew if vts == wts)
//!     │                                        │
//!     │ pts > rts: frame → stale slot          │ TsWrite: wts' = max(wts,rts,pts)+1
//!     └────────────────────────────────────────┤
//!                                              ▼
//!   Owner{wts'} ◀──────── TsWriteGrant (bytes, or in place if vts == wts)
//!     │
//!     │ TsRecall(serial) — next requester needs the page
//!     ▼
//!   None + retained TsWriteBack (until TsWriteBackAck)
//! ```
//!
//! All Tardis state lives behind `Option<Box<TardisState>>` on the
//! engine: a Mirage-configured engine never allocates it, and the
//! Mirage hot path pays exactly one `is_some` branch at the fault
//! entry point.

use std::collections::VecDeque;

use mirage_mem::PageData;
use mirage_trace::TraceKind;
use mirage_types::{
    Access,
    FastMap,
    PageNum,
    PageProt,
    Pid,
    SegmentId,
    SiteId,
};

use crate::{
    engine::{
        SiteEngine,
        TimerKind,
    },
    event::Action,
    msg::ProtoMsg,
    sink::ActionSink,
    store::PageStore,
};

/// Packs a `(wts, rts)` pair into a trace `detail` word.
#[inline]
pub fn pack_ts(wts: u32, rts: u32) -> u64 {
    (u64::from(wts) << 32) | u64::from(rts)
}

/// What this site holds for a page (requester side).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum Hold {
    /// Nothing readable.
    #[default]
    None,
    /// A read copy of version `wts`, valid while `pts <= rts`.
    Lease {
        /// Version of the cached bytes.
        wts: u32,
        /// Logical lease end.
        rts: u32,
    },
    /// The exclusive (writable) copy at version `wts`. Owner copies
    /// never expire; they leave via recall.
    Owner {
        /// Version this owner's writes belong to.
        wts: u32,
    },
}

/// The outstanding request, if any (volatile).
#[derive(Clone, Copy, Debug)]
struct OutReq {
    access: Access,
    serial: u32,
    /// Chain generation; stale retransmit timers no-op on mismatch.
    gen: u32,
    attempt: u32,
    /// Trace span of the request chain.
    span: u64,
}

/// A surrendered write-back the owner must deliver (persistent — a
/// recall answered then crashed must still reach the home).
#[derive(Clone, Debug)]
struct RetainedWb {
    /// Recall serial (the home's ownership serial) being answered.
    serial: u32,
    /// Version of the surrendered bytes (0 for a stale-recall reply).
    wts: u32,
    /// The bytes; `None` when the owner had nothing to return.
    data: Option<PageData>,
}

/// Requester-side record for one page.
#[derive(Debug, Default)]
struct LocalPage {
    /// Persistent: what the frame (which itself survives crashes)
    /// represents.
    hold: Hold,
    /// Volatile: bytes of an expired or surrendered copy, kept for
    /// data-free renewal (`vts`) until the next install.
    stale: Option<(u32, PageData)>,
    /// Volatile: processes blocked on this page.
    waiters: Vec<(Pid, Access)>,
    /// Volatile: the in-flight request.
    out: Option<OutReq>,
    /// Persistent: request serial counter (monotone across crashes so
    /// the home's idempotent re-answers stay distinguishable).
    next_serial: u32,
    /// Volatile: request chain generation.
    gen: u32,
    /// Persistent: unacked surrendered write-back.
    wb: Option<RetainedWb>,
    /// Volatile: write-back retransmit attempts.
    wb_attempt: u32,
}

/// One queued request at the home while an owner is out (volatile — a
/// crashed home rebuilds the queue from requester retransmits).
#[derive(Clone, Copy, Debug)]
struct QueuedReq {
    from: SiteId,
    access: Access,
    pts: u32,
    vts: u32,
    serial: u32,
}

/// Home-site record for one page.
#[derive(Debug)]
struct HomePage {
    /// Persistent: write timestamp of the current version.
    wts: u32,
    /// Persistent: read lease horizon.
    rts: u32,
    /// Persistent: the exclusive owner, if one is out.
    ///
    /// The ownership *incarnation* is identified by `wts` — each write
    /// grant bumps it strictly, recalls and write-backs quote it, and
    /// the owner knows it from its grant. A write-back can therefore
    /// only ever resolve the ownership it belongs to, and an owner can
    /// tell a recall of its current grant from a delayed duplicate
    /// aimed at an earlier incarnation.
    owner: Option<SiteId>,
    /// Persistent: request serial the current grant answered (dedup of
    /// a retransmitted `TsWrite` from the owner).
    owner_req_serial: u32,
    /// Persistent: bytes of the last written-back version. Stale while
    /// an owner is out, authoritative otherwise.
    master: PageData,
    /// Volatile: requests parked behind the current owner.
    queue: VecDeque<QueuedReq>,
    /// Volatile: `Some(attempts)` while a recall is in flight.
    recall_attempt: Option<u32>,
}

/// One segment's Tardis state at one site.
#[derive(Debug)]
struct TsSeg {
    seg: SegmentId,
    /// `Some` only at the segment's home (library) site.
    home: Option<Vec<HomePage>>,
    local: Vec<LocalPage>,
}

/// All Tardis protocol state at one site.
///
/// Allocated (boxed, behind an `Option`) only when the engine's
/// configuration selects [`crate::config::Coherence::Tardis`].
#[derive(Debug, Default)]
pub struct TardisState {
    index: FastMap<SegmentId, usize>,
    segs: Vec<TsSeg>,
    /// The site's program timestamp — the logical instant its memory
    /// accesses currently happen at. Persistent: logical time never
    /// rolls back, even across a crash.
    pts: u32,
}

impl TardisState {
    fn seg(&self, seg: SegmentId) -> Option<&TsSeg> {
        self.index.get(&seg).map(|&i| &self.segs[i])
    }

    fn local_mut(&mut self, seg: SegmentId, page: PageNum) -> Option<&mut LocalPage> {
        let &i = self.index.get(&seg)?;
        self.segs[i].local.get_mut(page.index())
    }

    fn home_mut(&mut self, seg: SegmentId, page: PageNum) -> Option<&mut HomePage> {
        let &i = self.index.get(&seg)?;
        self.segs[i].home.as_mut()?.get_mut(page.index())
    }
}

/// Diagnostic view of a page's record at its home site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TsHomeView {
    /// Current write timestamp.
    pub wts: u32,
    /// Current read lease horizon.
    pub rts: u32,
    /// The exclusive owner, if one is out.
    pub owner: Option<SiteId>,
}

impl SiteEngine {
    /// True when this engine speaks Tardis timestamp coherence.
    pub fn is_tardis(&self) -> bool {
        self.tardis.is_some()
    }

    /// This site's program timestamp (`None` under Mirage).
    pub fn tardis_pts(&self) -> Option<u32> {
        self.tardis.as_ref().map(|ts| ts.pts)
    }

    /// The home record for a page, when this site is its home.
    pub fn tardis_home_view(&self, seg: SegmentId, page: PageNum) -> Option<TsHomeView> {
        let ts = self.tardis.as_ref()?;
        let hp = ts.seg(seg)?.home.as_ref()?.get(page.index())?;
        Some(TsHomeView { wts: hp.wts, rts: hp.rts, owner: hp.owner })
    }

    /// The home's master copy of a page (the authoritative bytes when
    /// no owner is out), when this site is its home.
    pub fn tardis_master(&self, seg: SegmentId, page: PageNum) -> Option<&PageData> {
        let ts = self.tardis.as_ref()?;
        Some(&ts.seg(seg)?.home.as_ref()?.get(page.index())?.master)
    }

    /// The version this site holds for a page — `Some(wts)` under a
    /// live lease or ownership, `None` otherwise.
    pub fn tardis_held_version(&self, seg: SegmentId, page: PageNum) -> Option<u32> {
        let ts = self.tardis.as_ref()?;
        match ts.seg(seg)?.local.get(page.index())?.hold {
            Hold::Lease { wts, .. } | Hold::Owner { wts } => Some(wts),
            Hold::None => None,
        }
    }

    /// True while this site holds the exclusive copy of the page.
    pub fn tardis_is_owner(&self, seg: SegmentId, page: PageNum) -> bool {
        self.tardis
            .as_ref()
            .and_then(|ts| ts.seg(seg))
            .and_then(|s| s.local.get(page.index()))
            .is_some_and(|lp| matches!(lp.hold, Hold::Owner { .. }))
    }

    /// Processes blocked on a page at this site (Tardis side of
    /// [`SiteEngine::waiter_count`]).
    pub(crate) fn ts_waiter_count(&self, seg: SegmentId, page: PageNum) -> usize {
        self.tardis
            .as_ref()
            .and_then(|ts| ts.seg(seg))
            .and_then(|s| s.local.get(page.index()))
            .map_or(0, |lp| lp.waiters.len())
    }

    /// Does this site believe a Tardis request is outstanding?
    pub(crate) fn ts_has_outstanding(
        &self,
        seg: SegmentId,
        page: PageNum,
        access: Access,
    ) -> bool {
        self.tardis
            .as_ref()
            .and_then(|ts| ts.seg(seg))
            .and_then(|s| s.local.get(page.index()))
            .and_then(|lp| lp.out)
            .is_some_and(|o| o.access == access || o.access == Access::Write)
    }

    // ---- Registration, crash, restart. ----

    /// Provisions Tardis records for a segment (no-op under Mirage).
    ///
    /// The home site starts as the initial *owner* of every page — it
    /// created the segment with a fully-resident writable view, so the
    /// first remote request triggers a loop-back self-recall that
    /// captures the creating site's frame into the master copy.
    pub(crate) fn ts_register_segment(&mut self, seg: SegmentId, pages: usize) {
        let site = self.site;
        let Some(ts) = self.tardis.as_mut() else {
            return;
        };
        let is_home = seg.library == site;
        let home = is_home.then(|| {
            (0..pages)
                .map(|_| HomePage {
                    wts: 1,
                    rts: 1,
                    owner: Some(site),
                    owner_req_serial: 0,
                    master: PageData::zeroed(),
                    queue: VecDeque::new(),
                    recall_attempt: None,
                })
                .collect()
        });
        let local = (0..pages)
            .map(|_| LocalPage {
                hold: if is_home { Hold::Owner { wts: 1 } } else { Hold::None },
                ..LocalPage::default()
            })
            .collect();
        let slot = TsSeg { seg, home, local };
        match ts.index.get(&seg) {
            Some(&i) => ts.segs[i] = slot,
            None => {
                ts.index.insert(seg, ts.segs.len());
                ts.segs.push(slot);
            }
        }
    }

    /// Discards volatile Tardis state on a site crash. Survivors:
    /// `pts`, holds, request serials, retained write-backs, and the
    /// home's `wts`/`rts`/ownership/master tables.
    pub(crate) fn ts_crash(&mut self) {
        let Some(ts) = self.tardis.as_mut() else {
            return;
        };
        for s in &mut ts.segs {
            for lp in &mut s.local {
                lp.stale = None;
                lp.waiters.clear();
                lp.out = None;
                lp.wb_attempt = 0;
            }
            if let Some(home) = &mut s.home {
                for hp in home {
                    hp.queue.clear();
                    hp.recall_attempt = None;
                }
            }
        }
    }

    /// Re-arms the persistent Tardis obligations after a restart: every
    /// retained write-back is retransmitted immediately (requests and
    /// recalls are requester-/demand-driven and reconstruct themselves).
    pub(crate) fn ts_restart(&mut self, sink: &mut ActionSink) {
        let Some(ts) = self.tardis.take() else {
            return;
        };
        let mut resend: Vec<(SegmentId, PageNum, u32, u32, Option<PageData>)> = Vec::new();
        for s in &ts.segs {
            for (pi, lp) in s.local.iter().enumerate() {
                if let Some(wb) = &lp.wb {
                    resend.push((
                        s.seg,
                        PageNum(pi as u32),
                        wb.wts,
                        wb.serial,
                        wb.data.clone(),
                    ));
                }
            }
        }
        for (seg, page, wts, serial, data) in resend {
            self.emit(
                seg.library,
                ProtoMsg::TsWriteBack { seg, page, wts, data, serial },
                sink,
            );
            self.arm_retry(0, TimerKind::TsWriteBackRetry { seg, page, serial }, sink);
        }
        self.tardis = Some(ts);
    }

    // ---- Requester side. ----

    /// Tardis fault entry point (replaces the Mirage fault path when
    /// the configuration selects timestamp coherence).
    pub(crate) fn ts_fault(
        &mut self,
        pid: Pid,
        seg: SegmentId,
        page: PageNum,
        access: Access,
        store: &mut dyn PageStore,
        sink: &mut ActionSink,
    ) {
        if store.prot(seg, page).permits(access) {
            // Stale PTE (lazy remapping, §6.2): the copy already
            // satisfies the access.
            self.wake(pid, sink);
            return;
        }
        let Some(mut ts) = self.tardis.take() else {
            return;
        };
        self.ts_fault_inner(&mut ts, pid, seg, page, access, sink);
        self.tardis = Some(ts);
    }

    fn ts_fault_inner(
        &mut self,
        ts: &mut TardisState,
        pid: Pid,
        seg: SegmentId,
        page: PageNum,
        access: Access,
        sink: &mut ActionSink,
    ) {
        let pts = ts.pts;
        let retry = self.config.retry.is_some();
        let Some(lp) = ts.local_mut(seg, page) else {
            return;
        };
        lp.waiters.push((pid, access));
        let depth = lp.waiters.len();
        // Deduplicate: an in-flight write request covers read faults
        // too; a read request must be *upgraded* (replaced) when a
        // write fault arrives behind it.
        let need_send = match (&lp.out, access) {
            (None, _) => true,
            (Some(o), Access::Write) => o.access == Access::Read,
            (Some(_), Access::Read) => false,
        };
        let mut span = lp.out.map_or(0, |o| o.span);
        let mut vts = 0;
        let mut serial = 0;
        if need_send {
            vts = Self::ts_cached_version(lp);
            serial = if retry {
                lp.next_serial += 1;
                lp.next_serial
            } else {
                0
            };
            lp.gen = lp.gen.wrapping_add(1);
            span = 0; // replaced below if tracing
        }
        let gen = lp.gen;
        if self.tracing() {
            if need_send {
                span = self.new_span().0;
            }
            let mut ev = self.trace_event(TraceKind::FaultTaken, span, seg, page, sink);
            ev.pid = Some(pid);
            ev.access = Some(access);
            ev.detail = depth as u64;
            self.push_trace(ev, sink);
            if need_send {
                let mut ev = self.trace_event(TraceKind::RequestSent, span, seg, page, sink);
                ev.peer = Some(seg.library);
                ev.pid = Some(pid);
                ev.access = Some(access);
                ev.serial = serial;
                self.push_trace(ev, sink);
            }
        }
        if need_send {
            if let Some(lp) = ts.local_mut(seg, page) {
                lp.out = Some(OutReq { access, serial, gen, attempt: 0, span });
            }
            let msg = match access {
                Access::Read => ProtoMsg::TsRead { seg, page, pts, vts, serial },
                Access::Write => ProtoMsg::TsWrite { seg, page, pts, vts, serial },
            };
            self.emit(seg.library, msg, sink);
            self.arm_retry(0, TimerKind::TsRequestRetry { seg, page, gen }, sink);
        }
    }

    /// The version of the bytes this site could still promote: a live
    /// hold's, else a stale slot's, else 0 (none).
    fn ts_cached_version(lp: &LocalPage) -> u32 {
        match lp.hold {
            Hold::Lease { wts, .. } | Hold::Owner { wts } => wts,
            Hold::None => lp.stale.as_ref().map_or(0, |&(v, _)| v),
        }
    }

    /// Re-issues a request when waiters remain but no request is in
    /// flight (a grant we could not apply, or waiters left behind by a
    /// narrower grant). Belt-and-braces: the home answers idempotently,
    /// so a spurious re-request is harmless.
    fn ts_ensure_request(
        &mut self,
        pts: u32,
        lp: &mut LocalPage,
        seg: SegmentId,
        page: PageNum,
        sink: &mut ActionSink,
    ) {
        if lp.out.is_some() || lp.waiters.is_empty() {
            return;
        }
        let access = if lp.waiters.iter().any(|&(_, a)| a == Access::Write) {
            Access::Write
        } else {
            Access::Read
        };
        let vts = Self::ts_cached_version(lp);
        let serial = if self.config.retry.is_some() {
            lp.next_serial += 1;
            lp.next_serial
        } else {
            0
        };
        lp.gen = lp.gen.wrapping_add(1);
        let gen = lp.gen;
        let mut span = 0;
        if self.tracing() {
            span = self.new_span().0;
            let mut ev = self.trace_event(TraceKind::RequestSent, span, seg, page, sink);
            ev.peer = Some(seg.library);
            ev.access = Some(access);
            ev.serial = serial;
            self.push_trace(ev, sink);
        }
        lp.out = Some(OutReq { access, serial, gen, attempt: 0, span });
        let msg = match access {
            Access::Read => ProtoMsg::TsRead { seg, page, pts, vts, serial },
            Access::Write => ProtoMsg::TsWrite { seg, page, pts, vts, serial },
        };
        self.emit(seg.library, msg, sink);
        self.arm_retry(0, TimerKind::TsRequestRetry { seg, page, gen }, sink);
    }

    /// Request retransmit timer (retry mode): if the chain is still the
    /// current one and unanswered, re-send with the *current* program
    /// timestamp and cached version.
    pub(crate) fn ts_request_retry(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        gen: u32,
        sink: &mut ActionSink,
    ) {
        let Some(mut ts) = self.tardis.take() else {
            return;
        };
        let pts = ts.pts;
        if let Some(lp) = ts.local_mut(seg, page) {
            let vts = Self::ts_cached_version(lp);
            if let Some(out) = &mut lp.out {
                if out.gen == gen {
                    out.attempt += 1;
                    let (access, serial, attempt, span) =
                        (out.access, out.serial, out.attempt, out.span);
                    if self.tracing() {
                        let mut ev =
                            self.trace_event(TraceKind::RequestRetry, span, seg, page, sink);
                        ev.peer = Some(seg.library);
                        ev.access = Some(access);
                        ev.serial = serial;
                        ev.detail = u64::from(attempt);
                        self.push_trace(ev, sink);
                    }
                    let msg = match access {
                        Access::Read => ProtoMsg::TsRead { seg, page, pts, vts, serial },
                        Access::Write => ProtoMsg::TsWrite { seg, page, pts, vts, serial },
                    };
                    self.emit(seg.library, msg, sink);
                    self.arm_retry(attempt, TimerKind::TsRequestRetry { seg, page, gen }, sink);
                }
            }
        }
        self.tardis = Some(ts);
    }

    /// Advances the program timestamp, dropping every lease it expires.
    ///
    /// Expired frames move into the stale slot (version-tagged) so the
    /// next access can be satisfied by a data-free renewal if the page
    /// has not been rewritten meanwhile.
    fn ts_advance_pts(
        &mut self,
        ts: &mut TardisState,
        new_pts: u32,
        store: &mut dyn PageStore,
        sink: &mut ActionSink,
    ) {
        if new_pts <= ts.pts {
            return;
        }
        ts.pts = new_pts;
        for si in 0..ts.segs.len() {
            let seg = ts.segs[si].seg;
            for pi in 0..ts.segs[si].local.len() {
                let lp = &mut ts.segs[si].local[pi];
                let Hold::Lease { wts, rts } = lp.hold else {
                    continue;
                };
                if rts >= new_pts {
                    continue;
                }
                let page = PageNum(pi as u32);
                if store.prot(seg, page).is_resident() {
                    let bytes = store.take(seg, page);
                    lp.stale = Some((wts, bytes));
                }
                lp.hold = Hold::None;
                if self.tracing() {
                    let mut ev =
                        self.trace_event(TraceKind::TsLeaseExpired, 0, seg, page, sink);
                    ev.detail = pack_ts(new_pts, rts);
                    self.push_trace(ev, sink);
                }
            }
        }
    }

    /// Wakes every waiter the page's new protection satisfies.
    fn ts_wake_satisfied(lp: &mut LocalPage, prot: PageProt, sink: &mut ActionSink) {
        lp.waiters.retain(|&(pid, access)| {
            if prot.permits(access) {
                sink.push(Action::Wake { pid });
                false
            } else {
                true
            }
        });
    }

    /// `TsReadData` arrived: install the leased copy.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn ts_read_data(
        &mut self,
        from: SiteId,
        seg: SegmentId,
        page: PageNum,
        wts: u32,
        rts: u32,
        data: PageData,
        serial: u32,
        store: &mut dyn PageStore,
        sink: &mut ActionSink,
    ) {
        let _ = from;
        let Some(mut ts) = self.tardis.take() else {
            return;
        };
        let retry = self.config.retry.is_some();
        let mut advance = None;
        if let Some(lp) = ts.local_mut(seg, page) {
            let current = lp
                .out
                .is_some_and(|o| o.access == Access::Read && (!retry || o.serial == serial));
            if current {
                store.install(seg, page, data, PageProt::Read);
                lp.hold = Hold::Lease { wts, rts };
                lp.stale = None;
                let span = lp.out.map_or(0, |o| o.span);
                lp.out = None;
                if self.tracing() {
                    let mut ev =
                        self.trace_event(TraceKind::TsInstalled, span, seg, page, sink);
                    ev.access = Some(Access::Read);
                    ev.serial = serial;
                    ev.detail = pack_ts(wts, rts);
                    self.push_trace(ev, sink);
                }
                Self::ts_wake_satisfied(lp, PageProt::Read, sink);
                advance = Some(wts);
            }
        }
        if let Some(wts) = advance {
            let new_pts = ts.pts.max(wts);
            self.ts_advance_pts(&mut ts, new_pts, store, sink);
            // Unsatisfied (write) waiters left behind a read grant
            // re-request; so does a page this very advance expired.
            let pts = ts.pts;
            if let Some(lp) = ts.local_mut(seg, page) {
                self.ts_ensure_request(pts, lp, seg, page, sink);
            }
        }
        self.tardis = Some(ts);
    }

    /// `TsRenew` arrived: extend or re-validate the cached version
    /// without data.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn ts_renew(
        &mut self,
        from: SiteId,
        seg: SegmentId,
        page: PageNum,
        wts: u32,
        rts: u32,
        serial: u32,
        store: &mut dyn PageStore,
        sink: &mut ActionSink,
    ) {
        let _ = from;
        let Some(mut ts) = self.tardis.take() else {
            return;
        };
        let retry = self.config.retry.is_some();
        let mut advance = false;
        if let Some(lp) = ts.local_mut(seg, page) {
            let current = lp
                .out
                .is_some_and(|o| o.access == Access::Read && (!retry || o.serial == serial));
            if current {
                let applied = match lp.hold {
                    Hold::Lease { wts: cur, .. } if cur == wts => {
                        lp.hold = Hold::Lease { wts, rts };
                        true
                    }
                    _ => match lp.stale.take() {
                        Some((v, bytes)) if v == wts => {
                            store.install(seg, page, bytes, PageProt::Read);
                            lp.hold = Hold::Lease { wts, rts };
                            true
                        }
                        other => {
                            // The renewed version's bytes are gone (a
                            // crash discarded the stale slot): drop the
                            // renewal and re-request — the new request
                            // carries vts 0, so the home sends data.
                            lp.stale = other;
                            lp.out = None;
                            false
                        }
                    },
                };
                if applied {
                    let span = lp.out.map_or(0, |o| o.span);
                    lp.out = None;
                    if self.tracing() {
                        let mut ev =
                            self.trace_event(TraceKind::TsRenewed, span, seg, page, sink);
                        ev.access = Some(Access::Read);
                        ev.serial = serial;
                        ev.detail = pack_ts(wts, rts);
                        self.push_trace(ev, sink);
                    }
                    Self::ts_wake_satisfied(lp, PageProt::Read, sink);
                    advance = true;
                }
            }
        }
        let new_pts = if advance { ts.pts.max(wts) } else { ts.pts };
        self.ts_advance_pts(&mut ts, new_pts, store, sink);
        let pts = ts.pts;
        if let Some(lp) = ts.local_mut(seg, page) {
            self.ts_ensure_request(pts, lp, seg, page, sink);
        }
        self.tardis = Some(ts);
    }

    /// `TsWriteGrant` arrived: take exclusive ownership at the bumped
    /// write timestamp.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn ts_write_grant(
        &mut self,
        from: SiteId,
        seg: SegmentId,
        page: PageNum,
        wts: u32,
        data: Option<PageData>,
        serial: u32,
        store: &mut dyn PageStore,
        sink: &mut ActionSink,
    ) {
        let _ = from;
        let Some(mut ts) = self.tardis.take() else {
            return;
        };
        let retry = self.config.retry.is_some();
        let mut advance = false;
        if let Some(lp) = ts.local_mut(seg, page) {
            let current = lp
                .out
                .is_some_and(|o| o.access == Access::Write && (!retry || o.serial == serial));
            if current {
                let in_place = data.is_none();
                let applied = match data {
                    Some(bytes) => {
                        store.install(seg, page, bytes, PageProt::ReadWrite);
                        true
                    }
                    None => {
                        if store.prot(seg, page).is_resident() {
                            store.set_prot(seg, page, PageProt::ReadWrite);
                            true
                        } else if let Some((_, bytes)) = lp.stale.take() {
                            store.install(seg, page, bytes, PageProt::ReadWrite);
                            true
                        } else {
                            // In-place upgrade with nothing to promote
                            // (crash dropped the stale slot): re-request
                            // with vts 0; the home — which now records
                            // us as owner — recalls us, we answer with a
                            // no-copy write-back, ownership rolls back,
                            // and the queued request is served with data.
                            lp.out = None;
                            false
                        }
                    }
                };
                if applied {
                    lp.hold = Hold::Owner { wts };
                    lp.stale = None;
                    let span = lp.out.map_or(0, |o| o.span);
                    lp.out = None;
                    if self.tracing() {
                        let kind = if in_place {
                            TraceKind::TsUpgraded
                        } else {
                            TraceKind::TsInstalled
                        };
                        let mut ev = self.trace_event(kind, span, seg, page, sink);
                        ev.access = Some(Access::Write);
                        ev.serial = serial;
                        ev.detail = pack_ts(wts, wts);
                        self.push_trace(ev, sink);
                    }
                    Self::ts_wake_satisfied(lp, PageProt::ReadWrite, sink);
                    advance = true;
                }
            }
        }
        let new_pts = if advance { ts.pts.max(wts) } else { ts.pts };
        self.ts_advance_pts(&mut ts, new_pts, store, sink);
        let pts = ts.pts;
        if let Some(lp) = ts.local_mut(seg, page) {
            self.ts_ensure_request(pts, lp, seg, page, sink);
        }
        self.tardis = Some(ts);
    }

    /// `TsRecall` arrived: surrender the exclusive copy (or answer a
    /// stale recall).
    pub(crate) fn ts_recall(
        &mut self,
        from: SiteId,
        seg: SegmentId,
        page: PageNum,
        serial: u32,
        store: &mut dyn PageStore,
        sink: &mut ActionSink,
    ) {
        let Some(mut ts) = self.tardis.take() else {
            return;
        };
        let mut renounced = false;
        if let Some(lp) = ts.local_mut(seg, page) {
            match lp.hold {
                // Surrender only the incarnation the recall names: a
                // delayed duplicate recall of an *earlier* grant must
                // not evict the copy a newer grant installed (the home
                // would discard that write-back as stale, and the
                // committed write would be lost).
                Hold::Owner { wts } if wts == serial => {
                    let bytes = store.take(seg, page);
                    lp.stale = Some((wts, bytes.clone()));
                    lp.hold = Hold::None;
                    lp.wb = Some(RetainedWb { serial, wts, data: Some(bytes.clone()) });
                    lp.wb_attempt = 0;
                    if self.tracing() {
                        let mut ev =
                            self.trace_event(TraceKind::TsWriteBackSent, 0, seg, page, sink);
                        ev.peer = Some(from);
                        ev.serial = serial;
                        ev.detail = u64::from(wts);
                        ev.epoch = 1;
                        self.push_trace(ev, sink);
                    }
                    self.emit(
                        from,
                        ProtoMsg::TsWriteBack { seg, page, wts, data: Some(bytes), serial },
                        sink,
                    );
                    self.arm_retry(0, TimerKind::TsWriteBackRetry { seg, page, serial }, sink);
                }
                _ => {
                    let reply = match &lp.wb {
                        // A surrendered-but-unacked copy: retransmit it
                        // (under its own serial) instead of inventing a
                        // stale reply.
                        Some(wb) => ProtoMsg::TsWriteBack {
                            seg,
                            page,
                            wts: wb.wts,
                            data: wb.data.clone(),
                            serial: wb.serial,
                        },
                        // Stale recall — nothing to surrender. The home
                        // treats a no-copy write-back as the owner
                        // renouncing the grant it never materialized.
                        None => {
                            renounced = true;
                            ProtoMsg::TsWriteBack { seg, page, wts: 0, data: None, serial }
                        }
                    };
                    self.emit(from, reply, sink);
                    // Renouncing rolls the grant back at the home, so a
                    // grant for it still in flight to us must not be
                    // honored when it lands: retire the outstanding
                    // request and re-issue under a fresh serial.
                    if renounced && lp.out.is_some() && !matches!(lp.hold, Hold::Owner { .. }) {
                        lp.out = None;
                    }
                }
            }
        }
        if renounced {
            let pts = ts.pts;
            if let Some(lp) = ts.local_mut(seg, page) {
                self.ts_ensure_request(pts, lp, seg, page, sink);
            }
        }
        self.tardis = Some(ts);
    }

    /// Write-back retransmit timer (retry mode).
    pub(crate) fn ts_write_back_retry(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        serial: u32,
        sink: &mut ActionSink,
    ) {
        let Some(mut ts) = self.tardis.take() else {
            return;
        };
        if let Some(lp) = ts.local_mut(seg, page) {
            if let Some(wb) = &lp.wb {
                if wb.serial == serial {
                    lp.wb_attempt += 1;
                    let attempt = lp.wb_attempt;
                    let (wts, data) = (wb.wts, wb.data.clone());
                    self.emit(
                        seg.library,
                        ProtoMsg::TsWriteBack { seg, page, wts, data, serial },
                        sink,
                    );
                    self.arm_retry(
                        attempt,
                        TimerKind::TsWriteBackRetry { seg, page, serial },
                        sink,
                    );
                }
            }
        }
        self.tardis = Some(ts);
    }

    /// `TsWriteBackAck` arrived: the home has the copy; drop the
    /// retained write-back.
    pub(crate) fn ts_write_back_ack(&mut self, seg: SegmentId, page: PageNum, serial: u32) {
        let Some(ts) = self.tardis.as_mut() else {
            return;
        };
        if let Some(lp) = ts.local_mut(seg, page) {
            if lp.wb.as_ref().is_some_and(|wb| wb.serial == serial) {
                lp.wb = None;
                lp.wb_attempt = 0;
            }
        }
    }

    // ---- Home side. ----

    /// `TsRead` / `TsWrite` arrived at the home.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn ts_home_request(
        &mut self,
        from: SiteId,
        seg: SegmentId,
        page: PageNum,
        access: Access,
        pts: u32,
        vts: u32,
        serial: u32,
        sink: &mut ActionSink,
    ) {
        let Some(mut ts) = self.tardis.take() else {
            return;
        };
        let lease = self.config.ts_lease;
        if let Some(hp) = ts.home_mut(seg, page) {
            if let Some(owner) = hp.owner {
                if access == Access::Write && owner == from && hp.owner_req_serial == serial {
                    // Duplicate of the request the current grant already
                    // answered: re-answer idempotently from the retained
                    // master (the requester drops it if it installed).
                    let msg = ProtoMsg::TsWriteGrant {
                        seg,
                        page,
                        wts: hp.wts,
                        data: Some(hp.master.clone()),
                        serial,
                    };
                    self.emit(from, msg, sink);
                } else {
                    // Park the request behind the owner; recall once.
                    match hp.queue.iter_mut().find(|q| q.from == from) {
                        Some(q) => {
                            // Write covers read; refresh the rest.
                            if access == Access::Write {
                                q.access = Access::Write;
                            }
                            q.pts = pts;
                            q.vts = vts;
                            q.serial = serial;
                        }
                        None => {
                            hp.queue.push_back(QueuedReq { from, access, pts, vts, serial });
                        }
                    }
                    if hp.recall_attempt.is_none() {
                        hp.recall_attempt = Some(0);
                        // The recall quotes the recalled incarnation's
                        // `wts`, which the owner knows from its grant.
                        let incarnation = hp.wts;
                        if self.tracing() {
                            let mut ev =
                                self.trace_event(TraceKind::TsRecallSent, 0, seg, page, sink);
                            ev.peer = Some(owner);
                            ev.serial = incarnation;
                            self.push_trace(ev, sink);
                        }
                        self.emit(
                            owner,
                            ProtoMsg::TsRecall { seg, page, serial: incarnation },
                            sink,
                        );
                        self.arm_retry(
                            0,
                            TimerKind::TsRecallRetry { seg, page, serial: incarnation },
                            sink,
                        );
                    }
                }
            } else {
                match access {
                    Access::Read => {
                        self.ts_grant_read(hp, lease, seg, page, from, pts, vts, serial, sink);
                    }
                    Access::Write => {
                        self.ts_grant_write(hp, seg, page, from, pts, vts, serial, sink);
                    }
                }
            }
        }
        self.tardis = Some(ts);
    }

    /// Grants a read lease from an owner-free home record.
    #[allow(clippy::too_many_arguments)]
    fn ts_grant_read(
        &mut self,
        hp: &mut HomePage,
        lease: u32,
        seg: SegmentId,
        page: PageNum,
        from: SiteId,
        pts: u32,
        vts: u32,
        serial: u32,
        sink: &mut ActionSink,
    ) {
        hp.rts = hp.rts.max(pts.max(hp.wts).saturating_add(lease));
        let (wts, rts) = (hp.wts, hp.rts);
        if vts == wts {
            // The requester's cached bytes are current: a data-free
            // renewal — the message that replaces invalidation fan-out.
            if self.tracing() {
                let mut ev = self.trace_event(TraceKind::TsRenewGranted, 0, seg, page, sink);
                ev.peer = Some(from);
                ev.serial = serial;
                ev.detail = pack_ts(wts, rts);
                self.push_trace(ev, sink);
            }
            self.emit(from, ProtoMsg::TsRenew { seg, page, wts, rts, serial }, sink);
        } else {
            if self.tracing() {
                let mut ev = self.trace_event(TraceKind::TsReadGranted, 0, seg, page, sink);
                ev.peer = Some(from);
                ev.serial = serial;
                ev.detail = pack_ts(wts, rts);
                self.push_trace(ev, sink);
            }
            let data = hp.master.clone();
            self.emit(from, ProtoMsg::TsReadData { seg, page, wts, rts, data, serial }, sink);
        }
    }

    /// Grants exclusive ownership from an owner-free home record.
    #[allow(clippy::too_many_arguments)]
    fn ts_grant_write(
        &mut self,
        hp: &mut HomePage,
        seg: SegmentId,
        page: PageNum,
        from: SiteId,
        pts: u32,
        vts: u32,
        serial: u32,
        sink: &mut ActionSink,
    ) {
        let new_wts = hp.wts.max(hp.rts).max(pts).saturating_add(1);
        // In place when the requester's cached bytes are current.
        let data = (vts != hp.wts).then(|| hp.master.clone());
        hp.wts = new_wts;
        hp.rts = new_wts;
        hp.owner = Some(from);
        hp.owner_req_serial = serial;
        if self.tracing() {
            let mut ev = self.trace_event(TraceKind::TsWriteGranted, 0, seg, page, sink);
            ev.peer = Some(from);
            ev.serial = serial;
            ev.detail = pack_ts(new_wts, new_wts);
            ev.epoch = u32::from(data.is_some());
            self.push_trace(ev, sink);
        }
        self.emit(from, ProtoMsg::TsWriteGrant { seg, page, wts: new_wts, data, serial }, sink);
    }

    /// `TsWriteBack` arrived at the home: fold the surrendered copy in
    /// and serve the parked queue.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn ts_home_write_back(
        &mut self,
        from: SiteId,
        seg: SegmentId,
        page: PageNum,
        wts: u32,
        data: Option<PageData>,
        serial: u32,
        sink: &mut ActionSink,
    ) {
        let Some(mut ts) = self.tardis.take() else {
            return;
        };
        let lease = self.config.ts_lease;
        if let Some(hp) = ts.home_mut(seg, page) {
            // Always ack — even a stale write-back's sender must stop
            // retransmitting.
            self.emit(from, ProtoMsg::TsWriteBackAck { seg, page, serial }, sink);
            if hp.owner == Some(from) && hp.wts == serial {
                // `data: None` is the owner renouncing a grant it never
                // materialized; the master (previous version's bytes)
                // then *becomes* version `wts` — no site ever observed
                // a different content for it.
                if let Some(bytes) = data {
                    hp.master = bytes;
                }
                hp.owner = None;
                hp.recall_attempt = None;
                if self.tracing() {
                    let mut ev =
                        self.trace_event(TraceKind::TsWriteBackApplied, 0, seg, page, sink);
                    ev.peer = Some(from);
                    ev.serial = serial;
                    ev.detail = u64::from(wts);
                    self.push_trace(ev, sink);
                }
                self.ts_drain_queue(hp, lease, seg, page, sink);
            }
        }
        self.tardis = Some(ts);
    }

    /// Serves the parked queue after ownership returns: reads first,
    /// then at most one write (which re-parks whatever follows behind
    /// an immediate recall of the new owner).
    fn ts_drain_queue(
        &mut self,
        hp: &mut HomePage,
        lease: u32,
        seg: SegmentId,
        page: PageNum,
        sink: &mut ActionSink,
    ) {
        while let Some(&q) = hp.queue.front() {
            hp.queue.pop_front();
            match q.access {
                Access::Read => {
                    self.ts_grant_read(
                        hp, lease, seg, page, q.from, q.pts, q.vts, q.serial, sink,
                    );
                }
                Access::Write => {
                    self.ts_grant_write(hp, seg, page, q.from, q.pts, q.vts, q.serial, sink);
                    if !hp.queue.is_empty() {
                        hp.recall_attempt = Some(0);
                        // The grant above made `hp.wts` the new owner's
                        // incarnation; recall that grant specifically.
                        let incarnation = hp.wts;
                        if self.tracing() {
                            let mut ev =
                                self.trace_event(TraceKind::TsRecallSent, 0, seg, page, sink);
                            ev.peer = Some(q.from);
                            ev.serial = incarnation;
                            self.push_trace(ev, sink);
                        }
                        self.emit(
                            q.from,
                            ProtoMsg::TsRecall { seg, page, serial: incarnation },
                            sink,
                        );
                        self.arm_retry(
                            0,
                            TimerKind::TsRecallRetry { seg, page, serial: incarnation },
                            sink,
                        );
                    }
                    break;
                }
            }
        }
    }

    /// Recall retransmit timer (retry mode): still the same ownership,
    /// still unanswered — re-recall.
    pub(crate) fn ts_recall_retry(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        serial: u32,
        sink: &mut ActionSink,
    ) {
        let Some(mut ts) = self.tardis.take() else {
            return;
        };
        if let Some(hp) = ts.home_mut(seg, page) {
            if hp.wts == serial && hp.recall_attempt.is_some() {
                if let Some(owner) = hp.owner {
                    let attempt = hp.recall_attempt.unwrap() + 1;
                    hp.recall_attempt = Some(attempt);
                    self.emit(owner, ProtoMsg::TsRecall { seg, page, serial }, sink);
                    self.arm_retry(
                        attempt,
                        TimerKind::TsRecallRetry { seg, page, serial },
                        sink,
                    );
                }
            }
        }
        self.tardis = Some(ts);
    }
}

#[cfg(test)]
mod tests {
    use mirage_mem::LocalSegment;
    use mirage_types::SimTime;

    use super::*;
    use crate::{
        config::ProtocolConfig,
        event::Event,
        store::InMemStore,
    };

    /// A tiny instant-delivery world over raw engines: messages are
    /// queued and delivered in order until quiescent.
    struct TsWorld {
        engines: Vec<SiteEngine>,
        stores: Vec<InMemStore>,
        net: std::collections::VecDeque<(SiteId, SiteId, ProtoMsg)>,
        wakes: Vec<Pid>,
        sent: Vec<&'static str>,
    }

    fn seg0() -> SegmentId {
        SegmentId::new(SiteId(0), 1)
    }

    impl TsWorld {
        fn new(sites: usize, pages: usize, config: ProtocolConfig) -> Self {
            let seg = seg0();
            let mut engines = Vec::new();
            let mut stores = Vec::new();
            for i in 0..sites {
                let mut e = SiteEngine::new(SiteId(i as u16), config.clone());
                e.register_segment(seg, pages);
                let mut st = InMemStore::new();
                st.add_segment(if i == 0 {
                    LocalSegment::fully_resident(seg, pages)
                } else {
                    LocalSegment::absent(seg, pages)
                });
                engines.push(e);
                stores.push(st);
            }
            Self {
                engines,
                stores,
                net: std::collections::VecDeque::new(),
                wakes: Vec::new(),
                sent: Vec::new(),
            }
        }

        fn absorb(&mut self, from: SiteId, actions: Vec<Action>) {
            for a in actions {
                match a {
                    Action::Send { to, msg } => {
                        self.sent.push(msg.tag());
                        self.net.push_back((from, to, msg));
                    }
                    Action::Wake { pid } => self.wakes.push(pid),
                    _ => {}
                }
            }
        }

        fn pump(&mut self) {
            while let Some((from, to, msg)) = self.net.pop_front() {
                let i = to.index();
                let acts = self.engines[i].handle(
                    Event::Deliver { from, msg },
                    SimTime::ZERO,
                    &mut self.stores[i],
                );
                self.absorb(to, acts);
            }
        }

        fn fault(&mut self, site: usize, page: u32, access: Access) {
            let pid = Pid::new(SiteId(site as u16), 1);
            let acts = self.engines[site].handle(
                Event::Fault { pid, seg: seg0(), page: PageNum(page), access },
                SimTime::ZERO,
                &mut self.stores[site],
            );
            self.absorb(SiteId(site as u16), acts);
            self.pump();
        }

        fn prot(&self, site: usize, page: u32) -> PageProt {
            use crate::store::PageStore;
            self.stores[site].prot(seg0(), PageNum(page))
        }

        fn write_u32(&mut self, site: usize, page: u32, off: usize, val: u32) {
            assert_eq!(self.prot(site, page), PageProt::ReadWrite);
            self.stores[site]
                .segment_mut(seg0())
                .unwrap()
                .frame_mut(PageNum(page))
                .unwrap()
                .store_u32(off, val);
        }

        fn read_u32(&self, site: usize, page: u32, off: usize) -> u32 {
            assert!(self.prot(site, page).permits(Access::Read));
            self.stores[site]
                .segment(seg0())
                .unwrap()
                .frame(PageNum(page))
                .unwrap()
                .load_u32(off)
        }

        fn count(&self, tag: &str) -> usize {
            self.sent.iter().filter(|t| **t == tag).count()
        }
    }

    #[test]
    fn read_lease_via_self_recall_of_creating_site() {
        let mut w = TsWorld::new(2, 1, ProtocolConfig::tardis());
        w.write_u32(0, 0, 0, 7); // creator's initial content
        w.fault(1, 0, Access::Read);
        assert_eq!(w.prot(1, 0), PageProt::Read);
        assert_eq!(w.read_u32(1, 0, 0), 7);
        // The creating site surrendered ownership to serve the read...
        let view = w.engines[0].tardis_home_view(seg0(), PageNum(0)).unwrap();
        assert_eq!(view.owner, None);
        assert_eq!(view.wts, 1);
        // ...and no invalidation-protocol traffic was generated.
        assert_eq!(w.count("Invalidate"), 0);
        assert_eq!(w.count("TsReadData"), 1);
        assert_eq!(w.wakes.len(), 1);
    }

    #[test]
    fn write_bumps_wts_and_recall_moves_dirty_data() {
        let mut w = TsWorld::new(3, 1, ProtocolConfig::tardis());
        w.fault(1, 0, Access::Write);
        assert_eq!(w.prot(1, 0), PageProt::ReadWrite);
        assert!(w.engines[1].tardis_is_owner(seg0(), PageNum(0)));
        let after_write = w.engines[0].tardis_home_view(seg0(), PageNum(0)).unwrap();
        assert_eq!(after_write.owner, Some(SiteId(1)));
        assert!(after_write.wts > 1);
        w.write_u32(1, 0, 8, 42);

        // A reader elsewhere forces a recall; the dirty bytes flow
        // owner → home → reader.
        w.fault(2, 0, Access::Read);
        assert_eq!(w.read_u32(2, 0, 8), 42);
        assert_eq!(w.prot(1, 0), PageProt::None); // owner surrendered
        let view = w.engines[0].tardis_home_view(seg0(), PageNum(0)).unwrap();
        assert_eq!(view.owner, None);
        assert_eq!(w.engines[0].tardis_master(seg0(), PageNum(0)).unwrap().load_u32(8), 42);
    }

    #[test]
    fn current_version_writer_upgrades_in_place() {
        let mut w = TsWorld::new(2, 1, ProtocolConfig::tardis());
        w.fault(1, 0, Access::Read);
        assert_eq!(w.prot(1, 0), PageProt::Read);
        // The page was not rewritten since the lease: the write grant
        // carries no data.
        w.fault(1, 0, Access::Write);
        assert_eq!(w.prot(1, 0), PageProt::ReadWrite);
        let grants_with_data = w.count("TsReadData");
        assert_eq!(grants_with_data, 1, "only the initial read moved bytes");
        assert_eq!(w.count("TsWriteGrant"), 1);
    }

    #[test]
    fn lease_expiry_then_data_free_renewal() {
        let mut config = ProtocolConfig::tardis();
        config.ts_lease = 2;
        let mut w = TsWorld::new(2, 2, config);
        // Site 1 leases page 0 (rts ≈ 1 + lease).
        w.fault(1, 0, Access::Read);
        assert_eq!(w.prot(1, 0), PageProt::Read);
        // Site 1 writes page 1 repeatedly elsewhere-versioned: each
        // write bumps wts past the other page's rts, advancing pts and
        // expiring the page-0 lease.
        for _ in 0..4 {
            w.fault(1, 1, Access::Write);
            assert_eq!(w.prot(1, 1), PageProt::ReadWrite);
            // Surrender it so the next write round-trips the home again.
            w.fault(0, 1, Access::Read);
        }
        assert_eq!(w.prot(1, 0), PageProt::None, "lease must have expired");
        assert_eq!(
            w.engines[1].tardis_held_version(seg0(), PageNum(0)),
            None,
            "expired lease drops the hold"
        );
        let renews_before = w.count("TsRenew");
        // Re-reading the unchanged page is satisfied without data.
        w.fault(1, 0, Access::Read);
        assert_eq!(w.prot(1, 0), PageProt::Read);
        assert_eq!(w.count("TsRenew"), renews_before + 1);
        assert_eq!(w.count("TsReadData"), 1, "bytes moved only once");
    }

    #[test]
    fn readers_are_never_chased() {
        // Two readers lease the page; a writer then proceeds with no
        // reader-invalidation traffic at all.
        let mut w = TsWorld::new(4, 1, ProtocolConfig::tardis());
        w.fault(1, 0, Access::Read);
        w.fault(2, 0, Access::Read);
        w.fault(3, 0, Access::Write);
        assert_eq!(w.prot(3, 0), PageProt::ReadWrite);
        assert_eq!(w.count("ReaderInvalidate"), 0);
        // The only recall ever needed targeted the creating site —
        // colocated with the home, so it never touched the wire.
        assert_eq!(w.count("TsRecall"), 0);
        // The readers' copies remain resident (logically expired at
        // their own pace, not invalidated).
        assert_eq!(w.prot(1, 0), PageProt::Read);
        assert_eq!(w.prot(2, 0), PageProt::Read);
    }

    #[test]
    fn mirage_config_allocates_no_tardis_state() {
        let e = SiteEngine::new(SiteId(0), ProtocolConfig::default());
        assert!(!e.is_tardis());
        assert_eq!(e.tardis_pts(), None);
    }
}
