//! The sans-IO interface: events the harness feeds in, actions it carries
//! out.

use mirage_trace::TraceEvent;
use mirage_types::{
    Access,
    PageNum,
    Pid,
    SegmentId,
    SimTime,
    SiteId,
};

use crate::msg::ProtoMsg;

/// An input to a [`crate::engine::SiteEngine`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A process at this site took a typed page fault.
    ///
    /// The harness raises this after classifying the fault (read vs
    /// write, §6.2's typed fault detection) and confirming via the
    /// auxiliary table that the page belongs to a shared segment.
    Fault {
        /// The faulting process.
        pid: Pid,
        /// Segment of the faulting address.
        seg: SegmentId,
        /// Faulting page.
        page: PageNum,
        /// Access attempted.
        access: Access,
    },
    /// A protocol message arrived from the network.
    Deliver {
        /// Originating site.
        from: SiteId,
        /// The message.
        msg: ProtoMsg,
    },
    /// A timer set via [`Action::SetTimer`] fired.
    Timer {
        /// The token from the corresponding `SetTimer`.
        token: u64,
    },
    /// The placement policy decided to move the library role for a
    /// segment to another site. Only meaningful at the segment's
    /// current library site (elsewhere it is a no-op), and only in
    /// retry mode — the handoff subprotocol leans on the retransmit
    /// chains.
    MigrateLibrary {
        /// Segment whose library role moves.
        seg: SegmentId,
        /// Destination site.
        to: SiteId,
        /// Which page-range shard of the role moves; `None` moves every
        /// shard still active at this site.
        shard: Option<u32>,
    },
}

/// One entry of the library site's reference log (§9).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RefLogEntry {
    /// Segment requested.
    pub seg: SegmentId,
    /// Page requested ("the memory location").
    pub page: PageNum,
    /// When the request was processed at the library ("a timestamp").
    pub at: SimTime,
    /// Requesting process ("the process identifier of the requester").
    pub pid: Pid,
    /// Read or write request.
    pub access: Access,
}

/// An output the harness must carry out.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Transmit a protocol message to another site. The engine never
    /// emits a `Send` to its own site — local deliveries are processed
    /// in-engine so that colocated library/requester traffic stays off
    /// the network (§7.3).
    Send {
        /// Destination site (never this site).
        to: SiteId,
        /// The message.
        msg: ProtoMsg,
    },
    /// Wake a process blocked in a fault; its access can now succeed (or
    /// must be retried, which will fault again if the page was stolen in
    /// the interim).
    Wake {
        /// The process to wake.
        pid: Pid,
    },
    /// Arrange for [`Event::Timer`] with this token at time `at`.
    SetTimer {
        /// Absolute simulated time to fire at.
        at: SimTime,
        /// Token to echo back.
        token: u64,
    },
    /// Record a reference-log entry (library sites only, §9).
    Log(RefLogEntry),
    /// Record a protocol trace event. Emitted only when
    /// [`crate::config::ProtocolConfig::trace`] is set; runtimes without
    /// an installed sink may discard it (the default
    /// [`crate::driver::DriverOps::trace`] does).
    Trace(TraceEvent),
}

impl Action {
    /// Convenience: is this a `Send` of a page-carrying grant?
    pub fn is_page_grant(&self) -> bool {
        matches!(self, Action::Send { msg: ProtoMsg::PageGrant { .. }, .. })
    }
}

#[cfg(test)]
mod tests {
    use mirage_types::Delta;

    use super::*;

    #[test]
    fn is_page_grant_distinguishes() {
        let seg = SegmentId::new(SiteId(0), 1);
        let grant = Action::Send {
            to: SiteId(1),
            msg: ProtoMsg::PageGrant {
                seg,
                page: PageNum(0),
                access: Access::Read,
                window: Delta::ZERO,
                data: mirage_mem::PageData::zeroed(),
                serial: 0,
            },
        };
        let wake = Action::Wake { pid: Pid::new(SiteId(0), 1) };
        assert!(grant.is_page_grant());
        assert!(!wake.is_page_grant());
    }
}
