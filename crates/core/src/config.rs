//! Protocol tunables.

use mirage_types::{
    Delta,
    PageNum,
};

/// How Δ values are assigned to pages of a segment.
///
/// §8.0: "Mirage currently uses Δs that are uniform for a particular
/// segment. Uniform Δs are not intrinsic to the design nor the
/// implementation. The auxpte data structure contains the per-page Δs
/// values and the implementation could be easily modified to use
/// different values."
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaPolicy {
    /// One Δ for every page of the segment (the prototype's behaviour).
    Uniform(Delta),
    /// Per-page Δ values — the hot-spot organization §8.0 sketches.
    /// Pages beyond the vector's length use the fallback value.
    PerPage {
        /// Per-page windows, indexed by page number.
        windows: Vec<Delta>,
        /// Window for pages not covered by `windows`.
        fallback: Delta,
    },
    /// Library-driven adaptive per-page windows — the tuning routine
    /// §8.0 describes ("When the library sends an invalidation to the
    /// clock site, the page's Δ value can be changed before it is
    /// forwarded to the target site and installed. … Currently, the
    /// Mirage routine which performs this function is disabled."). We
    /// implement it: the window *grows* when the previous holder
    /// re-requests the page right after losing it (a thrash signal) and
    /// *shrinks* when a window expired without protecting anything (the
    /// demand arrived after expiry, unopposed).
    Dynamic {
        /// Starting window for every page.
        initial: Delta,
        /// Lower bound the controller will not shrink below.
        min: Delta,
        /// Upper bound the controller will not grow beyond.
        max: Delta,
    },
}

impl DeltaPolicy {
    /// The *static* window for a given page (the starting value for the
    /// dynamic policy; the library then adapts per page).
    pub fn window(&self, page: PageNum) -> Delta {
        match self {
            DeltaPolicy::Uniform(d) => *d,
            DeltaPolicy::PerPage { windows, fallback } => {
                windows.get(page.index()).copied().unwrap_or(*fallback)
            }
            DeltaPolicy::Dynamic { initial, .. } => *initial,
        }
    }

    /// True for the adaptive policy.
    pub fn is_dynamic(&self) -> bool {
        matches!(self, DeltaPolicy::Dynamic { .. })
    }
}

impl Default for DeltaPolicy {
    fn default() -> Self {
        DeltaPolicy::Uniform(Delta::ZERO)
    }
}

/// Protocol feature configuration.
///
/// The defaults reproduce the paper's prototype exactly: both §6.1
/// optimizations on, the queued-invalidation optimization off ("the
/// current implementation does not support the queued invalidation
/// optimization", §7.1), and sequential point-to-point invalidations
/// ("invalidations are processed sequentially rather than using a
/// broadcast or multicast", §7.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolConfig {
    /// Δ assignment for new segments.
    pub delta: DeltaPolicy,
    /// §6.1 optimization 1: "When a reader is upgraded to a writer, a new
    /// copy of the page is not sent; a notification acknowledges the
    /// write request."
    pub upgrade_optimization: bool,
    /// §6.1 optimization 2: "When write access is removed because readers
    /// require the page, the writer retains read access."
    pub downgrade_optimization: bool,
    /// §7.1 caveat 1: when fewer than `retry_threshold` remain in Δ, the
    /// clock site delays and then honors the invalidation instead of
    /// denying it. Off in the paper's prototype.
    pub queued_invalidation: bool,
    /// §7.1 caveat 2: deliver reader invalidations as one multicast round
    /// rather than sequential point-to-point exchanges. Off in the
    /// paper's prototype (Locus was point-to-point only).
    pub multicast_invalidation: bool,
}

impl ProtocolConfig {
    /// The paper's prototype configuration with the given uniform Δ.
    pub fn paper(delta: Delta) -> Self {
        Self { delta: DeltaPolicy::Uniform(delta), ..Self::default() }
    }
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        Self {
            delta: DeltaPolicy::default(),
            upgrade_optimization: true,
            downgrade_optimization: true,
            queued_invalidation: false,
            multicast_invalidation: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_policy_covers_all_pages() {
        let p = DeltaPolicy::Uniform(Delta(5));
        assert_eq!(p.window(PageNum(0)), Delta(5));
        assert_eq!(p.window(PageNum(999)), Delta(5));
    }

    #[test]
    fn per_page_policy_uses_fallback() {
        let p = DeltaPolicy::PerPage { windows: vec![Delta(1), Delta(2)], fallback: Delta(9) };
        assert_eq!(p.window(PageNum(0)), Delta(1));
        assert_eq!(p.window(PageNum(1)), Delta(2));
        assert_eq!(p.window(PageNum(2)), Delta(9));
    }

    #[test]
    fn defaults_match_prototype() {
        let c = ProtocolConfig::default();
        assert!(c.upgrade_optimization);
        assert!(c.downgrade_optimization);
        assert!(!c.queued_invalidation);
        assert!(!c.multicast_invalidation);
    }
}
