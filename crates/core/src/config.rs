//! Protocol tunables.

use mirage_types::{
    Delta,
    PageNum,
    SimDuration,
};

/// How Δ values are assigned to pages of a segment.
///
/// §8.0: "Mirage currently uses Δs that are uniform for a particular
/// segment. Uniform Δs are not intrinsic to the design nor the
/// implementation. The auxpte data structure contains the per-page Δs
/// values and the implementation could be easily modified to use
/// different values."
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaPolicy {
    /// One Δ for every page of the segment (the prototype's behaviour).
    Uniform(Delta),
    /// Per-page Δ values — the hot-spot organization §8.0 sketches.
    /// Pages beyond the vector's length use the fallback value.
    PerPage {
        /// Per-page windows, indexed by page number.
        windows: Vec<Delta>,
        /// Window for pages not covered by `windows`.
        fallback: Delta,
    },
    /// Library-driven adaptive per-page windows — the tuning routine
    /// §8.0 describes ("When the library sends an invalidation to the
    /// clock site, the page's Δ value can be changed before it is
    /// forwarded to the target site and installed. … Currently, the
    /// Mirage routine which performs this function is disabled."). We
    /// implement it: the window *grows* when the previous holder
    /// re-requests the page right after losing it (a thrash signal) and
    /// *shrinks* when a window expired without protecting anything (the
    /// demand arrived after expiry, unopposed).
    Dynamic {
        /// Starting window for every page.
        initial: Delta,
        /// Lower bound the controller will not shrink below.
        min: Delta,
        /// Upper bound the controller will not grow beyond.
        max: Delta,
    },
}

impl DeltaPolicy {
    /// The *static* window for a given page (the starting value for the
    /// dynamic policy; the library then adapts per page).
    pub fn window(&self, page: PageNum) -> Delta {
        match self {
            DeltaPolicy::Uniform(d) => *d,
            DeltaPolicy::PerPage { windows, fallback } => {
                windows.get(page.index()).copied().unwrap_or(*fallback)
            }
            DeltaPolicy::Dynamic { initial, .. } => *initial,
        }
    }

    /// True for the adaptive policy.
    pub fn is_dynamic(&self) -> bool {
        matches!(self, DeltaPolicy::Dynamic { .. })
    }
}

impl Default for DeltaPolicy {
    fn default() -> Self {
        DeltaPolicy::Uniform(Delta::ZERO)
    }
}

/// Which coherence protocol the engines speak.
///
/// The selector is per-[`ProtocolConfig`], so one world runs exactly
/// one protocol — the rival designs are never mixed on a page. With
/// the default (`Mirage`), the Tardis machinery is compiled in but
/// never allocated or consulted: the Mirage hot path is unchanged.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Coherence {
    /// The paper's protocol: physical-time Δ windows, a library site
    /// per segment, invalidation rounds through a clock site.
    #[default]
    Mirage,
    /// Tardis-style timestamp coherence (Yu & Devadas): per-page
    /// `wts`/`rts` logical counters at a home site, lease-extension
    /// renewals instead of invalidation fan-out, write serialization
    /// by timestamp bump. No multicast, no invalidation messages.
    Tardis,
}

/// Timeout/retry tuning for lossy networks.
///
/// The paper assumes Locus virtual circuits never lose a message; when
/// the simulator injects faults, the engines arm sim-time retransmit
/// timers for every message whose loss would wedge the protocol. The
/// wait for attempt `n` is `min(base << n, cap)` — bounded exponential
/// backoff, in simulated time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Wait before the first retransmission.
    pub base: SimDuration,
    /// Ceiling on the backoff.
    pub cap: SimDuration,
}

impl RetryPolicy {
    /// The retransmit wait after `attempt` prior sends (0-based).
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let shifted = self.base.0.checked_shl(attempt.min(32)).unwrap_or(u64::MAX);
        SimDuration(shifted.min(self.cap.0))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { base: SimDuration::from_millis(50), cap: SimDuration::from_millis(800) }
    }
}

/// Protocol feature configuration.
///
/// The defaults reproduce the paper's prototype exactly: both §6.1
/// optimizations on, the queued-invalidation optimization off ("the
/// current implementation does not support the queued invalidation
/// optimization", §7.1), and sequential point-to-point invalidations
/// ("invalidations are processed sequentially rather than using a
/// broadcast or multicast", §7.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolConfig {
    /// Δ assignment for new segments.
    pub delta: DeltaPolicy,
    /// §6.1 optimization 1: "When a reader is upgraded to a writer, a new
    /// copy of the page is not sent; a notification acknowledges the
    /// write request."
    pub upgrade_optimization: bool,
    /// §6.1 optimization 2: "When write access is removed because readers
    /// require the page, the writer retains read access."
    pub downgrade_optimization: bool,
    /// §7.1 caveat 1: when fewer than `retry_threshold` remain in Δ, the
    /// clock site delays and then honors the invalidation instead of
    /// denying it. Off in the paper's prototype.
    pub queued_invalidation: bool,
    /// §7.1 caveat 2: deliver reader invalidations as one multicast round
    /// rather than sequential point-to-point exchanges. Off in the
    /// paper's prototype (Locus was point-to-point only).
    pub multicast_invalidation: bool,
    /// Timeout/retry machinery for lossy networks. `None` (the default,
    /// and the paper's assumption) trusts the transport completely: no
    /// timers are armed, no serials are stamped, behaviour is identical
    /// to the pre-fault-injection protocol.
    pub retry: Option<RetryPolicy>,
    /// Emit structured protocol trace events
    /// ([`crate::event::Action::Trace`]). Off by default: the disabled
    /// path constructs nothing and costs one branch per emission point,
    /// and enabling it never changes protocol behaviour — only what is
    /// observed.
    pub trace: bool,
    /// Ship grants as XOR diffs against the recipient's last-served
    /// copy where that is smaller than the full page. Off by default
    /// (the paper moves whole pages): every site then keeps a per-page
    /// shadow of the last transfer it exchanged with a peer, tags it
    /// with a content hash, and serves [`crate::ProtoMsg::PageGrantDelta`]
    /// to that peer; a receiver whose shadow is missing or stale nacks
    /// and is escalated to a full [`crate::ProtoMsg::PageGrant`].
    pub delta_grants: bool,
    /// Pages per relocatable library *shard*. 0 (the default) keeps one
    /// shard spanning the whole segment — the paper's per-segment
    /// library site, byte-identical to the unsharded protocol. A
    /// non-zero value splits each segment's library role into
    /// independent `(segment, page-range)` shards of this many pages,
    /// each with its own handoff epoch and forwarding stub, so hot
    /// ranges can migrate toward their traffic without dragging the
    /// rest of the segment along.
    pub shard_pages: u32,
    /// Which coherence protocol the engines speak. Default
    /// [`Coherence::Mirage`]; see [`Coherence::Tardis`] for the
    /// timestamp rival. Every other field except `retry` and `trace`
    /// is Mirage-specific and ignored under Tardis.
    pub coherence: Coherence,
    /// Tardis logical lease length: how far past `max(pts, wts)` a
    /// read grant extends `rts`. Longer leases mean fewer renewals but
    /// a bigger timestamp jump (and thus more expiries elsewhere) per
    /// write. Ignored under Mirage.
    pub ts_lease: u32,
}

impl ProtocolConfig {
    /// The paper's prototype configuration with the given uniform Δ.
    pub fn paper(delta: Delta) -> Self {
        Self { delta: DeltaPolicy::Uniform(delta), ..Self::default() }
    }

    /// Tardis timestamp coherence with the default lease length.
    pub fn tardis() -> Self {
        Self { coherence: Coherence::Tardis, ..Self::default() }
    }

    /// The Li–Hudak degenerate of Mirage: Δ = 0 everywhere and both
    /// §6.1 optimizations off, i.e. a plain fixed-distributed-manager
    /// write-invalidate protocol with no keepalive windows. Used as the
    /// second rival in the cross-protocol matrix.
    pub fn li() -> Self {
        Self {
            delta: DeltaPolicy::Uniform(Delta::ZERO),
            upgrade_optimization: false,
            downgrade_optimization: false,
            ..Self::default()
        }
    }
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        Self {
            delta: DeltaPolicy::default(),
            upgrade_optimization: true,
            downgrade_optimization: true,
            queued_invalidation: false,
            multicast_invalidation: false,
            retry: None,
            trace: false,
            delta_grants: false,
            shard_pages: 0,
            coherence: Coherence::default(),
            ts_lease: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_policy_covers_all_pages() {
        let p = DeltaPolicy::Uniform(Delta(5));
        assert_eq!(p.window(PageNum(0)), Delta(5));
        assert_eq!(p.window(PageNum(999)), Delta(5));
    }

    #[test]
    fn per_page_policy_uses_fallback() {
        let p = DeltaPolicy::PerPage { windows: vec![Delta(1), Delta(2)], fallback: Delta(9) };
        assert_eq!(p.window(PageNum(0)), Delta(1));
        assert_eq!(p.window(PageNum(1)), Delta(2));
        assert_eq!(p.window(PageNum(2)), Delta(9));
    }

    #[test]
    fn defaults_match_prototype() {
        let c = ProtocolConfig::default();
        assert!(c.upgrade_optimization);
        assert!(c.downgrade_optimization);
        assert!(!c.queued_invalidation);
        assert!(!c.multicast_invalidation);
        assert!(c.retry.is_none());
        assert!(!c.delta_grants);
        assert_eq!(c.coherence, Coherence::Mirage);
    }

    #[test]
    fn li_degenerate_turns_mirage_features_off() {
        let c = ProtocolConfig::li();
        assert_eq!(c.coherence, Coherence::Mirage);
        assert_eq!(c.delta, DeltaPolicy::Uniform(Delta::ZERO));
        assert!(!c.upgrade_optimization);
        assert!(!c.downgrade_optimization);
    }

    #[test]
    fn tardis_config_selects_tardis() {
        assert_eq!(ProtocolConfig::tardis().coherence, Coherence::Tardis);
    }

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RetryPolicy {
            base: SimDuration::from_millis(50),
            cap: SimDuration::from_millis(800),
        };
        assert_eq!(p.backoff(0), SimDuration::from_millis(50));
        assert_eq!(p.backoff(1), SimDuration::from_millis(100));
        assert_eq!(p.backoff(4), SimDuration::from_millis(800));
        // Past the cap — and past any shift overflow — stays capped.
        assert_eq!(p.backoff(10), SimDuration::from_millis(800));
        assert_eq!(p.backoff(63), SimDuration::from_millis(800));
    }
}
