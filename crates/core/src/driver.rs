//! The shared driver layer: how every runtime hosts a [`SiteEngine`].
//!
//! Before this layer existed each harness (simulator, host runtime,
//! baseline cost model, test cluster) re-implemented the same loop:
//! feed an [`Event`] to the engine, collect a `Vec<Action>`, and switch
//! on each action to perform sends, wakes, timers, and log appends. The
//! driver layer factors that loop out:
//!
//! * [`DriverOps`] is the runtime-facing trait — the four effects a
//!   harness must know how to perform;
//! * [`ProtocolDriver`] owns one engine plus one reusable
//!   [`ActionSink`], and turns events into `DriverOps` calls without
//!   allocating per event.
//!
//! Dispatch is two-phase on purpose: the simulator charges server CPU
//! per page grant served (Table 3 "serve processing") and must know the
//! grant count *before* it can timestamp the outgoing sends. So
//! [`ProtocolDriver::dispatch`] first fills the sink and returns a
//! [`DispatchSummary`]; [`ProtocolDriver::flush`] then hands the pending
//! actions to the runtime. Runtimes with no such ordering need can use
//! the one-shot [`ProtocolDriver::drive`].

use mirage_trace::TraceEvent;
use mirage_types::{
    Pid,
    SegmentId,
    SimTime,
    SiteId,
};

use crate::{
    config::ProtocolConfig,
    engine::SiteEngine,
    event::{
        Action,
        Event,
        RefLogEntry,
    },
    msg::ProtoMsg,
    sink::ActionSink,
    store::PageStore,
};

/// The effects a runtime performs on behalf of the engine.
///
/// One implementation per harness: the simulator turns `send` into a
/// timestamped in-flight message, the host runtime into bytes on a
/// channel; `wake` unblocks a faulted process (scheduler wake in the
/// simulator, mailbox CAS in the host runtime); and so on.
pub trait DriverOps {
    /// Transmit `msg` to site `to` (never the driver's own site).
    fn send(&mut self, to: SiteId, msg: ProtoMsg);
    /// Wake a process blocked in a page fault.
    fn wake(&mut self, pid: Pid);
    /// Arrange for [`Event::Timer`] with `token` at absolute time `at`.
    fn set_timer(&mut self, at: SimTime, token: u64);
    /// Append a reference-log entry (§9; library sites only).
    fn log(&mut self, entry: RefLogEntry);
    /// Record a protocol trace event. Only emitted when tracing is
    /// enabled in [`ProtocolConfig`]; the default discards it, so
    /// runtimes without an observability sink need no code.
    fn trace(&mut self, ev: TraceEvent) {
        let _ = ev;
    }
}

/// What one dispatch produced, available before the actions are flushed.
#[derive(Clone, Copy, Debug, Default)]
pub struct DispatchSummary {
    /// Total actions pending in the sink.
    pub actions: usize,
    /// `PageGrant` sends among them — the unit of server CPU charge.
    pub grants: u32,
}

/// One site's engine plus its reusable action buffer.
///
/// All runtimes drive the protocol through this type; the engine's raw
/// `handle` API remains available for tests that inspect action streams
/// directly.
#[derive(Debug)]
pub struct ProtocolDriver {
    engine: SiteEngine,
    sink: ActionSink,
    dispatched: u64,
}

impl ProtocolDriver {
    /// Wraps an existing engine.
    pub fn new(engine: SiteEngine) -> Self {
        Self { engine, sink: ActionSink::new(), dispatched: 0 }
    }

    /// Builds the engine and driver for `site` in one step.
    pub fn from_config(site: SiteId, config: ProtocolConfig) -> Self {
        Self::new(SiteEngine::new(site, config))
    }

    /// The driven site.
    pub fn site(&self) -> SiteId {
        self.engine.site()
    }

    /// Read access to the engine (diagnostics, invariant checks).
    pub fn engine(&self) -> &SiteEngine {
        &self.engine
    }

    /// Mutable access to the engine (segment registration).
    pub fn engine_mut(&mut self) -> &mut SiteEngine {
        &mut self.engine
    }

    /// Turns protocol trace emission on or off (see
    /// [`SiteEngine::set_tracing`]).
    pub fn set_tracing(&mut self, on: bool) {
        self.engine.set_tracing(on);
    }

    /// Phase 1: runs one event at `now`, buffering the resulting actions
    /// in the driver's sink. Any actions still pending from a previous
    /// dispatch are discarded, so callers must flush between events.
    pub fn dispatch(
        &mut self,
        ev: Event,
        now: SimTime,
        store: &mut dyn PageStore,
    ) -> DispatchSummary {
        self.dispatched += 1;
        self.engine.handle_into(ev, now, store, &mut self.sink);
        DispatchSummary { actions: self.sink.len(), grants: self.sink.grants() }
    }

    /// Total events dispatched through this driver since construction
    /// (faults, deliveries, and timer firings; throughput accounting).
    pub fn events_dispatched(&self) -> u64 {
        self.dispatched
    }

    /// The actions buffered by the last [`ProtocolDriver::dispatch`].
    pub fn pending(&self) -> &[Action] {
        self.sink.actions()
    }

    /// Phase 2: performs the buffered actions against `ops`, in order,
    /// leaving the sink empty (capacity retained).
    pub fn flush(&mut self, ops: &mut dyn DriverOps) {
        for action in self.sink.drain() {
            match action {
                Action::Send { to, msg } => ops.send(to, msg),
                Action::Wake { pid } => ops.wake(pid),
                Action::SetTimer { at, token } => ops.set_timer(at, token),
                Action::Log(entry) => ops.log(entry),
                Action::Trace(ev) => ops.trace(ev),
            }
        }
    }

    /// One-shot convenience: dispatch then flush.
    pub fn drive(
        &mut self,
        ev: Event,
        now: SimTime,
        store: &mut dyn PageStore,
        ops: &mut dyn DriverOps,
    ) -> DispatchSummary {
        let summary = self.dispatch(ev, now, store);
        self.flush(ops);
        summary
    }

    /// Registers a segment with both roles of the engine.
    pub fn register_segment(&mut self, seg: SegmentId, pages: usize) {
        self.engine.register_segment(seg, pages);
    }

    /// Models a site failure: the engine's volatile state (queues,
    /// rounds, timers) is discarded; its persistent tables survive. Any
    /// actions still buffered in the sink are lost with the site.
    pub fn crash(&mut self) {
        self.sink.begin(SimTime::ZERO);
        self.engine.crash();
    }

    /// Restarts a crashed site at `now`: the engine reconstructs its
    /// obligations from the persistent tables and buffers the resulting
    /// retransmissions, which the caller flushes like any dispatch.
    pub fn restart(&mut self, now: SimTime, store: &mut dyn PageStore) -> DispatchSummary {
        self.dispatched += 1;
        self.engine.restart_into(now, store, &mut self.sink);
        DispatchSummary { actions: self.sink.len(), grants: self.sink.grants() }
    }
}

/// A [`DriverOps`] that records effects into plain vectors.
///
/// Useful in tests and in runtimes that post-process effect batches
/// (the simulator's transmit scheduling works this way).
#[derive(Debug, Default)]
pub struct RecordedOps {
    /// Buffered sends, in emission order.
    pub sends: Vec<(SiteId, ProtoMsg)>,
    /// Buffered wakes, in emission order.
    pub wakes: Vec<Pid>,
    /// Buffered timers, in emission order.
    pub timers: Vec<(SimTime, u64)>,
    /// Buffered reference-log entries, in emission order.
    pub logs: Vec<RefLogEntry>,
    /// Buffered trace events, in emission order.
    pub traces: Vec<TraceEvent>,
}

impl RecordedOps {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears all buffers, retaining capacity.
    pub fn clear(&mut self) {
        self.sends.clear();
        self.wakes.clear();
        self.timers.clear();
        self.logs.clear();
        self.traces.clear();
    }

    /// True if nothing has been recorded since the last clear.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty()
            && self.wakes.is_empty()
            && self.timers.is_empty()
            && self.logs.is_empty()
            && self.traces.is_empty()
    }
}

impl DriverOps for RecordedOps {
    fn send(&mut self, to: SiteId, msg: ProtoMsg) {
        self.sends.push((to, msg));
    }
    fn wake(&mut self, pid: Pid) {
        self.wakes.push(pid);
    }
    fn set_timer(&mut self, at: SimTime, token: u64) {
        self.timers.push((at, token));
    }
    fn log(&mut self, entry: RefLogEntry) {
        self.logs.push(entry);
    }
    fn trace(&mut self, ev: TraceEvent) {
        self.traces.push(ev);
    }
}

#[cfg(test)]
mod tests {
    use mirage_mem::LocalSegment;
    use mirage_types::{
        Access,
        PageNum,
    };

    use super::*;
    use crate::store::InMemStore;

    #[allow(unused)]
    fn _driver_ops_is_object_safe(_: &mut dyn DriverOps) {}

    #[test]
    fn drive_routes_actions_to_ops() {
        let seg = SegmentId::new(SiteId(0), 1);
        let mut lib = ProtocolDriver::from_config(SiteId(0), ProtocolConfig::default());
        lib.register_segment(seg, 1);
        let mut lib_store = InMemStore::new();
        lib_store.add_segment(LocalSegment::fully_resident(seg, 1));

        let mut remote = ProtocolDriver::from_config(SiteId(1), ProtocolConfig::default());
        remote.register_segment(seg, 1);
        let mut remote_store = InMemStore::new();
        remote_store.add_segment(LocalSegment::absent(seg, 1));

        // Remote site faults: expect a PageRequest send toward the library.
        let mut ops = RecordedOps::new();
        let fault = Event::Fault {
            pid: Pid::new(SiteId(1), 1),
            seg,
            page: PageNum(0),
            access: Access::Read,
        };
        let summary = remote.drive(fault, SimTime::ZERO, &mut remote_store, &mut ops);
        assert_eq!(summary.actions, 1);
        assert_eq!(summary.grants, 0);
        assert_eq!(ops.sends.len(), 1);
        assert_eq!(ops.sends[0].0, SiteId(0));

        // Library serves it: the grant count is visible in the summary
        // before the actions are flushed.
        let (to, msg) = ops.sends.pop().unwrap();
        assert_eq!(to, lib.site());
        let deliver = Event::Deliver { from: SiteId(1), msg };
        let summary = lib.dispatch(deliver, SimTime::ZERO, &mut lib_store);
        assert_eq!(summary.grants, 1);
        assert!(lib.pending().iter().any(Action::is_page_grant));
        let mut ops = RecordedOps::new();
        lib.flush(&mut ops);
        // The dispatch logged the request (§9) and sent the grant.
        assert_eq!(ops.sends.len(), 1);
        assert_eq!(ops.logs.len(), 1);
        assert_eq!(ops.sends.len() + ops.logs.len(), summary.actions);
        assert!(lib.pending().is_empty());
    }
}
