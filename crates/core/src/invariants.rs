//! Global coherence invariants, checked by tests over any interleaving.
//!
//! §5.0 defines coherence: "a write to an address in a given segment is
//! always visible by all subsequent read operations to the same address,
//! independent of the machine location on which the read takes place.
//! Further, all writes to an address always preserve the latest value
//! written." Structurally: "only one site in a network will have a valid
//! writable copy of a given page at any instant, there may be many sites
//! simultaneously possessing readable copies … a given page will have
//! either one site acting as writer or multiple sites acting as readers."

use mirage_types::{
    PageNum,
    PageProt,
    SegmentId,
    SiteId,
};

use crate::store::PageStore;

/// A violation found by [`check_page`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// More than one site holds a write copy.
    MultipleWriters {
        /// The offending sites.
        sites: Vec<SiteId>,
    },
    /// A write copy coexists with read copies.
    WriterWithReaders {
        /// The writer site.
        writer: SiteId,
        /// The concurrent readers.
        readers: Vec<SiteId>,
    },
    /// Two resident copies disagree on the page bytes.
    DivergentCopies {
        /// First site of the disagreeing pair.
        a: SiteId,
        /// Second site of the disagreeing pair.
        b: SiteId,
    },
    /// No site holds the page at all — the data has been lost.
    PageLost,
}

/// Checks the structural coherence invariants for one page across all
/// sites' stores.
///
/// Call only at *quiescent* instants (no grants in flight): while a page
/// is being transferred it legitimately exists nowhere, and a reader's
/// copy may transiently differ from the writer's next value.
pub fn check_page(
    stores: &[(SiteId, &dyn PageStore)],
    seg: SegmentId,
    page: PageNum,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut writers = Vec::new();
    let mut readers = Vec::new();
    for &(site, store) in stores {
        match store.prot(seg, page) {
            PageProt::ReadWrite => writers.push(site),
            PageProt::Read => readers.push(site),
            PageProt::None => {}
        }
    }
    if writers.len() > 1 {
        violations.push(Violation::MultipleWriters { sites: writers.clone() });
    }
    if let (Some(&w), false) = (writers.first(), readers.is_empty()) {
        violations.push(Violation::WriterWithReaders { writer: w, readers: readers.clone() });
    }
    if writers.is_empty() && readers.is_empty() {
        violations.push(Violation::PageLost);
    }
    // All resident copies must be byte-identical at quiescence.
    let holders: Vec<SiteId> = writers.iter().chain(readers.iter()).copied().collect();
    if holders.len() > 1 {
        let reference = stores
            .iter()
            .find(|(s, _)| *s == holders[0])
            .map(|(_, st)| st.copy(seg, page))
            .expect("holder store present");
        for &h in &holders[1..] {
            let other = stores
                .iter()
                .find(|(s, _)| *s == h)
                .map(|(_, st)| st.copy(seg, page))
                .expect("holder store present");
            if other != reference {
                violations.push(Violation::DivergentCopies { a: holders[0], b: h });
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use mirage_mem::{
        LocalSegment,
        PageData,
    };
    use mirage_types::PageProt;

    use super::*;
    use crate::store::InMemStore;

    fn seg_id() -> SegmentId {
        SegmentId::new(SiteId(0), 1)
    }

    fn store_with(prot: PageProt, marker: u32) -> InMemStore {
        let mut st = InMemStore::new();
        st.add_segment(LocalSegment::absent(seg_id(), 1));
        if prot != PageProt::None {
            let mut d = PageData::zeroed();
            d.store_u32(0, marker);
            st.install(seg_id(), PageNum(0), d, prot);
        }
        st
    }

    #[test]
    fn single_writer_is_coherent() {
        let a = store_with(PageProt::ReadWrite, 1);
        let b = store_with(PageProt::None, 0);
        let v = check_page(&[(SiteId(0), &a), (SiteId(1), &b)], seg_id(), PageNum(0));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn multiple_readers_same_bytes_is_coherent() {
        let a = store_with(PageProt::Read, 7);
        let b = store_with(PageProt::Read, 7);
        let v = check_page(&[(SiteId(0), &a), (SiteId(1), &b)], seg_id(), PageNum(0));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn two_writers_flagged() {
        let a = store_with(PageProt::ReadWrite, 1);
        let b = store_with(PageProt::ReadWrite, 1);
        let v = check_page(&[(SiteId(0), &a), (SiteId(1), &b)], seg_id(), PageNum(0));
        assert!(matches!(v[0], Violation::MultipleWriters { .. }));
    }

    #[test]
    fn writer_plus_reader_flagged() {
        let a = store_with(PageProt::ReadWrite, 1);
        let b = store_with(PageProt::Read, 1);
        let v = check_page(&[(SiteId(0), &a), (SiteId(1), &b)], seg_id(), PageNum(0));
        assert!(v.iter().any(|x| matches!(x, Violation::WriterWithReaders { .. })));
    }

    #[test]
    fn divergent_readers_flagged() {
        let a = store_with(PageProt::Read, 1);
        let b = store_with(PageProt::Read, 2);
        let v = check_page(&[(SiteId(0), &a), (SiteId(1), &b)], seg_id(), PageNum(0));
        assert!(v.iter().any(|x| matches!(x, Violation::DivergentCopies { .. })));
    }

    #[test]
    fn lost_page_flagged() {
        let a = store_with(PageProt::None, 0);
        let b = store_with(PageProt::None, 0);
        let v = check_page(&[(SiteId(0), &a), (SiteId(1), &b)], seg_id(), PageNum(0));
        assert_eq!(v, vec![Violation::PageLost]);
    }
}
