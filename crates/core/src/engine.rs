//! [`SiteEngine`]: one site's protocol state machine.
//!
//! The engine combines the library role (for segments whose library site
//! is this site) and the using role (fault handling plus clock-site
//! duties, for every segment). It is strictly sans-IO: [`Event`]s in,
//! [`Action`]s out, with the current simulated time and the site's
//! [`PageStore`] passed per call.
//!
//! Messages a site sends to itself (library colocated with the
//! requester, §7.3) never become [`Action::Send`]s: they are delivered
//! through an internal loop-back queue within the same `handle` call, so
//! harness message counts reflect real network traffic only.

use std::collections::{
    HashMap,
    VecDeque,
};

use mirage_types::{
    Access,
    PageNum,
    Pid,
    SegmentId,
    SimTime,
    SiteId,
};

use crate::{
    config::ProtocolConfig,
    event::{
        Action,
        Event,
    },
    library::LibState,
    msg::ProtoMsg,
    store::PageStore,
    using::UseState,
};

/// What a pending timer is for.
#[derive(Clone, Debug)]
pub(crate) enum TimerKind {
    /// Library retry of a denied invalidation.
    LibraryRetry {
        /// Segment of the pending demand.
        seg: SegmentId,
        /// Page of the pending demand.
        page: PageNum,
    },
    /// Clock site delayed an invalidation to honor it at window expiry
    /// (the §7.1 queued-invalidation optimization).
    ClockDelayed {
        /// Segment of the delayed invalidation.
        seg: SegmentId,
        /// Page of the delayed invalidation.
        page: PageNum,
    },
}

/// The per-call working context: actions accumulated, local loop-back
/// deliveries pending, and time.
pub(crate) struct Ctx {
    pub(crate) now: SimTime,
    pub(crate) out: Vec<Action>,
    pub(crate) loopback: VecDeque<ProtoMsg>,
}

impl Ctx {
    fn new(now: SimTime) -> Self {
        Self { now, out: Vec::new(), loopback: VecDeque::new() }
    }
}

/// One site's combined protocol roles.
#[derive(Debug)]
pub struct SiteEngine {
    pub(crate) site: SiteId,
    pub(crate) config: ProtocolConfig,
    pub(crate) lib: LibState,
    pub(crate) usr: UseState,
    pub(crate) timers: HashMap<u64, TimerKind>,
    pub(crate) next_token: u64,
}

impl SiteEngine {
    /// Creates the engine for `site` with the given configuration.
    pub fn new(site: SiteId, config: ProtocolConfig) -> Self {
        Self {
            site,
            config,
            lib: LibState::default(),
            usr: UseState::default(),
            timers: HashMap::new(),
            next_token: 1,
        }
    }

    /// This engine's site.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// The active configuration.
    pub fn config(&self) -> &ProtocolConfig {
        &self.config
    }

    /// Registers a segment at this site.
    ///
    /// If this site is the segment's library site, the library role
    /// starts tracking its pages with the creating site as initial writer
    /// and clock site. The caller is responsible for giving the
    /// [`PageStore`] a fully-resident view at the library site and an
    /// absent view elsewhere.
    pub fn register_segment(&mut self, seg: SegmentId, pages: usize) {
        self.usr.register_segment(seg, pages, &self.config);
        if seg.library == self.site {
            let policy = self.config.delta.clone();
            self.lib.register_segment(seg, pages, self.site, &policy);
        }
    }

    /// Feeds one event through the engine, returning the actions the
    /// harness must carry out.
    pub fn handle(
        &mut self,
        ev: Event,
        now: SimTime,
        store: &mut dyn PageStore,
    ) -> Vec<Action> {
        let mut ctx = Ctx::new(now);
        match ev {
            Event::Fault { pid, seg, page, access } => {
                self.fault(pid, seg, page, access, store, &mut ctx);
            }
            Event::Deliver { from, msg } => {
                self.dispatch(from, msg, store, &mut ctx);
            }
            Event::Timer { token } => {
                self.timer_fired(token, store, &mut ctx);
            }
        }
        // Drain loop-back deliveries (self-sends) until quiescent.
        while let Some(msg) = ctx.loopback.pop_front() {
            let from = self.site;
            self.dispatch(from, msg, store, &mut ctx);
        }
        ctx.out
    }

    /// Routes a delivered message to the owning role.
    fn dispatch(
        &mut self,
        from: SiteId,
        msg: ProtoMsg,
        store: &mut dyn PageStore,
        ctx: &mut Ctx,
    ) {
        match msg {
            // Library-role inputs.
            ProtoMsg::PageRequest { seg, page, access, pid } => {
                self.lib_request(from, seg, page, access, pid, ctx);
            }
            ProtoMsg::InvalidateDeny { seg, page, wait } => {
                self.lib_denied(seg, page, wait, ctx);
            }
            ProtoMsg::InvalidateDone { seg, page, info } => {
                self.lib_done(seg, page, info, ctx);
            }
            // Using-role inputs (including clock duties).
            ProtoMsg::AddReaders { seg, page, readers, window } => {
                self.use_add_readers(seg, page, readers, window, store, ctx);
            }
            ProtoMsg::Invalidate { seg, page, demand, readers, window } => {
                self.use_invalidate(seg, page, demand, readers, window, store, ctx);
            }
            ProtoMsg::ReaderInvalidate { seg, page } => {
                self.use_reader_invalidate(from, seg, page, store, ctx);
            }
            ProtoMsg::ReaderInvalidateAck { seg, page } => {
                self.use_reader_ack(from, seg, page, store, ctx);
            }
            ProtoMsg::PageGrant { seg, page, access, window, data } => {
                self.use_grant(seg, page, access, window, data, store, ctx);
            }
            ProtoMsg::UpgradeGrant { seg, page, window } => {
                self.use_upgrade(seg, page, window, store, ctx);
            }
        }
    }

    fn timer_fired(&mut self, token: u64, store: &mut dyn PageStore, ctx: &mut Ctx) {
        let Some(kind) = self.timers.remove(&token) else {
            // Stale timer (already superseded); ignore.
            return;
        };
        match kind {
            TimerKind::LibraryRetry { seg, page } => {
                self.lib_retry(seg, page, ctx);
            }
            TimerKind::ClockDelayed { seg, page } => {
                self.use_delayed_invalidation(seg, page, store, ctx);
            }
        }
    }

    // ---- Shared emit helpers used by both roles. ----

    /// Sends a protocol message, looping back if the destination is this
    /// site.
    pub(crate) fn emit(&mut self, to: SiteId, msg: ProtoMsg, ctx: &mut Ctx) {
        if to == self.site {
            ctx.loopback.push_back(msg);
        } else {
            ctx.out.push(Action::Send { to, msg });
        }
    }

    /// Wakes a local process blocked in a fault.
    pub(crate) fn wake(&mut self, pid: Pid, ctx: &mut Ctx) {
        ctx.out.push(Action::Wake { pid });
    }

    /// Allocates a timer and emits the `SetTimer` action.
    pub(crate) fn set_timer(&mut self, at: SimTime, kind: TimerKind, ctx: &mut Ctx) -> u64 {
        let token = self.next_token;
        self.next_token += 1;
        self.timers.insert(token, kind);
        ctx.out.push(Action::SetTimer { at, token });
        token
    }

    /// Test/diagnostic access: the library's view of a page, if this site
    /// is the segment's library.
    pub fn library_view(
        &self,
        seg: SegmentId,
        page: PageNum,
    ) -> Option<crate::library::LibPageView> {
        self.lib.view(seg, page)
    }

    /// Test/diagnostic access: number of processes at this site blocked
    /// on the given page.
    pub fn waiter_count(&self, seg: SegmentId, page: PageNum) -> usize {
        self.usr.waiter_count(seg, page)
    }

    /// Test/diagnostic access: does this site believe a request is
    /// outstanding for the page?
    pub fn has_outstanding(&self, seg: SegmentId, page: PageNum, access: Access) -> bool {
        self.usr.has_outstanding(seg, page, access)
    }
}
