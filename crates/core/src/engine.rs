//! [`SiteEngine`]: one site's protocol state machine.
//!
//! The engine combines the library role (for segments whose library site
//! is this site) and the using role (fault handling plus clock-site
//! duties, for every segment). It is strictly sans-IO: [`Event`]s in,
//! [`Action`]s out, with the current simulated time and the site's
//! [`PageStore`] passed per call.
//!
//! Messages a site sends to itself (library colocated with the
//! requester, §7.3) never become [`Action::Send`]s: they are delivered
//! through the sink's loop-back queue within the same dispatch, so
//! harness message counts reflect real network traffic only.
//!
//! The hot path is [`SiteEngine::handle_into`], which writes actions
//! into a caller-owned [`ActionSink`] so steady-state event handling
//! allocates nothing; [`SiteEngine::handle`] is a convenience wrapper
//! that returns an owned `Vec` for tests and diagnostics.

use mirage_trace::{
    SpanId,
    TraceEvent,
    TraceKind,
};
use mirage_types::{
    Access,
    FastMap,
    PageNum,
    Pid,
    SegmentId,
    SimTime,
    SiteId,
};

use crate::{
    config::{
        Coherence,
        ProtocolConfig,
    },
    event::{
        Action,
        Event,
    },
    library::LibState,
    msg::ProtoMsg,
    sink::ActionSink,
    store::PageStore,
    tardis::TardisState,
    using::UseState,
};

/// What a pending timer is for.
#[derive(Clone, Debug)]
pub(crate) enum TimerKind {
    /// Library retry of a denied invalidation.
    LibraryRetry {
        /// Segment of the pending demand.
        seg: SegmentId,
        /// Page of the pending demand.
        page: PageNum,
    },
    /// Clock site delayed an invalidation to honor it at window expiry
    /// (the §7.1 queued-invalidation optimization).
    ClockDelayed {
        /// Segment of the delayed invalidation.
        seg: SegmentId,
        /// Page of the delayed invalidation.
        page: PageNum,
    },
    /// Retransmit an unanswered `PageRequest` (retry mode).
    RequestRetry {
        /// Segment of the outstanding request.
        seg: SegmentId,
        /// Page of the outstanding request.
        page: PageNum,
        /// Request-chain generation the timer was armed for; timers left
        /// over from a satisfied request no-op on mismatch instead of
        /// aliasing onto (and multiplying) the next request's chain.
        gen: u32,
    },
    /// Library: retransmit the in-flight `Invalidate` (retry mode).
    ServeRetry {
        /// Segment of the serve.
        seg: SegmentId,
        /// Page of the serve.
        page: PageNum,
        /// Demand serial the serve was started with; stale timers from a
        /// superseded serve no-op on mismatch.
        serial: u32,
    },
    /// Clock: retransmit `ReaderInvalidate`s to unacked victims of the
    /// in-flight round (retry mode).
    RoundRetry {
        /// Segment of the round.
        seg: SegmentId,
        /// Page of the round.
        page: PageNum,
        /// Demand serial of the round.
        serial: u32,
    },
    /// Clock: retransmit an unacked `InvalidateDone` (retry mode).
    DoneRetry {
        /// Segment of the completion.
        seg: SegmentId,
        /// Page of the completion.
        page: PageNum,
        /// Demand serial of the completion.
        serial: u32,
    },
    /// Granting site: retransmit an unacked write `PageGrant` (retry
    /// mode).
    GrantRetry {
        /// Segment of the grant.
        seg: SegmentId,
        /// Page of the grant.
        page: PageNum,
        /// Demand serial of the grant.
        serial: u32,
    },
    /// Former library: retransmit an unacked `LibraryHandoff` (retry
    /// mode; per-shard — each page-range shard hands off, and
    /// retransmits, independently).
    HandoffRetry {
        /// Segment whose shard is in flight.
        seg: SegmentId,
        /// Shard index within the segment.
        shard: u32,
    },
    /// Tardis requester: retransmit an unanswered `TsRead`/`TsWrite`
    /// (retry mode).
    TsRequestRetry {
        /// Segment of the outstanding request.
        seg: SegmentId,
        /// Page of the outstanding request.
        page: PageNum,
        /// Request-chain generation (stale timers no-op on mismatch).
        gen: u32,
    },
    /// Tardis home: retransmit an unanswered `TsRecall` (retry mode).
    TsRecallRetry {
        /// Segment of the recall.
        seg: SegmentId,
        /// Page of the recall.
        page: PageNum,
        /// Ownership serial the recall quotes.
        serial: u32,
    },
    /// Tardis owner: retransmit an unacked `TsWriteBack` (retry mode).
    TsWriteBackRetry {
        /// Segment of the write-back.
        seg: SegmentId,
        /// Page of the write-back.
        page: PageNum,
        /// Recall serial the write-back answers.
        serial: u32,
    },
}

/// One site's combined protocol roles.
#[derive(Debug)]
pub struct SiteEngine {
    pub(crate) site: SiteId,
    pub(crate) config: ProtocolConfig,
    pub(crate) lib: LibState,
    pub(crate) usr: UseState,
    /// Timestamp-coherence state; allocated only when the configuration
    /// selects [`Coherence::Tardis`], so a Mirage engine pays one
    /// `is_some` branch at the fault entry and nothing else.
    pub(crate) tardis: Option<Box<TardisState>>,
    pub(crate) timers: FastMap<u64, TimerKind>,
    pub(crate) next_token: u64,
    /// Site-local counter backing [`SpanId`] allocation. Only consumed
    /// when tracing is enabled, so the disabled path is untouched; it
    /// survives crashes (span ids stay unique across incarnations).
    pub(crate) next_span: u64,
}

impl SiteEngine {
    /// Creates the engine for `site` with the given configuration.
    pub fn new(site: SiteId, config: ProtocolConfig) -> Self {
        let tardis = match config.coherence {
            Coherence::Mirage => None,
            Coherence::Tardis => Some(Box::default()),
        };
        Self {
            site,
            config,
            lib: LibState::default(),
            usr: UseState::default(),
            tardis,
            timers: FastMap::default(),
            next_token: 1,
            next_span: 0,
        }
    }

    /// This engine's site.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// The active configuration.
    pub fn config(&self) -> &ProtocolConfig {
        &self.config
    }

    /// Registers a segment at this site.
    ///
    /// Every site provisions a library slot for the segment (the role
    /// is relocatable and may be handed to any site later), but the
    /// slot is *active* only at `seg.library`, where the role starts
    /// tracking the pages with the creating site as initial writer and
    /// clock site. The caller is responsible for giving the
    /// [`PageStore`] a fully-resident view at the library site and an
    /// absent view elsewhere.
    pub fn register_segment(&mut self, seg: SegmentId, pages: usize) {
        self.usr.register_segment(seg, pages, &self.config);
        let policy = self.config.delta.clone();
        let active = seg.library == self.site;
        let shard_pages = self.config.shard_pages;
        self.lib.register_segment(seg, pages, seg.library, active, &policy, shard_pages);
        self.ts_register_segment(seg, pages);
    }

    /// Feeds one event through the engine, accumulating the resulting
    /// actions in the caller-owned `sink` (which is reset first).
    ///
    /// This is the allocation-free hot path: with a warmed sink, handling
    /// a steady-state event performs no heap allocation.
    pub fn handle_into(
        &mut self,
        ev: Event,
        now: SimTime,
        store: &mut dyn PageStore,
        sink: &mut ActionSink,
    ) {
        sink.begin(now);
        match ev {
            Event::Fault { pid, seg, page, access } => {
                if self.tardis.is_some() {
                    self.ts_fault(pid, seg, page, access, store, sink);
                } else {
                    self.fault(pid, seg, page, access, store, sink);
                }
            }
            Event::Deliver { from, msg } => {
                self.dispatch(from, msg, store, sink);
            }
            Event::Timer { token } => {
                self.timer_fired(token, store, sink);
            }
            Event::MigrateLibrary { seg, to, shard } => match shard {
                Some(shard) => self.lib_migrate_shard(seg, shard, to, sink),
                None => self.lib_migrate(seg, to, sink),
            },
        }
        // Drain loop-back deliveries (self-sends) until quiescent.
        while let Some(msg) = sink.pop_loopback() {
            let from = self.site;
            self.dispatch(from, msg, store, sink);
        }
    }

    /// Feeds one event through the engine, returning the actions the
    /// harness must carry out.
    ///
    /// Convenience wrapper over [`SiteEngine::handle_into`] that
    /// allocates a fresh buffer per call; runtimes should hold a
    /// [`crate::ProtocolDriver`] (or their own [`ActionSink`]) instead.
    pub fn handle(
        &mut self,
        ev: Event,
        now: SimTime,
        store: &mut dyn PageStore,
    ) -> Vec<Action> {
        let mut sink = ActionSink::new();
        self.handle_into(ev, now, store, &mut sink);
        sink.take_actions()
    }

    /// Routes a delivered message to the owning role.
    fn dispatch(
        &mut self,
        from: SiteId,
        msg: ProtoMsg,
        store: &mut dyn PageStore,
        sink: &mut ActionSink,
    ) {
        match msg {
            // Library-role inputs.
            ProtoMsg::PageRequest { seg, page, access, pid, epoch: _ } => {
                // An *active* slot serves any request epoch — the request
                // reached the live role; the stamp only matters to stubs.
                self.lib_request(from, seg, page, access, pid, sink);
            }
            ProtoMsg::InvalidateDeny { seg, page, wait, serial } => {
                self.lib_denied(from, seg, page, wait, serial, sink);
            }
            ProtoMsg::InvalidateDone { seg, page, info, serial } => {
                self.lib_done(from, seg, page, info, serial, sink);
            }
            // Using-role inputs (including clock duties).
            ProtoMsg::AddReaders { seg, page, readers, window, serial } => {
                self.use_add_readers(seg, page, readers, window, serial, store, sink);
            }
            ProtoMsg::Invalidate { seg, page, demand, readers, window, serial } => {
                self.use_invalidate(seg, page, demand, readers, window, serial, store, sink);
            }
            ProtoMsg::ReaderInvalidate { seg, page, serial } => {
                self.use_reader_invalidate(from, seg, page, serial, store, sink);
            }
            ProtoMsg::ReaderInvalidateAck { seg, page, serial } => {
                self.use_reader_ack(from, seg, page, serial, store, sink);
            }
            ProtoMsg::PageGrant { seg, page, access, window, data, serial } => {
                self.use_grant(from, seg, page, access, window, data, serial, store, sink);
            }
            ProtoMsg::PageGrantDelta { seg, page, access, window, base_tag, diff, serial } => {
                self.use_grant_delta(
                    from, seg, page, access, window, base_tag, diff, serial, store, sink,
                );
            }
            ProtoMsg::UpgradeGrant { seg, page, window, serial } => {
                self.use_upgrade(from, seg, page, window, serial, store, sink);
            }
            ProtoMsg::DoneAck { seg, page, serial } => {
                self.use_done_ack(seg, page, serial);
            }
            ProtoMsg::GrantAck { seg, page, serial } => {
                self.use_grant_ack(from, seg, page, serial);
            }
            ProtoMsg::UpgradeNack { seg, page, serial } => {
                self.use_upgrade_nack(from, seg, page, serial, sink);
            }
            // Library-role handoff (relocation subprotocol).
            ProtoMsg::LibraryHandoff { seg, page: _, epoch, frozen } => {
                self.lib_adopt(from, seg, epoch, &frozen, sink);
            }
            ProtoMsg::LibraryHandoffAck { seg, page, epoch } => {
                self.lib_handoff_ack(from, seg, page, epoch, sink);
            }
            ProtoMsg::LibraryRedirect { seg, page, epoch, to } => {
                self.use_redirect(from, seg, page, epoch, to, sink);
            }
            // Tardis timestamp coherence (home side).
            ProtoMsg::TsRead { seg, page, pts, vts, serial } => {
                self.ts_home_request(from, seg, page, Access::Read, pts, vts, serial, sink);
            }
            ProtoMsg::TsWrite { seg, page, pts, vts, serial } => {
                self.ts_home_request(from, seg, page, Access::Write, pts, vts, serial, sink);
            }
            ProtoMsg::TsWriteBack { seg, page, wts, data, serial } => {
                self.ts_home_write_back(from, seg, page, wts, data, serial, sink);
            }
            // Tardis timestamp coherence (requester side).
            ProtoMsg::TsReadData { seg, page, wts, rts, data, serial } => {
                self.ts_read_data(from, seg, page, wts, rts, data, serial, store, sink);
            }
            ProtoMsg::TsRenew { seg, page, wts, rts, serial } => {
                self.ts_renew(from, seg, page, wts, rts, serial, store, sink);
            }
            ProtoMsg::TsWriteGrant { seg, page, wts, data, serial } => {
                self.ts_write_grant(from, seg, page, wts, data, serial, store, sink);
            }
            ProtoMsg::TsRecall { seg, page, serial } => {
                self.ts_recall(from, seg, page, serial, store, sink);
            }
            ProtoMsg::TsWriteBackAck { seg, page, serial } => {
                self.ts_write_back_ack(seg, page, serial);
            }
        }
    }

    fn timer_fired(&mut self, token: u64, store: &mut dyn PageStore, sink: &mut ActionSink) {
        let Some(kind) = self.timers.remove(&token) else {
            // Stale timer (already superseded); ignore.
            return;
        };
        match kind {
            TimerKind::LibraryRetry { seg, page } => {
                self.lib_retry(seg, page, sink);
            }
            TimerKind::ClockDelayed { seg, page } => {
                self.use_delayed_invalidation(seg, page, store, sink);
            }
            TimerKind::RequestRetry { seg, page, gen } => {
                self.use_request_retry(seg, page, gen, sink);
            }
            TimerKind::ServeRetry { seg, page, serial } => {
                self.lib_serve_retry(seg, page, serial, sink);
            }
            TimerKind::RoundRetry { seg, page, serial } => {
                self.use_round_retry(seg, page, serial, sink);
            }
            TimerKind::DoneRetry { seg, page, serial } => {
                self.use_done_retry(seg, page, serial, sink);
            }
            TimerKind::GrantRetry { seg, page, serial } => {
                self.use_grant_retry(seg, page, serial, sink);
            }
            TimerKind::HandoffRetry { seg, shard } => {
                self.lib_handoff_retry(seg, shard, sink);
            }
            TimerKind::TsRequestRetry { seg, page, gen } => {
                self.ts_request_retry(seg, page, gen, sink);
            }
            TimerKind::TsRecallRetry { seg, page, serial } => {
                self.ts_recall_retry(seg, page, serial, sink);
            }
            TimerKind::TsWriteBackRetry { seg, page, serial } => {
                self.ts_write_back_retry(seg, page, serial, sink);
            }
        }
    }

    // ---- Crash/restart (fault injection). ----

    /// The site halts: all volatile protocol state is discarded.
    ///
    /// What survives a crash is exactly what the paper's prototype keeps
    /// in kernel tables that the underlying OS recovers: page frames and
    /// protections (the [`PageStore`], owned by the caller), the aux
    /// table, the library's per-page records (readers/writer/clock/
    /// window/serial *and* the in-flight `serving` demand, which is
    /// journaled so a completion delivered after restart still updates
    /// the records), and the clock/granter retransmit obligations
    /// (`pending_done`, `pending_grant`) plus the stale-grant floors
    /// (`last_serial`, `min_install_serial`). Everything else — request
    /// queues, blocked waiters, in-flight invalidation rounds, deferred
    /// duties, timers, attempt counters — is volatile and lost; the
    /// retry machinery at the *other* sites reconstructs it.
    pub fn crash(&mut self) {
        self.timers.clear();
        self.lib.crash();
        self.usr.crash();
        self.ts_crash();
    }

    /// The site restarts with cold volatile state: re-arms retransmit
    /// timers for every persistent in-flight obligation and retransmits
    /// each immediately. Requires retry mode (a crash plan without a
    /// retry policy cannot recover).
    pub fn restart_into(
        &mut self,
        now: SimTime,
        store: &mut dyn PageStore,
        sink: &mut ActionSink,
    ) {
        sink.begin(now);
        self.lib_restart(sink);
        self.use_restart(sink);
        self.ts_restart(sink);
        while let Some(msg) = sink.pop_loopback() {
            let from = self.site;
            self.dispatch(from, msg, store, sink);
        }
    }

    // ---- Shared emit helpers used by both roles. ----

    /// Sends a protocol message, looping back if the destination is this
    /// site.
    pub(crate) fn emit(&mut self, to: SiteId, msg: ProtoMsg, sink: &mut ActionSink) {
        if to == self.site {
            sink.push_loopback(msg);
        } else {
            sink.push(Action::Send { to, msg });
        }
    }

    /// Wakes a local process blocked in a fault.
    pub(crate) fn wake(&mut self, pid: Pid, sink: &mut ActionSink) {
        sink.push(Action::Wake { pid });
    }

    /// Allocates a timer and emits the `SetTimer` action.
    pub(crate) fn set_timer(
        &mut self,
        at: SimTime,
        kind: TimerKind,
        sink: &mut ActionSink,
    ) -> u64 {
        let token = self.next_token;
        self.next_token += 1;
        self.timers.insert(token, kind);
        sink.push(Action::SetTimer { at, token });
        token
    }

    /// Arms a retransmit timer `backoff(attempt)` from now — a no-op
    /// unless retry mode is on.
    pub(crate) fn arm_retry(&mut self, attempt: u32, kind: TimerKind, sink: &mut ActionSink) {
        let Some(rp) = self.config.retry else {
            return;
        };
        let at = sink.now() + rp.backoff(attempt);
        self.set_timer(at, kind, sink);
    }

    // ---- Trace emission (observability layer). ----

    /// True when the configuration asks for protocol trace events.
    ///
    /// Every emission point is guarded by this flag; when it is false no
    /// [`TraceEvent`] is ever constructed, which is what keeps the hot
    /// path allocation-free and byte-identical to the untraced build.
    #[inline]
    pub(crate) fn tracing(&self) -> bool {
        self.config.trace
    }

    /// Turns protocol trace emission on or off after construction.
    /// Flipping the flag never changes protocol behaviour — only whether
    /// [`crate::event::Action::Trace`] actions are produced.
    pub fn set_tracing(&mut self, on: bool) {
        self.config.trace = on;
    }

    /// Allocates a fresh per-site causal span id.
    pub(crate) fn new_span(&mut self) -> SpanId {
        self.next_span += 1;
        SpanId::new(self.site, self.next_span)
    }

    /// Starts a trace event for this site at the sink's current time;
    /// callers fill in the optional fields and push it via
    /// [`SiteEngine::push_trace`].
    pub(crate) fn trace_event(
        &self,
        kind: TraceKind,
        span: u64,
        seg: SegmentId,
        page: PageNum,
        sink: &ActionSink,
    ) -> TraceEvent {
        let mut ev = TraceEvent::new(sink.now(), self.site, kind);
        ev.span = SpanId(span);
        ev.subject = Some((seg, page));
        ev
    }

    /// Buffers a trace event as an [`Action::Trace`].
    pub(crate) fn push_trace(&self, ev: TraceEvent, sink: &mut ActionSink) {
        sink.push(Action::Trace(ev));
    }

    /// Test/diagnostic access: the library's view of a page, if this site
    /// is the segment's library.
    pub fn library_view(
        &self,
        seg: SegmentId,
        page: PageNum,
    ) -> Option<crate::library::LibPageView> {
        self.lib.view(seg, page)
    }

    /// Test/diagnostic access: number of processes at this site blocked
    /// on the given page.
    pub fn waiter_count(&self, seg: SegmentId, page: PageNum) -> usize {
        if self.tardis.is_some() {
            return self.ts_waiter_count(seg, page);
        }
        self.usr.waiter_count(seg, page)
    }

    /// Test/diagnostic access: does this site believe a request is
    /// outstanding for the page?
    pub fn has_outstanding(&self, seg: SegmentId, page: PageNum, access: Access) -> bool {
        if self.tardis.is_some() {
            return self.ts_has_outstanding(seg, page, access);
        }
        self.usr.has_outstanding(seg, page, access)
    }

    // ---- Library-resolution API (relocatable library shards). ----

    /// The site this engine currently resolves as the library for the
    /// shard of `seg` covering `page`: the per-shard hint, which starts
    /// at `seg.library` and is updated by observed handoffs and
    /// redirects.
    pub fn resolved_library(&self, seg: SegmentId, page: PageNum) -> SiteId {
        self.usr.lib_hint(seg, page).map_or(seg.library, |(site, _)| site)
    }

    /// The handoff epoch of this site's library hint for the shard of
    /// `seg` covering `page` (0 until a handoff is observed).
    pub fn library_epoch(&self, seg: SegmentId, page: PageNum) -> u32 {
        self.usr.lib_hint(seg, page).map_or(0, |(_, epoch)| epoch)
    }

    /// Hot-path route lookup: `(library site, epoch)` for the shard
    /// covering `page`, in one segment resolution. Falls back to the
    /// static address for segments this site never registered (messages
    /// to them are dropped anyway).
    pub(crate) fn library_route(&self, seg: SegmentId, page: PageNum) -> (SiteId, u32) {
        self.usr.lib_hint(seg, page).unwrap_or((seg.library, 0))
    }

    /// Whether this site currently holds any shard of the (relocatable)
    /// library role for `seg`.
    pub fn library_active(&self, seg: SegmentId) -> bool {
        self.lib.is_any_active(seg)
    }

    /// Whether this site currently holds the library shard of `seg`
    /// covering `page`.
    pub fn library_active_for(&self, seg: SegmentId, page: PageNum) -> bool {
        self.lib.is_active(seg, page)
    }

    /// Number of page-range shards the library role of `seg` is split
    /// into at this site (1 when sharding is off).
    pub fn library_shards(&self, seg: SegmentId) -> usize {
        self.lib.shards(seg)
    }

    /// Diagnostic dump of the library record for one page — queue,
    /// epoch, pending serve — when this site holds the active role.
    /// Used by the simulator's stuck-pid report.
    pub fn library_debug(&self, seg: SegmentId, page: PageNum) -> Option<String> {
        self.lib.debug_page(seg, page)
    }
}
