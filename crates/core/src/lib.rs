//! The Mirage distributed shared memory coherence protocol.
//!
//! This crate is the paper's primary contribution, implemented as
//! **sans-IO state machines**: events in ([`Event`]), actions out
//! ([`Action`]), no clocks, no sockets, no threads. The same engine runs
//! under the deterministic discrete-event simulator (`mirage-sim`), under
//! the real-memory host runtime (`mirage-host`), and directly inside unit
//! and property tests.
//!
//! # Protocol recap (paper §6)
//!
//! * Each segment has one **library site** — the controller that queues
//!   and sequences page requests. Write requests are processed one at a
//!   time; read requests for the same page are **batched** and granted
//!   together.
//! * The **clock site** for a page is the site holding the most recent
//!   copy: the writer if one exists, otherwise one designated reader. The
//!   clock site enforces the **time window Δ**: an invalidation arriving
//!   before Δ expires is denied with the remaining wait time, and the
//!   library retries.
//! * **Coherence**: at most one write copy exists network-wide; read
//!   copies never coexist with the write copy; all readable copies are
//!   invalidated before a write completes.
//! * Optimization 1 (§6.1): a reader upgraded to writer receives a
//!   notification, not a page copy.
//! * Optimization 2 (§6.1): a writer losing the page to readers is
//!   downgraded to reader and retains its copy.
//!
//! # Structure
//!
//! * [`msg`] — the wire messages (with codecs);
//! * [`event`] — the [`Event`]/[`Action`] interface;
//! * [`config`] — tunables: Δ policy, both paper optimizations, the
//!   queued-invalidation optimization (paper §7.1 caveat 1), multicast
//!   invalidation (caveat 2);
//! * [`table1`] — the paper's Table 1 as an executable specification;
//! * [`store`] — the [`PageStore`] abstraction over a site's page frames;
//! * [`library`] — the library-site role;
//! * [`using`] — the using-site role, including clock-site duties;
//! * [`engine`] — [`SiteEngine`], one site's combined roles with local
//!   (loop-back) delivery so that colocated library/requester exchanges
//!   never touch the network, matching §7.3's observation that colocation
//!   beats remote library service;
//! * [`sink`] — [`ActionSink`], the caller-owned, reusable action buffer
//!   the engine writes into (the allocation-free hot path);
//! * [`driver`] — [`ProtocolDriver`] and [`DriverOps`], the shared layer
//!   every runtime (simulator, host, baseline, test harnesses) hosts the
//!   engine through;
//! * [`invariants`] — a global-view checker used by tests to assert the
//!   coherence invariants over any interleaving.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod driver;
pub mod engine;
pub mod event;
pub mod invariants;
pub mod library;
pub mod msg;
pub mod sink;
pub mod store;
pub mod table1;
pub mod tardis;
pub mod using;

pub use config::{
    Coherence,
    DeltaPolicy,
    ProtocolConfig,
    RetryPolicy,
};
pub use driver::{
    DispatchSummary,
    DriverOps,
    ProtocolDriver,
    RecordedOps,
};
pub use engine::SiteEngine;
pub use event::{
    Action,
    Event,
    RefLogEntry,
};
pub use msg::{
    Demand,
    DoneInfo,
    FrozenLibPage,
    FrozenLibrary,
    ProtoMsg,
};
pub use sink::ActionSink;
pub use store::{
    InMemStore,
    PageStore,
};
pub use tardis::{
    TardisState,
    TsHomeView,
};
