//! The page-frame storage abstraction.
//!
//! The protocol engine must move page *data* (grants carry bytes), but
//! where the bytes live differs by harness: the simulator keeps them in
//! [`mirage_mem::LocalSegment`]s; the host runtime keeps them in real
//! `mmap`ed memory guarded by `mprotect`. [`PageStore`] is the seam.

use mirage_mem::{
    LocalSegment,
    PageData,
};
use mirage_types::{
    PageNum,
    PageProt,
    SegmentId,
};

/// A site's page-frame storage, as seen by the protocol engine.
///
/// Implementations must apply protections such that subsequent local
/// accesses fault appropriately; the engine trusts `prot` to reflect what
/// the hardware (or simulated hardware) will enforce.
pub trait PageStore {
    /// Removes the local copy of a page, returning its bytes
    /// (invalidation: "unmaps and discards the page", §6.1).
    ///
    /// Returns a zeroed page if the page was not resident — which the
    /// engine never asks for; the fallback keeps the trait total.
    fn take(&mut self, seg: SegmentId, page: PageNum) -> PageData;

    /// Copies a resident page's bytes without removing it (used to grant
    /// read copies while retaining the local one).
    fn copy(&self, seg: SegmentId, page: PageNum) -> PageData;

    /// Installs a page received from the network with the given
    /// protection.
    fn install(&mut self, seg: SegmentId, page: PageNum, data: PageData, prot: PageProt);

    /// Changes the protection of a resident page (upgrade or downgrade).
    fn set_prot(&mut self, seg: SegmentId, page: PageNum, prot: PageProt);

    /// The current protection of a page at this site.
    fn prot(&self, seg: SegmentId, page: PageNum) -> PageProt;
}

/// A straightforward in-memory [`PageStore`] over [`LocalSegment`]s.
///
/// Used by the simulator and by the protocol unit/property tests.
///
/// Segments live in a plain vector searched linearly: a site maps a
/// handful of segments at most, and the lookup sits on the simulator's
/// per-access hot path, where a linear scan over one or two entries
/// beats hashing a `SegmentId` on every load and store.
#[derive(Debug, Default)]
pub struct InMemStore {
    segments: Vec<LocalSegment>,
}

impl InMemStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a segment view. The creating (library) site passes a
    /// fully-resident view; other sites pass an absent view. Replaces
    /// any existing view of the same segment.
    pub fn add_segment(&mut self, seg: LocalSegment) {
        match self.segments.iter_mut().find(|s| s.id() == seg.id()) {
            Some(slot) => *slot = seg,
            None => self.segments.push(seg),
        }
    }

    /// Direct access for harnesses that execute loads/stores.
    pub fn segment(&self, id: SegmentId) -> Option<&LocalSegment> {
        self.segments.iter().find(|s| s.id() == id)
    }

    /// Direct mutable access for harnesses that execute stores.
    pub fn segment_mut(&mut self, id: SegmentId) -> Option<&mut LocalSegment> {
        self.segments.iter_mut().find(|s| s.id() == id)
    }
}

impl PageStore for InMemStore {
    fn take(&mut self, seg: SegmentId, page: PageNum) -> PageData {
        self.segment_mut(seg).and_then(|s| s.invalidate(page)).unwrap_or_default()
    }

    fn copy(&self, seg: SegmentId, page: PageNum) -> PageData {
        self.segment(seg).and_then(|s| s.copy_out(page)).unwrap_or_default()
    }

    fn install(&mut self, seg: SegmentId, page: PageNum, data: PageData, prot: PageProt) {
        if let Some(s) = self.segment_mut(seg) {
            s.install(page, data, prot);
        }
    }

    fn set_prot(&mut self, seg: SegmentId, page: PageNum, prot: PageProt) {
        if let Some(s) = self.segment_mut(seg) {
            if prot == PageProt::None {
                s.invalidate(page);
            } else {
                s.set_prot(page, prot);
            }
        }
    }

    fn prot(&self, seg: SegmentId, page: PageNum) -> PageProt {
        self.segment(seg).map(|s| s.prot(page)).unwrap_or(PageProt::None)
    }
}

#[cfg(test)]
mod tests {
    use mirage_types::SiteId;

    use super::*;

    fn sid() -> SegmentId {
        SegmentId::new(SiteId(0), 1)
    }

    #[test]
    fn install_take_round_trip() {
        let mut st = InMemStore::new();
        st.add_segment(LocalSegment::absent(sid(), 2));
        let mut d = PageData::zeroed();
        d.store_u32(4, 99);
        st.install(sid(), PageNum(1), d, PageProt::Read);
        assert_eq!(st.prot(sid(), PageNum(1)), PageProt::Read);
        let taken = st.take(sid(), PageNum(1));
        assert_eq!(taken.load_u32(4), 99);
        assert_eq!(st.prot(sid(), PageNum(1)), PageProt::None);
    }

    #[test]
    fn copy_retains_residency() {
        let mut st = InMemStore::new();
        st.add_segment(LocalSegment::fully_resident(sid(), 1));
        let _ = st.copy(sid(), PageNum(0));
        assert_eq!(st.prot(sid(), PageNum(0)), PageProt::ReadWrite);
    }

    #[test]
    fn set_prot_none_discards_frame() {
        let mut st = InMemStore::new();
        st.add_segment(LocalSegment::fully_resident(sid(), 1));
        st.set_prot(sid(), PageNum(0), PageProt::None);
        assert_eq!(st.prot(sid(), PageNum(0)), PageProt::None);
        assert!(st.segment(sid()).unwrap().frame(PageNum(0)).is_none());
    }

    #[test]
    fn unknown_segment_is_benign() {
        let mut st = InMemStore::new();
        assert_eq!(st.prot(sid(), PageNum(0)), PageProt::None);
        let _ = st.take(sid(), PageNum(0));
        let _ = st.copy(sid(), PageNum(0));
    }
}
