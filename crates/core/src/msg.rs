//! Protocol wire messages.
//!
//! Short messages are headers only; [`ProtoMsg::PageGrant`] carries the
//! page in a 1024-byte buffer and is the only *large* message, matching
//! §7.2's accounting ("Three of these message are large responses (1024
//! bytes of data); the other 6 are short messages").

use mirage_mem::PageData;
use mirage_net::{
    costs::SizeClass,
    kind::MsgKind,
    message::Sized2,
    wire::Wire,
};
use mirage_types::{
    Access,
    Delta,
    MirageError,
    PageDiff,
    PageNum,
    Pid,
    Result,
    SegmentId,
    SimDuration,
    SiteId,
    SiteSet,
    PAGE_SIZE,
};

/// What an invalidation is demanded *for*: the request the library is
/// currently serving.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Demand {
    /// A site wants the sole write copy.
    Write {
        /// The requesting site.
        to: SiteId,
        /// True if the requester holds a read copy, enabling the §6.1
        /// upgrade optimization (Table 1: "possible upgrade if new writer
        /// is in old read set").
        upgrade: bool,
    },
    /// A batch of sites wants read copies.
    Read {
        /// The requesting sites (batched by the library).
        to: SiteSet,
    },
}

impl Demand {
    /// The access class being demanded.
    pub fn access(&self) -> Access {
        match self {
            Demand::Write { .. } => Access::Write,
            Demand::Read { .. } => Access::Read,
        }
    }
}

/// Completion report from the clock site to the library.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DoneInfo {
    /// True if the old writer kept a read copy (§6.1 optimization 2), so
    /// the library must include it in the new reader set.
    pub writer_downgraded: bool,
}

/// One page's frozen library record, as carried by a role handoff.
///
/// Exactly the state that survives a library crash (readers, writer,
/// clock, window, serial, the journaled serve) *plus* the request queue:
/// a handoff is a graceful freeze, so — unlike a crash — no requester
/// needs to retransmit to reconstruct its queue entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrozenLibPage {
    /// Sites holding read copies.
    pub readers: SiteSet,
    /// Site holding the write copy.
    pub writer: Option<SiteId>,
    /// The page's clock site.
    pub clock: SiteId,
    /// Queued, unserved requests in arrival order.
    pub queue: Vec<(SiteId, Access)>,
    /// The demand currently being served, if an invalidation is in
    /// flight.
    pub serving: Option<Demand>,
    /// The page's current (possibly adapted) window.
    pub window: Delta,
    /// The page's demand-serial high-water mark. Serials stay monotone
    /// across a handoff, so stale-grant floors at the using sites keep
    /// working unchanged in the new epoch.
    pub serial: u32,
}

/// One library shard's frozen state: a contiguous page range's records.
/// When sharding is off the single shard spans the segment and `start`
/// is page 0.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrozenLibrary {
    /// First page of the frozen range.
    pub start: PageNum,
    /// Per-page records for pages `start .. start + pages.len()`.
    pub pages: Vec<FrozenLibPage>,
}

/// The Mirage DSM protocol messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtoMsg {
    /// Requester → library: queue a request for a page (short).
    ///
    /// "a network message sent to the library site queueing a request for
    /// the page. The network message indicates whether a read or write
    /// copy of the page is required." (§6.1)
    PageRequest {
        /// Segment the page belongs to.
        seg: SegmentId,
        /// The faulting page.
        page: PageNum,
        /// Read or write copy.
        access: Access,
        /// Faulting process, recorded in the library's reference log
        /// (§9: "Each log entry contains the memory location, a
        /// timestamp, and the process identifier of the requester").
        pid: Pid,
        /// The sender's view of the segment's library epoch (0 until a
        /// handoff has happened). An active library serves any epoch;
        /// a forwarding stub uses its own (newer) epoch to redirect the
        /// sender.
        epoch: u32,
    },
    /// Library → clock site: additional readers joined while read copies
    /// are outstanding; grant them and note them for future invalidation
    /// (Table 1 row 1 — no clock check). Short.
    AddReaders {
        /// Segment.
        seg: SegmentId,
        /// Page.
        page: PageNum,
        /// The new readers to grant copies to.
        readers: SiteSet,
        /// The window to install at the new readers.
        window: Delta,
        /// Demand serial stamped on the resulting grants (retry mode;
        /// 0 when retry is disabled).
        serial: u32,
    },
    /// Library → clock site: invalidate the current copy so the demand
    /// can be satisfied (Table 1 rows 2–4). Short.
    Invalidate {
        /// Segment.
        seg: SegmentId,
        /// Page.
        page: PageNum,
        /// What the invalidation is for.
        demand: Demand,
        /// The library's authoritative reader set (the clock's own
        /// auxpte mask must agree; carried for robustness).
        readers: SiteSet,
        /// The window to install at the new holder(s); the library may
        /// retune it here (§8.0 dynamic tuning hook).
        window: Delta,
        /// Per-page demand serial. Monotone at the library; the clock
        /// echoes it in Deny/Done so a retransmitted completion cannot
        /// be mistaken for the current serve's. 0 when retry is
        /// disabled.
        serial: u32,
    },
    /// Clock site → library: Δ has not expired; retry after `wait`
    /// (short). "the clock site replies immediately with the amount of
    /// time the library must wait until the invalidation can be honored."
    InvalidateDeny {
        /// Segment.
        seg: SegmentId,
        /// Page.
        page: PageNum,
        /// Remaining window time the library must wait out.
        wait: SimDuration,
        /// Echo of the Invalidate's demand serial.
        serial: u32,
    },
    /// Clock site → library: the demand has been carried out; bookkeeping
    /// may be updated and the next queued request processed (short).
    InvalidateDone {
        /// Segment.
        seg: SegmentId,
        /// Page.
        page: PageNum,
        /// Outcome details.
        info: DoneInfo,
        /// Echo of the Invalidate's demand serial. In retry mode the
        /// clock retransmits this message until the library acks it
        /// with [`ProtoMsg::DoneAck`].
        serial: u32,
    },
    /// Clock site → another reader: discard your read copy (short).
    ReaderInvalidate {
        /// Segment.
        seg: SegmentId,
        /// Page.
        page: PageNum,
        /// Demand serial of the round. The victim records it as a floor
        /// on future grant installs: any grant stamped with an older
        /// serial is a stale retransmission and must not resurrect the
        /// copy this round just killed. 0 when retry is disabled.
        serial: u32,
    },
    /// Reader → clock site: copy discarded (short).
    ReaderInvalidateAck {
        /// Segment.
        seg: SegmentId,
        /// Page.
        page: PageNum,
        /// Echo of the ReaderInvalidate's serial, so an ack provoked by
        /// a stale duplicate invalidation cannot advance the round of a
        /// later serve. 0 when retry is disabled.
        serial: u32,
    },
    /// Storing site → requester: the page itself (LARGE — 1024-byte
    /// buffer carrying the 512-byte page). "the requested page is
    /// returned directly from the site which is storing it." (§6.0)
    PageGrant {
        /// Segment.
        seg: SegmentId,
        /// Page.
        page: PageNum,
        /// Granted as read or write copy.
        access: Access,
        /// Window to install with the page.
        window: Delta,
        /// The page itself, moved (never copied) from the storing site's
        /// frame into the message and from the message into the
        /// receiver's frame.
        data: PageData,
        /// Demand serial the grant satisfies. The receiver installs the
        /// page only if `serial >= min_install_serial`, deduping
        /// retransmitted grants and dropping stale ones. 0 when retry
        /// is disabled.
        serial: u32,
    },
    /// Clock/library → requester holding a read copy: you are now the
    /// writer; no data follows (short). §6.1 optimization 1.
    UpgradeGrant {
        /// Segment.
        seg: SegmentId,
        /// Page.
        page: PageNum,
        /// Window to install with the write copy.
        window: Delta,
        /// Demand serial, gated like a data grant: a delayed upgrade
        /// from an old serve must not re-promote a site that has since
        /// been downgraded or invalidated. 0 when retry is disabled.
        serial: u32,
    },
    /// Library → clock: completion report received; stop retransmitting
    /// it (short, retry mode only).
    DoneAck {
        /// Segment.
        seg: SegmentId,
        /// Page.
        page: PageNum,
        /// Echo of the InvalidateDone's serial.
        serial: u32,
    },
    /// Write-grant receiver → granting site: page installed (or the
    /// grant was recognized as stale); the granter may discard its
    /// retained copy (short, retry mode only).
    GrantAck {
        /// Segment.
        seg: SegmentId,
        /// Page.
        page: PageNum,
        /// Echo of the PageGrant's serial.
        serial: u32,
    },
    /// Upgrade receiver → granting site: the read copy this upgrade
    /// presumes never arrived, so there is no frame to promote; escalate
    /// to a full data-carrying grant (short, retry mode only).
    UpgradeNack {
        /// Segment.
        seg: SegmentId,
        /// Page.
        page: PageNum,
        /// Echo of the UpgradeGrant's serial.
        serial: u32,
    },
    /// Old library site → new library site: the segment's frozen library
    /// state (LARGE — carries every page's queue and copy map). The old
    /// site retransmits until [`ProtoMsg::LibraryHandoffAck`] arrives;
    /// the receiver deduplicates by epoch.
    LibraryHandoff {
        /// Segment whose library role is moving.
        seg: SegmentId,
        /// Anchor page for subject extraction (always page 0 — the
        /// handoff concerns the whole segment).
        page: PageNum,
        /// The new epoch the destination activates under (strictly
        /// greater than every previous epoch of the segment).
        epoch: u32,
        /// The frozen per-page records.
        frozen: FrozenLibrary,
    },
    /// New library site → old library site: handoff adopted (or
    /// recognized as a duplicate); stop retransmitting (short).
    LibraryHandoffAck {
        /// Segment.
        seg: SegmentId,
        /// Anchor page (always page 0).
        page: PageNum,
        /// Echo of the handoff's epoch.
        epoch: u32,
    },
    /// Forwarding stub → sender of an epoch-stale library-bound message:
    /// the library role moved; update your hint to `to` and re-resolve
    /// (short).
    LibraryRedirect {
        /// Segment.
        seg: SegmentId,
        /// The page of the message being redirected.
        page: PageNum,
        /// The stub's epoch. Receivers apply the redirect only if it is
        /// newer than their current hint, so crossed redirects cannot
        /// ping-pong a hint backwards.
        epoch: u32,
        /// Where the stub believes the library now lives (possibly
        /// itself a stub, which redirects again with a higher epoch).
        to: SiteId,
    },
    /// Storing site → requester: the page as an XOR diff against the
    /// copy this recipient was last served (delta-grant mode only;
    /// variable size, proportional to the bytes that changed). The
    /// receiver validates `base_tag` against its own shadow of that
    /// last transfer and answers with [`ProtoMsg::UpgradeNack`] if the
    /// base is unknown or stale, escalating to a full
    /// [`ProtoMsg::PageGrant`].
    PageGrantDelta {
        /// Segment.
        seg: SegmentId,
        /// Page.
        page: PageNum,
        /// Granted as read or write copy.
        access: Access,
        /// Window to install with the page.
        window: Delta,
        /// [`mirage_types::fnv64`] hash of the base page content the
        /// diff was computed against — the bytes of the last full or
        /// patched transfer between these two sites.
        base_tag: u64,
        /// Canonical XOR spans turning the base into the served page.
        diff: PageDiff,
        /// Demand serial the grant satisfies, gated exactly like a full
        /// grant's. 0 when retry is disabled.
        serial: u32,
    },
    /// Requester → home: read lease request (Tardis timestamp mode;
    /// short). Carries the requester's program timestamp so the home can
    /// extend the lease past it, and the version the requester already
    /// caches so an unchanged page can be renewed without data.
    TsRead {
        /// Segment.
        seg: SegmentId,
        /// Page.
        page: PageNum,
        /// The requester's program timestamp (logical).
        pts: u32,
        /// Version (`wts`) of the bytes the requester still holds, 0 if
        /// it holds none. When this matches the home's current `wts` the
        /// reply is a data-free [`ProtoMsg::TsRenew`].
        vts: u32,
        /// Per-site request serial (monotone; retransmits reuse it).
        serial: u32,
    },
    /// Requester → home: exclusive write request (Tardis mode; short).
    TsWrite {
        /// Segment.
        seg: SegmentId,
        /// Page.
        page: PageNum,
        /// The requester's program timestamp (logical).
        pts: u32,
        /// Version of the bytes the requester still holds (0 = none);
        /// a current-version holder is upgraded without data.
        vts: u32,
        /// Per-site request serial (monotone; retransmits reuse it).
        serial: u32,
    },
    /// Home → requester: the page with its logical lease (Tardis mode;
    /// LARGE). The copy may be read at any program timestamp up to
    /// `rts`; no invalidation will ever chase it.
    TsReadData {
        /// Segment.
        seg: SegmentId,
        /// Page.
        page: PageNum,
        /// Version (write timestamp) of the carried bytes.
        wts: u32,
        /// Lease end: the read timestamp reserved for this copy.
        rts: u32,
        /// The page itself.
        data: PageData,
        /// Echo of the request serial.
        serial: u32,
    },
    /// Home → requester: lease extension for the version the requester
    /// already caches (Tardis mode; short — the renewal that replaces
    /// invalidation fan-out).
    TsRenew {
        /// Segment.
        seg: SegmentId,
        /// Page.
        page: PageNum,
        /// Version being renewed (must match the cached copy's).
        wts: u32,
        /// Extended lease end.
        rts: u32,
        /// Echo of the request serial.
        serial: u32,
    },
    /// Home → requester: exclusive ownership at the bumped write
    /// timestamp (Tardis mode; LARGE when it carries the page, short
    /// when the requester's cached version is current and is upgraded
    /// in place).
    TsWriteGrant {
        /// Segment.
        seg: SegmentId,
        /// Page.
        page: PageNum,
        /// The new write timestamp (`max(wts, rts, pts) + 1`).
        wts: u32,
        /// The page, absent for an in-place upgrade.
        data: Option<PageData>,
        /// Echo of the request serial.
        serial: u32,
    },
    /// Home → current exclusive owner: surrender the dirty copy so the
    /// next request can be served (Tardis mode; short). Retransmitted
    /// until a matching [`ProtoMsg::TsWriteBack`] arrives.
    TsRecall {
        /// Segment.
        seg: SegmentId,
        /// Page.
        page: PageNum,
        /// Recall serial (the owner echoes it in the write-back).
        serial: u32,
    },
    /// Owner → home: the dirty page answering a recall, or a clean
    /// no-data confirmation when the owner (restarted after a crash)
    /// holds nothing newer than the home's master (Tardis mode; LARGE
    /// when dirty). Retransmitted until [`ProtoMsg::TsWriteBackAck`].
    TsWriteBack {
        /// Segment.
        seg: SegmentId,
        /// Page.
        page: PageNum,
        /// Version of the surrendered bytes.
        wts: u32,
        /// The dirty page, absent when the owner has nothing to return.
        data: Option<PageData>,
        /// Echo of the recall serial.
        serial: u32,
    },
    /// Home → owner: write-back received; the owner may discard its
    /// retained copy and stop retransmitting (Tardis mode; short).
    TsWriteBackAck {
        /// Segment.
        seg: SegmentId,
        /// Page.
        page: PageNum,
        /// Echo of the recall serial.
        serial: u32,
    },
}

impl ProtoMsg {
    /// The (segment, page) the message concerns.
    pub fn subject(&self) -> (SegmentId, PageNum) {
        match self {
            ProtoMsg::PageRequest { seg, page, .. }
            | ProtoMsg::AddReaders { seg, page, .. }
            | ProtoMsg::Invalidate { seg, page, .. }
            | ProtoMsg::InvalidateDeny { seg, page, .. }
            | ProtoMsg::InvalidateDone { seg, page, .. }
            | ProtoMsg::ReaderInvalidate { seg, page, .. }
            | ProtoMsg::ReaderInvalidateAck { seg, page, .. }
            | ProtoMsg::PageGrant { seg, page, .. }
            | ProtoMsg::UpgradeGrant { seg, page, .. }
            | ProtoMsg::DoneAck { seg, page, .. }
            | ProtoMsg::GrantAck { seg, page, .. }
            | ProtoMsg::UpgradeNack { seg, page, .. }
            | ProtoMsg::LibraryHandoff { seg, page, .. }
            | ProtoMsg::LibraryHandoffAck { seg, page, .. }
            | ProtoMsg::LibraryRedirect { seg, page, .. }
            | ProtoMsg::PageGrantDelta { seg, page, .. }
            | ProtoMsg::TsRead { seg, page, .. }
            | ProtoMsg::TsWrite { seg, page, .. }
            | ProtoMsg::TsReadData { seg, page, .. }
            | ProtoMsg::TsRenew { seg, page, .. }
            | ProtoMsg::TsWriteGrant { seg, page, .. }
            | ProtoMsg::TsRecall { seg, page, .. }
            | ProtoMsg::TsWriteBack { seg, page, .. }
            | ProtoMsg::TsWriteBackAck { seg, page, .. } => (*seg, *page),
        }
    }

    /// The message's kind, for per-kind instrumentation counters.
    pub fn kind(&self) -> MsgKind {
        match self {
            ProtoMsg::PageRequest { .. } => MsgKind::PageRequest,
            ProtoMsg::AddReaders { .. } => MsgKind::AddReaders,
            ProtoMsg::Invalidate { .. } => MsgKind::Invalidate,
            ProtoMsg::InvalidateDeny { .. } => MsgKind::InvalidateDeny,
            ProtoMsg::InvalidateDone { .. } => MsgKind::InvalidateDone,
            ProtoMsg::ReaderInvalidate { .. } => MsgKind::ReaderInvalidate,
            ProtoMsg::ReaderInvalidateAck { .. } => MsgKind::ReaderInvalidateAck,
            ProtoMsg::PageGrant { .. } => MsgKind::PageGrant,
            ProtoMsg::UpgradeGrant { .. } => MsgKind::UpgradeGrant,
            ProtoMsg::DoneAck { .. } => MsgKind::DoneAck,
            ProtoMsg::GrantAck { .. } => MsgKind::GrantAck,
            ProtoMsg::UpgradeNack { .. } => MsgKind::UpgradeNack,
            ProtoMsg::LibraryHandoff { .. } => MsgKind::LibraryHandoff,
            ProtoMsg::LibraryHandoffAck { .. } => MsgKind::LibraryHandoffAck,
            ProtoMsg::LibraryRedirect { .. } => MsgKind::LibraryRedirect,
            ProtoMsg::PageGrantDelta { .. } => MsgKind::PageGrantDelta,
            ProtoMsg::TsRead { .. } => MsgKind::TsRead,
            ProtoMsg::TsWrite { .. } => MsgKind::TsWrite,
            ProtoMsg::TsReadData { .. } => MsgKind::TsReadData,
            ProtoMsg::TsRenew { .. } => MsgKind::TsRenew,
            ProtoMsg::TsWriteGrant { .. } => MsgKind::TsWriteGrant,
            ProtoMsg::TsRecall { .. } => MsgKind::TsRecall,
            ProtoMsg::TsWriteBack { .. } => MsgKind::TsWriteBack,
            ProtoMsg::TsWriteBackAck { .. } => MsgKind::TsWriteBackAck,
        }
    }

    /// Payload bytes of a delta grant as charged by the size-aware cost
    /// model and compared against a full grant by the sender: the
    /// 8-byte base tag plus the encoded diff spans.
    pub fn delta_payload_bytes(diff: &PageDiff) -> usize {
        8 + diff.wire_size()
    }

    /// Payload bytes of a full [`ProtoMsg::PageGrant`]: the length
    /// prefix plus the page itself. A delta is only worth sending when
    /// its payload is strictly smaller than this.
    pub const FULL_GRANT_PAYLOAD_BYTES: usize = 4 + PAGE_SIZE;

    /// A short human tag for instrumentation.
    pub fn tag(&self) -> &'static str {
        self.kind().name()
    }
}

impl Sized2 for ProtoMsg {
    fn size_class(&self) -> SizeClass {
        match self {
            ProtoMsg::PageGrant { .. }
            | ProtoMsg::LibraryHandoff { .. }
            | ProtoMsg::TsReadData { .. } => SizeClass::Large,
            ProtoMsg::PageGrantDelta { diff, .. } => {
                SizeClass::Bytes(ProtoMsg::delta_payload_bytes(diff) as u32)
            }
            // A timestamp grant or write-back is large exactly when it
            // carries the page; the data-free forms (in-place upgrade,
            // clean write-back) are headers only.
            ProtoMsg::TsWriteGrant { data, .. } | ProtoMsg::TsWriteBack { data, .. } => {
                if data.is_some() {
                    SizeClass::Large
                } else {
                    SizeClass::Short
                }
            }
            _ => SizeClass::Short,
        }
    }
}

/// Frames one page the way [`ProtoMsg::PageGrant`] does: a u32 length
/// prefix (always `PAGE_SIZE`) followed by the bytes.
fn encode_page(data: &PageData, buf: &mut Vec<u8>) {
    (PAGE_SIZE as u32).encode(buf);
    buf.extend_from_slice(data.as_bytes());
}

/// Decodes one framed page, rejecting any length but `PAGE_SIZE`.
fn decode_page(buf: &mut &[u8]) -> Result<PageData> {
    let len = u32::decode(buf)? as usize;
    if len != PAGE_SIZE {
        return Err(MirageError::Codec("page frame must carry one page"));
    }
    if buf.len() < len {
        return Err(MirageError::Codec("truncated message"));
    }
    let (head, rest) = buf.split_at(len);
    let data = PageData::from_bytes(head);
    *buf = rest;
    Ok(data)
}

/// Frames an optional page: a canonical 0/1 presence byte, then the
/// framed page when present. Any other presence byte is rejected.
fn encode_opt_page(data: &Option<PageData>, buf: &mut Vec<u8>) {
    match data {
        Some(d) => {
            buf.push(1);
            encode_page(d, buf);
        }
        None => buf.push(0),
    }
}

fn decode_opt_page(buf: &mut &[u8]) -> Result<Option<PageData>> {
    match u8::decode(buf)? {
        0 => Ok(None),
        1 => Ok(Some(decode_page(buf)?)),
        _ => Err(MirageError::Codec("bad optional-page presence byte")),
    }
}

impl Wire for Demand {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Demand::Write { to, upgrade } => {
                buf.push(0);
                to.encode(buf);
                buf.push(u8::from(*upgrade));
            }
            Demand::Read { to } => {
                buf.push(1);
                to.encode(buf);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        match u8::decode(buf)? {
            0 => {
                let to = SiteId::decode(buf)?;
                let upgrade = u8::decode(buf)? != 0;
                Ok(Demand::Write { to, upgrade })
            }
            1 => Ok(Demand::Read { to: SiteSet::decode(buf)? }),
            _ => Err(MirageError::Codec("bad Demand discriminant")),
        }
    }
}

impl Wire for DoneInfo {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(self.writer_downgraded));
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        Ok(DoneInfo { writer_downgraded: u8::decode(buf)? != 0 })
    }
}

impl Wire for FrozenLibPage {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.readers.encode(buf);
        self.writer.encode(buf);
        self.clock.encode(buf);
        (self.queue.len() as u32).encode(buf);
        for (site, access) in &self.queue {
            site.encode(buf);
            access.encode(buf);
        }
        self.serving.encode(buf);
        self.window.encode(buf);
        self.serial.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        let readers = SiteSet::decode(buf)?;
        let writer = Option::<SiteId>::decode(buf)?;
        let clock = SiteId::decode(buf)?;
        let len = u32::decode(buf)? as usize;
        // Each queue entry is at least 3 bytes on the wire; reject a
        // length prefix the remaining buffer cannot possibly satisfy
        // before allocating.
        if buf.len() < len.saturating_mul(3) {
            return Err(MirageError::Codec("truncated message"));
        }
        let mut queue = Vec::with_capacity(len);
        for _ in 0..len {
            let site = SiteId::decode(buf)?;
            let access = Access::decode(buf)?;
            queue.push((site, access));
        }
        Ok(FrozenLibPage {
            readers,
            writer,
            clock,
            queue,
            serving: Option::<Demand>::decode(buf)?,
            window: Delta::decode(buf)?,
            serial: u32::decode(buf)?,
        })
    }
}

impl Wire for FrozenLibrary {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.start.encode(buf);
        (self.pages.len() as u32).encode(buf);
        for p in &self.pages {
            p.encode(buf);
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        let start = PageNum::decode(buf)?;
        let len = u32::decode(buf)? as usize;
        // A frozen page is at least 22 bytes; guard the allocation.
        if buf.len() < len.saturating_mul(22) {
            return Err(MirageError::Codec("truncated message"));
        }
        let mut pages = Vec::with_capacity(len);
        for _ in 0..len {
            pages.push(FrozenLibPage::decode(buf)?);
        }
        Ok(FrozenLibrary { start, pages })
    }
}

impl Wire for ProtoMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ProtoMsg::PageRequest { seg, page, access, pid, epoch } => {
                buf.push(0);
                seg.encode(buf);
                page.encode(buf);
                access.encode(buf);
                pid.encode(buf);
                epoch.encode(buf);
            }
            ProtoMsg::AddReaders { seg, page, readers, window, serial } => {
                buf.push(1);
                seg.encode(buf);
                page.encode(buf);
                readers.encode(buf);
                window.encode(buf);
                serial.encode(buf);
            }
            ProtoMsg::Invalidate { seg, page, demand, readers, window, serial } => {
                buf.push(2);
                seg.encode(buf);
                page.encode(buf);
                demand.encode(buf);
                readers.encode(buf);
                window.encode(buf);
                serial.encode(buf);
            }
            ProtoMsg::InvalidateDeny { seg, page, wait, serial } => {
                buf.push(3);
                seg.encode(buf);
                page.encode(buf);
                wait.encode(buf);
                serial.encode(buf);
            }
            ProtoMsg::InvalidateDone { seg, page, info, serial } => {
                buf.push(4);
                seg.encode(buf);
                page.encode(buf);
                info.encode(buf);
                serial.encode(buf);
            }
            ProtoMsg::ReaderInvalidate { seg, page, serial } => {
                buf.push(5);
                seg.encode(buf);
                page.encode(buf);
                serial.encode(buf);
            }
            ProtoMsg::ReaderInvalidateAck { seg, page, serial } => {
                buf.push(6);
                seg.encode(buf);
                page.encode(buf);
                serial.encode(buf);
            }
            ProtoMsg::PageGrant { seg, page, access, window, data, serial } => {
                buf.push(7);
                seg.encode(buf);
                page.encode(buf);
                access.encode(buf);
                window.encode(buf);
                serial.encode(buf);
                // Same layout a `Vec<u8>` used: u32 length prefix plus the
                // bytes. (`Wire` and `PageData` live in unrelated crates,
                // so the page is framed here rather than via an impl.)
                (PAGE_SIZE as u32).encode(buf);
                buf.extend_from_slice(data.as_bytes());
            }
            ProtoMsg::UpgradeGrant { seg, page, window, serial } => {
                buf.push(8);
                seg.encode(buf);
                page.encode(buf);
                window.encode(buf);
                serial.encode(buf);
            }
            ProtoMsg::DoneAck { seg, page, serial } => {
                buf.push(9);
                seg.encode(buf);
                page.encode(buf);
                serial.encode(buf);
            }
            ProtoMsg::GrantAck { seg, page, serial } => {
                buf.push(10);
                seg.encode(buf);
                page.encode(buf);
                serial.encode(buf);
            }
            ProtoMsg::UpgradeNack { seg, page, serial } => {
                buf.push(11);
                seg.encode(buf);
                page.encode(buf);
                serial.encode(buf);
            }
            ProtoMsg::LibraryHandoff { seg, page, epoch, frozen } => {
                buf.push(12);
                seg.encode(buf);
                page.encode(buf);
                epoch.encode(buf);
                frozen.encode(buf);
            }
            ProtoMsg::LibraryHandoffAck { seg, page, epoch } => {
                buf.push(13);
                seg.encode(buf);
                page.encode(buf);
                epoch.encode(buf);
            }
            ProtoMsg::LibraryRedirect { seg, page, epoch, to } => {
                buf.push(14);
                seg.encode(buf);
                page.encode(buf);
                epoch.encode(buf);
                to.encode(buf);
            }
            ProtoMsg::PageGrantDelta { seg, page, access, window, base_tag, diff, serial } => {
                buf.push(15);
                seg.encode(buf);
                page.encode(buf);
                access.encode(buf);
                window.encode(buf);
                serial.encode(buf);
                base_tag.encode(buf);
                diff.encode(buf);
            }
            ProtoMsg::TsRead { seg, page, pts, vts, serial } => {
                buf.push(16);
                seg.encode(buf);
                page.encode(buf);
                pts.encode(buf);
                vts.encode(buf);
                serial.encode(buf);
            }
            ProtoMsg::TsWrite { seg, page, pts, vts, serial } => {
                buf.push(17);
                seg.encode(buf);
                page.encode(buf);
                pts.encode(buf);
                vts.encode(buf);
                serial.encode(buf);
            }
            ProtoMsg::TsReadData { seg, page, wts, rts, data, serial } => {
                buf.push(18);
                seg.encode(buf);
                page.encode(buf);
                wts.encode(buf);
                rts.encode(buf);
                serial.encode(buf);
                encode_page(data, buf);
            }
            ProtoMsg::TsRenew { seg, page, wts, rts, serial } => {
                buf.push(19);
                seg.encode(buf);
                page.encode(buf);
                wts.encode(buf);
                rts.encode(buf);
                serial.encode(buf);
            }
            ProtoMsg::TsWriteGrant { seg, page, wts, data, serial } => {
                buf.push(20);
                seg.encode(buf);
                page.encode(buf);
                wts.encode(buf);
                serial.encode(buf);
                encode_opt_page(data, buf);
            }
            ProtoMsg::TsRecall { seg, page, serial } => {
                buf.push(21);
                seg.encode(buf);
                page.encode(buf);
                serial.encode(buf);
            }
            ProtoMsg::TsWriteBack { seg, page, wts, data, serial } => {
                buf.push(22);
                seg.encode(buf);
                page.encode(buf);
                wts.encode(buf);
                serial.encode(buf);
                encode_opt_page(data, buf);
            }
            ProtoMsg::TsWriteBackAck { seg, page, serial } => {
                buf.push(23);
                seg.encode(buf);
                page.encode(buf);
                serial.encode(buf);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self> {
        let disc = u8::decode(buf)?;
        let seg = SegmentId::decode(buf)?;
        let page = PageNum::decode(buf)?;
        Ok(match disc {
            0 => ProtoMsg::PageRequest {
                seg,
                page,
                access: Access::decode(buf)?,
                pid: Pid::decode(buf)?,
                epoch: u32::decode(buf)?,
            },
            1 => ProtoMsg::AddReaders {
                seg,
                page,
                readers: SiteSet::decode(buf)?,
                window: Delta::decode(buf)?,
                serial: u32::decode(buf)?,
            },
            2 => ProtoMsg::Invalidate {
                seg,
                page,
                demand: Demand::decode(buf)?,
                readers: SiteSet::decode(buf)?,
                window: Delta::decode(buf)?,
                serial: u32::decode(buf)?,
            },
            3 => ProtoMsg::InvalidateDeny {
                seg,
                page,
                wait: SimDuration::decode(buf)?,
                serial: u32::decode(buf)?,
            },
            4 => ProtoMsg::InvalidateDone {
                seg,
                page,
                info: DoneInfo::decode(buf)?,
                serial: u32::decode(buf)?,
            },
            5 => ProtoMsg::ReaderInvalidate { seg, page, serial: u32::decode(buf)? },
            6 => ProtoMsg::ReaderInvalidateAck { seg, page, serial: u32::decode(buf)? },
            7 => {
                let access = Access::decode(buf)?;
                let window = Delta::decode(buf)?;
                let serial = u32::decode(buf)?;
                let len = u32::decode(buf)? as usize;
                if len != PAGE_SIZE {
                    return Err(MirageError::Codec("page grant must carry one page"));
                }
                if buf.len() < len {
                    return Err(MirageError::Codec("truncated message"));
                }
                let (head, rest) = buf.split_at(len);
                let data = PageData::from_bytes(head);
                *buf = rest;
                ProtoMsg::PageGrant { seg, page, access, window, data, serial }
            }
            8 => ProtoMsg::UpgradeGrant {
                seg,
                page,
                window: Delta::decode(buf)?,
                serial: u32::decode(buf)?,
            },
            9 => ProtoMsg::DoneAck { seg, page, serial: u32::decode(buf)? },
            10 => ProtoMsg::GrantAck { seg, page, serial: u32::decode(buf)? },
            11 => ProtoMsg::UpgradeNack { seg, page, serial: u32::decode(buf)? },
            12 => ProtoMsg::LibraryHandoff {
                seg,
                page,
                epoch: u32::decode(buf)?,
                frozen: FrozenLibrary::decode(buf)?,
            },
            13 => ProtoMsg::LibraryHandoffAck { seg, page, epoch: u32::decode(buf)? },
            14 => ProtoMsg::LibraryRedirect {
                seg,
                page,
                epoch: u32::decode(buf)?,
                to: SiteId::decode(buf)?,
            },
            15 => ProtoMsg::PageGrantDelta {
                seg,
                page,
                access: Access::decode(buf)?,
                window: Delta::decode(buf)?,
                serial: u32::decode(buf)?,
                base_tag: u64::decode(buf)?,
                diff: PageDiff::decode(buf)?,
            },
            16 => ProtoMsg::TsRead {
                seg,
                page,
                pts: u32::decode(buf)?,
                vts: u32::decode(buf)?,
                serial: u32::decode(buf)?,
            },
            17 => ProtoMsg::TsWrite {
                seg,
                page,
                pts: u32::decode(buf)?,
                vts: u32::decode(buf)?,
                serial: u32::decode(buf)?,
            },
            18 => ProtoMsg::TsReadData {
                seg,
                page,
                wts: u32::decode(buf)?,
                rts: u32::decode(buf)?,
                serial: u32::decode(buf)?,
                data: decode_page(buf)?,
            },
            19 => ProtoMsg::TsRenew {
                seg,
                page,
                wts: u32::decode(buf)?,
                rts: u32::decode(buf)?,
                serial: u32::decode(buf)?,
            },
            20 => ProtoMsg::TsWriteGrant {
                seg,
                page,
                wts: u32::decode(buf)?,
                serial: u32::decode(buf)?,
                data: decode_opt_page(buf)?,
            },
            21 => ProtoMsg::TsRecall { seg, page, serial: u32::decode(buf)? },
            22 => ProtoMsg::TsWriteBack {
                seg,
                page,
                wts: u32::decode(buf)?,
                serial: u32::decode(buf)?,
                data: decode_opt_page(buf)?,
            },
            23 => ProtoMsg::TsWriteBackAck { seg, page, serial: u32::decode(buf)? },
            _ => return Err(MirageError::Codec("bad ProtoMsg discriminant")),
        })
    }
}

#[cfg(test)]
mod tests {
    use mirage_net::wire::{
        from_bytes,
        to_bytes,
    };
    use mirage_types::PAGE_SIZE;

    use super::*;

    fn seg() -> SegmentId {
        SegmentId::new(SiteId(0), 1)
    }

    fn all_messages() -> Vec<ProtoMsg> {
        vec![
            ProtoMsg::PageRequest {
                seg: seg(),
                page: PageNum(3),
                access: Access::Write,
                pid: Pid::new(SiteId(1), 7),
                epoch: 2,
            },
            ProtoMsg::AddReaders {
                seg: seg(),
                page: PageNum(0),
                readers: [SiteId(1), SiteId(2)].into_iter().collect(),
                window: Delta(4),
                serial: 9,
            },
            ProtoMsg::Invalidate {
                seg: seg(),
                page: PageNum(1),
                demand: Demand::Write { to: SiteId(2), upgrade: true },
                readers: SiteSet::singleton(SiteId(1)),
                window: Delta(2),
                serial: 3,
            },
            ProtoMsg::Invalidate {
                seg: seg(),
                page: PageNum(1),
                demand: Demand::Read { to: SiteSet::singleton(SiteId(0)) },
                readers: SiteSet::empty(),
                window: Delta::ZERO,
                serial: 0,
            },
            ProtoMsg::InvalidateDeny {
                seg: seg(),
                page: PageNum(1),
                wait: SimDuration::from_millis(12),
                serial: 3,
            },
            ProtoMsg::InvalidateDone {
                seg: seg(),
                page: PageNum(1),
                info: DoneInfo { writer_downgraded: true },
                serial: 3,
            },
            ProtoMsg::ReaderInvalidate { seg: seg(), page: PageNum(2), serial: 5 },
            ProtoMsg::ReaderInvalidateAck { seg: seg(), page: PageNum(2), serial: 5 },
            ProtoMsg::PageGrant {
                seg: seg(),
                page: PageNum(2),
                access: Access::Read,
                window: Delta(6),
                data: PageData::from_bytes(&[0xAB; PAGE_SIZE]),
                serial: 7,
            },
            ProtoMsg::UpgradeGrant {
                seg: seg(),
                page: PageNum(2),
                window: Delta(1),
                serial: 8,
            },
            ProtoMsg::DoneAck { seg: seg(), page: PageNum(1), serial: 3 },
            ProtoMsg::GrantAck { seg: seg(), page: PageNum(2), serial: 7 },
            ProtoMsg::UpgradeNack { seg: seg(), page: PageNum(2), serial: 8 },
            ProtoMsg::LibraryHandoff {
                seg: seg(),
                page: PageNum(0),
                epoch: 1,
                frozen: FrozenLibrary {
                    start: PageNum(0),
                    pages: vec![
                        FrozenLibPage {
                            readers: [SiteId(1), SiteId(3)].into_iter().collect(),
                            writer: None,
                            clock: SiteId(1),
                            queue: vec![(SiteId(2), Access::Write), (SiteId(0), Access::Read)],
                            serving: Some(Demand::Read { to: SiteSet::singleton(SiteId(3)) }),
                            window: Delta(4),
                            serial: 11,
                        },
                        FrozenLibPage {
                            readers: SiteSet::empty(),
                            writer: Some(SiteId(0)),
                            clock: SiteId(0),
                            queue: Vec::new(),
                            serving: None,
                            window: Delta::ZERO,
                            serial: 0,
                        },
                    ],
                },
            },
            ProtoMsg::LibraryHandoffAck { seg: seg(), page: PageNum(0), epoch: 1 },
            ProtoMsg::LibraryRedirect { seg: seg(), page: PageNum(3), epoch: 1, to: SiteId(2) },
            ProtoMsg::PageGrantDelta {
                seg: seg(),
                page: PageNum(2),
                access: Access::Write,
                window: Delta(6),
                base_tag: 0xDEAD_BEEF_CAFE_F00D,
                diff: {
                    let base = [0u8; PAGE_SIZE];
                    let mut target = base;
                    target[10..14].copy_from_slice(&[1, 2, 3, 4]);
                    target[500] = 9;
                    PageDiff::compute(&base, &target)
                },
                serial: 7,
            },
            ProtoMsg::TsRead { seg: seg(), page: PageNum(0), pts: 5, vts: 3, serial: 1 },
            ProtoMsg::TsWrite { seg: seg(), page: PageNum(1), pts: 9, vts: 0, serial: 2 },
            ProtoMsg::TsReadData {
                seg: seg(),
                page: PageNum(0),
                wts: 4,
                rts: 14,
                data: PageData::from_bytes(&[0x5C; PAGE_SIZE]),
                serial: 1,
            },
            ProtoMsg::TsRenew { seg: seg(), page: PageNum(0), wts: 4, rts: 24, serial: 3 },
            ProtoMsg::TsWriteGrant {
                seg: seg(),
                page: PageNum(1),
                wts: 15,
                data: Some(PageData::from_bytes(&[0x7E; PAGE_SIZE])),
                serial: 2,
            },
            ProtoMsg::TsWriteGrant {
                seg: seg(),
                page: PageNum(1),
                wts: 16,
                data: None,
                serial: 4,
            },
            ProtoMsg::TsRecall { seg: seg(), page: PageNum(1), serial: 6 },
            ProtoMsg::TsWriteBack {
                seg: seg(),
                page: PageNum(1),
                wts: 15,
                data: Some(PageData::from_bytes(&[0x11; PAGE_SIZE])),
                serial: 6,
            },
            ProtoMsg::TsWriteBack {
                seg: seg(),
                page: PageNum(1),
                wts: 15,
                data: None,
                serial: 6,
            },
            ProtoMsg::TsWriteBackAck { seg: seg(), page: PageNum(1), serial: 6 },
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for m in all_messages() {
            let bytes = to_bytes(&m);
            let back: ProtoMsg = from_bytes(&bytes).expect("decode");
            assert_eq!(back, m);
        }
    }

    #[test]
    fn only_page_carriers_are_large() {
        for m in all_messages() {
            let expect_large = matches!(
                m,
                ProtoMsg::PageGrant { .. }
                    | ProtoMsg::LibraryHandoff { .. }
                    | ProtoMsg::TsReadData { .. }
                    | ProtoMsg::TsWriteGrant { data: Some(_), .. }
                    | ProtoMsg::TsWriteBack { data: Some(_), .. }
            );
            assert_eq!(m.size_class() == SizeClass::Large, expect_large, "{}", m.tag());
        }
    }

    #[test]
    fn delta_grant_is_byte_sized() {
        for m in all_messages() {
            if let ProtoMsg::PageGrantDelta { diff, .. } = &m {
                let payload = ProtoMsg::delta_payload_bytes(diff);
                assert_eq!(m.size_class(), SizeClass::Bytes(payload as u32));
                assert!(payload < ProtoMsg::FULL_GRANT_PAYLOAD_BYTES);
            }
        }
    }

    #[test]
    fn subject_extraction() {
        for m in all_messages() {
            let (s, _) = m.subject();
            assert_eq!(s, seg());
        }
    }

    #[test]
    fn truncation_never_panics() {
        for m in all_messages() {
            let bytes = to_bytes(&m);
            for cut in 0..bytes.len() {
                let _ = from_bytes::<ProtoMsg>(&bytes[..cut]);
            }
        }
    }
}
