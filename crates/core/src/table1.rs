//! The paper's Table 1 as an executable specification.
//!
//! | Current | Incoming | Clock Check | Invalidation |
//! |---------|----------|-------------|--------------|
//! | Readers | Readers  | No          | No           |
//! | Readers | Writer   | Yes         | Yes, possible upgrade if new writer is in old read set |
//! | Writer  | Readers  | Yes         | Downgrade writer to reader |
//! | Writer  | Writer   | Yes         | Yes          |
//!
//! The library role consults [`row`] to decide how to serve each request,
//! so the protocol's behaviour is tied to the table by construction, and
//! experiment E8 tests the table directly against the paper.

use mirage_types::Access;

/// Who currently holds the page, per the library's records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Current {
    /// One or more sites hold read copies.
    Readers,
    /// One site holds the write copy.
    Writer,
}

/// What the invalidation phase must do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Invalidation {
    /// No invalidation: new readers simply join.
    No,
    /// Invalidate all current copies (full invalidation).
    Yes,
    /// Invalidate all read copies but upgrade the requester in place
    /// (§6.1 optimization 1 — requester was in the old read set).
    YesWithUpgrade,
    /// Downgrade the writer to a reader; it keeps a read copy
    /// (§6.1 optimization 2).
    DowngradeWriter,
}

/// A resolved row of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Row {
    /// Must the library consult the clock site's Δ window?
    pub clock_check: bool,
    /// What the invalidation phase does.
    pub invalidation: Invalidation,
}

/// Resolves a Table 1 row.
///
/// `requester_in_readers` matters only for the Readers/Writer row: it
/// selects the upgrade variant. `downgrade_optimization` selects between
/// the paper's Writer/Readers behaviour (downgrade) and the unoptimized
/// full invalidation used by the A2 ablation.
pub fn row(
    current: Current,
    incoming: Access,
    requester_in_readers: bool,
    downgrade_optimization: bool,
) -> Row {
    match (current, incoming) {
        (Current::Readers, Access::Read) => {
            Row { clock_check: false, invalidation: Invalidation::No }
        }
        (Current::Readers, Access::Write) => Row {
            clock_check: true,
            invalidation: if requester_in_readers {
                Invalidation::YesWithUpgrade
            } else {
                Invalidation::Yes
            },
        },
        (Current::Writer, Access::Read) => Row {
            clock_check: true,
            invalidation: if downgrade_optimization {
                Invalidation::DowngradeWriter
            } else {
                Invalidation::Yes
            },
        },
        (Current::Writer, Access::Write) => {
            Row { clock_check: true, invalidation: Invalidation::Yes }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readers_readers_no_check_no_invalidation() {
        let r = row(Current::Readers, Access::Read, false, true);
        assert!(!r.clock_check);
        assert_eq!(r.invalidation, Invalidation::No);
    }

    #[test]
    fn readers_writer_checks_and_invalidates() {
        let r = row(Current::Readers, Access::Write, false, true);
        assert!(r.clock_check);
        assert_eq!(r.invalidation, Invalidation::Yes);
    }

    #[test]
    fn readers_writer_upgrades_member_of_read_set() {
        let r = row(Current::Readers, Access::Write, true, true);
        assert!(r.clock_check);
        assert_eq!(r.invalidation, Invalidation::YesWithUpgrade);
    }

    #[test]
    fn writer_readers_downgrades() {
        let r = row(Current::Writer, Access::Read, false, true);
        assert!(r.clock_check);
        assert_eq!(r.invalidation, Invalidation::DowngradeWriter);
    }

    #[test]
    fn writer_readers_without_optimization_fully_invalidates() {
        let r = row(Current::Writer, Access::Read, false, false);
        assert_eq!(r.invalidation, Invalidation::Yes);
    }

    #[test]
    fn writer_writer_checks_and_invalidates() {
        let r = row(Current::Writer, Access::Write, false, true);
        assert!(r.clock_check);
        assert_eq!(r.invalidation, Invalidation::Yes);
    }

    #[test]
    fn only_readers_readers_skips_clock_check() {
        // "Table 1 shows there is only one case where the clock check can
        // be ignored."
        let mut skip_count = 0;
        for current in [Current::Readers, Current::Writer] {
            for incoming in [Access::Read, Access::Write] {
                for in_set in [false, true] {
                    if !row(current, incoming, in_set, true).clock_check {
                        skip_count += 1;
                        assert_eq!((current, incoming), (Current::Readers, Access::Read));
                    }
                }
            }
        }
        assert_eq!(skip_count, 2, "both in_set variants of the one row");
    }
}
