//! The using-site role: fault handling, page installation, and clock-site
//! duties (window enforcement and invalidation rounds).
//!
//! Per-page state lives in dense per-segment tables ([`UseState`]): one
//! slab-index lookup per segment, then plain vector indexing per page —
//! the shape of the paper's auxpte arrays (Table 2). Each page entry
//! absorbs what used to be five separate tuple-keyed maps (waiters,
//! outstanding-request flags, invalidation round, delayed invalidation,
//! deferred clock duties), so the fault path hashes nothing per page and
//! steady-state handling allocates nothing.

use std::collections::VecDeque;

use mirage_mem::{
    AuxTable,
    PageData,
};
use mirage_trace::TraceKind;
use mirage_types::{
    fnv64,
    Access,
    Delta,
    FastMap,
    PageDiff,
    PageNum,
    PageProt,
    Pid,
    ReaderSet,
    SegmentId,
    SiteId,
    SiteSet,
};

use crate::{
    config::ProtocolConfig,
    engine::{
        SiteEngine,
        TimerKind,
    },
    event::Action,
    msg::{
        Demand,
        DoneInfo,
        ProtoMsg,
    },
    sink::ActionSink,
    store::PageStore,
};

/// An in-flight invalidation round this site is conducting as clock site.
#[derive(Debug)]
struct InvRound {
    demand: Demand,
    window: Delta,
    /// Victims whose acks are still awaited.
    remaining: ReaderSet,
    /// Victims not yet sent an invalidation (sequential mode), visited
    /// in ascending site order.
    to_send: ReaderSet,
    /// Page data to forward to the new writer once the round completes.
    /// Absent for upgrades — and always absent in retry mode, where the
    /// local copy is relinquished at round *completion* instead of round
    /// start so a crash mid-round cannot lose the only copy.
    data: Option<PageData>,
    /// Demand serial of the round (0 when retry is disabled).
    serial: u32,
    /// Retransmit count for the round's invalidations (volatile).
    attempt: u32,
}

/// An invalidation delayed until window expiry (queued-invalidation
/// optimization, §7.1 caveat 1).
#[derive(Debug)]
struct DelayedInvalidate {
    demand: Demand,
    readers: ReaderSet,
    window: Delta,
    serial: u32,
}

/// A grant retained until the receiver acknowledges installation
/// (retry mode only). Write grants carry the only copy of the page, so
/// losing one loses the page. Read grants matter too: the library
/// records the receiver as a reader the moment the grant is *emitted*,
/// and a later write by that site is then served as an in-place upgrade
/// — which silently promotes a possibly-never-delivered copy to sole
/// copy. Upgrade notifications (`data: None`) transfer sole-copy
/// responsibility without bytes, so the granter keeps its own copy
/// until the ack (`use_grant_ack` performs the deferred relinquish).
/// Persistent across a crash.
#[derive(Debug)]
struct PendingGrant {
    to: SiteId,
    window: Delta,
    /// The page bytes. For an upgrade notification these are a *reserve*
    /// taken at relinquish time, not sent on the wire — unless the
    /// receiver nacks (its read copy never arrived), which escalates the
    /// entry to a full data-carrying grant.
    data: PageData,
    access: Access,
    /// True while the entry retransmits as a short [`ProtoMsg::UpgradeGrant`];
    /// flipped to false by [`ProtoMsg::UpgradeNack`].
    upgrade: bool,
    serial: u32,
    /// Retransmit count (volatile).
    attempt: u32,
}

/// The remembered content of this page's last data transfer between
/// this site and `peer` (delta-grant mode only).
///
/// One slot per page per site bounds the memory to a single retained
/// page image; every transfer (full grant emitted, full grant
/// installed, delta patched) replaces it. The sender diffs against its
/// slot when serving `peer` again; the receiver patches into a clone of
/// its slot after checking `tag`. The tag is the [`fnv64`] hash of the
/// content, computed independently at both ends, so any full-page
/// transfer bootstraps delta mode without widening the full-grant wire
/// format. Volatile: cleared on crash, evicted when the peer nacks a
/// delta (its slot diverged, e.g. across a crash).
#[derive(Debug)]
struct ShadowBase {
    peer: SiteId,
    tag: u64,
    data: PageData,
}

/// A clock-site duty that arrived before the page it concerns.
///
/// The library serializes demands per page, but the page *data* travels
/// on a different circuit (old holder → new clock) than the library's
/// next instruction (library → new clock); a short instruction can
/// physically beat a 1024-byte grant (6.4 ms vs 15 ms one-way in the
/// paper's own numbers). A robust clock site defers such duties until
/// its copy arrives.
#[derive(Debug)]
enum DeferredOp {
    Invalidate { demand: Demand, readers: ReaderSet, window: Delta, serial: u32 },
    AddReaders { readers: ReaderSet, window: Delta, serial: u32 },
    ReaderInvalidate { from: SiteId, serial: u32 },
}

/// The using-site record for one page: everything this site tracks about
/// the page beyond the auxpte proper.
#[derive(Debug, Default)]
struct UsePage {
    /// Local processes blocked in a fault on this page.
    waiters: Vec<(Pid, Access)>,
    /// A read request for this page is in flight to the library.
    out_read: bool,
    /// A write request for this page is in flight to the library.
    out_write: bool,
    /// The invalidation round in progress (clock duty).
    round: Option<InvRound>,
    /// An invalidation delayed until window expiry (clock duty).
    delayed: Option<DelayedInvalidate>,
    /// Clock duties deferred until our copy arrives.
    deferred: VecDeque<DeferredOp>,
    /// Retransmit count for the outstanding request (volatile).
    req_attempt: u32,
    /// Generation of the outstanding request's retry chain, bumped each
    /// time a fresh request is sent. A satisfied request leaves its last
    /// backoff timer pending; the stamp keeps that stale firing from
    /// aliasing onto the next request and forking its chain (volatile).
    req_gen: u32,
    /// Pid stamped on retransmitted requests (volatile; reference-log
    /// attribution only).
    retry_pid: Option<Pid>,
    /// Completion report not yet acknowledged by the library; the clock
    /// retransmits it until `DoneAck` (persistent across crash).
    pending_done: Option<(u32, DoneInfo)>,
    /// Retransmit count for `pending_done` (volatile).
    done_attempt: u32,
    /// Grants not yet acknowledged by their receivers (persistent
    /// across crash — a write grant may hold the only copy of the
    /// page). One serial can cover several entries: an `AddReaders`
    /// batch grants the same serial to every new reader.
    pending_grants: Vec<PendingGrant>,
    /// Highest demand serial this site has completed as clock, for
    /// deduplicating retransmitted `Invalidate`s (persistent).
    last_serial: u32,
    /// Floor on grant installs: a grant or upgrade stamped with a serial
    /// below this is stale and must be dropped (persistent).
    min_install_serial: u32,
    /// Causal span of the outstanding page request (volatile; raw
    /// [`mirage_trace::SpanId`] bits, 0 when tracing is off or no
    /// request is in flight).
    req_span: u64,
    /// Causal span of the clock duty in progress (volatile; raw span
    /// bits, 0 outside an invalidation round).
    duty_span: u64,
    /// Last data transfer exchanged with a peer, the delta-grant base
    /// (volatile; `None` whenever [`ProtocolConfig::delta_grants`] is
    /// off, so the default configuration allocates nothing here).
    shadow: Option<Box<ShadowBase>>,
}

/// Per-segment using-site state: the auxiliary table plus the dense
/// per-page records.
#[derive(Debug)]
struct SegState {
    aux: AuxTable,
    pages: Vec<UsePage>,
    /// Where this site currently believes each library shard lives, one
    /// entry per page-range shard. Starts at the static `seg.library`
    /// and is updated by redirects and observed handoffs. Persistent
    /// across a crash (like the aux table): a restarted site must not
    /// fall back to a stale static address the stubs have long since
    /// stopped answering for. Each entry pairs the hinted site with the
    /// handoff epoch it was learned at; redirects apply only when
    /// strictly newer (0 until the shard first moves).
    lib_hints: Vec<(SiteId, u32)>,
    /// Pages per library shard (0 = one shard for the whole segment),
    /// mirrored from [`ProtocolConfig::shard_pages`] at registration.
    shard_pages: u32,
}

impl SegState {
    fn shard_of(&self, page: PageNum) -> usize {
        crate::library::shard_of(page, self.shard_pages).min(self.lib_hints.len() - 1)
    }
}

/// Using-role state for all segments known at this site.
///
/// Segments are slab-indexed: `index` maps a [`SegmentId`] to a slot in
/// `segs` once, and page lookups are then direct vector indexing.
#[derive(Debug, Default)]
pub struct UseState {
    index: FastMap<SegmentId, usize>,
    segs: Vec<SegState>,
    /// Reused by `wake_satisfied` so waking waiters allocates nothing.
    wake_scratch: Vec<Pid>,
}

impl UseState {
    pub(crate) fn register_segment(
        &mut self,
        seg: SegmentId,
        pages: usize,
        config: &ProtocolConfig,
    ) {
        let mut aux = AuxTable::new(pages, Delta::ZERO);
        for p in 0..pages {
            let page = PageNum(p as u32);
            aux.set_window(page, config.delta.window(page));
        }
        let shards = crate::library::shard_count(pages, config.shard_pages);
        let state = SegState {
            aux,
            pages: (0..pages).map(|_| UsePage::default()).collect(),
            lib_hints: vec![(seg.library, 0); shards],
            shard_pages: config.shard_pages,
        };
        match self.index.get(&seg) {
            Some(&slot) => self.segs[slot] = state,
            None => {
                self.index.insert(seg, self.segs.len());
                self.segs.push(state);
            }
        }
    }

    fn seg_mut(&mut self, seg: SegmentId) -> Option<&mut SegState> {
        let &slot = self.index.get(&seg)?;
        Some(&mut self.segs[slot])
    }

    fn seg(&self, seg: SegmentId) -> Option<&SegState> {
        let &slot = self.index.get(&seg)?;
        Some(&self.segs[slot])
    }

    fn entry_mut(&mut self, seg: SegmentId, page: PageNum) -> Option<&mut UsePage> {
        self.seg_mut(seg)?.pages.get_mut(page.index())
    }

    /// This site's current library hint for the shard holding `page`,
    /// with its epoch.
    pub(crate) fn lib_hint(&self, seg: SegmentId, page: PageNum) -> Option<(SiteId, u32)> {
        self.seg(seg).map(|s| s.lib_hints[s.shard_of(page)])
    }

    /// Repoints the library hint for the shard holding `page` (handoff
    /// observed or redirect applied).
    pub(crate) fn set_lib_hint(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        to: SiteId,
        epoch: u32,
    ) {
        if let Some(s) = self.seg_mut(seg) {
            let shard = s.shard_of(page);
            s.lib_hints[shard] = (to, epoch);
        }
    }

    /// The page range `[start, end)` of the shard holding `page`.
    fn shard_range(&self, seg: SegmentId, page: PageNum) -> std::ops::Range<usize> {
        let Some(s) = self.seg(seg) else {
            return 0..0;
        };
        if s.shard_pages == 0 {
            return 0..s.pages.len();
        }
        let shard = s.shard_of(page);
        let start = shard * s.shard_pages as usize;
        let end = (start + s.shard_pages as usize).min(s.pages.len());
        start..end
    }

    pub(crate) fn waiter_count(&self, seg: SegmentId, page: PageNum) -> usize {
        self.seg(seg).and_then(|s| s.pages.get(page.index())).map_or(0, |e| e.waiters.len())
    }

    pub(crate) fn has_outstanding(
        &self,
        seg: SegmentId,
        page: PageNum,
        access: Access,
    ) -> bool {
        self.seg(seg).and_then(|s| s.pages.get(page.index())).is_some_and(|e| match access {
            Access::Read => e.out_read,
            Access::Write => e.out_write,
        })
    }

    /// Discards all volatile using-site state (site crash). The aux
    /// table, the unacked retransmit obligations, and the stale-grant
    /// floors survive; waiters, in-flight rounds, deferred duties, and
    /// outstanding-request flags do not — the site's processes re-fault
    /// after restart and rebuild them.
    pub(crate) fn crash(&mut self) {
        for s in &mut self.segs {
            for e in &mut s.pages {
                e.waiters.clear();
                e.out_read = false;
                e.out_write = false;
                e.round = None;
                e.delayed = None;
                e.deferred.clear();
                e.req_attempt = 0;
                e.retry_pid = None;
                e.done_attempt = 0;
                e.req_span = 0;
                e.duty_span = 0;
                for g in &mut e.pending_grants {
                    g.attempt = 0;
                }
                // The delta base is volatile by design: a restarted
                // site must never patch against a pre-crash image.
                e.shadow = None;
            }
        }
    }

    /// Pages with persistent retransmit obligations, for restart.
    fn pending_pages(&self) -> Vec<(SegmentId, PageNum)> {
        let mut out = Vec::new();
        for (&seg, &slot) in &self.index {
            for (p, e) in self.segs[slot].pages.iter().enumerate() {
                if e.pending_done.is_some() || !e.pending_grants.is_empty() {
                    out.push((seg, PageNum(p as u32)));
                }
            }
        }
        out.sort();
        out
    }
}

impl SiteEngine {
    /// A local process faulted on a shared page (typed fault, §6.2).
    pub(crate) fn fault(
        &mut self,
        pid: Pid,
        seg: SegmentId,
        page: PageNum,
        access: Access,
        store: &mut dyn PageStore,
        sink: &mut ActionSink,
    ) {
        if store.prot(seg, page).permits(access) {
            // The process's PTE was stale (lazy remapping, §6.2); the
            // master already permits the access.
            self.wake(pid, sink);
            return;
        }
        let Some(entry) = self.usr.entry_mut(seg, page) else {
            return;
        };
        entry.waiters.push((pid, access));
        let depth = entry.waiters.len();
        // Deduplicate outstanding requests from this site: an in-flight
        // write request will grant read-write, which covers read faults
        // too.
        let need_send = match access {
            Access::Read => !entry.out_read && !entry.out_write,
            Access::Write => !entry.out_write,
        };
        let mut gen = 0;
        if need_send {
            match access {
                Access::Read => entry.out_read = true,
                Access::Write => entry.out_write = true,
            }
            entry.retry_pid = Some(pid);
            entry.req_attempt = 0;
            entry.req_gen = entry.req_gen.wrapping_add(1);
            gen = entry.req_gen;
        }
        let (lib, lib_epoch) = self.library_route(seg, page);
        if self.tracing() {
            let span = if need_send {
                let span = self.new_span();
                if let Some(entry) = self.usr.entry_mut(seg, page) {
                    entry.req_span = span.0;
                }
                span.0
            } else {
                self.usr
                    .seg(seg)
                    .and_then(|s| s.pages.get(page.index()))
                    .map_or(0, |e| e.req_span)
            };
            let mut ev = self.trace_event(TraceKind::FaultTaken, span, seg, page, sink);
            ev.pid = Some(pid);
            ev.access = Some(access);
            ev.detail = depth as u64;
            self.push_trace(ev, sink);
            if need_send {
                let mut ev = self.trace_event(TraceKind::RequestSent, span, seg, page, sink);
                ev.peer = Some(lib);
                ev.pid = Some(pid);
                ev.access = Some(access);
                self.push_trace(ev, sink);
            }
        }
        if need_send {
            self.emit(
                lib,
                ProtoMsg::PageRequest { seg, page, access, pid, epoch: lib_epoch },
                sink,
            );
            self.arm_retry(0, TimerKind::RequestRetry { seg, page, gen }, sink);
        }
    }

    /// Request retransmit timer fired (retry mode): if the request is
    /// still unanswered, re-send it and back off. The library deduplicates
    /// (queue scan plus in-flight-serve check), so retransmitting into a
    /// healthy network is harmless — and retransmitting into a restarted
    /// library is exactly how its request queue gets reconstructed.
    pub(crate) fn use_request_retry(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        gen: u32,
        sink: &mut ActionSink,
    ) {
        let Some(entry) = self.usr.entry_mut(seg, page) else {
            return;
        };
        if gen != entry.req_gen {
            // A leftover timer from a request that was already satisfied;
            // only the current chain may retransmit (and re-arm).
            return;
        }
        // A write request covers a read one, so retransmit the strongest
        // outstanding class.
        let access = if entry.out_write {
            Access::Write
        } else if entry.out_read {
            Access::Read
        } else {
            // Satisfied; let the retry chain die.
            return;
        };
        entry.req_attempt += 1;
        let attempt = entry.req_attempt;
        let span = entry.req_span;
        let pid = entry
            .retry_pid
            .or_else(|| entry.waiters.first().map(|&(pid, _)| pid))
            .unwrap_or(Pid::new(self.site, 0));
        let (lib, lib_epoch) = self.library_route(seg, page);
        if self.tracing() {
            let mut ev = self.trace_event(TraceKind::RequestRetry, span, seg, page, sink);
            ev.peer = Some(lib);
            ev.pid = Some(pid);
            ev.access = Some(access);
            ev.detail = u64::from(attempt);
            self.push_trace(ev, sink);
        }
        self.emit(
            lib,
            ProtoMsg::PageRequest { seg, page, access, pid, epoch: lib_epoch },
            sink,
        );
        self.arm_retry(attempt, TimerKind::RequestRetry { seg, page, gen }, sink);
    }

    /// Library told us (the fixed clock site) to grant read copies to
    /// additional readers — Table 1 row 1, no clock check.
    #[allow(clippy::too_many_arguments)] // Mirrors the wire message fields.
    pub(crate) fn use_add_readers(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        readers: SiteSet,
        window: Delta,
        serial: u32,
        store: &mut dyn PageStore,
        sink: &mut ActionSink,
    ) {
        let retry_on = self.config.retry.is_some();
        if store.prot(seg, page) == PageProt::None {
            // Our copy is still in flight; serve the readers once it
            // lands. In retry mode a retransmitted instruction may
            // already be queued — same serial, don't queue it twice.
            if let Some(entry) = self.usr.entry_mut(seg, page) {
                let dup = retry_on
                    && entry.deferred.iter().any(
                        |op| matches!(op, DeferredOp::AddReaders { serial: s, .. } if *s == serial),
                    );
                if !dup {
                    let count = readers.len() as u64;
                    entry.deferred.push_back(DeferredOp::AddReaders {
                        readers,
                        window,
                        serial,
                    });
                    if self.tracing() {
                        let mut ev =
                            self.trace_event(TraceKind::AddReadersDeferred, 0, seg, page, sink);
                        ev.serial = serial;
                        ev.detail = count;
                        self.push_trace(ev, sink);
                    }
                }
            }
            return;
        }
        let duty = if self.tracing() { self.new_span().0 } else { 0 };
        let data = store.copy(seg, page);
        for r in readers.iter() {
            if r == self.site {
                continue;
            }
            if retry_on {
                self.retain_grant(
                    seg,
                    page,
                    PendingGrant {
                        to: r,
                        window,
                        data: data.clone(),
                        access: Access::Read,
                        upgrade: false,
                        serial,
                        attempt: 0,
                    },
                    sink,
                );
            }
            let sent_delta = self.emit_data_grant(
                seg,
                page,
                r,
                Access::Read,
                window,
                data.clone(),
                serial,
                duty,
                sink,
            );
            if self.tracing() && !sent_delta {
                let mut ev = self.trace_event(TraceKind::GrantSent, duty, seg, page, sink);
                ev.peer = Some(r);
                ev.access = Some(Access::Read);
                ev.serial = serial;
                ev.detail = u64::from(window.0);
                self.push_trace(ev, sink);
            }
        }
        if readers.contains(self.site) {
            // Raced local request: we already hold a copy; wake readers.
            if retry_on {
                if let Some(entry) = self.usr.entry_mut(seg, page) {
                    // Our own read request is satisfied by the copy we
                    // hold — stop the request-retry chain.
                    entry.out_read = false;
                }
            }
            self.wake_satisfied(seg, page, store, sink);
        }
    }

    /// Library asked us (the clock site) to invalidate the current copy.
    #[allow(clippy::too_many_arguments)] // Mirrors the wire message fields.
    pub(crate) fn use_invalidate(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        demand: Demand,
        readers: SiteSet,
        window: Delta,
        serial: u32,
        store: &mut dyn PageStore,
        sink: &mut ActionSink,
    ) {
        let retry_on = self.config.retry.is_some();
        if retry_on {
            if let Some(entry) = self.usr.entry_mut(seg, page) {
                // The library serializes demands per page, so anything
                // already in progress here is the same demand this
                // (retransmitted) message describes — let it finish.
                if entry.round.is_some() || entry.delayed.is_some() {
                    return;
                }
                // Already served: a retransmission of a demand whose
                // completion report (or its ack) was lost. Re-report the
                // completion if the library has not confirmed it.
                if serial <= entry.last_serial {
                    let redo = match &entry.pending_done {
                        Some((s, info)) if *s == serial => Some(*info),
                        _ => None,
                    };
                    if let Some(info) = redo {
                        let lib = self.library_route(seg, page).0;
                        self.emit(
                            lib,
                            ProtoMsg::InvalidateDone { seg, page, info, serial },
                            sink,
                        );
                    }
                    return;
                }
            }
        }
        if store.prot(seg, page) == PageProt::None {
            // The copy this demand must invalidate has not arrived yet
            // (short library message beat the page-carrying grant).
            // Defer; the window check will run against the fresh install.
            if let Some(entry) = self.usr.entry_mut(seg, page) {
                let dup = retry_on
                    && entry.deferred.iter().any(
                        |op| matches!(op, DeferredOp::Invalidate { serial: s, .. } if *s == serial),
                    );
                if !dup {
                    entry.deferred.push_back(DeferredOp::Invalidate {
                        demand,
                        readers,
                        window,
                        serial,
                    });
                    if self.tracing() {
                        let mut ev =
                            self.trace_event(TraceKind::InvalidateDeferred, 0, seg, page, sink);
                        ev.serial = serial;
                        self.push_trace(ev, sink);
                    }
                }
            }
            return;
        }
        let now = sink.now();
        let expired =
            self.usr.seg(seg).map(|st| st.aux.get(page).window_expired(now)).unwrap_or(true);
        if !expired {
            let st = self.usr.seg(seg).expect("segment known");
            let remaining = st.aux.get(page).window_remaining(now);
            if self.config.queued_invalidation
                && remaining <= mirage_net::NetCosts::vax_locus().retry_threshold()
            {
                // §7.1 caveat 1: honor after a short delay rather than
                // forcing the library to retry over the network.
                let expiry = st.aux.get(page).window_expiry();
                if let Some(entry) = self.usr.entry_mut(seg, page) {
                    entry.delayed = Some(DelayedInvalidate { demand, readers, window, serial });
                }
                if self.tracing() {
                    let mut ev =
                        self.trace_event(TraceKind::InvalidateQueued, 0, seg, page, sink);
                    ev.serial = serial;
                    ev.detail = remaining.0;
                    self.push_trace(ev, sink);
                }
                self.set_timer(expiry, TimerKind::ClockDelayed { seg, page }, sink);
                return;
            }
            // "the clock site replies immediately with the amount of time
            // the library must wait until the invalidation can be
            // honored."
            let lib = self.library_route(seg, page).0;
            self.emit(
                lib,
                ProtoMsg::InvalidateDeny { seg, page, wait: remaining, serial },
                sink,
            );
            if self.tracing() {
                let mut ev = self.trace_event(TraceKind::DenySent, 0, seg, page, sink);
                ev.peer = Some(lib);
                ev.serial = serial;
                ev.detail = remaining.0;
                self.push_trace(ev, sink);
            }
            return;
        }
        self.honor_invalidation(seg, page, demand, readers, window, serial, store, sink);
    }

    /// A delayed (queued) invalidation's window expired; honor it now.
    pub(crate) fn use_delayed_invalidation(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        store: &mut dyn PageStore,
        sink: &mut ActionSink,
    ) {
        let Some(d) = self.usr.entry_mut(seg, page).and_then(|e| e.delayed.take()) else {
            return;
        };
        self.honor_invalidation(
            seg, page, d.demand, d.readers, d.window, d.serial, store, sink,
        );
    }

    /// Carries out an accepted invalidation: "typically it: 1) invalidates
    /// the local page, 2) invalidates any other outstanding readers, if
    /// the page is a read-copy and 3) distributes the page to the new
    /// writer or any new readers." (§6.1)
    #[allow(clippy::too_many_arguments)] // Mirrors the wire message fields.
    fn honor_invalidation(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        demand: Demand,
        readers: SiteSet,
        window: Delta,
        serial: u32,
        store: &mut dyn PageStore,
        sink: &mut ActionSink,
    ) {
        let retry_on = self.config.retry.is_some();
        if retry_on {
            if let Some(entry) = self.usr.entry_mut(seg, page) {
                // A deferred duplicate can reach here after the live copy
                // of the same demand already started a round — drop it.
                if entry.round.is_some() {
                    return;
                }
                // This demand supersedes every grant stamped at or below
                // its serial: refuse any such stale install from now on.
                entry.min_install_serial = entry.min_install_serial.max(serial + 1);
            }
        } else {
            debug_assert!(
                self.usr
                    .seg(seg)
                    .and_then(|s| s.pages.get(page.index()))
                    .is_none_or(|e| e.round.is_none()),
                "library serializes demands per page"
            );
        }
        let duty = if self.tracing() { self.new_span().0 } else { 0 };
        match demand {
            Demand::Read { to } => {
                // We are the writer (Table 1 row 3). Grant read copies,
                // then downgrade ourselves (optimization 2) or discard.
                let data = store.copy(seg, page);
                for r in to.iter() {
                    if r == self.site {
                        continue;
                    }
                    if retry_on {
                        self.retain_grant(
                            seg,
                            page,
                            PendingGrant {
                                to: r,
                                window,
                                data: data.clone(),
                                access: Access::Read,
                                upgrade: false,
                                serial,
                                attempt: 0,
                            },
                            sink,
                        );
                    }
                    let sent_delta = self.emit_data_grant(
                        seg,
                        page,
                        r,
                        Access::Read,
                        window,
                        data.clone(),
                        serial,
                        duty,
                        sink,
                    );
                    if self.tracing() && !sent_delta {
                        let mut ev =
                            self.trace_event(TraceKind::GrantSent, duty, seg, page, sink);
                        ev.peer = Some(r);
                        ev.access = Some(Access::Read);
                        ev.serial = serial;
                        ev.detail = u64::from(window.0);
                        self.push_trace(ev, sink);
                    }
                }
                let downgraded = self.config.downgrade_optimization;
                if downgraded {
                    store.set_prot(seg, page, PageProt::Read);
                    // Table 2: `install time` is "installation time for
                    // this page at this site" — a downgrade is not a new
                    // install, so the (already expired) window is NOT
                    // restarted. A reader that turns around and writes
                    // (the Figure 8 pattern) therefore upgrades without
                    // waiting out a second window.
                    if let Some(st) = self.usr.seg_mut(seg) {
                        st.aux.get_mut(page).window = window;
                    }
                    if self.tracing() {
                        let mut ev =
                            self.trace_event(TraceKind::Downgraded, duty, seg, page, sink);
                        ev.serial = serial;
                        ev.detail = u64::from(window.0);
                        self.push_trace(ev, sink);
                    }
                } else {
                    store.set_prot(seg, page, PageProt::None);
                    if self.tracing() {
                        let mut ev = self.trace_event(
                            TraceKind::CopyRelinquished,
                            duty,
                            seg,
                            page,
                            sink,
                        );
                        ev.serial = serial;
                        self.push_trace(ev, sink);
                    }
                }
                let info = DoneInfo { writer_downgraded: downgraded };
                let lib = self.library_route(seg, page).0;
                self.emit(lib, ProtoMsg::InvalidateDone { seg, page, info, serial }, sink);
                if self.tracing() {
                    let mut ev = self.trace_event(TraceKind::DoneSent, duty, seg, page, sink);
                    ev.peer = Some(lib);
                    ev.serial = serial;
                    ev.detail = u64::from(info.writer_downgraded);
                    self.push_trace(ev, sink);
                }
                if retry_on {
                    if let Some(entry) = self.usr.entry_mut(seg, page) {
                        entry.pending_done = Some((serial, info));
                        entry.done_attempt = 0;
                        entry.last_serial = serial;
                    }
                    self.arm_retry(0, TimerKind::DoneRetry { seg, page, serial }, sink);
                }
            }
            Demand::Write { to, upgrade } => {
                let i_am_writer = store.prot(seg, page) == PageProt::ReadWrite;
                let held_copy = readers.contains(self.site);
                // Victims: every reader except the upgrading requester
                // and ourselves (we invalidate locally, without a
                // message).
                let mut victims = readers;
                victims.remove(self.site);
                if upgrade {
                    victims.remove(to);
                }
                if self.tracing() {
                    let mut ev = self.trace_event(TraceKind::RoundStart, duty, seg, page, sink);
                    ev.serial = serial;
                    ev.access = Some(Access::Write);
                    ev.detail = victims.len() as u64;
                    self.push_trace(ev, sink);
                }
                // Invalidate the local copy; if we are the data source
                // (no upgrade), keep the bytes to forward. In retry mode
                // the relinquish is deferred to round *completion*
                // ([`SiteEngine::finish_write_round`]) so a crash
                // mid-round cannot lose the only copy of the page.
                let data = if self.site == to || retry_on {
                    None
                } else if upgrade {
                    store.set_prot(seg, page, PageProt::None);
                    if self.tracing() {
                        let mut ev = self.trace_event(
                            TraceKind::CopyRelinquished,
                            duty,
                            seg,
                            page,
                            sink,
                        );
                        ev.serial = serial;
                        self.push_trace(ev, sink);
                    }
                    None
                } else {
                    debug_assert!(i_am_writer || held_copy, "clock site must hold a copy");
                    let taken = store.take(seg, page);
                    if self.tracing() {
                        let mut ev = self.trace_event(
                            TraceKind::CopyRelinquished,
                            duty,
                            seg,
                            page,
                            sink,
                        );
                        ev.serial = serial;
                        self.push_trace(ev, sink);
                    }
                    Some(taken)
                };
                let mut round = InvRound {
                    demand: Demand::Write { to, upgrade },
                    window,
                    remaining: ReaderSet::empty(),
                    to_send: victims,
                    data,
                    serial,
                    attempt: 0,
                };
                if round.to_send.is_empty() {
                    if let Some(entry) = self.usr.entry_mut(seg, page) {
                        entry.round = Some(round);
                        entry.duty_span = duty;
                        self.finish_write_round(seg, page, store, sink);
                    }
                    return;
                }
                if self.config.multicast_invalidation {
                    // One multicast round: send all, await all acks.
                    let all = std::mem::replace(&mut round.to_send, ReaderSet::empty());
                    let targets: Vec<SiteId> = all.iter().collect();
                    round.remaining = all;
                    for v in targets {
                        self.emit(v, ProtoMsg::ReaderInvalidate { seg, page, serial }, sink);
                        if self.tracing() {
                            let mut ev = self.trace_event(
                                TraceKind::ReaderInvalidateSent,
                                duty,
                                seg,
                                page,
                                sink,
                            );
                            ev.peer = Some(v);
                            ev.serial = serial;
                            self.push_trace(ev, sink);
                        }
                    }
                } else {
                    // Paper behaviour: "invalidations are processed
                    // sequentially" — one victim at a time, in ascending
                    // site order.
                    let first = round.to_send.first().expect("to_send nonempty");
                    round.to_send.remove(first);
                    round.remaining.insert(first);
                    self.emit(first, ProtoMsg::ReaderInvalidate { seg, page, serial }, sink);
                    if self.tracing() {
                        let mut ev = self.trace_event(
                            TraceKind::ReaderInvalidateSent,
                            duty,
                            seg,
                            page,
                            sink,
                        );
                        ev.peer = Some(first);
                        ev.serial = serial;
                        self.push_trace(ev, sink);
                    }
                }
                if let Some(entry) = self.usr.entry_mut(seg, page) {
                    entry.round = Some(round);
                    entry.duty_span = duty;
                }
                if retry_on {
                    self.arm_retry(0, TimerKind::RoundRetry { seg, page, serial }, sink);
                }
            }
        }
    }

    /// The clock site told us to discard our read copy.
    pub(crate) fn use_reader_invalidate(
        &mut self,
        from: SiteId,
        seg: SegmentId,
        page: PageNum,
        serial: u32,
        store: &mut dyn PageStore,
        sink: &mut ActionSink,
    ) {
        if self.config.retry.is_some() {
            // Deferring the ack (the reliable-transport tactic below)
            // would deadlock under loss: the grant we are waiting for may
            // never arrive, wedging the clock's round forever. Instead the
            // discard is gated on the stale-grant floor — a duplicated
            // old invalidation must not destroy a copy re-granted since —
            // and the ack always goes out, echoing the serial so the
            // clock can match it to its current round.
            let apply = self.usr.entry_mut(seg, page).is_some_and(|e| {
                if serial < e.min_install_serial {
                    return false;
                }
                // Grants from superseded rounds (below this serial) are
                // now stale. The floor stops at `serial`, not past it:
                // when the upgrade optimization is off, the requester of
                // this very round is reader-invalidated like any other
                // copyholder and then receives the round's full
                // `PageGrant` stamped with the *same* serial — raising
                // the floor above it would drop (yet ack) that grant,
                // leaving the library convinced a writer exists at a
                // site that holds nothing and wedging every later serve
                // behind an invalidation no one can honor. Once the
                // grant installs, the install path raises the floor past
                // it, so duplicates still die.
                e.min_install_serial = serial;
                true
            });
            if apply {
                store.set_prot(seg, page, PageProt::None);
                if self.tracing() {
                    let mut ev =
                        self.trace_event(TraceKind::ReaderInvalidated, 0, seg, page, sink);
                    ev.peer = Some(from);
                    ev.serial = serial;
                    self.push_trace(ev, sink);
                }
            }
            self.emit(from, ProtoMsg::ReaderInvalidateAck { seg, page, serial }, sink);
            return;
        }
        if store.prot(seg, page) == PageProt::None {
            let expecting_grant = self
                .usr
                .seg(seg)
                .and_then(|s| s.pages.get(page.index()))
                .is_some_and(|e| e.out_read || e.out_write);
            if expecting_grant {
                // Our read copy from the *previous* demand is still in
                // flight on another circuit. Acking now would let the
                // stale grant install after the new writer's write —
                // defer the invalidation until the copy lands.
                if let Some(entry) = self.usr.entry_mut(seg, page) {
                    entry.deferred.push_back(DeferredOp::ReaderInvalidate { from, serial });
                }
                return;
            }
        }
        store.set_prot(seg, page, PageProt::None);
        if self.tracing() {
            let mut ev = self.trace_event(TraceKind::ReaderInvalidated, 0, seg, page, sink);
            ev.peer = Some(from);
            ev.serial = serial;
            self.push_trace(ev, sink);
        }
        self.emit(from, ProtoMsg::ReaderInvalidateAck { seg, page, serial }, sink);
    }

    /// A victim acknowledged its invalidation.
    #[allow(clippy::too_many_arguments)] // Mirrors the wire message fields.
    pub(crate) fn use_reader_ack(
        &mut self,
        from: SiteId,
        seg: SegmentId,
        page: PageNum,
        serial: u32,
        store: &mut dyn PageStore,
        sink: &mut ActionSink,
    ) {
        let retry_on = self.config.retry.is_some();
        let duty = if self.tracing() {
            self.usr.seg(seg).and_then(|s| s.pages.get(page.index())).map_or(0, |e| e.duty_span)
        } else {
            0
        };
        let finished = {
            let Some(round) = self.usr.entry_mut(seg, page).and_then(|e| e.round.as_mut())
            else {
                return;
            };
            // Duplicated or stale acks must not advance the round: the
            // sender must be a victim we are actually waiting on, and the
            // echoed serial must match the round being conducted.
            if retry_on && (serial != round.serial || !round.remaining.contains(from)) {
                return;
            }
            round.remaining.remove(from);
            if let Some(next) = round.to_send.first() {
                round.to_send.remove(next);
                round.remaining.insert(next);
                let rserial = round.serial;
                self.emit(
                    next,
                    ProtoMsg::ReaderInvalidate { seg, page, serial: rserial },
                    sink,
                );
                if self.tracing() {
                    let mut ev = self.trace_event(
                        TraceKind::ReaderInvalidateSent,
                        duty,
                        seg,
                        page,
                        sink,
                    );
                    ev.peer = Some(next);
                    ev.serial = rserial;
                    self.push_trace(ev, sink);
                }
                false
            } else {
                round.remaining.is_empty()
            }
        };
        if finished {
            self.finish_write_round(seg, page, store, sink);
        }
    }

    /// Round retransmit timer fired (retry mode): re-send the
    /// invalidation to every victim that has not acknowledged yet.
    pub(crate) fn use_round_retry(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        serial: u32,
        sink: &mut ActionSink,
    ) {
        let (targets, attempt, duty) = {
            let Some(entry) = self.usr.entry_mut(seg, page) else {
                return;
            };
            let duty = entry.duty_span;
            let Some(round) = entry.round.as_mut() else {
                return;
            };
            if round.serial != serial {
                return;
            }
            round.attempt += 1;
            (round.remaining.clone(), round.attempt, duty)
        };
        if self.tracing() {
            let mut ev = self.trace_event(TraceKind::RoundRetry, duty, seg, page, sink);
            ev.serial = serial;
            ev.detail = u64::from(attempt);
            self.push_trace(ev, sink);
        }
        for v in targets.iter() {
            self.emit(v, ProtoMsg::ReaderInvalidate { seg, page, serial }, sink);
        }
        self.arm_retry(attempt, TimerKind::RoundRetry { seg, page, serial }, sink);
    }

    /// All victims invalidated: deliver the write copy (or upgrade) and
    /// report completion to the library.
    fn finish_write_round(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        store: &mut dyn PageStore,
        sink: &mut ActionSink,
    ) {
        let retry_on = self.config.retry.is_some();
        let (round, duty) = self
            .usr
            .entry_mut(seg, page)
            .and_then(|e| e.round.take().map(|r| (r, std::mem::take(&mut e.duty_span))))
            .expect("round in flight");
        let serial = round.serial;
        let Demand::Write { to, upgrade } = round.demand else {
            unreachable!("read demands never start ack rounds");
        };
        if to == self.site {
            // We are both clock site and requester: upgrade in place.
            store.set_prot(seg, page, PageProt::ReadWrite);
            let now = sink.now();
            let mut req_span = 0;
            if let Some(st) = self.usr.seg_mut(seg) {
                let e = st.aux.get_mut(page);
                e.install_time = now;
                e.window = round.window;
                if let Some(entry) = st.pages.get_mut(page.index()) {
                    entry.out_write = false;
                    entry.out_read = false;
                    req_span = std::mem::take(&mut entry.req_span);
                }
            }
            if self.tracing() {
                let span = if req_span != 0 { req_span } else { duty };
                let mut ev = self.trace_event(TraceKind::Upgraded, span, seg, page, sink);
                ev.serial = serial;
                ev.detail = u64::from(round.window.0);
                self.push_trace(ev, sink);
            }
            self.wake_satisfied(seg, page, store, sink);
        } else if upgrade {
            if retry_on {
                // Deferred relinquish (see `honor_invalidation`): every
                // victim has acknowledged — drop our copy now. Keeping
                // it readable until the upgrader's ack would leave a
                // *stale* copy here while the upgrader writes. But the
                // upgrader's read copy may itself have been lost in
                // transit (the library records readers when grants are
                // *emitted*, not when they install), so the bytes we
                // relinquish go into the retained entry as a reserve:
                // the notification retransmits until acknowledged, and
                // an `UpgradeNack` (receiver has no frame) escalates it
                // to a full data-carrying grant.
                let reserve = store.take(seg, page);
                if self.tracing() {
                    let mut ev =
                        self.trace_event(TraceKind::CopyRelinquished, duty, seg, page, sink);
                    ev.serial = serial;
                    self.push_trace(ev, sink);
                }
                self.retain_grant(
                    seg,
                    page,
                    PendingGrant {
                        to,
                        window: round.window,
                        data: reserve,
                        access: Access::Write,
                        upgrade: true,
                        serial,
                        attempt: 0,
                    },
                    sink,
                );
            }
            // §6.1 optimization 1: notification, not a page copy.
            self.emit(
                to,
                ProtoMsg::UpgradeGrant { seg, page, window: round.window, serial },
                sink,
            );
            if self.tracing() {
                let mut ev = self.trace_event(TraceKind::UpgradeSent, duty, seg, page, sink);
                ev.peer = Some(to);
                ev.serial = serial;
                ev.detail = u64::from(round.window.0);
                self.push_trace(ev, sink);
            }
        } else {
            let data = if retry_on {
                // Deferred relinquish: the only copy leaves this site in
                // the grant below, so retain it (`pending_grant`) until
                // the receiver acknowledges installation.
                let taken = store.take(seg, page);
                if self.tracing() {
                    let mut ev =
                        self.trace_event(TraceKind::CopyRelinquished, duty, seg, page, sink);
                    ev.serial = serial;
                    self.push_trace(ev, sink);
                }
                taken
            } else {
                round.data.expect("non-upgrade write demand carries data")
            };
            if retry_on {
                self.retain_grant(
                    seg,
                    page,
                    PendingGrant {
                        to,
                        window: round.window,
                        data: data.clone(),
                        access: Access::Write,
                        upgrade: false,
                        serial,
                        attempt: 0,
                    },
                    sink,
                );
            }
            let sent_delta = self.emit_data_grant(
                seg,
                page,
                to,
                Access::Write,
                round.window,
                data,
                serial,
                duty,
                sink,
            );
            if self.tracing() && !sent_delta {
                let mut ev = self.trace_event(TraceKind::GrantSent, duty, seg, page, sink);
                ev.peer = Some(to);
                ev.access = Some(Access::Write);
                ev.serial = serial;
                ev.detail = u64::from(round.window.0);
                self.push_trace(ev, sink);
            }
        }
        let info = DoneInfo { writer_downgraded: false };
        let lib = self.library_route(seg, page).0;
        self.emit(lib, ProtoMsg::InvalidateDone { seg, page, info, serial }, sink);
        if self.tracing() {
            let mut ev = self.trace_event(TraceKind::DoneSent, duty, seg, page, sink);
            ev.peer = Some(lib);
            ev.serial = serial;
            self.push_trace(ev, sink);
        }
        if retry_on {
            if let Some(entry) = self.usr.entry_mut(seg, page) {
                entry.pending_done = Some((serial, info));
                entry.done_attempt = 0;
                entry.last_serial = serial;
            }
            self.arm_retry(0, TimerKind::DoneRetry { seg, page, serial }, sink);
        }
    }

    /// A page arrived from the storing site.
    #[allow(clippy::too_many_arguments)] // Mirrors the wire message fields.
    pub(crate) fn use_grant(
        &mut self,
        from: SiteId,
        seg: SegmentId,
        page: PageNum,
        access: Access,
        window: Delta,
        data: PageData,
        serial: u32,
        store: &mut dyn PageStore,
        sink: &mut ActionSink,
    ) {
        let retry_on = self.config.retry.is_some();
        if retry_on {
            let stale = self
                .usr
                .seg(seg)
                .and_then(|s| s.pages.get(page.index()))
                .is_some_and(|e| serial < e.min_install_serial);
            if stale {
                // Duplicated or superseded grant: do not install, but
                // still acknowledge so the granter releases its retained
                // entry and stops retransmitting — staleness means we
                // already installed this grant once, or something newer
                // superseded it.
                if self.tracing() {
                    let mut ev =
                        self.trace_event(TraceKind::StaleGrantDropped, 0, seg, page, sink);
                    ev.peer = Some(from);
                    ev.access = Some(access);
                    ev.serial = serial;
                    self.push_trace(ev, sink);
                }
                self.emit(from, ProtoMsg::GrantAck { seg, page, serial }, sink);
                return;
            }
        }
        self.install_grant(from, seg, page, access, window, data, serial, store, sink);
    }

    /// A grant arrived as a diff against the last transfer we exchanged
    /// with the granter (delta-grant mode). Patch a clone of the shadow
    /// slot and install the result exactly as a full grant would be
    /// installed; when the slot is missing or its tag does not match
    /// the base the sender diffed against, nack so the granter
    /// escalates to a full [`ProtoMsg::PageGrant`].
    #[allow(clippy::too_many_arguments)] // Mirrors the wire message fields.
    pub(crate) fn use_grant_delta(
        &mut self,
        from: SiteId,
        seg: SegmentId,
        page: PageNum,
        access: Access,
        window: Delta,
        base_tag: u64,
        diff: PageDiff,
        serial: u32,
        store: &mut dyn PageStore,
        sink: &mut ActionSink,
    ) {
        let retry_on = self.config.retry.is_some();
        if retry_on {
            let stale = self
                .usr
                .seg(seg)
                .and_then(|s| s.pages.get(page.index()))
                .is_some_and(|e| serial < e.min_install_serial);
            if stale {
                if self.tracing() {
                    let mut ev =
                        self.trace_event(TraceKind::StaleGrantDropped, 0, seg, page, sink);
                    ev.peer = Some(from);
                    ev.access = Some(access);
                    ev.serial = serial;
                    self.push_trace(ev, sink);
                }
                self.emit(from, ProtoMsg::GrantAck { seg, page, serial }, sink);
                return;
            }
        }
        // The base is the retained shadow, never the live frame: a
        // relinquished frame has no bytes left, and the tag is a content
        // hash, so a matching slot holds the exact bytes the sender
        // diffed against no matter which peer delivered them.
        let patched = self.usr.entry_mut(seg, page).and_then(|e| {
            let sh = e.shadow.as_ref()?;
            if sh.tag != base_tag {
                return None;
            }
            let mut data = sh.data.clone();
            diff.apply(data.as_bytes_mut());
            Some(data)
        });
        let Some(data) = patched else {
            // Missing or diverged base (e.g. we restarted since the last
            // transfer, or the original delta this retransmission
            // duplicates was lost before it could advance our slot). The
            // granter evicts its slot for us and escalates the retained
            // grant to a full transfer.
            if self.tracing() {
                let mut ev = self.trace_event(TraceKind::DeltaRejected, 0, seg, page, sink);
                ev.peer = Some(from);
                ev.access = Some(access);
                ev.serial = serial;
                ev.detail = base_tag;
                self.push_trace(ev, sink);
            }
            self.emit(from, ProtoMsg::UpgradeNack { seg, page, serial }, sink);
            return;
        };
        if self.tracing() {
            let mut ev = self.trace_event(TraceKind::DeltaPatched, 0, seg, page, sink);
            ev.peer = Some(from);
            ev.access = Some(access);
            ev.serial = serial;
            ev.detail = fnv64(data.as_bytes());
            self.push_trace(ev, sink);
        }
        self.install_grant(from, seg, page, access, window, data, serial, store, sink);
    }

    /// Shared install tail for full grants and patched deltas: map the
    /// bytes, refresh the aux window, close out request state, trace,
    /// ack (retry mode), and wake.
    #[allow(clippy::too_many_arguments)]
    fn install_grant(
        &mut self,
        from: SiteId,
        seg: SegmentId,
        page: PageNum,
        access: Access,
        window: Delta,
        data: PageData,
        serial: u32,
        store: &mut dyn PageStore,
        sink: &mut ActionSink,
    ) {
        let retry_on = self.config.retry.is_some();
        if self.config.delta_grants {
            self.set_shadow(seg, page, from, &data);
        }
        let prot = match access {
            Access::Read => PageProt::Read,
            Access::Write => PageProt::ReadWrite,
        };
        store.install(seg, page, data, prot);
        let now = sink.now();
        let mut req_span = 0;
        if let Some(st) = self.usr.seg_mut(seg) {
            let e = st.aux.get_mut(page);
            e.install_time = now;
            e.window = window;
            if let Some(entry) = st.pages.get_mut(page.index()) {
                entry.out_read = false;
                if access == Access::Write {
                    entry.out_write = false;
                }
                // A read grant can land while a write request is still in
                // flight; that request's fetch span stays open for the
                // upgrade it will produce.
                req_span = if entry.out_write {
                    entry.req_span
                } else {
                    std::mem::take(&mut entry.req_span)
                };
                if retry_on {
                    // Anything stamped at or below what we just installed
                    // is older than our copy.
                    entry.min_install_serial = entry.min_install_serial.max(serial + 1);
                }
            }
        }
        if self.tracing() {
            let mut ev = self.trace_event(TraceKind::Installed, req_span, seg, page, sink);
            ev.peer = Some(from);
            ev.access = Some(access);
            ev.serial = serial;
            ev.detail = u64::from(window.0);
            self.push_trace(ev, sink);
        }
        if retry_on {
            self.emit(from, ProtoMsg::GrantAck { seg, page, serial }, sink);
        }
        self.wake_satisfied(seg, page, store, sink);
        self.drain_deferred(seg, page, store, sink);
    }

    /// We held a read copy and are now the writer (optimization 1).
    #[allow(clippy::too_many_arguments)] // Mirrors the wire message fields.
    pub(crate) fn use_upgrade(
        &mut self,
        from: SiteId,
        seg: SegmentId,
        page: PageNum,
        window: Delta,
        serial: u32,
        store: &mut dyn PageStore,
        sink: &mut ActionSink,
    ) {
        let retry_on = self.config.retry.is_some();
        if retry_on {
            let stale = self
                .usr
                .seg(seg)
                .and_then(|s| s.pages.get(page.index()))
                .is_some_and(|e| serial < e.min_install_serial);
            if stale {
                // A delayed/duplicated upgrade from a serve that has been
                // superseded must not re-promote us, but the granter
                // still needs the ack to release its retained copy.
                if self.tracing() {
                    let mut ev =
                        self.trace_event(TraceKind::StaleGrantDropped, 0, seg, page, sink);
                    ev.peer = Some(from);
                    ev.access = Some(Access::Write);
                    ev.serial = serial;
                    self.push_trace(ev, sink);
                }
                self.emit(from, ProtoMsg::GrantAck { seg, page, serial }, sink);
                return;
            }
            if store.prot(seg, page) == PageProt::None {
                // The read copy this upgrade presumes never arrived
                // (lost in transit, or its granting instruction died
                // with a crashed library). We cannot become the writer
                // without bytes — tell the granter, which escalates its
                // retained notification to a full data-carrying grant.
                if self.tracing() {
                    let mut ev =
                        self.trace_event(TraceKind::UpgradeNackSent, 0, seg, page, sink);
                    ev.peer = Some(from);
                    ev.serial = serial;
                    self.push_trace(ev, sink);
                }
                self.emit(from, ProtoMsg::UpgradeNack { seg, page, serial }, sink);
                return;
            }
        }
        store.set_prot(seg, page, PageProt::ReadWrite);
        let now = sink.now();
        let mut req_span = 0;
        if let Some(st) = self.usr.seg_mut(seg) {
            let e = st.aux.get_mut(page);
            e.install_time = now;
            e.window = window;
            if let Some(entry) = st.pages.get_mut(page.index()) {
                entry.out_read = false;
                entry.out_write = false;
                req_span = std::mem::take(&mut entry.req_span);
                if retry_on {
                    entry.min_install_serial = entry.min_install_serial.max(serial + 1);
                }
            }
        }
        if self.tracing() {
            let mut ev = self.trace_event(TraceKind::Upgraded, req_span, seg, page, sink);
            ev.peer = Some(from);
            ev.serial = serial;
            ev.detail = u64::from(window.0);
            self.push_trace(ev, sink);
        }
        if retry_on {
            self.emit(from, ProtoMsg::GrantAck { seg, page, serial }, sink);
        }
        self.wake_satisfied(seg, page, store, sink);
        self.drain_deferred(seg, page, store, sink);
    }

    /// Runs clock-site duties that were deferred while our copy was in
    /// flight. Each op is dispatched once; an op that still cannot run
    /// (copy gone again) re-defers itself without looping.
    fn drain_deferred(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        store: &mut dyn PageStore,
        sink: &mut ActionSink,
    ) {
        let Some(ops) = self.usr.entry_mut(seg, page).map(|e| std::mem::take(&mut e.deferred))
        else {
            return;
        };
        for op in ops {
            match op {
                DeferredOp::Invalidate { demand, readers, window, serial } => {
                    self.use_invalidate(
                        seg, page, demand, readers, window, serial, store, sink,
                    );
                }
                DeferredOp::AddReaders { readers, window, serial } => {
                    self.use_add_readers(seg, page, readers, window, serial, store, sink);
                }
                DeferredOp::ReaderInvalidate { from, serial } => {
                    self.use_reader_invalidate(from, seg, page, serial, store, sink);
                }
            }
        }
    }

    /// Library confirmed receipt of a completion report: stop
    /// retransmitting it.
    pub(crate) fn use_done_ack(&mut self, seg: SegmentId, page: PageNum, serial: u32) {
        if let Some(entry) = self.usr.entry_mut(seg, page) {
            if matches!(entry.pending_done, Some((s, _)) if s == serial) {
                entry.pending_done = None;
                entry.done_attempt = 0;
            }
        }
    }

    /// Emits a data-carrying grant to `to`, choosing the wire form:
    /// when delta grants are on and the shadow slot holds this
    /// recipient's last transfer, ship an XOR diff against it wherever
    /// that is smaller than the full page; otherwise ship the page.
    /// Either way the slot advances to the content now on the wire, so
    /// a retransmission recomputes against the *current* slot — after a
    /// successful first delta that yields an empty diff the installed
    /// receiver acks as stale, and after a *lost* first delta the
    /// receiver's tag mismatches, it nacks, and the grant escalates to
    /// a full transfer.
    ///
    /// Returns true when a delta was sent (and traced as
    /// [`TraceKind::DeltaGrantSent`]); the caller traces its own
    /// `GrantSent` only for the full form, so the two kinds partition
    /// data grants for the metrics split.
    #[allow(clippy::too_many_arguments)]
    fn emit_data_grant(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        to: SiteId,
        access: Access,
        window: Delta,
        data: PageData,
        serial: u32,
        span: u64,
        sink: &mut ActionSink,
    ) -> bool {
        if self.config.delta_grants {
            let choice = self.usr.entry_mut(seg, page).and_then(|e| {
                let sh = e.shadow.as_ref()?;
                if sh.peer != to {
                    return None;
                }
                let diff = PageDiff::compute(sh.data.as_bytes(), data.as_bytes());
                let payload = ProtoMsg::delta_payload_bytes(&diff);
                (payload < ProtoMsg::FULL_GRANT_PAYLOAD_BYTES)
                    .then_some((sh.tag, diff, payload))
            });
            self.set_shadow(seg, page, to, &data);
            if let Some((base_tag, diff, payload)) = choice {
                let tag = fnv64(data.as_bytes());
                self.emit(
                    to,
                    ProtoMsg::PageGrantDelta {
                        seg,
                        page,
                        access,
                        window,
                        base_tag,
                        diff,
                        serial,
                    },
                    sink,
                );
                if self.tracing() {
                    let mut ev =
                        self.trace_event(TraceKind::DeltaGrantSent, span, seg, page, sink);
                    ev.peer = Some(to);
                    ev.access = Some(access);
                    ev.serial = serial;
                    ev.detail = tag;
                    ev.epoch = payload as u32;
                    self.push_trace(ev, sink);
                }
                return true;
            }
        }
        self.emit(to, ProtoMsg::PageGrant { seg, page, access, window, data, serial }, sink);
        false
    }

    /// Replaces the page's delta base with the content just transferred
    /// to or from `peer` (delta-grant mode only). Reuses the slot's
    /// allocation once one exists, so steady-state ping-pong does not
    /// churn the heap.
    fn set_shadow(&mut self, seg: SegmentId, page: PageNum, peer: SiteId, data: &PageData) {
        let Some(entry) = self.usr.entry_mut(seg, page) else {
            return;
        };
        let tag = fnv64(data.as_bytes());
        match entry.shadow.as_deref_mut() {
            Some(sh) => {
                sh.peer = peer;
                sh.tag = tag;
                sh.data.as_bytes_mut().copy_from_slice(data.as_bytes());
            }
            None => {
                entry.shadow = Some(Box::new(ShadowBase { peer, tag, data: data.clone() }));
            }
        }
    }

    /// Remembers a grant until its receiver acknowledges installation
    /// (retry mode), arming the retransmit chain. Retransmitted serve
    /// instructions can re-grant the same (receiver, serial) pair;
    /// those duplicates are not retained twice.
    fn retain_grant(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        grant: PendingGrant,
        sink: &mut ActionSink,
    ) {
        let serial = grant.serial;
        let Some(entry) = self.usr.entry_mut(seg, page) else {
            return;
        };
        if entry.pending_grants.iter().any(|g| g.to == grant.to && g.serial == serial) {
            return;
        }
        entry.pending_grants.push(grant);
        self.arm_retry(0, TimerKind::GrantRetry { seg, page, serial }, sink);
    }

    /// The upgrade receiver has no frame to promote: its read copy was
    /// lost. Escalate the retained notification to a full data-carrying
    /// write grant — the reserve bytes taken at relinquish time travel
    /// now. Idempotent: a duplicate nack just retransmits the grant.
    pub(crate) fn use_upgrade_nack(
        &mut self,
        from: SiteId,
        seg: SegmentId,
        page: PageNum,
        serial: u32,
        sink: &mut ActionSink,
    ) {
        let Some(entry) = self.usr.entry_mut(seg, page) else {
            return;
        };
        // A nack also rejects a delta whose base the receiver no longer
        // holds: drop our slot for that peer so we stop diffing against
        // a base it cannot patch (the escalated full grant below
        // re-bootstraps it).
        if entry.shadow.as_deref().is_some_and(|sh| sh.peer == from) {
            entry.shadow = None;
        }
        let Some(g) =
            entry.pending_grants.iter_mut().find(|g| g.to == from && g.serial == serial)
        else {
            return;
        };
        g.upgrade = false;
        let (to, window, data, access) = (g.to, g.window, g.data.clone(), g.access);
        if self.config.delta_grants {
            self.set_shadow(seg, page, to, &data);
        }
        if self.tracing() {
            let mut ev = self.trace_event(TraceKind::GrantEscalated, 0, seg, page, sink);
            ev.peer = Some(to);
            ev.access = Some(access);
            ev.serial = serial;
            self.push_trace(ev, sink);
        }
        self.emit(to, ProtoMsg::PageGrant { seg, page, access, window, data, serial }, sink);
    }

    /// Receiver confirmed installation of a grant: drop the retained
    /// entry, ending its retransmit chain.
    pub(crate) fn use_grant_ack(
        &mut self,
        from: SiteId,
        seg: SegmentId,
        page: PageNum,
        serial: u32,
    ) {
        if let Some(entry) = self.usr.entry_mut(seg, page) {
            entry.pending_grants.retain(|g| !(g.to == from && g.serial == serial));
        }
    }

    /// Completion-report retransmit timer fired (retry mode).
    pub(crate) fn use_done_retry(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        serial: u32,
        sink: &mut ActionSink,
    ) {
        let Some(entry) = self.usr.entry_mut(seg, page) else {
            return;
        };
        let info = match &entry.pending_done {
            Some((s, info)) if *s == serial => *info,
            _ => return,
        };
        entry.done_attempt += 1;
        let attempt = entry.done_attempt;
        let lib = self.library_route(seg, page).0;
        if self.tracing() {
            let mut ev = self.trace_event(TraceKind::DoneRetry, 0, seg, page, sink);
            ev.peer = Some(lib);
            ev.serial = serial;
            ev.detail = u64::from(attempt);
            self.push_trace(ev, sink);
        }
        self.emit(lib, ProtoMsg::InvalidateDone { seg, page, info, serial }, sink);
        self.arm_retry(attempt, TimerKind::DoneRetry { seg, page, serial }, sink);
    }

    /// Grant retransmit timer fired (retry mode): re-send every
    /// retained grant stamped with this serial that is still unacked.
    pub(crate) fn use_grant_retry(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        serial: u32,
        sink: &mut ActionSink,
    ) {
        let Some(entry) = self.usr.entry_mut(seg, page) else {
            return;
        };
        let mut sends = Vec::new();
        let mut attempt = 0;
        for g in &mut entry.pending_grants {
            if g.serial == serial {
                g.attempt += 1;
                attempt = attempt.max(g.attempt);
                sends.push((g.to, g.window, g.data.clone(), g.access, g.upgrade));
            }
        }
        if sends.is_empty() {
            return;
        }
        if self.tracing() {
            let mut ev = self.trace_event(TraceKind::GrantRetry, 0, seg, page, sink);
            ev.serial = serial;
            ev.detail = sends.len() as u64;
            self.push_trace(ev, sink);
        }
        for (to, window, data, access, upgrade) in sends {
            if upgrade {
                self.emit(to, ProtoMsg::UpgradeGrant { seg, page, window, serial }, sink);
            } else {
                // Re-decides the wire form against the current shadow;
                // see `emit_data_grant` for why a retransmit after a
                // lost delta escalates instead of wedging.
                self.emit_data_grant(seg, page, to, access, window, data, serial, 0, sink);
            }
        }
        self.arm_retry(attempt, TimerKind::GrantRetry { seg, page, serial }, sink);
    }

    /// Site restart (retry mode): retransmit every persistent unacked
    /// obligation and re-arm its retry chain. Volatile state (waiters,
    /// rounds, request flags) was lost in the crash; the other sites'
    /// retries and the local processes' re-faults rebuild it.
    pub(crate) fn use_restart(&mut self, sink: &mut ActionSink) {
        if self.config.retry.is_none() {
            return;
        }
        for (seg, page) in self.usr.pending_pages() {
            let (done_serial, mut grant_serials) = {
                let Some(entry) = self.usr.entry_mut(seg, page) else {
                    continue;
                };
                (
                    entry.pending_done.as_ref().map(|&(s, _)| s),
                    entry.pending_grants.iter().map(|g| g.serial).collect::<Vec<_>>(),
                )
            };
            if let Some(s) = done_serial {
                self.use_done_retry(seg, page, s, sink);
            }
            grant_serials.sort_unstable();
            grant_serials.dedup();
            for s in grant_serials {
                self.use_grant_retry(seg, page, s, sink);
            }
        }
    }

    /// A library-bound message of ours hit a forwarding stub: the role
    /// moved. Apply the redirect if it is news (strictly newer epoch),
    /// then immediately re-aim every outstanding library-bound
    /// obligation for the segment at the new site — the retransmit
    /// chains would find it eventually, but re-sending now saves a full
    /// backoff interval per obligation.
    pub(crate) fn use_redirect(
        &mut self,
        from: SiteId,
        seg: SegmentId,
        page: PageNum,
        epoch: u32,
        to: SiteId,
        sink: &mut ActionSink,
    ) {
        let Some((_, current)) = self.usr.lib_hint(seg, page) else {
            return;
        };
        if epoch <= current {
            // Stale stub (we already chased the role further) or a
            // duplicate of a redirect already applied.
            return;
        }
        self.usr.set_lib_hint(seg, page, to, epoch);
        if self.tracing() {
            let mut ev = self.trace_event(TraceKind::RedirectApplied, 0, seg, page, sink);
            ev.peer = Some(to);
            ev.epoch = epoch;
            ev.detail = u64::from(from.0);
            self.push_trace(ev, sink);
        }
        // Re-emit outstanding requests and unacked completion reports —
        // only for pages in the shard the redirect names: other shards'
        // roles did not move, and their obligations still aim correctly.
        // No attempt bump and no new timers: the existing retry chains
        // stay armed and cover loss of these re-sends too.
        for p in self.usr.shard_range(seg, page) {
            let pg = PageNum(p as u32);
            let Some(entry) = self.usr.entry_mut(seg, pg) else {
                continue;
            };
            // A write request covers a read one: resend the strongest
            // outstanding class, as the retry path does.
            let access = if entry.out_write {
                Some(Access::Write)
            } else if entry.out_read {
                Some(Access::Read)
            } else {
                None
            };
            let pid = entry
                .retry_pid
                .or_else(|| entry.waiters.first().map(|&(pid, _)| pid))
                .unwrap_or(Pid::new(self.site, 0));
            let done = entry.pending_done;
            if let Some(access) = access {
                self.emit(
                    to,
                    ProtoMsg::PageRequest { seg, page: pg, access, pid, epoch },
                    sink,
                );
            }
            if let Some((serial, info)) = done {
                self.emit(to, ProtoMsg::InvalidateDone { seg, page: pg, info, serial }, sink);
            }
        }
    }

    /// Wakes every blocked process whose access the page now permits.
    fn wake_satisfied(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        store: &mut dyn PageStore,
        sink: &mut ActionSink,
    ) {
        let prot = store.prot(seg, page);
        // The scratch vector is owned by UseState and reused across
        // calls, so waking allocates nothing in steady state.
        let mut scratch = std::mem::take(&mut self.usr.wake_scratch);
        scratch.clear();
        if let Some(entry) = self.usr.entry_mut(seg, page) {
            entry.waiters.retain(|&(pid, access)| {
                if prot.permits(access) {
                    scratch.push(pid);
                    false
                } else {
                    true
                }
            });
        }
        for &pid in &scratch {
            sink.push(Action::Wake { pid });
        }
        self.usr.wake_scratch = scratch;
    }
}
