//! The using-site role: fault handling, page installation, and clock-site
//! duties (window enforcement and invalidation rounds).

use std::collections::{
    HashMap,
    HashSet,
};

use mirage_mem::{
    AuxTable,
    PageData,
};
use mirage_types::{
    Access,
    Delta,
    PageNum,
    PageProt,
    Pid,
    SegmentId,
    SiteId,
    SiteSet,
};

use crate::{
    config::ProtocolConfig,
    engine::{
        Ctx,
        SiteEngine,
        TimerKind,
    },
    msg::{
        Demand,
        DoneInfo,
        ProtoMsg,
    },
    store::PageStore,
};

/// An in-flight invalidation round this site is conducting as clock site.
#[derive(Debug)]
struct InvRound {
    demand: Demand,
    window: Delta,
    /// Victims whose acks are still awaited.
    remaining: SiteSet,
    /// Victims not yet sent an invalidation (sequential mode).
    to_send: Vec<SiteId>,
    /// Page data to forward to the new writer once the round completes
    /// (absent for upgrades).
    data: Option<PageData>,
}

/// An invalidation delayed until window expiry (queued-invalidation
/// optimization, §7.1 caveat 1).
#[derive(Debug)]
struct DelayedInvalidate {
    demand: Demand,
    readers: SiteSet,
    window: Delta,
}

/// Per-segment using-site state.
#[derive(Debug)]
struct SegState {
    aux: AuxTable,
    waiters: HashMap<PageNum, Vec<(Pid, Access)>>,
    out_read: HashSet<PageNum>,
    out_write: HashSet<PageNum>,
}

/// A clock-site duty that arrived before the page it concerns.
///
/// The library serializes demands per page, but the page *data* travels
/// on a different circuit (old holder → new clock) than the library's
/// next instruction (library → new clock); a short instruction can
/// physically beat a 1024-byte grant (6.4 ms vs 15 ms one-way in the
/// paper's own numbers). A robust clock site defers such duties until
/// its copy arrives.
#[derive(Debug)]
enum DeferredOp {
    Invalidate { demand: Demand, readers: SiteSet, window: Delta },
    AddReaders { readers: SiteSet, window: Delta },
    ReaderInvalidate { from: SiteId },
}

/// Using-role state for all segments known at this site.
#[derive(Debug, Default)]
pub struct UseState {
    segs: HashMap<SegmentId, SegState>,
    rounds: HashMap<(SegmentId, PageNum), InvRound>,
    delayed: HashMap<(SegmentId, PageNum), DelayedInvalidate>,
    deferred: HashMap<(SegmentId, PageNum), std::collections::VecDeque<DeferredOp>>,
}

impl UseState {
    pub(crate) fn register_segment(
        &mut self,
        seg: SegmentId,
        pages: usize,
        config: &ProtocolConfig,
    ) {
        let mut aux = AuxTable::new(pages, Delta::ZERO);
        for p in 0..pages {
            let page = PageNum(p as u32);
            aux.set_window(page, config.delta.window(page));
        }
        self.segs.insert(
            seg,
            SegState {
                aux,
                waiters: HashMap::new(),
                out_read: HashSet::new(),
                out_write: HashSet::new(),
            },
        );
    }

    pub(crate) fn waiter_count(&self, seg: SegmentId, page: PageNum) -> usize {
        self.segs
            .get(&seg)
            .and_then(|s| s.waiters.get(&page))
            .map_or(0, Vec::len)
    }

    pub(crate) fn has_outstanding(&self, seg: SegmentId, page: PageNum, access: Access) -> bool {
        self.segs.get(&seg).is_some_and(|s| match access {
            Access::Read => s.out_read.contains(&page),
            Access::Write => s.out_write.contains(&page),
        })
    }
}

impl SiteEngine {
    /// A local process faulted on a shared page (typed fault, §6.2).
    pub(crate) fn fault(
        &mut self,
        pid: Pid,
        seg: SegmentId,
        page: PageNum,
        access: Access,
        store: &mut dyn PageStore,
        ctx: &mut Ctx,
    ) {
        if store.prot(seg, page).permits(access) {
            // The process's PTE was stale (lazy remapping, §6.2); the
            // master already permits the access.
            self.wake(pid, ctx);
            return;
        }
        let Some(st) = self.usr.segs.get_mut(&seg) else {
            return;
        };
        st.waiters.entry(page).or_default().push((pid, access));
        // Deduplicate outstanding requests from this site: an in-flight
        // write request will grant read-write, which covers read faults
        // too.
        let need_send = match access {
            Access::Read => !st.out_read.contains(&page) && !st.out_write.contains(&page),
            Access::Write => !st.out_write.contains(&page),
        };
        if need_send {
            match access {
                Access::Read => {
                    st.out_read.insert(page);
                }
                Access::Write => {
                    st.out_write.insert(page);
                }
            }
            self.emit(seg.library, ProtoMsg::PageRequest { seg, page, access, pid }, ctx);
        }
    }

    /// Library told us (the fixed clock site) to grant read copies to
    /// additional readers — Table 1 row 1, no clock check.
    pub(crate) fn use_add_readers(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        readers: SiteSet,
        window: Delta,
        store: &mut dyn PageStore,
        ctx: &mut Ctx,
    ) {
        if store.prot(seg, page) == PageProt::None {
            // Our copy is still in flight; serve the readers once it
            // lands.
            self.usr
                .deferred
                .entry((seg, page))
                .or_default()
                .push_back(DeferredOp::AddReaders { readers, window });
            return;
        }
        let data = store.copy(seg, page);
        for r in readers.iter() {
            if r == self.site {
                continue;
            }
            self.emit(
                r,
                ProtoMsg::PageGrant {
                    seg,
                    page,
                    access: Access::Read,
                    window,
                    data: data.as_bytes().to_vec(),
                },
                ctx,
            );
        }
        if readers.contains(self.site) {
            // Raced local request: we already hold a copy; wake readers.
            self.wake_satisfied(seg, page, store, ctx);
        }
    }

    /// Library asked us (the clock site) to invalidate the current copy.
    #[allow(clippy::too_many_arguments)] // Mirrors the wire message fields.
    pub(crate) fn use_invalidate(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        demand: Demand,
        readers: SiteSet,
        window: Delta,
        store: &mut dyn PageStore,
        ctx: &mut Ctx,
    ) {
        if store.prot(seg, page) == PageProt::None {
            // The copy this demand must invalidate has not arrived yet
            // (short library message beat the page-carrying grant).
            // Defer; the window check will run against the fresh install.
            self.usr
                .deferred
                .entry((seg, page))
                .or_default()
                .push_back(DeferredOp::Invalidate { demand, readers, window });
            return;
        }
        let now = ctx.now;
        let expired = self
            .usr
            .segs
            .get(&seg)
            .map(|st| st.aux.get(page).window_expired(now))
            .unwrap_or(true);
        if !expired {
            let st = self.usr.segs.get(&seg).expect("segment known");
            let remaining = st.aux.get(page).window_remaining(now);
            if self.config.queued_invalidation
                && remaining <= mirage_net::NetCosts::vax_locus().retry_threshold()
            {
                // §7.1 caveat 1: honor after a short delay rather than
                // forcing the library to retry over the network.
                let expiry = st.aux.get(page).window_expiry();
                self.usr
                    .delayed
                    .insert((seg, page), DelayedInvalidate { demand, readers, window });
                self.set_timer(expiry, TimerKind::ClockDelayed { seg, page }, ctx);
                return;
            }
            // "the clock site replies immediately with the amount of time
            // the library must wait until the invalidation can be
            // honored."
            self.emit(
                seg.library,
                ProtoMsg::InvalidateDeny { seg, page, wait: remaining },
                ctx,
            );
            return;
        }
        self.honor_invalidation(seg, page, demand, readers, window, store, ctx);
    }

    /// A delayed (queued) invalidation's window expired; honor it now.
    pub(crate) fn use_delayed_invalidation(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        store: &mut dyn PageStore,
        ctx: &mut Ctx,
    ) {
        let Some(d) = self.usr.delayed.remove(&(seg, page)) else {
            return;
        };
        self.honor_invalidation(seg, page, d.demand, d.readers, d.window, store, ctx);
    }

    /// Carries out an accepted invalidation: "typically it: 1) invalidates
    /// the local page, 2) invalidates any other outstanding readers, if
    /// the page is a read-copy and 3) distributes the page to the new
    /// writer or any new readers." (§6.1)
    #[allow(clippy::too_many_arguments)] // Mirrors the wire message fields.
    fn honor_invalidation(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        demand: Demand,
        readers: SiteSet,
        window: Delta,
        store: &mut dyn PageStore,
        ctx: &mut Ctx,
    ) {
        debug_assert!(
            !self.usr.rounds.contains_key(&(seg, page)),
            "library serializes demands per page"
        );
        match demand {
            Demand::Read { to } => {
                // We are the writer (Table 1 row 3). Grant read copies,
                // then downgrade ourselves (optimization 2) or discard.
                let data = store.copy(seg, page);
                for r in to.iter() {
                    if r == self.site {
                        continue;
                    }
                    self.emit(
                        r,
                        ProtoMsg::PageGrant {
                            seg,
                            page,
                            access: Access::Read,
                            window,
                            data: data.as_bytes().to_vec(),
                        },
                        ctx,
                    );
                }
                let downgraded = self.config.downgrade_optimization;
                if downgraded {
                    store.set_prot(seg, page, PageProt::Read);
                    // Table 2: `install time` is "installation time for
                    // this page at this site" — a downgrade is not a new
                    // install, so the (already expired) window is NOT
                    // restarted. A reader that turns around and writes
                    // (the Figure 8 pattern) therefore upgrades without
                    // waiting out a second window.
                    if let Some(st) = self.usr.segs.get_mut(&seg) {
                        st.aux.get_mut(page).window = window;
                    }
                } else {
                    store.set_prot(seg, page, PageProt::None);
                }
                self.emit(
                    seg.library,
                    ProtoMsg::InvalidateDone {
                        seg,
                        page,
                        info: DoneInfo { writer_downgraded: downgraded },
                    },
                    ctx,
                );
            }
            Demand::Write { to, upgrade } => {
                let i_am_writer = store.prot(seg, page) == PageProt::ReadWrite;
                // Victims: every reader except the upgrading requester
                // and ourselves (we invalidate locally, without a
                // message).
                let mut victims = readers;
                victims.remove(self.site);
                if upgrade {
                    victims.remove(to);
                }
                // Invalidate the local copy; if we are the data source
                // (no upgrade), keep the bytes to forward.
                let data = if self.site == to {
                    None
                } else if upgrade {
                    store.set_prot(seg, page, PageProt::None);
                    None
                } else {
                    debug_assert!(
                        i_am_writer || readers.contains(self.site),
                        "clock site must hold a copy"
                    );
                    Some(store.take(seg, page))
                };
                let mut round = InvRound {
                    demand: Demand::Write { to, upgrade },
                    window,
                    remaining: SiteSet::empty(),
                    to_send: victims.iter().collect(),
                    data,
                };
                if round.to_send.is_empty() {
                    self.usr.rounds.insert((seg, page), round);
                    self.finish_write_round(seg, page, store, ctx);
                    return;
                }
                if self.config.multicast_invalidation {
                    // One multicast round: send all, await all acks.
                    for v in round.to_send.drain(..) {
                        round.remaining.insert(v);
                        self.emit(v, ProtoMsg::ReaderInvalidate { seg, page }, ctx);
                    }
                } else {
                    // Paper behaviour: "invalidations are processed
                    // sequentially" — one victim at a time.
                    let first = round.to_send.remove(0);
                    round.remaining.insert(first);
                    self.emit(first, ProtoMsg::ReaderInvalidate { seg, page }, ctx);
                }
                self.usr.rounds.insert((seg, page), round);
            }
        }
    }

    /// The clock site told us to discard our read copy.
    pub(crate) fn use_reader_invalidate(
        &mut self,
        from: SiteId,
        seg: SegmentId,
        page: PageNum,
        store: &mut dyn PageStore,
        ctx: &mut Ctx,
    ) {
        if store.prot(seg, page) == PageProt::None {
            let expecting_grant = self.usr.segs.get(&seg).is_some_and(|st| {
                st.out_read.contains(&page) || st.out_write.contains(&page)
            });
            if expecting_grant {
                // Our read copy from the *previous* demand is still in
                // flight on another circuit. Acking now would let the
                // stale grant install after the new writer's write —
                // defer the invalidation until the copy lands.
                self.usr
                    .deferred
                    .entry((seg, page))
                    .or_default()
                    .push_back(DeferredOp::ReaderInvalidate { from });
                return;
            }
        }
        store.set_prot(seg, page, PageProt::None);
        self.emit(from, ProtoMsg::ReaderInvalidateAck { seg, page }, ctx);
    }

    /// A victim acknowledged its invalidation.
    pub(crate) fn use_reader_ack(
        &mut self,
        from: SiteId,
        seg: SegmentId,
        page: PageNum,
        store: &mut dyn PageStore,
        ctx: &mut Ctx,
    ) {
        let finished = {
            let Some(round) = self.usr.rounds.get_mut(&(seg, page)) else {
                return;
            };
            round.remaining.remove(from);
            if let Some(next) = (!round.to_send.is_empty()).then(|| round.to_send.remove(0)) {
                round.remaining.insert(next);
                self.emit(next, ProtoMsg::ReaderInvalidate { seg, page }, ctx);
                false
            } else {
                round.remaining.is_empty()
            }
        };
        if finished {
            self.finish_write_round(seg, page, store, ctx);
        }
    }

    /// All victims invalidated: deliver the write copy (or upgrade) and
    /// report completion to the library.
    fn finish_write_round(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        store: &mut dyn PageStore,
        ctx: &mut Ctx,
    ) {
        let round = self.usr.rounds.remove(&(seg, page)).expect("round in flight");
        let Demand::Write { to, upgrade } = round.demand else {
            unreachable!("read demands never start ack rounds");
        };
        if to == self.site {
            // We are both clock site and requester: upgrade in place.
            store.set_prot(seg, page, PageProt::ReadWrite);
            if let Some(st) = self.usr.segs.get_mut(&seg) {
                let e = st.aux.get_mut(page);
                e.install_time = ctx.now;
                e.window = round.window;
                st.out_write.remove(&page);
                st.out_read.remove(&page);
            }
            self.wake_satisfied(seg, page, store, ctx);
        } else if upgrade {
            // §6.1 optimization 1: notification, not a page copy.
            self.emit(to, ProtoMsg::UpgradeGrant { seg, page, window: round.window }, ctx);
        } else {
            let data = round.data.expect("non-upgrade write demand carries data");
            self.emit(
                to,
                ProtoMsg::PageGrant {
                    seg,
                    page,
                    access: Access::Write,
                    window: round.window,
                    data: data.as_bytes().to_vec(),
                },
                ctx,
            );
        }
        self.emit(
            seg.library,
            ProtoMsg::InvalidateDone {
                seg,
                page,
                info: DoneInfo { writer_downgraded: false },
            },
            ctx,
        );
    }

    /// A page arrived from the storing site.
    #[allow(clippy::too_many_arguments)] // Mirrors the wire message fields.
    pub(crate) fn use_grant(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        access: Access,
        window: Delta,
        data: Vec<u8>,
        store: &mut dyn PageStore,
        ctx: &mut Ctx,
    ) {
        let prot = match access {
            Access::Read => PageProt::Read,
            Access::Write => PageProt::ReadWrite,
        };
        store.install(seg, page, PageData::from_bytes(&data), prot);
        if let Some(st) = self.usr.segs.get_mut(&seg) {
            let e = st.aux.get_mut(page);
            e.install_time = ctx.now;
            e.window = window;
            st.out_read.remove(&page);
            if access == Access::Write {
                st.out_write.remove(&page);
            }
        }
        self.wake_satisfied(seg, page, store, ctx);
        self.drain_deferred(seg, page, store, ctx);
    }

    /// We held a read copy and are now the writer (optimization 1).
    pub(crate) fn use_upgrade(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        window: Delta,
        store: &mut dyn PageStore,
        ctx: &mut Ctx,
    ) {
        store.set_prot(seg, page, PageProt::ReadWrite);
        if let Some(st) = self.usr.segs.get_mut(&seg) {
            let e = st.aux.get_mut(page);
            e.install_time = ctx.now;
            e.window = window;
            st.out_read.remove(&page);
            st.out_write.remove(&page);
        }
        self.wake_satisfied(seg, page, store, ctx);
        self.drain_deferred(seg, page, store, ctx);
    }

    /// Runs clock-site duties that were deferred while our copy was in
    /// flight. Each op is dispatched once; an op that still cannot run
    /// (copy gone again) re-defers itself without looping.
    fn drain_deferred(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        store: &mut dyn PageStore,
        ctx: &mut Ctx,
    ) {
        let Some(ops) = self.usr.deferred.remove(&(seg, page)) else {
            return;
        };
        for op in ops {
            match op {
                DeferredOp::Invalidate { demand, readers, window } => {
                    self.use_invalidate(seg, page, demand, readers, window, store, ctx);
                }
                DeferredOp::AddReaders { readers, window } => {
                    self.use_add_readers(seg, page, readers, window, store, ctx);
                }
                DeferredOp::ReaderInvalidate { from } => {
                    self.use_reader_invalidate(from, seg, page, store, ctx);
                }
            }
        }
    }

    /// Wakes every blocked process whose access the page now permits.
    fn wake_satisfied(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        store: &mut dyn PageStore,
        ctx: &mut Ctx,
    ) {
        let prot = store.prot(seg, page);
        let mut to_wake = Vec::new();
        if let Some(st) = self.usr.segs.get_mut(&seg) {
            if let Some(waiters) = st.waiters.get_mut(&page) {
                waiters.retain(|&(pid, access)| {
                    if prot.permits(access) {
                        to_wake.push(pid);
                        false
                    } else {
                        true
                    }
                });
            }
        }
        for pid in to_wake {
            self.wake(pid, ctx);
        }
    }
}
