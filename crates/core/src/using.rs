//! The using-site role: fault handling, page installation, and clock-site
//! duties (window enforcement and invalidation rounds).
//!
//! Per-page state lives in dense per-segment tables ([`UseState`]): one
//! slab-index lookup per segment, then plain vector indexing per page —
//! the shape of the paper's auxpte arrays (Table 2). Each page entry
//! absorbs what used to be five separate tuple-keyed maps (waiters,
//! outstanding-request flags, invalidation round, delayed invalidation,
//! deferred clock duties), so the fault path hashes nothing per page and
//! steady-state handling allocates nothing.

use std::collections::{
    HashMap,
    VecDeque,
};

use mirage_mem::{
    AuxTable,
    PageData,
};
use mirage_types::{
    Access,
    Delta,
    PageNum,
    PageProt,
    Pid,
    ReaderSet,
    SegmentId,
    SiteId,
    SiteSet,
};

use crate::{
    config::ProtocolConfig,
    engine::{
        SiteEngine,
        TimerKind,
    },
    event::Action,
    msg::{
        Demand,
        DoneInfo,
        ProtoMsg,
    },
    sink::ActionSink,
    store::PageStore,
};

/// An in-flight invalidation round this site is conducting as clock site.
#[derive(Debug)]
struct InvRound {
    demand: Demand,
    window: Delta,
    /// Victims whose acks are still awaited.
    remaining: ReaderSet,
    /// Victims not yet sent an invalidation (sequential mode), visited
    /// in ascending site order.
    to_send: ReaderSet,
    /// Page data to forward to the new writer once the round completes
    /// (absent for upgrades).
    data: Option<PageData>,
}

/// An invalidation delayed until window expiry (queued-invalidation
/// optimization, §7.1 caveat 1).
#[derive(Debug)]
struct DelayedInvalidate {
    demand: Demand,
    readers: ReaderSet,
    window: Delta,
}

/// A clock-site duty that arrived before the page it concerns.
///
/// The library serializes demands per page, but the page *data* travels
/// on a different circuit (old holder → new clock) than the library's
/// next instruction (library → new clock); a short instruction can
/// physically beat a 1024-byte grant (6.4 ms vs 15 ms one-way in the
/// paper's own numbers). A robust clock site defers such duties until
/// its copy arrives.
#[derive(Debug)]
enum DeferredOp {
    Invalidate { demand: Demand, readers: ReaderSet, window: Delta },
    AddReaders { readers: ReaderSet, window: Delta },
    ReaderInvalidate { from: SiteId },
}

/// The using-site record for one page: everything this site tracks about
/// the page beyond the auxpte proper.
#[derive(Debug, Default)]
struct UsePage {
    /// Local processes blocked in a fault on this page.
    waiters: Vec<(Pid, Access)>,
    /// A read request for this page is in flight to the library.
    out_read: bool,
    /// A write request for this page is in flight to the library.
    out_write: bool,
    /// The invalidation round in progress (clock duty).
    round: Option<InvRound>,
    /// An invalidation delayed until window expiry (clock duty).
    delayed: Option<DelayedInvalidate>,
    /// Clock duties deferred until our copy arrives.
    deferred: VecDeque<DeferredOp>,
}

/// Per-segment using-site state: the auxiliary table plus the dense
/// per-page records.
#[derive(Debug)]
struct SegState {
    aux: AuxTable,
    pages: Vec<UsePage>,
}

/// Using-role state for all segments known at this site.
///
/// Segments are slab-indexed: `index` maps a [`SegmentId`] to a slot in
/// `segs` once, and page lookups are then direct vector indexing.
#[derive(Debug, Default)]
pub struct UseState {
    index: HashMap<SegmentId, usize>,
    segs: Vec<SegState>,
    /// Reused by `wake_satisfied` so waking waiters allocates nothing.
    wake_scratch: Vec<Pid>,
}

impl UseState {
    pub(crate) fn register_segment(
        &mut self,
        seg: SegmentId,
        pages: usize,
        config: &ProtocolConfig,
    ) {
        let mut aux = AuxTable::new(pages, Delta::ZERO);
        for p in 0..pages {
            let page = PageNum(p as u32);
            aux.set_window(page, config.delta.window(page));
        }
        let state = SegState { aux, pages: (0..pages).map(|_| UsePage::default()).collect() };
        match self.index.get(&seg) {
            Some(&slot) => self.segs[slot] = state,
            None => {
                self.index.insert(seg, self.segs.len());
                self.segs.push(state);
            }
        }
    }

    fn seg_mut(&mut self, seg: SegmentId) -> Option<&mut SegState> {
        let &slot = self.index.get(&seg)?;
        Some(&mut self.segs[slot])
    }

    fn seg(&self, seg: SegmentId) -> Option<&SegState> {
        let &slot = self.index.get(&seg)?;
        Some(&self.segs[slot])
    }

    fn entry_mut(&mut self, seg: SegmentId, page: PageNum) -> Option<&mut UsePage> {
        self.seg_mut(seg)?.pages.get_mut(page.index())
    }

    pub(crate) fn waiter_count(&self, seg: SegmentId, page: PageNum) -> usize {
        self.seg(seg).and_then(|s| s.pages.get(page.index())).map_or(0, |e| e.waiters.len())
    }

    pub(crate) fn has_outstanding(
        &self,
        seg: SegmentId,
        page: PageNum,
        access: Access,
    ) -> bool {
        self.seg(seg).and_then(|s| s.pages.get(page.index())).is_some_and(|e| match access {
            Access::Read => e.out_read,
            Access::Write => e.out_write,
        })
    }
}

impl SiteEngine {
    /// A local process faulted on a shared page (typed fault, §6.2).
    pub(crate) fn fault(
        &mut self,
        pid: Pid,
        seg: SegmentId,
        page: PageNum,
        access: Access,
        store: &mut dyn PageStore,
        sink: &mut ActionSink,
    ) {
        if store.prot(seg, page).permits(access) {
            // The process's PTE was stale (lazy remapping, §6.2); the
            // master already permits the access.
            self.wake(pid, sink);
            return;
        }
        let Some(entry) = self.usr.entry_mut(seg, page) else {
            return;
        };
        entry.waiters.push((pid, access));
        // Deduplicate outstanding requests from this site: an in-flight
        // write request will grant read-write, which covers read faults
        // too.
        let need_send = match access {
            Access::Read => !entry.out_read && !entry.out_write,
            Access::Write => !entry.out_write,
        };
        if need_send {
            match access {
                Access::Read => entry.out_read = true,
                Access::Write => entry.out_write = true,
            }
            self.emit(seg.library, ProtoMsg::PageRequest { seg, page, access, pid }, sink);
        }
    }

    /// Library told us (the fixed clock site) to grant read copies to
    /// additional readers — Table 1 row 1, no clock check.
    pub(crate) fn use_add_readers(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        readers: SiteSet,
        window: Delta,
        store: &mut dyn PageStore,
        sink: &mut ActionSink,
    ) {
        if store.prot(seg, page) == PageProt::None {
            // Our copy is still in flight; serve the readers once it
            // lands.
            if let Some(entry) = self.usr.entry_mut(seg, page) {
                entry.deferred.push_back(DeferredOp::AddReaders { readers, window });
            }
            return;
        }
        let data = store.copy(seg, page);
        for r in readers.iter() {
            if r == self.site {
                continue;
            }
            self.emit(
                r,
                ProtoMsg::PageGrant {
                    seg,
                    page,
                    access: Access::Read,
                    window,
                    data: data.clone(),
                },
                sink,
            );
        }
        if readers.contains(self.site) {
            // Raced local request: we already hold a copy; wake readers.
            self.wake_satisfied(seg, page, store, sink);
        }
    }

    /// Library asked us (the clock site) to invalidate the current copy.
    #[allow(clippy::too_many_arguments)] // Mirrors the wire message fields.
    pub(crate) fn use_invalidate(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        demand: Demand,
        readers: SiteSet,
        window: Delta,
        store: &mut dyn PageStore,
        sink: &mut ActionSink,
    ) {
        if store.prot(seg, page) == PageProt::None {
            // The copy this demand must invalidate has not arrived yet
            // (short library message beat the page-carrying grant).
            // Defer; the window check will run against the fresh install.
            if let Some(entry) = self.usr.entry_mut(seg, page) {
                entry.deferred.push_back(DeferredOp::Invalidate { demand, readers, window });
            }
            return;
        }
        let now = sink.now();
        let expired =
            self.usr.seg(seg).map(|st| st.aux.get(page).window_expired(now)).unwrap_or(true);
        if !expired {
            let st = self.usr.seg(seg).expect("segment known");
            let remaining = st.aux.get(page).window_remaining(now);
            if self.config.queued_invalidation
                && remaining <= mirage_net::NetCosts::vax_locus().retry_threshold()
            {
                // §7.1 caveat 1: honor after a short delay rather than
                // forcing the library to retry over the network.
                let expiry = st.aux.get(page).window_expiry();
                if let Some(entry) = self.usr.entry_mut(seg, page) {
                    entry.delayed = Some(DelayedInvalidate { demand, readers, window });
                }
                self.set_timer(expiry, TimerKind::ClockDelayed { seg, page }, sink);
                return;
            }
            // "the clock site replies immediately with the amount of time
            // the library must wait until the invalidation can be
            // honored."
            self.emit(
                seg.library,
                ProtoMsg::InvalidateDeny { seg, page, wait: remaining },
                sink,
            );
            return;
        }
        self.honor_invalidation(seg, page, demand, readers, window, store, sink);
    }

    /// A delayed (queued) invalidation's window expired; honor it now.
    pub(crate) fn use_delayed_invalidation(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        store: &mut dyn PageStore,
        sink: &mut ActionSink,
    ) {
        let Some(d) = self.usr.entry_mut(seg, page).and_then(|e| e.delayed.take()) else {
            return;
        };
        self.honor_invalidation(seg, page, d.demand, d.readers, d.window, store, sink);
    }

    /// Carries out an accepted invalidation: "typically it: 1) invalidates
    /// the local page, 2) invalidates any other outstanding readers, if
    /// the page is a read-copy and 3) distributes the page to the new
    /// writer or any new readers." (§6.1)
    #[allow(clippy::too_many_arguments)] // Mirrors the wire message fields.
    fn honor_invalidation(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        demand: Demand,
        readers: SiteSet,
        window: Delta,
        store: &mut dyn PageStore,
        sink: &mut ActionSink,
    ) {
        debug_assert!(
            self.usr
                .seg(seg)
                .and_then(|s| s.pages.get(page.index()))
                .is_none_or(|e| e.round.is_none()),
            "library serializes demands per page"
        );
        match demand {
            Demand::Read { to } => {
                // We are the writer (Table 1 row 3). Grant read copies,
                // then downgrade ourselves (optimization 2) or discard.
                let data = store.copy(seg, page);
                for r in to.iter() {
                    if r == self.site {
                        continue;
                    }
                    self.emit(
                        r,
                        ProtoMsg::PageGrant {
                            seg,
                            page,
                            access: Access::Read,
                            window,
                            data: data.clone(),
                        },
                        sink,
                    );
                }
                let downgraded = self.config.downgrade_optimization;
                if downgraded {
                    store.set_prot(seg, page, PageProt::Read);
                    // Table 2: `install time` is "installation time for
                    // this page at this site" — a downgrade is not a new
                    // install, so the (already expired) window is NOT
                    // restarted. A reader that turns around and writes
                    // (the Figure 8 pattern) therefore upgrades without
                    // waiting out a second window.
                    if let Some(st) = self.usr.seg_mut(seg) {
                        st.aux.get_mut(page).window = window;
                    }
                } else {
                    store.set_prot(seg, page, PageProt::None);
                }
                self.emit(
                    seg.library,
                    ProtoMsg::InvalidateDone {
                        seg,
                        page,
                        info: DoneInfo { writer_downgraded: downgraded },
                    },
                    sink,
                );
            }
            Demand::Write { to, upgrade } => {
                let i_am_writer = store.prot(seg, page) == PageProt::ReadWrite;
                // Victims: every reader except the upgrading requester
                // and ourselves (we invalidate locally, without a
                // message).
                let mut victims = readers;
                victims.remove(self.site);
                if upgrade {
                    victims.remove(to);
                }
                // Invalidate the local copy; if we are the data source
                // (no upgrade), keep the bytes to forward.
                let data = if self.site == to {
                    None
                } else if upgrade {
                    store.set_prot(seg, page, PageProt::None);
                    None
                } else {
                    debug_assert!(
                        i_am_writer || readers.contains(self.site),
                        "clock site must hold a copy"
                    );
                    Some(store.take(seg, page))
                };
                let mut round = InvRound {
                    demand: Demand::Write { to, upgrade },
                    window,
                    remaining: ReaderSet::empty(),
                    to_send: victims,
                    data,
                };
                if round.to_send.is_empty() {
                    if let Some(entry) = self.usr.entry_mut(seg, page) {
                        entry.round = Some(round);
                        self.finish_write_round(seg, page, store, sink);
                    }
                    return;
                }
                if self.config.multicast_invalidation {
                    // One multicast round: send all, await all acks.
                    let all = round.to_send;
                    round.to_send = ReaderSet::empty();
                    round.remaining = all;
                    for v in all.iter() {
                        self.emit(v, ProtoMsg::ReaderInvalidate { seg, page }, sink);
                    }
                } else {
                    // Paper behaviour: "invalidations are processed
                    // sequentially" — one victim at a time, in ascending
                    // site order.
                    let first = round.to_send.first().expect("to_send nonempty");
                    round.to_send.remove(first);
                    round.remaining.insert(first);
                    self.emit(first, ProtoMsg::ReaderInvalidate { seg, page }, sink);
                }
                if let Some(entry) = self.usr.entry_mut(seg, page) {
                    entry.round = Some(round);
                }
            }
        }
    }

    /// The clock site told us to discard our read copy.
    pub(crate) fn use_reader_invalidate(
        &mut self,
        from: SiteId,
        seg: SegmentId,
        page: PageNum,
        store: &mut dyn PageStore,
        sink: &mut ActionSink,
    ) {
        if store.prot(seg, page) == PageProt::None {
            let expecting_grant = self
                .usr
                .seg(seg)
                .and_then(|s| s.pages.get(page.index()))
                .is_some_and(|e| e.out_read || e.out_write);
            if expecting_grant {
                // Our read copy from the *previous* demand is still in
                // flight on another circuit. Acking now would let the
                // stale grant install after the new writer's write —
                // defer the invalidation until the copy lands.
                if let Some(entry) = self.usr.entry_mut(seg, page) {
                    entry.deferred.push_back(DeferredOp::ReaderInvalidate { from });
                }
                return;
            }
        }
        store.set_prot(seg, page, PageProt::None);
        self.emit(from, ProtoMsg::ReaderInvalidateAck { seg, page }, sink);
    }

    /// A victim acknowledged its invalidation.
    pub(crate) fn use_reader_ack(
        &mut self,
        from: SiteId,
        seg: SegmentId,
        page: PageNum,
        store: &mut dyn PageStore,
        sink: &mut ActionSink,
    ) {
        let finished = {
            let Some(round) = self.usr.entry_mut(seg, page).and_then(|e| e.round.as_mut())
            else {
                return;
            };
            round.remaining.remove(from);
            if let Some(next) = round.to_send.first() {
                round.to_send.remove(next);
                round.remaining.insert(next);
                self.emit(next, ProtoMsg::ReaderInvalidate { seg, page }, sink);
                false
            } else {
                round.remaining.is_empty()
            }
        };
        if finished {
            self.finish_write_round(seg, page, store, sink);
        }
    }

    /// All victims invalidated: deliver the write copy (or upgrade) and
    /// report completion to the library.
    fn finish_write_round(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        store: &mut dyn PageStore,
        sink: &mut ActionSink,
    ) {
        let round = self
            .usr
            .entry_mut(seg, page)
            .and_then(|e| e.round.take())
            .expect("round in flight");
        let Demand::Write { to, upgrade } = round.demand else {
            unreachable!("read demands never start ack rounds");
        };
        if to == self.site {
            // We are both clock site and requester: upgrade in place.
            store.set_prot(seg, page, PageProt::ReadWrite);
            let now = sink.now();
            if let Some(st) = self.usr.seg_mut(seg) {
                let e = st.aux.get_mut(page);
                e.install_time = now;
                e.window = round.window;
                if let Some(entry) = st.pages.get_mut(page.index()) {
                    entry.out_write = false;
                    entry.out_read = false;
                }
            }
            self.wake_satisfied(seg, page, store, sink);
        } else if upgrade {
            // §6.1 optimization 1: notification, not a page copy.
            self.emit(to, ProtoMsg::UpgradeGrant { seg, page, window: round.window }, sink);
        } else {
            let data = round.data.expect("non-upgrade write demand carries data");
            self.emit(
                to,
                ProtoMsg::PageGrant {
                    seg,
                    page,
                    access: Access::Write,
                    window: round.window,
                    data,
                },
                sink,
            );
        }
        self.emit(
            seg.library,
            ProtoMsg::InvalidateDone { seg, page, info: DoneInfo { writer_downgraded: false } },
            sink,
        );
    }

    /// A page arrived from the storing site.
    #[allow(clippy::too_many_arguments)] // Mirrors the wire message fields.
    pub(crate) fn use_grant(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        access: Access,
        window: Delta,
        data: PageData,
        store: &mut dyn PageStore,
        sink: &mut ActionSink,
    ) {
        let prot = match access {
            Access::Read => PageProt::Read,
            Access::Write => PageProt::ReadWrite,
        };
        store.install(seg, page, data, prot);
        let now = sink.now();
        if let Some(st) = self.usr.seg_mut(seg) {
            let e = st.aux.get_mut(page);
            e.install_time = now;
            e.window = window;
            if let Some(entry) = st.pages.get_mut(page.index()) {
                entry.out_read = false;
                if access == Access::Write {
                    entry.out_write = false;
                }
            }
        }
        self.wake_satisfied(seg, page, store, sink);
        self.drain_deferred(seg, page, store, sink);
    }

    /// We held a read copy and are now the writer (optimization 1).
    pub(crate) fn use_upgrade(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        window: Delta,
        store: &mut dyn PageStore,
        sink: &mut ActionSink,
    ) {
        store.set_prot(seg, page, PageProt::ReadWrite);
        let now = sink.now();
        if let Some(st) = self.usr.seg_mut(seg) {
            let e = st.aux.get_mut(page);
            e.install_time = now;
            e.window = window;
            if let Some(entry) = st.pages.get_mut(page.index()) {
                entry.out_read = false;
                entry.out_write = false;
            }
        }
        self.wake_satisfied(seg, page, store, sink);
        self.drain_deferred(seg, page, store, sink);
    }

    /// Runs clock-site duties that were deferred while our copy was in
    /// flight. Each op is dispatched once; an op that still cannot run
    /// (copy gone again) re-defers itself without looping.
    fn drain_deferred(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        store: &mut dyn PageStore,
        sink: &mut ActionSink,
    ) {
        let Some(ops) = self.usr.entry_mut(seg, page).map(|e| std::mem::take(&mut e.deferred))
        else {
            return;
        };
        for op in ops {
            match op {
                DeferredOp::Invalidate { demand, readers, window } => {
                    self.use_invalidate(seg, page, demand, readers, window, store, sink);
                }
                DeferredOp::AddReaders { readers, window } => {
                    self.use_add_readers(seg, page, readers, window, store, sink);
                }
                DeferredOp::ReaderInvalidate { from } => {
                    self.use_reader_invalidate(from, seg, page, store, sink);
                }
            }
        }
    }

    /// Wakes every blocked process whose access the page now permits.
    fn wake_satisfied(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        store: &mut dyn PageStore,
        sink: &mut ActionSink,
    ) {
        let prot = store.prot(seg, page);
        // The scratch vector is owned by UseState and reused across
        // calls, so waking allocates nothing in steady state.
        let mut scratch = std::mem::take(&mut self.usr.wake_scratch);
        scratch.clear();
        if let Some(entry) = self.usr.entry_mut(seg, page) {
            entry.waiters.retain(|&(pid, access)| {
                if prot.permits(access) {
                    scratch.push(pid);
                    false
                } else {
                    true
                }
            });
        }
        for &pid in &scratch {
            sink.push(Action::Wake { pid });
        }
        self.usr.wake_scratch = scratch;
    }
}
