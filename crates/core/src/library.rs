//! The library-site role.
//!
//! "There is one distinguished site associated with each segment, called
//! the library site. The library site is the controller for the pages of
//! a given segment. Requests for pages are sent to the library site,
//! queued, and sequentially processed. … The library distinguishes
//! writers from readers; there may only be one writable copy of a given
//! page in the network at any one time." (§6.0)
//!
//! Per-page records live in dense per-segment tables ([`LibState`]): a
//! segment resolves to a slab index once, and page lookups from then on
//! are plain vector indexing — mirroring the paper's auxpte arrays and
//! keeping the fault path free of tuple-key hashing.

use std::collections::VecDeque;

use mirage_types::{
    Access,
    Delta,
    FastMap,
    PageNum,
    Pid,
    ReaderSet,
    SegmentId,
    SimDuration,
    SimTime,
    SiteId,
    SiteSet,
    TICK,
};

use crate::{
    engine::{
        SiteEngine,
        TimerKind,
    },
    event::{
        Action,
        RefLogEntry,
    },
    msg::{
        Demand,
        DoneInfo,
        FrozenLibPage,
        FrozenLibrary,
        ProtoMsg,
    },
    sink::ActionSink,
    table1::{
        self,
        Current,
        Invalidation,
    },
};

/// A queued page request at the library.
#[derive(Clone, Copy, Debug)]
struct Request {
    site: SiteId,
    access: Access,
}

/// The library's record for one page.
#[derive(Debug)]
struct LibPage {
    /// Sites holding read copies.
    readers: ReaderSet,
    /// Site holding the write copy.
    writer: Option<SiteId>,
    /// The page's clock site (most recent copy holder).
    clock: SiteId,
    /// Pending requests, processed sequentially (reads batched).
    queue: VecDeque<Request>,
    /// The demand currently being served (an invalidation in flight).
    serving: Option<Demand>,
    /// The page's current window — per-page, adapted by the §8.0
    /// dynamic-tuning routine when [`DeltaPolicy::Dynamic`] is active.
    window: Delta,
    /// Sites that lost their copies in the last completed serve, and
    /// when; a quick re-request from one of them is the thrash signal
    /// that grows the window.
    last_losers: Option<(ReaderSet, SimTime)>,
    /// Whether the in-flight serve needed a Δ denial (the window did
    /// useful protection work); serves that complete without one shrink
    /// a dynamic window.
    deny_seen: bool,
    /// Per-page demand serial (retry mode; stays 0 when retry is
    /// disabled). Bumped for every serve start and every directly
    /// granted emission (AddReaders, stale-writer confirmation), so
    /// every grant the protocol ever issues for this page carries a
    /// distinct, monotonically increasing serial. Persistent across a
    /// crash — a restarted library must never reuse a serial.
    serial: u32,
    /// Retransmit count for the in-flight serve (volatile).
    serve_attempt: u32,
    /// Trace span of the in-flight serve (raw [`mirage_trace::SpanId`]
    /// bits; 0 when tracing is off or no serve is open). Observability
    /// only — never consulted by protocol decisions.
    span: u64,
}

impl LibPage {
    fn initial(creator: SiteId, window: Delta) -> Self {
        // The creating site starts with the only (write) copy of every
        // page and is therefore both writer and clock site.
        Self {
            readers: ReaderSet::empty(),
            writer: Some(creator),
            clock: creator,
            queue: VecDeque::new(),
            serving: None,
            window,
            last_losers: None,
            deny_seen: false,
            serial: 0,
            serve_attempt: 0,
            span: 0,
        }
    }

    /// Allocates the next demand serial (0 when retry is disabled, so
    /// the disabled protocol is byte-identical to the pre-serial one).
    fn next_serial(&mut self, retry_on: bool) -> u32 {
        if retry_on {
            self.serial += 1;
            self.serial
        } else {
            0
        }
    }

    fn current(&self) -> Current {
        if self.writer.is_some() {
            Current::Writer
        } else {
            Current::Readers
        }
    }
}

/// Read-only snapshot of a library page record, for tests and tools.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LibPageView {
    /// Sites the library believes hold read copies.
    pub readers: ReaderSet,
    /// Site the library believes holds the write copy.
    pub writer: Option<SiteId>,
    /// The page's clock site.
    pub clock: SiteId,
    /// Number of queued, unserved requests.
    pub queued: usize,
    /// Whether an invalidation/serve is in flight.
    pub serving: bool,
    /// The page's current (possibly adapted) window.
    pub window: Delta,
}

/// A handoff this (former) library site initiated and has not yet had
/// acknowledged. Persistent across a crash — until the destination
/// adopts it, the frozen snapshot is the authoritative copy of the
/// records — except the retransmit counter.
#[derive(Debug)]
struct PendingHandoff {
    to: SiteId,
    epoch: u32,
    frozen: FrozenLibrary,
    /// Retransmit count (volatile).
    attempt: u32,
}

/// Per-*shard* library-role metadata: whether this page range's slice
/// of the role is live at this site, and where it went if it is not.
/// One segment has `ceil(pages / shard_pages)` shards (a single shard
/// covering everything when sharding is off), and each shard freezes,
/// travels, and activates independently under its own epoch.
#[derive(Debug)]
struct SegMeta {
    /// This site currently holds the library role for the shard.
    active: bool,
    /// Handoff epoch of the records in this shard (0 = the shard has
    /// never moved). Bumped at every freeze; carried by the handoff.
    epoch: u32,
    /// Forwarding stub: the site the shard was handed to. Installed at
    /// freeze and kept for the life of the slot so arbitrarily stale
    /// requests can always be redirected toward the role.
    stub: Option<SiteId>,
    /// Outbound handoff awaiting the destination's acknowledgement.
    pending: Option<PendingHandoff>,
}

impl SegMeta {
    fn new(active: bool) -> Self {
        Self { active, epoch: 0, stub: None, pending: None }
    }
}

/// Library-role state for all segments known at this site.
///
/// Every site registers a slot for every segment (the role is
/// relocatable), but only the slots at the current library site are
/// *active*; inactive slots hold stale records plus the per-shard
/// `SegMeta` forwarding state.
///
/// Segments are slab-indexed: `index` maps a [`SegmentId`] to a slot in
/// `segs`, and each slot is a dense page-number-indexed vector. The
/// role itself is keyed by `(segment, page range)`: `meta[slot][shard]`
/// governs pages `[shard * shard_pages, (shard + 1) * shard_pages)`.
#[derive(Debug, Default)]
pub struct LibState {
    index: FastMap<SegmentId, usize>,
    segs: Vec<Vec<LibPage>>,
    meta: Vec<Vec<SegMeta>>,
    /// Pages per library shard; 0 = sharding off (one shard spans the
    /// segment, reproducing the PR 5 whole-segment role exactly).
    shard_pages: u32,
}

/// Number of shards covering `pages` pages at `shard_pages` pages per
/// shard (always at least one, so zero-page segments still have a
/// role slot).
pub(crate) fn shard_count(pages: usize, shard_pages: u32) -> usize {
    if shard_pages == 0 || pages == 0 {
        1
    } else {
        pages.div_ceil(shard_pages as usize)
    }
}

/// The shard covering `page` at `shard_pages` pages per shard.
pub(crate) fn shard_of(page: PageNum, shard_pages: u32) -> usize {
    if shard_pages == 0 {
        0
    } else {
        page.index() / shard_pages as usize
    }
}

impl LibState {
    pub(crate) fn register_segment(
        &mut self,
        seg: SegmentId,
        pages: usize,
        creator: SiteId,
        active: bool,
        policy: &crate::config::DeltaPolicy,
        shard_pages: u32,
    ) {
        self.shard_pages = shard_pages;
        let table: Vec<LibPage> = (0..pages)
            .map(|p| LibPage::initial(creator, policy.window(PageNum(p as u32))))
            .collect();
        let meta: Vec<SegMeta> =
            (0..shard_count(pages, shard_pages)).map(|_| SegMeta::new(active)).collect();
        match self.index.get(&seg) {
            Some(&slot) => {
                self.segs[slot] = table;
                self.meta[slot] = meta;
            }
            None => {
                self.index.insert(seg, self.segs.len());
                self.segs.push(table);
                self.meta.push(meta);
            }
        }
    }

    /// The shard index covering `page`.
    pub(crate) fn shard_of(&self, page: PageNum) -> usize {
        shard_of(page, self.shard_pages)
    }

    /// The page range `[start, end)` of `shard` within a segment of
    /// `pages` pages.
    fn shard_range(&self, pages: usize, shard: usize) -> (usize, usize) {
        if self.shard_pages == 0 {
            (0, pages)
        } else {
            let start = shard * self.shard_pages as usize;
            (start.min(pages), (start + self.shard_pages as usize).min(pages))
        }
    }

    /// Whether this site currently holds the library role for the
    /// shard of `seg` covering `page`.
    pub(crate) fn is_active(&self, seg: SegmentId, page: PageNum) -> bool {
        self.index.get(&seg).is_some_and(|&slot| {
            self.meta[slot].get(self.shard_of(page)).is_some_and(|m| m.active)
        })
    }

    /// Whether this site holds *any* shard of `seg`'s library role.
    pub(crate) fn is_any_active(&self, seg: SegmentId) -> bool {
        self.index.get(&seg).is_some_and(|&slot| self.meta[slot].iter().any(|m| m.active))
    }

    /// The forwarding stub of a deactivated shard: `(epoch, to)` when
    /// this site once held the shard and knows where it went.
    fn stub(&self, seg: SegmentId, page: PageNum) -> Option<(u32, SiteId)> {
        let &slot = self.index.get(&seg)?;
        let m = self.meta[slot].get(self.shard_of(page))?;
        if m.active {
            return None;
        }
        m.stub.map(|to| (m.epoch, to))
    }

    /// Freezes one shard's records for a handoff to `to`: bumps the
    /// shard epoch, snapshots the persistent per-page records *plus*
    /// the request queue (a graceful freeze, unlike a crash, loses
    /// nothing), clears the serving machinery at this site, and
    /// deactivates the shard behind a forwarding stub. Returns the new
    /// epoch and the frozen range, or `None` if the slot is absent, the
    /// shard is out of range, already inactive, or mid-handoff.
    fn freeze(
        &mut self,
        seg: SegmentId,
        shard: usize,
        to: SiteId,
    ) -> Option<(u32, FrozenLibrary)> {
        let &slot = self.index.get(&seg)?;
        let (start, end) = self.shard_range(self.segs[slot].len(), shard);
        let m = self.meta[slot].get_mut(shard)?;
        if !m.active || m.pending.is_some() {
            return None;
        }
        m.epoch += 1;
        let epoch = m.epoch;
        let pages: Vec<FrozenLibPage> = self.segs[slot][start..end]
            .iter_mut()
            .map(|rec| {
                let frozen = FrozenLibPage {
                    readers: rec.readers.clone(),
                    writer: rec.writer,
                    clock: rec.clock,
                    queue: rec.queue.iter().map(|r| (r.site, r.access)).collect(),
                    serving: rec.serving.clone(),
                    window: rec.window,
                    serial: rec.serial,
                };
                rec.queue.clear();
                rec.serving = None;
                rec.deny_seen = false;
                rec.last_losers = None;
                rec.serve_attempt = 0;
                rec.span = 0;
                frozen
            })
            .collect();
        let frozen = FrozenLibrary { start: PageNum(start as u32), pages };
        let m = &mut self.meta[slot][shard];
        m.active = false;
        m.stub = Some(to);
        m.pending = Some(PendingHandoff { to, epoch, frozen: frozen.clone(), attempt: 0 });
        Some((epoch, frozen))
    }

    /// Rehydrates one shard's records from a received handoff.
    /// `None` = unknown segment or bad range (drop); `Some(false)` =
    /// the shard is already at this epoch or newer (duplicate — just
    /// re-ack); `Some(true)` = adopted.
    fn adopt(&mut self, seg: SegmentId, epoch: u32, frozen: &FrozenLibrary) -> Option<bool> {
        let &slot = self.index.get(&seg)?;
        let shard = self.shard_of(frozen.start);
        let (start, end) = self.shard_range(self.segs[slot].len(), shard);
        if frozen.start.index() != start || frozen.pages.len() != end - start {
            // A handoff cut along ranges this site does not recognise
            // (mismatched shard configuration) — refuse it.
            return None;
        }
        if epoch <= self.meta[slot].get(shard)?.epoch {
            return Some(false);
        }
        for (rec, fp) in self.segs[slot][start..end].iter_mut().zip(frozen.pages.iter()) {
            rec.readers = fp.readers.clone();
            rec.writer = fp.writer;
            rec.clock = fp.clock;
            rec.queue =
                fp.queue.iter().map(|&(site, access)| Request { site, access }).collect();
            rec.serving = fp.serving.clone();
            rec.window = fp.window;
            // The serial travels with the role: the frozen value is the
            // high-water mark across every site that ever held it.
            rec.serial = fp.serial;
            rec.last_losers = None;
            rec.deny_seen = false;
            rec.serve_attempt = 0;
            rec.span = 0;
        }
        let m = &mut self.meta[slot][shard];
        m.active = true;
        m.epoch = epoch;
        m.stub = None;
        // An epoch-`n` handoff can only exist because epoch `n-1` was
        // adopted somewhere — any older outbound handoff of ours for
        // this shard has therefore been received; stop retransmitting.
        m.pending = None;
        Some(true)
    }

    /// Clears the pending handoff of the shard covering `page` if the
    /// ack matches it. Returns whether anything was cleared.
    fn handoff_acked(&mut self, seg: SegmentId, page: PageNum, epoch: u32) -> bool {
        let shard = self.shard_of(page);
        let Some(&slot) = self.index.get(&seg) else {
            return false;
        };
        let Some(m) = self.meta[slot].get_mut(shard) else {
            return false;
        };
        if m.pending.as_ref().is_some_and(|p| p.epoch == epoch) {
            m.pending = None;
            true
        } else {
            false
        }
    }

    /// Bumps the retransmit counter of a shard's pending handoff and
    /// returns what to resend.
    fn handoff_retransmit(
        &mut self,
        seg: SegmentId,
        shard: usize,
    ) -> Option<(SiteId, u32, FrozenLibrary, u32)> {
        let &slot = self.index.get(&seg)?;
        let p = self.meta[slot].get_mut(shard)?.pending.as_mut()?;
        p.attempt += 1;
        Some((p.to, p.epoch, p.frozen.clone(), p.attempt))
    }

    /// Shards with an unacknowledged outbound handoff, for restart.
    fn pending_handoffs(&self) -> Vec<(SegmentId, usize)> {
        let mut out: Vec<(SegmentId, usize)> = self
            .index
            .iter()
            .flat_map(|(&seg, &slot)| {
                self.meta[slot]
                    .iter()
                    .enumerate()
                    .filter(|(_, m)| m.pending.is_some())
                    .map(move |(shard, _)| (seg, shard))
            })
            .collect();
        out.sort();
        out
    }

    /// Shard indices of a segment.
    pub(crate) fn shards(&self, seg: SegmentId) -> usize {
        self.index.get(&seg).map_or(0, |&slot| self.meta[slot].len())
    }

    fn page_mut(&mut self, seg: SegmentId, page: PageNum) -> Option<&mut LibPage> {
        let &slot = self.index.get(&seg)?;
        self.segs[slot].get_mut(page.index())
    }

    fn page(&self, seg: SegmentId, page: PageNum) -> Option<&LibPage> {
        let &slot = self.index.get(&seg)?;
        self.segs[slot].get(page.index())
    }

    pub(crate) fn view(&self, seg: SegmentId, page: PageNum) -> Option<LibPageView> {
        if !self.is_active(seg, page) {
            // A deactivated shard holds stale records; only the current
            // library's view is meaningful.
            return None;
        }
        self.page(seg, page).map(|p| LibPageView {
            readers: p.readers.clone(),
            writer: p.writer,
            clock: p.clock,
            queued: p.queue.len(),
            serving: p.serving.is_some(),
            window: p.window,
        })
    }

    /// Discards all volatile library state (site crash). The records —
    /// readers/writer/clock/window/serial and the journaled `serving`
    /// demand — survive; queues and attempt counters do not. Lost queue
    /// entries are reconstructed by the requesters' own retries.
    pub(crate) fn crash(&mut self) {
        for table in &mut self.segs {
            for rec in table.iter_mut() {
                rec.queue.clear();
                rec.deny_seen = false;
                rec.last_losers = None;
                rec.serve_attempt = 0;
            }
        }
        for metas in &mut self.meta {
            // The frozen snapshot is persistent (it may be the only
            // copy of the records); the retransmit counter is not.
            for m in metas {
                if let Some(p) = m.pending.as_mut() {
                    p.attempt = 0;
                }
            }
        }
    }

    /// Pages with a journaled in-flight serve, for restart re-arming.
    /// Only active shards count — a deactivated shard's serving demand
    /// travelled away in the frozen snapshot.
    fn serving_pages(&self) -> Vec<(SegmentId, PageNum)> {
        let mut out = Vec::new();
        for (&seg, &slot) in &self.index {
            for (p, rec) in self.segs[slot].iter().enumerate() {
                let page = PageNum(p as u32);
                if rec.serving.is_some()
                    && self.meta[slot].get(self.shard_of(page)).is_some_and(|m| m.active)
                {
                    out.push((seg, page));
                }
            }
        }
        out.sort();
        out
    }

    /// Diagnostic dump of the library record for one page: the shard
    /// range the page falls in, queue contents, handoff epoch, and the
    /// pending serve. `None` unless this site's shard is active (the
    /// stuck-pid report asks every site and prints the one answer).
    pub(crate) fn debug_page(&self, seg: SegmentId, page: PageNum) -> Option<String> {
        if !self.is_active(seg, page) {
            return None;
        }
        let &slot = self.index.get(&seg)?;
        let rec = self.segs[slot].get(page.index())?;
        let shard = self.shard_of(page);
        let (start, end) = self.shard_range(self.segs[slot].len(), shard);
        let queue: Vec<String> =
            rec.queue.iter().map(|r| format!("site{}:{:?}", r.site.0, r.access)).collect();
        Some(format!(
            "shard={shard}[pg{start}..pg{end}) epoch={} queue=[{}] serving={:?} serial={} \
             readers={:?} writer={:?} clock=site{}",
            self.meta[slot][shard].epoch,
            queue.join(", "),
            rec.serving,
            rec.serial,
            rec.readers,
            rec.writer,
            rec.clock.0,
        ))
    }
}

impl SiteEngine {
    /// Handles an incoming `PageRequest` (library role).
    pub(crate) fn lib_request(
        &mut self,
        from: SiteId,
        seg: SegmentId,
        page: PageNum,
        access: Access,
        pid: Pid,
        sink: &mut ActionSink,
    ) {
        if !self.lib.is_active(seg, page) {
            // The shard moved (or was never here): point the requester at
            // the new site before anything — including the reference log,
            // which must only record requests the live library processed.
            self.lib_stale(from, seg, page, sink);
            return;
        }
        // §9: "Mirage provides a facility for logging all page requests
        // at the library site."
        sink.push(Action::Log(RefLogEntry { seg, page, at: sink.now(), pid, access }));
        let dynamic = self.config.delta.is_dynamic();
        let retry_on = self.config.retry.is_some();
        let Some(rec) = self.lib.page_mut(seg, page) else {
            // Unknown page — segment destroyed or never created here.
            return;
        };
        if retry_on {
            // Requesters retransmit unanswered requests, so the queue
            // must be idempotent: drop a request that is already queued
            // or already covered by the serve in flight (a write serve
            // grants read-write, covering both access classes).
            let covered = match &rec.serving {
                Some(Demand::Write { to, .. }) => *to == from,
                Some(Demand::Read { to }) => access == Access::Read && to.contains(from),
                None => false,
            };
            if covered || rec.queue.iter().any(|r| r.site == from && r.access == access) {
                return;
            }
        }
        if dynamic {
            // §8.0 dynamic tuning, grow side: the previous holder asking
            // for the page back right after losing it means the window
            // ended while the holder was still actively using the page.
            if let Some((losers, at)) = &rec.last_losers {
                if losers.contains(from) && sink.now().since(*at) <= TICK.scale(4) {
                    rec.window = grow_window(rec.window, &self.config.delta);
                }
            }
        }
        rec.queue.push_back(Request { site: from, access });
        let depth = rec.queue.len();
        if self.tracing() {
            let mut ev =
                self.trace_event(mirage_trace::TraceKind::RequestQueued, 0, seg, page, sink);
            ev.peer = Some(from);
            ev.pid = Some(pid);
            ev.access = Some(access);
            ev.detail = depth as u64;
            self.push_trace(ev, sink);
        }
        self.lib_process_queue(seg, page, sink);
    }

    /// Serves queued requests until one is in flight or the queue drains.
    pub(crate) fn lib_process_queue(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        sink: &mut ActionSink,
    ) {
        let retry_on = self.config.retry.is_some();
        loop {
            let Some(rec) = self.lib.page_mut(seg, page) else {
                return;
            };
            let window = rec.window;
            if rec.serving.is_some() {
                return;
            }
            let Some(front) = rec.queue.front().copied() else {
                return;
            };
            match front.access {
                Access::Read => {
                    // "Read requests for the same page are batched
                    // together and granted to all the readers at one time
                    // when the request is processed."
                    let mut batch = ReaderSet::empty();
                    rec.queue.retain(|r| {
                        if r.access == Access::Read {
                            batch.insert(r.site);
                            false
                        } else {
                            true
                        }
                    });
                    // A writer never read-faults; a request from the
                    // current writer is stale — drop it.
                    if let Some(w) = rec.writer {
                        batch.remove(w);
                    }
                    if batch.is_empty() {
                        continue;
                    }
                    let row = table1::row(
                        rec.current(),
                        Access::Read,
                        false,
                        self.config.downgrade_optimization,
                    );
                    if !row.clock_check {
                        // Readers/Readers: no clock check, no
                        // invalidation. The clock site is *fixed* and
                        // informed of the additional readers, which it
                        // grants copies directly (§6.1).
                        debug_assert_eq!(row.invalidation, Invalidation::No);
                        rec.readers = rec.readers.union(&batch);
                        let clock = rec.clock;
                        let serial = rec.next_serial(retry_on);
                        let granted = batch.len() as u64;
                        self.emit(
                            clock,
                            ProtoMsg::AddReaders { seg, page, readers: batch, window, serial },
                            sink,
                        );
                        if self.tracing() {
                            let mut ev = self.trace_event(
                                mirage_trace::TraceKind::AddReadersSent,
                                0,
                                seg,
                                page,
                                sink,
                            );
                            ev.peer = Some(clock);
                            ev.serial = serial;
                            ev.detail = granted;
                            self.push_trace(ev, sink);
                        }
                        // Non-blocking: keep processing the queue.
                        continue;
                    }
                    // Writer/Readers: clock check plus downgrade (or full
                    // invalidation when the A2 ablation disables it).
                    let granted = batch.len() as u64;
                    rec.serving = Some(Demand::Read { to: batch.clone() });
                    rec.deny_seen = false;
                    rec.serve_attempt = 0;
                    let serial = rec.next_serial(retry_on);
                    let clock = rec.clock;
                    let readers = rec.readers.clone();
                    self.emit(
                        clock,
                        ProtoMsg::Invalidate {
                            seg,
                            page,
                            demand: Demand::Read { to: batch },
                            readers,
                            window,
                            serial,
                        },
                        sink,
                    );
                    self.trace_serve_start(
                        (seg, page),
                        clock,
                        serial,
                        Access::Read,
                        granted,
                        sink,
                    );
                    self.arm_retry(0, TimerKind::ServeRetry { seg, page, serial }, sink);
                    return;
                }
                Access::Write => {
                    rec.queue.pop_front();
                    if rec.writer == Some(front.site) {
                        // Already the writer: stale request; confirm with
                        // an upgrade notification so the requester wakes.
                        let to = front.site;
                        let serial = rec.next_serial(retry_on);
                        self.emit(
                            to,
                            ProtoMsg::UpgradeGrant { seg, page, window, serial },
                            sink,
                        );
                        continue;
                    }
                    let in_readers = rec.readers.contains(front.site);
                    let row = table1::row(
                        rec.current(),
                        Access::Write,
                        in_readers,
                        self.config.downgrade_optimization,
                    );
                    debug_assert!(row.clock_check);
                    let upgrade = in_readers && self.config.upgrade_optimization;
                    let demand = Demand::Write { to: front.site, upgrade };
                    rec.serving = Some(demand.clone());
                    rec.deny_seen = false;
                    rec.serve_attempt = 0;
                    let serial = rec.next_serial(retry_on);
                    let clock = rec.clock;
                    let readers = rec.readers.clone();
                    self.emit(
                        clock,
                        ProtoMsg::Invalidate { seg, page, demand, readers, window, serial },
                        sink,
                    );
                    self.trace_serve_start((seg, page), clock, serial, Access::Write, 1, sink);
                    self.arm_retry(0, TimerKind::ServeRetry { seg, page, serial }, sink);
                    return;
                }
            }
        }
    }

    /// Opens the library serve span and emits `ServeStart` (tracing
    /// only; a no-op otherwise).
    fn trace_serve_start(
        &mut self,
        subject: (SegmentId, PageNum),
        clock: SiteId,
        serial: u32,
        access: Access,
        detail: u64,
        sink: &mut ActionSink,
    ) {
        let (seg, page) = subject;
        if !self.tracing() {
            return;
        }
        let span = self.new_span();
        if let Some(rec) = self.lib.page_mut(seg, page) {
            rec.span = span.0;
        }
        let mut ev =
            self.trace_event(mirage_trace::TraceKind::ServeStart, span.0, seg, page, sink);
        ev.peer = Some(clock);
        ev.serial = serial;
        ev.access = Some(access);
        ev.detail = detail;
        self.push_trace(ev, sink);
    }

    /// The clock site denied the invalidation; retry when Δ expires.
    ///
    /// "The library waits until Δ expires and then re-requests the page's
    /// invalidation." (§6.1)
    pub(crate) fn lib_denied(
        &mut self,
        from: SiteId,
        seg: SegmentId,
        page: PageNum,
        wait: SimDuration,
        serial: u32,
        sink: &mut ActionSink,
    ) {
        if !self.lib.is_active(seg, page) {
            self.lib_stale(from, seg, page, sink);
            return;
        }
        let retry_on = self.config.retry.is_some();
        let Some(rec) = self.lib.page_mut(seg, page) else {
            return;
        };
        if rec.serving.is_none() {
            return;
        }
        if retry_on && serial != rec.serial {
            // A denial of a demand we are no longer serving (delayed or
            // duplicated on the wire).
            return;
        }
        rec.deny_seen = true;
        let span = rec.span;
        if self.tracing() {
            let mut ev =
                self.trace_event(mirage_trace::TraceKind::DenyReceived, span, seg, page, sink);
            ev.serial = serial;
            ev.detail = wait.0;
            self.push_trace(ev, sink);
        }
        let at = sink.now() + wait;
        self.set_timer(at, TimerKind::LibraryRetry { seg, page }, sink);
    }

    /// Retry timer fired: re-send the in-flight invalidation.
    pub(crate) fn lib_retry(&mut self, seg: SegmentId, page: PageNum, sink: &mut ActionSink) {
        let Some(rec) = self.lib.page(seg, page) else {
            return;
        };
        let window = rec.window;
        let Some(demand) = rec.serving.clone() else {
            return;
        };
        let serial = rec.serial;
        let clock = rec.clock;
        let readers = rec.readers.clone();
        let span = rec.span;
        self.emit(
            clock,
            ProtoMsg::Invalidate { seg, page, demand, readers, window, serial },
            sink,
        );
        if self.tracing() {
            let mut ev =
                self.trace_event(mirage_trace::TraceKind::DenyRetry, span, seg, page, sink);
            ev.peer = Some(clock);
            ev.serial = serial;
            self.push_trace(ev, sink);
        }
    }

    /// Serve retransmit timer fired (retry mode): the in-flight
    /// `Invalidate` may have been lost — re-send it and back off.
    pub(crate) fn lib_serve_retry(
        &mut self,
        seg: SegmentId,
        page: PageNum,
        serial: u32,
        sink: &mut ActionSink,
    ) {
        let Some(rec) = self.lib.page_mut(seg, page) else {
            return;
        };
        if rec.serving.is_none() || rec.serial != serial {
            // Serve completed (or superseded); let the stale timer die.
            return;
        }
        rec.serve_attempt += 1;
        let attempt = rec.serve_attempt;
        let window = rec.window;
        let demand = rec.serving.clone().expect("checked above");
        let clock = rec.clock;
        let readers = rec.readers.clone();
        let span = rec.span;
        self.emit(
            clock,
            ProtoMsg::Invalidate { seg, page, demand, readers, window, serial },
            sink,
        );
        if self.tracing() {
            let mut ev =
                self.trace_event(mirage_trace::TraceKind::ServeRetry, span, seg, page, sink);
            ev.peer = Some(clock);
            ev.serial = serial;
            ev.detail = u64::from(attempt);
            self.push_trace(ev, sink);
        }
        self.arm_retry(attempt, TimerKind::ServeRetry { seg, page, serial }, sink);
    }

    /// The clock site completed the demand: update the records and serve
    /// the next request.
    pub(crate) fn lib_done(
        &mut self,
        from: SiteId,
        seg: SegmentId,
        page: PageNum,
        info: DoneInfo,
        serial: u32,
        sink: &mut ActionSink,
    ) {
        if !self.lib.is_active(seg, page) {
            // Do NOT ack: the completion must reach the live library.
            // Redirect the clock so its done-retry chain re-aims.
            self.lib_stale(from, seg, page, sink);
            return;
        }
        let dynamic = self.config.delta.is_dynamic();
        let retry_on = self.config.retry.is_some();
        if retry_on {
            // Always acknowledge, even a stale duplicate: the clock
            // retransmits its completion until this ack arrives.
            self.emit(from, ProtoMsg::DoneAck { seg, page, serial }, sink);
        }
        let Some(rec) = self.lib.page_mut(seg, page) else {
            return;
        };
        if retry_on && (rec.serving.is_none() || serial != rec.serial) {
            // Duplicate of a completion already applied.
            return;
        }
        let Some(demand) = rec.serving.take() else {
            return;
        };
        // §8.0 dynamic tuning, bookkeeping + shrink side: a serve that
        // never hit a denial means the old window had already expired
        // unused when the demand arrived — retention risk; shrink.
        if dynamic {
            // Everyone holding a copy before this serve, minus whoever
            // holds one after it, lost the page.
            let mut prev = rec.readers.clone();
            if let Some(w) = rec.writer {
                prev.insert(w);
            }
            let kept = match &demand {
                Demand::Write { to, .. } => SiteSet::singleton(*to),
                Demand::Read { to } => {
                    let mut k = to.clone();
                    if info.writer_downgraded {
                        if let Some(w) = rec.writer {
                            k.insert(w);
                        }
                    }
                    k
                }
            };
            let losers = prev.difference(&kept);
            if !losers.is_empty() {
                rec.last_losers = Some((losers, sink.now()));
            }
            if !rec.deny_seen {
                rec.window = shrink_window(rec.window, &self.config.delta);
            }
        }
        match demand {
            Demand::Write { to, .. } => {
                rec.readers.clear();
                rec.writer = Some(to);
                rec.clock = to;
            }
            Demand::Read { to } => {
                let old_writer = rec.writer.take();
                let mut readers = to;
                let clock = if info.writer_downgraded {
                    // §6.1 optimization 2: the downgraded writer retains
                    // a read copy and, holding the most recent data,
                    // remains the clock site.
                    let w = old_writer.expect("downgrade implies a writer existed");
                    readers.insert(w);
                    w
                } else {
                    readers.first().expect("read demand grants at least one site")
                };
                rec.readers = readers;
                rec.clock = clock;
            }
        }
        let span = std::mem::take(&mut rec.span);
        if self.tracing() {
            let mut ev =
                self.trace_event(mirage_trace::TraceKind::ServeDone, span, seg, page, sink);
            ev.peer = Some(from);
            ev.serial = serial;
            ev.detail = u64::from(info.writer_downgraded);
            self.push_trace(ev, sink);
        }
        self.lib_process_queue(seg, page, sink);
    }

    /// Library side of a site restart (retry mode): the request queue
    /// died with the crash, but the journaled `serving` demand did not —
    /// re-send its invalidation and re-arm the retransmit timer. The
    /// queue itself is reconstructed over the next retry intervals as
    /// every requester with an unanswered request retransmits it.
    pub(crate) fn lib_restart(&mut self, sink: &mut ActionSink) {
        if self.config.retry.is_none() {
            return;
        }
        for (seg, page) in self.lib.serving_pages() {
            let Some(rec) = self.lib.page(seg, page) else {
                continue;
            };
            let serial = rec.serial;
            self.lib_retry(seg, page, sink);
            self.arm_retry(0, TimerKind::ServeRetry { seg, page, serial }, sink);
        }
        // An unacknowledged outbound handoff survived the crash (the
        // frozen snapshot may be the only copy of the records): resend
        // it and re-arm its retransmit chain.
        for (seg, shard) in self.lib.pending_handoffs() {
            self.lib_handoff_retry(seg, shard as u32, sink);
        }
    }

    // ---- Library-role handoff (relocatable library shards). ----

    /// Placement-policy input: move the whole library role for `seg` to
    /// `to` — every shard that is still active here migrates
    /// independently (shards already elsewhere, or mid-handoff, are
    /// skipped; their own machinery owns them).
    pub(crate) fn lib_migrate(&mut self, seg: SegmentId, to: SiteId, sink: &mut ActionSink) {
        for shard in 0..self.lib.shards(seg) {
            self.lib_migrate_shard(seg, shard as u32, to, sink);
        }
    }

    /// Placement-policy input: move one library shard of `seg` to `to`.
    ///
    /// Freeze → transfer → activate: the shard's records (plus the
    /// request queue — a graceful freeze, unlike a crash, loses
    /// nothing) are snapshotted under a bumped per-shard epoch, the
    /// local shard becomes a forwarding stub, and the snapshot travels
    /// to `to`, retransmitted until acknowledged. Requires retry mode —
    /// mid-handoff the serve machinery leans on the same retransmit
    /// chains a crash does — and no-ops if this site is not the active
    /// library for the shard, a handoff is already in flight, or the
    /// destination is this site.
    pub(crate) fn lib_migrate_shard(
        &mut self,
        seg: SegmentId,
        shard: u32,
        to: SiteId,
        sink: &mut ActionSink,
    ) {
        if self.config.retry.is_none() || to == self.site {
            return;
        }
        let Some((epoch, frozen)) = self.lib.freeze(seg, shard as usize, to) else {
            return;
        };
        let anchor = frozen.start;
        // This site's own using role must chase the shard immediately —
        // local faults go straight to the new site, not via a redirect.
        self.usr.set_lib_hint(seg, anchor, to, epoch);
        if self.tracing() {
            let mut ev =
                self.trace_event(mirage_trace::TraceKind::LibraryFrozen, 0, seg, anchor, sink);
            ev.peer = Some(to);
            ev.epoch = epoch;
            self.push_trace(ev, sink);
            let mut ev =
                self.trace_event(mirage_trace::TraceKind::HandoffSent, 0, seg, anchor, sink);
            ev.peer = Some(to);
            ev.epoch = epoch;
            self.push_trace(ev, sink);
        }
        self.emit(to, ProtoMsg::LibraryHandoff { seg, page: anchor, epoch, frozen }, sink);
        self.arm_retry(0, TimerKind::HandoffRetry { seg, shard }, sink);
    }

    /// A frozen library state arrived: adopt the role (or re-ack a
    /// duplicate of a handoff already adopted).
    pub(crate) fn lib_adopt(
        &mut self,
        from: SiteId,
        seg: SegmentId,
        epoch: u32,
        frozen: &FrozenLibrary,
        sink: &mut ActionSink,
    ) {
        let anchor = frozen.start;
        let range = anchor.index()..anchor.index() + frozen.pages.len();
        match self.lib.adopt(seg, epoch, frozen) {
            None => {}
            Some(false) => {
                // Already at this epoch or newer — the ack was lost;
                // just stop the old site's retransmit chain.
                self.emit(from, ProtoMsg::LibraryHandoffAck { seg, page: anchor, epoch }, sink);
            }
            Some(true) => {
                self.usr.set_lib_hint(seg, anchor, self.site, epoch);
                let serving: Vec<(PageNum, u32)> = range
                    .clone()
                    .filter_map(|p| {
                        let page = PageNum(p as u32);
                        let rec = self.lib.page(seg, page)?;
                        rec.serving.as_ref().map(|_| (page, rec.serial))
                    })
                    .collect();
                if self.tracing() {
                    let mut ev = self.trace_event(
                        mirage_trace::TraceKind::LibraryActivated,
                        0,
                        seg,
                        anchor,
                        sink,
                    );
                    ev.peer = Some(from);
                    ev.epoch = epoch;
                    // The adopted range's length, so the offline checker
                    // can scope the role to this shard's pages.
                    ev.detail = frozen.pages.len() as u64;
                    self.push_trace(ev, sink);
                }
                self.emit(from, ProtoMsg::LibraryHandoffAck { seg, page: anchor, epoch }, sink);
                // Reanimate the transferred obligations — the same
                // recovery a restarted library performs: re-send the
                // in-flight invalidation for every serving page in the
                // adopted range, then work its queues.
                for (page, serial) in serving {
                    self.lib_retry(seg, page, sink);
                    self.arm_retry(0, TimerKind::ServeRetry { seg, page, serial }, sink);
                }
                for p in range {
                    self.lib_process_queue(seg, PageNum(p as u32), sink);
                }
            }
        }
    }

    /// The destination acknowledged a shard handoff: stop
    /// retransmitting. The ack's `page` is the shard's range anchor.
    pub(crate) fn lib_handoff_ack(
        &mut self,
        from: SiteId,
        seg: SegmentId,
        page: PageNum,
        epoch: u32,
        sink: &mut ActionSink,
    ) {
        if self.lib.handoff_acked(seg, page, epoch) && self.tracing() {
            let mut ev =
                self.trace_event(mirage_trace::TraceKind::HandoffAcked, 0, seg, page, sink);
            ev.peer = Some(from);
            ev.epoch = epoch;
            self.push_trace(ev, sink);
        }
    }

    /// Handoff retransmit timer fired: the frozen shard (or its ack)
    /// may have been lost — re-send and back off.
    pub(crate) fn lib_handoff_retry(
        &mut self,
        seg: SegmentId,
        shard: u32,
        sink: &mut ActionSink,
    ) {
        let Some((to, epoch, frozen, attempt)) =
            self.lib.handoff_retransmit(seg, shard as usize)
        else {
            // Acked (or superseded); let the stale timer die.
            return;
        };
        let anchor = frozen.start;
        if self.tracing() {
            let mut ev =
                self.trace_event(mirage_trace::TraceKind::HandoffSent, 0, seg, anchor, sink);
            ev.peer = Some(to);
            ev.epoch = epoch;
            ev.detail = u64::from(attempt);
            self.push_trace(ev, sink);
        }
        self.emit(to, ProtoMsg::LibraryHandoff { seg, page: anchor, epoch, frozen }, sink);
        self.arm_retry(attempt, TimerKind::HandoffRetry { seg, shard }, sink);
    }

    /// A library-bound message reached a shard this site no longer
    /// owns: redirect the sender to wherever that shard went. A site
    /// that never held the shard (hint raced ahead of the handoff)
    /// drops the message silently — the sender's retry chain recovers.
    fn lib_stale(
        &mut self,
        from: SiteId,
        seg: SegmentId,
        page: PageNum,
        sink: &mut ActionSink,
    ) {
        let Some((epoch, to)) = self.lib.stub(seg, page) else {
            return;
        };
        if self.tracing() {
            let mut ev =
                self.trace_event(mirage_trace::TraceKind::RedirectSent, 0, seg, page, sink);
            ev.peer = Some(from);
            ev.epoch = epoch;
            ev.detail = u64::from(to.0);
            self.push_trace(ev, sink);
        }
        self.emit(from, ProtoMsg::LibraryRedirect { seg, page, epoch, to }, sink);
    }
}

/// Doubles a dynamic window (at least 1 tick), capped at the policy max.
fn grow_window(w: Delta, policy: &crate::config::DeltaPolicy) -> Delta {
    let crate::config::DeltaPolicy::Dynamic { max, .. } = policy else {
        return w;
    };
    Delta((w.0.max(1) * 2).min(max.0))
}

/// Halves a dynamic window, floored at the policy min.
fn shrink_window(w: Delta, policy: &crate::config::DeltaPolicy) -> Delta {
    let crate::config::DeltaPolicy::Dynamic { min, .. } = policy else {
        return w;
    };
    Delta((w.0 / 2).max(min.0))
}
