//! A synchronous multi-site test harness for the protocol engines.
//!
//! Messages are delivered instantly and in order; timers advance a
//! virtual clock. `run()` drives everything to quiescence, so tests can
//! interleave faults and assert on quiescent global state.

use std::collections::VecDeque;

use mirage_core::{
    DriverOps,
    Event,
    InMemStore,
    ProtoMsg,
    ProtocolConfig,
    ProtocolDriver,
    RefLogEntry,
    SiteEngine,
};
use mirage_mem::LocalSegment;
use mirage_net::{
    message::Sized2,
    SizeClass,
};
use mirage_trace::TraceEvent;
use mirage_types::{
    Access,
    PageNum,
    Pid,
    SegmentId,
    SimTime,
    SiteId,
};

/// A recorded network message, for message-count assertions.
#[derive(Clone, Debug)]
#[allow(dead_code)] // Fields are for debug output in assertion messages.
pub struct SentMsg {
    pub from: SiteId,
    pub to: SiteId,
    pub tag: &'static str,
    pub size: SizeClass,
}

#[allow(dead_code)] // Not every test binary uses every helper.
pub struct Cluster {
    pub drivers: Vec<ProtocolDriver>,
    pub stores: Vec<InMemStore>,
    now: SimTime,
    net: VecDeque<(SiteId, SiteId, ProtoMsg)>,
    timers: Vec<(SimTime, SiteId, u64)>,
    pub sent: Vec<SentMsg>,
    pub woken: Vec<Pid>,
    pub ref_log: Vec<RefLogEntry>,
    /// Protocol trace, collected from every site (tracing is always on
    /// in the harness so each flow test doubles as an emission test).
    pub trace: Vec<TraceEvent>,
    next_serial: u32,
}

#[allow(dead_code)] // Not every test binary uses every helper.
impl Cluster {
    pub fn new(n: usize, config: ProtocolConfig) -> Self {
        let drivers = (0..n)
            .map(|i| {
                let mut d = ProtocolDriver::from_config(SiteId(i as u16), config.clone());
                d.set_tracing(true);
                d
            })
            .collect();
        let stores = (0..n).map(|_| InMemStore::new()).collect();
        Self {
            drivers,
            stores,
            now: SimTime::ZERO,
            net: VecDeque::new(),
            timers: Vec::new(),
            sent: Vec::new(),
            woken: Vec::new(),
            ref_log: Vec::new(),
            trace: Vec::new(),
            next_serial: 1,
        }
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Read access to one site's engine, for state assertions.
    pub fn engine(&self, site: usize) -> &SiteEngine {
        self.drivers[site].engine()
    }

    /// Creates a segment with its library at `lib`, registering it at
    /// every site. The library site starts fully resident (it is the
    /// creator), all other sites absent.
    pub fn create_segment(&mut self, lib: usize, pages: usize) -> SegmentId {
        let seg = SegmentId::new(SiteId(lib as u16), self.next_serial);
        self.next_serial += 1;
        for (i, (drv, store)) in self.drivers.iter_mut().zip(self.stores.iter_mut()).enumerate()
        {
            let view = if i == lib {
                LocalSegment::fully_resident(seg, pages)
            } else {
                LocalSegment::absent(seg, pages)
            };
            store.add_segment(view);
            drv.register_segment(seg, pages);
        }
        seg
    }

    /// Dispatches one event at `site` and drains the resulting actions
    /// into the harness queues.
    fn dispatch(&mut self, site: usize, ev: Event) {
        let Self { drivers, stores, now, net, timers, sent, woken, ref_log, trace, .. } = self;
        drivers[site].drive(
            ev,
            *now,
            &mut stores[site],
            &mut ClusterOps {
                from: SiteId(site as u16),
                net,
                timers,
                sent,
                woken,
                ref_log,
                trace,
            },
        );
    }

    /// Drives messages and timers to quiescence.
    pub fn run(&mut self) {
        self.run_filtered(|_, _, _| Verdict::Deliver);
    }

    /// Drives to quiescence, dropping up to `budget` messages matching
    /// `pred` along the way (targeted loss injection).
    pub fn run_dropping(
        &mut self,
        mut budget: usize,
        pred: impl Fn(SiteId, SiteId, &ProtoMsg) -> bool,
    ) {
        self.run_filtered(|from, to, msg| {
            if budget > 0 && pred(from, to, msg) {
                budget -= 1;
                Verdict::Drop
            } else {
                Verdict::Deliver
            }
        });
    }

    /// Drives to quiescence, delivering up to `budget` messages matching
    /// `pred` twice (duplicate injection).
    pub fn run_duplicating(
        &mut self,
        mut budget: usize,
        pred: impl Fn(SiteId, SiteId, &ProtoMsg) -> bool,
    ) {
        self.run_filtered(|from, to, msg| {
            if budget > 0 && pred(from, to, msg) {
                budget -= 1;
                Verdict::Duplicate
            } else {
                Verdict::Deliver
            }
        });
    }

    /// Drains the message queue only, leaving armed timers pending:
    /// the state "quiescent except for retransmit timers", where a crash
    /// can be injected before any retry fires. Drops up to `budget`
    /// messages matching `pred`.
    pub fn run_messages_dropping(
        &mut self,
        mut budget: usize,
        pred: impl Fn(SiteId, SiteId, &ProtoMsg) -> bool,
    ) {
        while let Some((from, to, msg)) = self.net.pop_front() {
            if budget > 0 && pred(from, to, &msg) {
                budget -= 1;
                continue;
            }
            self.dispatch(to.index(), Event::Deliver { from, msg });
        }
    }

    /// Drives messages and timers to quiescence, consulting `verdict`
    /// for every queued message before delivery.
    fn run_filtered(&mut self, mut verdict: impl FnMut(SiteId, SiteId, &ProtoMsg) -> Verdict) {
        loop {
            if let Some((from, to, msg)) = self.net.pop_front() {
                match verdict(from, to, &msg) {
                    Verdict::Drop => {}
                    Verdict::Duplicate => {
                        self.dispatch(to.index(), Event::Deliver { from, msg: msg.clone() });
                        self.dispatch(to.index(), Event::Deliver { from, msg });
                    }
                    Verdict::Deliver => {
                        self.dispatch(to.index(), Event::Deliver { from, msg });
                    }
                }
                continue;
            }
            if !self.timers.is_empty() {
                // Fire the earliest timer, advancing virtual time.
                let idx = self
                    .timers
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &(at, _, _))| at)
                    .map(|(i, _)| i)
                    .unwrap();
                let (at, site, token) = self.timers.remove(idx);
                if at > self.now {
                    self.now = at;
                }
                self.dispatch(site.index(), Event::Timer { token });
                continue;
            }
            break;
        }
    }

    /// Raises a typed fault at a site and runs to quiescence.
    pub fn fault(&mut self, site: usize, seg: SegmentId, page: PageNum, access: Access) {
        let pid = Pid::new(SiteId(site as u16), 1);
        self.dispatch(site, Event::Fault { pid, seg, page, access });
        self.run();
    }

    /// Raises a fault *without* running to quiescence (for interleaving
    /// tests); call `run()` afterwards.
    pub fn fault_no_run(
        &mut self,
        site: usize,
        local: u32,
        seg: SegmentId,
        page: PageNum,
        access: Access,
    ) {
        let pid = Pid::new(SiteId(site as u16), local);
        self.dispatch(site, Event::Fault { pid, seg, page, access });
    }

    /// Initiates a library-role handoff at `site` *without* running to
    /// quiescence, so tests can interleave crashes and message loss
    /// with the freeze → transfer → activate sequence.
    pub fn migrate_library_no_run(&mut self, site: usize, seg: SegmentId, to: SiteId) {
        self.dispatch(site, Event::MigrateLibrary { seg, to, shard: None });
    }

    /// Like [`Self::migrate_library_no_run`], but hands off only one
    /// page-range shard of the segment (requires a sharded
    /// `ProtocolConfig`).
    pub fn migrate_library_shard_no_run(
        &mut self,
        site: usize,
        seg: SegmentId,
        to: SiteId,
        shard: u32,
    ) {
        self.dispatch(site, Event::MigrateLibrary { seg, to, shard: Some(shard) });
    }

    /// Advances virtual time (e.g., to let a Δ window expire).
    pub fn advance(&mut self, d: mirage_types::SimDuration) {
        self.now += d;
    }

    /// Emulates a process write: fault until writable, then store a word.
    pub fn write_u32(
        &mut self,
        site: usize,
        seg: SegmentId,
        page: PageNum,
        off: usize,
        val: u32,
    ) {
        use mirage_core::PageStore;
        for _ in 0..8 {
            if self.stores[site].prot(seg, page).permits(Access::Write) {
                self.stores[site]
                    .segment_mut(seg)
                    .unwrap()
                    .frame_mut(page)
                    .unwrap()
                    .store_u32(off, val);
                return;
            }
            self.fault(site, seg, page, Access::Write);
        }
        panic!("write access never granted at site {site}");
    }

    /// Emulates a process read: fault until readable, then load a word.
    pub fn read_u32(&mut self, site: usize, seg: SegmentId, page: PageNum, off: usize) -> u32 {
        use mirage_core::PageStore;
        for _ in 0..8 {
            if self.stores[site].prot(seg, page).permits(Access::Read) {
                return self.stores[site]
                    .segment(seg)
                    .unwrap()
                    .frame(page)
                    .unwrap()
                    .load_u32(off);
            }
            self.fault(site, seg, page, Access::Read);
        }
        panic!("read access never granted at site {site}");
    }

    /// Runs the coherence checker for a page across all sites.
    pub fn check_coherence(&self, seg: SegmentId, page: PageNum) {
        use mirage_core::PageStore;
        let refs: Vec<(SiteId, &dyn PageStore)> = self
            .stores
            .iter()
            .enumerate()
            .map(|(i, s)| (SiteId(i as u16), s as &dyn PageStore))
            .collect();
        let v = mirage_core::invariants::check_page(&refs, seg, page);
        assert!(v.is_empty(), "coherence violations: {v:?}");
        // The causal trace oracle cross-checks the structural one.
        self.check_trace();
    }

    /// Runs the offline trace checker over everything traced so far.
    pub fn check_trace(&self) {
        let report = mirage_trace::check(&self.trace);
        assert!(
            report.violations.is_empty(),
            "trace checker violations: {:?}",
            report.violations
        );
    }

    /// Number of traced events of the given kind.
    pub fn trace_count(&self, kind: mirage_trace::TraceKind) -> usize {
        self.trace.iter().filter(|e| e.kind == kind).count()
    }

    /// Clears message/wake instrumentation.
    pub fn clear_instrumentation(&mut self) {
        self.sent.clear();
        self.woken.clear();
    }

    /// Number of recorded sends with the given tag.
    pub fn sent_count(&self, tag: &str) -> usize {
        self.sent.iter().filter(|m| m.tag == tag).count()
    }

    /// Crashes a site: the engine drops its volatile state, and every
    /// message still queued to or from the site is lost with it (the
    /// simulator's circuit severing, collapsed to instant delivery).
    pub fn crash(&mut self, site: usize) {
        self.drivers[site].crash();
        let id = SiteId(site as u16);
        self.net.retain(|&(from, to, _)| from != id && to != id);
        self.timers.retain(|&(_, s, _)| s != id);
    }

    /// Restarts a crashed site, queueing the retransmissions its engine
    /// reconstructs from the persistent tables.
    pub fn restart(&mut self, site: usize) {
        let Self { drivers, stores, now, net, timers, sent, woken, ref_log, trace, .. } = self;
        drivers[site].restart(*now, &mut stores[site]);
        drivers[site].flush(&mut ClusterOps {
            from: SiteId(site as u16),
            net,
            timers,
            sent,
            woken,
            ref_log,
            trace,
        });
    }
}

/// What to do with one queued message in [`Cluster::run_filtered`].
enum Verdict {
    Deliver,
    Drop,
    Duplicate,
}

/// [`DriverOps`] receiver for the harness: everything is recorded.
struct ClusterOps<'a> {
    from: SiteId,
    net: &'a mut VecDeque<(SiteId, SiteId, ProtoMsg)>,
    timers: &'a mut Vec<(SimTime, SiteId, u64)>,
    sent: &'a mut Vec<SentMsg>,
    woken: &'a mut Vec<Pid>,
    ref_log: &'a mut Vec<RefLogEntry>,
    trace: &'a mut Vec<TraceEvent>,
}

impl DriverOps for ClusterOps<'_> {
    fn send(&mut self, to: SiteId, msg: ProtoMsg) {
        self.sent.push(SentMsg { from: self.from, to, tag: msg.tag(), size: msg.size_class() });
        self.net.push_back((self.from, to, msg));
    }

    fn wake(&mut self, pid: Pid) {
        self.woken.push(pid);
    }

    fn set_timer(&mut self, at: SimTime, token: u64) {
        self.timers.push((at, self.from, token));
    }

    fn log(&mut self, entry: RefLogEntry) {
        self.ref_log.push(entry);
    }

    fn trace(&mut self, ev: TraceEvent) {
        self.trace.push(ev);
    }
}
