//! Steady-state allocation test: once the engines, stores, and sinks
//! are warm, handling events through [`SiteEngine::handle_into`] with a
//! reused [`ActionSink`] must perform **zero** heap allocations. A
//! counting global allocator measures a write ping-pong (the paper's
//! worst case, §7.3): every ownership transfer moves the page box
//! through take → grant → install without a single alloc.
//!
//! This file intentionally holds a single `#[test]` so no concurrent
//! test pollutes the allocation counter.

use std::alloc::{
    GlobalAlloc,
    Layout,
    System,
};
use std::collections::VecDeque;
use std::sync::atomic::{
    AtomicU64,
    Ordering,
};

use mirage_core::{
    Action,
    ActionSink,
    Event,
    InMemStore,
    ProtoMsg,
    ProtocolConfig,
    SiteEngine,
};
use mirage_mem::LocalSegment;
use mirage_types::{
    Access,
    PageNum,
    Pid,
    SegmentId,
    SimTime,
    SiteId,
};

/// Counts every allocation and reallocation crossing the global
/// allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A two-site cluster driven by hand, reusing one sink per site.
struct Pair {
    engines: [SiteEngine; 2],
    stores: [InMemStore; 2],
    sinks: [ActionSink; 2],
    net: VecDeque<(SiteId, SiteId, ProtoMsg)>,
    seg: SegmentId,
    grants: u64,
}

impl Pair {
    fn new() -> Self {
        let seg = SegmentId::new(SiteId(0), 1);
        let mut engines = [
            SiteEngine::new(SiteId(0), ProtocolConfig::default()),
            SiteEngine::new(SiteId(1), ProtocolConfig::default()),
        ];
        let mut stores = [InMemStore::new(), InMemStore::new()];
        for (i, (e, s)) in engines.iter_mut().zip(stores.iter_mut()).enumerate() {
            s.add_segment(if i == 0 {
                LocalSegment::fully_resident(seg, 1)
            } else {
                LocalSegment::absent(seg, 1)
            });
            e.register_segment(seg, 1);
        }
        Self {
            engines,
            stores,
            sinks: [ActionSink::new(), ActionSink::new()],
            net: VecDeque::new(),
            seg,
            grants: 0,
        }
    }

    /// Moves the sink's actions onto the in-memory wire (wakes, logs,
    /// and timers are dropped; the ping-pong sets no timers).
    fn drain(&mut self, site: usize) {
        let from = SiteId(site as u16);
        for a in self.sinks[site].drain() {
            match a {
                Action::Send { to, msg } => {
                    if matches!(msg, ProtoMsg::PageGrant { .. }) {
                        self.grants += 1;
                    }
                    self.net.push_back((from, to, msg));
                }
                Action::SetTimer { .. } => panic!("Δ=0 ping-pong must not set timers"),
                Action::Trace(_) => panic!("tracing is off; no events may be built"),
                Action::Wake { .. } | Action::Log(_) => {}
            }
        }
    }

    /// Raises a fault and pumps messages to quiescence.
    fn fault_and_settle(&mut self, site: usize, access: Access) {
        let pid = Pid::new(SiteId(site as u16), 1);
        let seg = self.seg;
        let ev = Event::Fault { pid, seg, page: PageNum(0), access };
        self.engines[site].handle_into(ev, SimTime::ZERO, &mut self.stores[site], {
            let [a, b] = &mut self.sinks;
            if site == 0 {
                a
            } else {
                b
            }
        });
        self.drain(site);
        while let Some((from, to, msg)) = self.net.pop_front() {
            let t = to.index();
            let ev = Event::Deliver { from, msg };
            self.engines[t].handle_into(ev, SimTime::ZERO, &mut self.stores[t], {
                let [a, b] = &mut self.sinks;
                if t == 0 {
                    a
                } else {
                    b
                }
            });
            self.drain(t);
        }
    }

    /// One full ownership round trip: site 1 takes the page, site 0
    /// takes it back.
    fn pingpong_cycle(&mut self) {
        self.fault_and_settle(1, Access::Write);
        self.fault_and_settle(0, Access::Write);
    }
}

#[test]
fn steady_state_handle_is_allocation_free() {
    let mut p = Pair::new();
    // Warm-up: first cycles grow every buffer (sinks, net queue, waiter
    // lists, library queues) to steady-state capacity.
    for _ in 0..64 {
        p.pingpong_cycle();
    }
    // The counter sees every allocation in the process, including ones
    // the libtest harness threads make if the OS schedules them inside
    // the measured window. The claim under test is that an alloc-free
    // steady state *exists* — noise can only add counts — so measure a
    // few windows and accept the first clean one.
    let mut last_allocs = 0;
    for _attempt in 0..5 {
        let grants_before = p.grants;
        let allocs_before = ALLOCS.load(Ordering::Relaxed);
        for _ in 0..256 {
            p.pingpong_cycle();
        }
        last_allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;
        let grants = p.grants - grants_before;
        // Sanity: the protocol really ran — one page grant per transfer,
        // two transfers per cycle.
        assert_eq!(grants, 512, "each cycle moves the page twice");
        if last_allocs == 0 {
            return;
        }
    }
    panic!(
        "steady-state event handling must not allocate \
         ({last_allocs} allocations in 256 cycles, 5 attempts)"
    );
}
