//! Differential test: the dense slab-indexed page tables must be
//! observationally identical to the original nested-map bookkeeping.
//!
//! The `reference` module below is the engine's original map-based
//! implementation (nested `HashMap<(SegmentId, PageNum), _>` state,
//! allocating `Vec<SiteId>` invalidation rounds), kept verbatim except
//! for the `PageData` payload type it shares with the current wire
//! format. Random event interleavings — faults, message deliveries in
//! any per-circuit-FIFO-legal order, timer firings — are replayed
//! through both engines in lockstep, asserting the [`Action`] streams
//! are identical at every dispatch and the final protocol state agrees.

use std::collections::VecDeque;

use mirage_core::{
    DeltaPolicy,
    Event,
    InMemStore,
    PageStore,
    ProtoMsg,
    ProtocolConfig,
    SiteEngine,
};
use mirage_mem::LocalSegment;
use mirage_types::{
    Access,
    Delta,
    PageNum,
    Pid,
    Prng,
    SegmentId,
    SimDuration,
    SimTime,
    SiteId,
};

/// The original map-based engine, preserved as the executable
/// specification the dense-table implementation is checked against.
#[allow(clippy::too_many_arguments)] // the specification is kept verbatim
mod reference {
    use std::collections::{
        HashMap,
        HashSet,
        VecDeque,
    };

    use mirage_core::{
        config::{
            DeltaPolicy,
            ProtocolConfig,
        },
        event::{
            Action,
            Event,
            RefLogEntry,
        },
        msg::{
            Demand,
            DoneInfo,
            ProtoMsg,
        },
        store::PageStore,
        table1::{
            self,
            Current,
            Invalidation,
        },
    };
    use mirage_mem::{
        AuxTable,
        PageData,
    };
    use mirage_types::{
        Access,
        Delta,
        PageNum,
        PageProt,
        Pid,
        SegmentId,
        SimDuration,
        SimTime,
        SiteId,
        SiteSet,
        TICK,
    };

    #[derive(Clone, Debug)]
    enum TimerKind {
        LibraryRetry { seg: SegmentId, page: PageNum },
        ClockDelayed { seg: SegmentId, page: PageNum },
    }

    struct Ctx {
        now: SimTime,
        out: Vec<Action>,
        loopback: VecDeque<ProtoMsg>,
    }

    impl Ctx {
        fn new(now: SimTime) -> Self {
            Self { now, out: Vec::new(), loopback: VecDeque::new() }
        }
    }

    #[derive(Clone, Copy, Debug)]
    struct Request {
        site: SiteId,
        access: Access,
    }

    #[derive(Debug)]
    struct LibPage {
        readers: SiteSet,
        writer: Option<SiteId>,
        clock: SiteId,
        queue: VecDeque<Request>,
        serving: Option<Demand>,
        window: Delta,
        last_losers: Option<(SiteSet, SimTime)>,
        deny_seen: bool,
    }

    impl LibPage {
        fn initial(creator: SiteId, window: Delta) -> Self {
            Self {
                readers: SiteSet::empty(),
                writer: Some(creator),
                clock: creator,
                queue: VecDeque::new(),
                serving: None,
                window,
                last_losers: None,
                deny_seen: false,
            }
        }

        fn current(&self) -> Current {
            if self.writer.is_some() {
                Current::Writer
            } else {
                Current::Readers
            }
        }
    }

    /// Mirrors `mirage_core::library::LibPageView` (identical Debug
    /// output, compared stringly in the final-state check).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct LibPageView {
        pub readers: SiteSet,
        pub writer: Option<SiteId>,
        pub clock: SiteId,
        pub queued: usize,
        pub serving: bool,
        pub window: Delta,
    }

    #[derive(Debug, Default)]
    struct LibState {
        pages: HashMap<(SegmentId, PageNum), LibPage>,
    }

    #[derive(Debug)]
    struct InvRound {
        demand: Demand,
        window: Delta,
        remaining: SiteSet,
        to_send: Vec<SiteId>,
        data: Option<PageData>,
    }

    #[derive(Debug)]
    struct DelayedInvalidate {
        demand: Demand,
        readers: SiteSet,
        window: Delta,
    }

    #[derive(Debug)]
    struct SegState {
        aux: AuxTable,
        waiters: HashMap<PageNum, Vec<(Pid, Access)>>,
        out_read: HashSet<PageNum>,
        out_write: HashSet<PageNum>,
    }

    #[derive(Debug)]
    enum DeferredOp {
        Invalidate { demand: Demand, readers: SiteSet, window: Delta },
        AddReaders { readers: SiteSet, window: Delta },
        ReaderInvalidate { from: SiteId },
    }

    #[derive(Debug, Default)]
    struct UseState {
        segs: HashMap<SegmentId, SegState>,
        rounds: HashMap<(SegmentId, PageNum), InvRound>,
        delayed: HashMap<(SegmentId, PageNum), DelayedInvalidate>,
        deferred: HashMap<(SegmentId, PageNum), VecDeque<DeferredOp>>,
    }

    /// The original map-based site engine.
    pub struct RefEngine {
        site: SiteId,
        config: ProtocolConfig,
        lib: LibState,
        usr: UseState,
        timers: HashMap<u64, TimerKind>,
        next_token: u64,
    }

    impl RefEngine {
        pub fn new(site: SiteId, config: ProtocolConfig) -> Self {
            Self {
                site,
                config,
                lib: LibState::default(),
                usr: UseState::default(),
                timers: HashMap::new(),
                next_token: 1,
            }
        }

        pub fn register_segment(&mut self, seg: SegmentId, pages: usize) {
            let mut aux = AuxTable::new(pages, Delta::ZERO);
            for p in 0..pages {
                let page = PageNum(p as u32);
                aux.set_window(page, self.config.delta.window(page));
            }
            self.usr.segs.insert(
                seg,
                SegState {
                    aux,
                    waiters: HashMap::new(),
                    out_read: HashSet::new(),
                    out_write: HashSet::new(),
                },
            );
            if seg.library == self.site {
                for p in 0..pages {
                    let page = PageNum(p as u32);
                    self.lib.pages.insert(
                        (seg, page),
                        LibPage::initial(self.site, self.config.delta.window(page)),
                    );
                }
            }
        }

        pub fn library_view(&self, seg: SegmentId, page: PageNum) -> Option<LibPageView> {
            self.lib.pages.get(&(seg, page)).map(|p| LibPageView {
                readers: p.readers.clone(),
                writer: p.writer,
                clock: p.clock,
                queued: p.queue.len(),
                serving: p.serving.is_some(),
                window: p.window,
            })
        }

        pub fn handle(
            &mut self,
            ev: Event,
            now: SimTime,
            store: &mut dyn PageStore,
        ) -> Vec<Action> {
            let mut ctx = Ctx::new(now);
            match ev {
                Event::Fault { pid, seg, page, access } => {
                    self.fault(pid, seg, page, access, store, &mut ctx);
                }
                Event::Deliver { from, msg } => {
                    self.dispatch(from, msg, store, &mut ctx);
                }
                Event::Timer { token } => {
                    self.timer_fired(token, store, &mut ctx);
                }
                // The spec engine predates relocatable libraries; the
                // differential schedules never migrate.
                Event::MigrateLibrary { .. } => {
                    unreachable!("spec engine runs with a static library")
                }
            }
            while let Some(msg) = ctx.loopback.pop_front() {
                let from = self.site;
                self.dispatch(from, msg, store, &mut ctx);
            }
            ctx.out
        }

        fn dispatch(
            &mut self,
            from: SiteId,
            msg: ProtoMsg,
            store: &mut dyn PageStore,
            ctx: &mut Ctx,
        ) {
            match msg {
                ProtoMsg::PageRequest { seg, page, access, pid, epoch: _ } => {
                    self.lib_request(from, seg, page, access, pid, ctx);
                }
                ProtoMsg::InvalidateDeny { seg, page, wait, serial: _ } => {
                    self.lib_denied(seg, page, wait, ctx);
                }
                ProtoMsg::InvalidateDone { seg, page, info, serial: _ } => {
                    self.lib_done(seg, page, info, ctx);
                }
                ProtoMsg::AddReaders { seg, page, readers, window, serial: _ } => {
                    self.use_add_readers(seg, page, readers, window, store, ctx);
                }
                ProtoMsg::Invalidate { seg, page, demand, readers, window, serial: _ } => {
                    self.use_invalidate(seg, page, demand, readers, window, store, ctx);
                }
                ProtoMsg::ReaderInvalidate { seg, page, serial: _ } => {
                    self.use_reader_invalidate(from, seg, page, store, ctx);
                }
                ProtoMsg::ReaderInvalidateAck { seg, page, serial: _ } => {
                    self.use_reader_ack(from, seg, page, store, ctx);
                }
                ProtoMsg::PageGrant { seg, page, access, window, data, serial: _ } => {
                    self.use_grant(seg, page, access, window, data, store, ctx);
                }
                ProtoMsg::UpgradeGrant { seg, page, window, serial: _ } => {
                    self.use_upgrade(seg, page, window, store, ctx);
                }
                // Retry-mode acknowledgements and handoff traffic:
                // never produced under a reliable transport with retry
                // disabled and a static library placement.
                ProtoMsg::DoneAck { .. }
                | ProtoMsg::GrantAck { .. }
                | ProtoMsg::UpgradeNack { .. }
                | ProtoMsg::PageGrantDelta { .. }
                | ProtoMsg::LibraryHandoff { .. }
                | ProtoMsg::LibraryHandoffAck { .. }
                | ProtoMsg::LibraryRedirect { .. } => {
                    unreachable!("spec engine runs with retry and delta grants disabled");
                }
                // The spec engine models Mirage only; the Tardis rival
                // is differential-tested against the simulator's
                // quiescence oracle instead (sim::fuzz).
                ProtoMsg::TsRead { .. }
                | ProtoMsg::TsWrite { .. }
                | ProtoMsg::TsReadData { .. }
                | ProtoMsg::TsRenew { .. }
                | ProtoMsg::TsWriteGrant { .. }
                | ProtoMsg::TsRecall { .. }
                | ProtoMsg::TsWriteBack { .. }
                | ProtoMsg::TsWriteBackAck { .. } => {
                    unreachable!("spec engine runs Mirage coherence only");
                }
            }
        }

        fn timer_fired(&mut self, token: u64, store: &mut dyn PageStore, ctx: &mut Ctx) {
            let Some(kind) = self.timers.remove(&token) else {
                return;
            };
            match kind {
                TimerKind::LibraryRetry { seg, page } => {
                    self.lib_retry(seg, page, ctx);
                }
                TimerKind::ClockDelayed { seg, page } => {
                    self.use_delayed_invalidation(seg, page, store, ctx);
                }
            }
        }

        fn emit(&mut self, to: SiteId, msg: ProtoMsg, ctx: &mut Ctx) {
            if to == self.site {
                ctx.loopback.push_back(msg);
            } else {
                ctx.out.push(Action::Send { to, msg });
            }
        }

        fn wake(&mut self, pid: Pid, ctx: &mut Ctx) {
            ctx.out.push(Action::Wake { pid });
        }

        fn set_timer(&mut self, at: SimTime, kind: TimerKind, ctx: &mut Ctx) -> u64 {
            let token = self.next_token;
            self.next_token += 1;
            self.timers.insert(token, kind);
            ctx.out.push(Action::SetTimer { at, token });
            token
        }

        // ---- Library role. ----

        fn lib_request(
            &mut self,
            from: SiteId,
            seg: SegmentId,
            page: PageNum,
            access: Access,
            pid: Pid,
            ctx: &mut Ctx,
        ) {
            ctx.out.push(Action::Log(RefLogEntry { seg, page, at: ctx.now, pid, access }));
            let dynamic = self.config.delta.is_dynamic();
            let Some(rec) = self.lib.pages.get_mut(&(seg, page)) else {
                return;
            };
            if dynamic {
                if let Some((losers, at)) = &rec.last_losers {
                    if losers.contains(from) && ctx.now.since(*at) <= TICK.scale(4) {
                        rec.window = grow_window(rec.window, &self.config.delta);
                    }
                }
            }
            rec.queue.push_back(Request { site: from, access });
            self.lib_process_queue(seg, page, ctx);
        }

        fn lib_process_queue(&mut self, seg: SegmentId, page: PageNum, ctx: &mut Ctx) {
            loop {
                let Some(rec) = self.lib.pages.get_mut(&(seg, page)) else {
                    return;
                };
                let window = rec.window;
                if rec.serving.is_some() {
                    return;
                }
                let Some(front) = rec.queue.front().copied() else {
                    return;
                };
                match front.access {
                    Access::Read => {
                        let mut batch = SiteSet::empty();
                        rec.queue.retain(|r| {
                            if r.access == Access::Read {
                                batch.insert(r.site);
                                false
                            } else {
                                true
                            }
                        });
                        if let Some(w) = rec.writer {
                            batch.remove(w);
                        }
                        if batch.is_empty() {
                            continue;
                        }
                        let row = table1::row(
                            rec.current(),
                            Access::Read,
                            false,
                            self.config.downgrade_optimization,
                        );
                        if !row.clock_check {
                            debug_assert_eq!(row.invalidation, Invalidation::No);
                            rec.readers = rec.readers.union(&batch);
                            let clock = rec.clock;
                            self.emit(
                                clock,
                                ProtoMsg::AddReaders {
                                    seg,
                                    page,
                                    readers: batch,
                                    window,
                                    serial: 0,
                                },
                                ctx,
                            );
                            continue;
                        }
                        rec.serving = Some(Demand::Read { to: batch.clone() });
                        rec.deny_seen = false;
                        let clock = rec.clock;
                        let readers = rec.readers.clone();
                        self.emit(
                            clock,
                            ProtoMsg::Invalidate {
                                seg,
                                page,
                                demand: Demand::Read { to: batch },
                                readers,
                                window,
                                serial: 0,
                            },
                            ctx,
                        );
                        return;
                    }
                    Access::Write => {
                        rec.queue.pop_front();
                        if rec.writer == Some(front.site) {
                            let to = front.site;
                            self.emit(
                                to,
                                ProtoMsg::UpgradeGrant { seg, page, window, serial: 0 },
                                ctx,
                            );
                            continue;
                        }
                        let in_readers = rec.readers.contains(front.site);
                        let row = table1::row(
                            rec.current(),
                            Access::Write,
                            in_readers,
                            self.config.downgrade_optimization,
                        );
                        debug_assert!(row.clock_check);
                        let upgrade = in_readers && self.config.upgrade_optimization;
                        let demand = Demand::Write { to: front.site, upgrade };
                        rec.serving = Some(demand.clone());
                        rec.deny_seen = false;
                        let clock = rec.clock;
                        let readers = rec.readers.clone();
                        self.emit(
                            clock,
                            ProtoMsg::Invalidate {
                                seg,
                                page,
                                demand,
                                readers,
                                window,
                                serial: 0,
                            },
                            ctx,
                        );
                        return;
                    }
                }
            }
        }

        fn lib_denied(
            &mut self,
            seg: SegmentId,
            page: PageNum,
            wait: SimDuration,
            ctx: &mut Ctx,
        ) {
            let Some(rec) = self.lib.pages.get_mut(&(seg, page)) else {
                return;
            };
            if rec.serving.is_none() {
                return;
            }
            rec.deny_seen = true;
            let at = ctx.now + wait;
            self.set_timer(at, TimerKind::LibraryRetry { seg, page }, ctx);
        }

        fn lib_retry(&mut self, seg: SegmentId, page: PageNum, ctx: &mut Ctx) {
            let Some(rec) = self.lib.pages.get(&(seg, page)) else {
                return;
            };
            let window = rec.window;
            let Some(demand) = rec.serving.clone() else {
                return;
            };
            let clock = rec.clock;
            let readers = rec.readers.clone();
            self.emit(
                clock,
                ProtoMsg::Invalidate { seg, page, demand, readers, window, serial: 0 },
                ctx,
            );
        }

        fn lib_done(&mut self, seg: SegmentId, page: PageNum, info: DoneInfo, ctx: &mut Ctx) {
            let dynamic = self.config.delta.is_dynamic();
            let Some(rec) = self.lib.pages.get_mut(&(seg, page)) else {
                return;
            };
            let Some(demand) = rec.serving.take() else {
                return;
            };
            if dynamic {
                let mut prev = rec.readers.clone();
                if let Some(w) = rec.writer {
                    prev.insert(w);
                }
                let kept = match &demand {
                    Demand::Write { to, .. } => SiteSet::singleton(*to),
                    Demand::Read { to } => {
                        let mut k = to.clone();
                        if info.writer_downgraded {
                            if let Some(w) = rec.writer {
                                k.insert(w);
                            }
                        }
                        k
                    }
                };
                let losers = prev.difference(&kept);
                if !losers.is_empty() {
                    rec.last_losers = Some((losers, ctx.now));
                }
                if !rec.deny_seen {
                    rec.window = shrink_window(rec.window, &self.config.delta);
                }
            }
            match demand {
                Demand::Write { to, .. } => {
                    rec.readers.clear();
                    rec.writer = Some(to);
                    rec.clock = to;
                }
                Demand::Read { to } => {
                    let old_writer = rec.writer.take();
                    let mut readers = to;
                    let clock = if info.writer_downgraded {
                        let w = old_writer.expect("downgrade implies a writer existed");
                        readers.insert(w);
                        w
                    } else {
                        readers.first().expect("read demand grants at least one site")
                    };
                    rec.readers = readers;
                    rec.clock = clock;
                }
            }
            self.lib_process_queue(seg, page, ctx);
        }

        // ---- Using role. ----

        fn fault(
            &mut self,
            pid: Pid,
            seg: SegmentId,
            page: PageNum,
            access: Access,
            store: &mut dyn PageStore,
            ctx: &mut Ctx,
        ) {
            if store.prot(seg, page).permits(access) {
                self.wake(pid, ctx);
                return;
            }
            let Some(st) = self.usr.segs.get_mut(&seg) else {
                return;
            };
            st.waiters.entry(page).or_default().push((pid, access));
            let need_send = match access {
                Access::Read => !st.out_read.contains(&page) && !st.out_write.contains(&page),
                Access::Write => !st.out_write.contains(&page),
            };
            if need_send {
                match access {
                    Access::Read => {
                        st.out_read.insert(page);
                    }
                    Access::Write => {
                        st.out_write.insert(page);
                    }
                }
                self.emit(
                    seg.library,
                    ProtoMsg::PageRequest { seg, page, access, pid, epoch: 0 },
                    ctx,
                );
            }
        }

        fn use_add_readers(
            &mut self,
            seg: SegmentId,
            page: PageNum,
            readers: SiteSet,
            window: Delta,
            store: &mut dyn PageStore,
            ctx: &mut Ctx,
        ) {
            if store.prot(seg, page) == PageProt::None {
                self.usr
                    .deferred
                    .entry((seg, page))
                    .or_default()
                    .push_back(DeferredOp::AddReaders { readers, window });
                return;
            }
            let data = store.copy(seg, page);
            for r in readers.iter() {
                if r == self.site {
                    continue;
                }
                self.emit(
                    r,
                    ProtoMsg::PageGrant {
                        seg,
                        page,
                        access: Access::Read,
                        window,
                        data: data.clone(),
                        serial: 0,
                    },
                    ctx,
                );
            }
            if readers.contains(self.site) {
                self.wake_satisfied(seg, page, store, ctx);
            }
        }

        #[allow(clippy::too_many_arguments)]
        fn use_invalidate(
            &mut self,
            seg: SegmentId,
            page: PageNum,
            demand: Demand,
            readers: SiteSet,
            window: Delta,
            store: &mut dyn PageStore,
            ctx: &mut Ctx,
        ) {
            if store.prot(seg, page) == PageProt::None {
                self.usr
                    .deferred
                    .entry((seg, page))
                    .or_default()
                    .push_back(DeferredOp::Invalidate { demand, readers, window });
                return;
            }
            let now = ctx.now;
            let expired = self
                .usr
                .segs
                .get(&seg)
                .map(|st| st.aux.get(page).window_expired(now))
                .unwrap_or(true);
            if !expired {
                let st = self.usr.segs.get(&seg).expect("segment known");
                let remaining = st.aux.get(page).window_remaining(now);
                if self.config.queued_invalidation
                    && remaining <= mirage_net::NetCosts::vax_locus().retry_threshold()
                {
                    let expiry = st.aux.get(page).window_expiry();
                    self.usr
                        .delayed
                        .insert((seg, page), DelayedInvalidate { demand, readers, window });
                    self.set_timer(expiry, TimerKind::ClockDelayed { seg, page }, ctx);
                    return;
                }
                self.emit(
                    seg.library,
                    ProtoMsg::InvalidateDeny { seg, page, wait: remaining, serial: 0 },
                    ctx,
                );
                return;
            }
            self.honor_invalidation(seg, page, demand, readers, window, store, ctx);
        }

        fn use_delayed_invalidation(
            &mut self,
            seg: SegmentId,
            page: PageNum,
            store: &mut dyn PageStore,
            ctx: &mut Ctx,
        ) {
            let Some(d) = self.usr.delayed.remove(&(seg, page)) else {
                return;
            };
            self.honor_invalidation(seg, page, d.demand, d.readers, d.window, store, ctx);
        }

        #[allow(clippy::too_many_arguments)]
        fn honor_invalidation(
            &mut self,
            seg: SegmentId,
            page: PageNum,
            demand: Demand,
            readers: SiteSet,
            window: Delta,
            store: &mut dyn PageStore,
            ctx: &mut Ctx,
        ) {
            debug_assert!(
                !self.usr.rounds.contains_key(&(seg, page)),
                "library serializes demands per page"
            );
            match demand {
                Demand::Read { to } => {
                    let data = store.copy(seg, page);
                    for r in to.iter() {
                        if r == self.site {
                            continue;
                        }
                        self.emit(
                            r,
                            ProtoMsg::PageGrant {
                                seg,
                                page,
                                access: Access::Read,
                                window,
                                data: data.clone(),
                                serial: 0,
                            },
                            ctx,
                        );
                    }
                    let downgraded = self.config.downgrade_optimization;
                    if downgraded {
                        store.set_prot(seg, page, PageProt::Read);
                        if let Some(st) = self.usr.segs.get_mut(&seg) {
                            st.aux.get_mut(page).window = window;
                        }
                    } else {
                        store.set_prot(seg, page, PageProt::None);
                    }
                    self.emit(
                        seg.library,
                        ProtoMsg::InvalidateDone {
                            seg,
                            page,
                            info: DoneInfo { writer_downgraded: downgraded },
                            serial: 0,
                        },
                        ctx,
                    );
                }
                Demand::Write { to, upgrade } => {
                    let i_am_writer = store.prot(seg, page) == PageProt::ReadWrite;
                    let held_copy = readers.contains(self.site);
                    let mut victims = readers;
                    victims.remove(self.site);
                    if upgrade {
                        victims.remove(to);
                    }
                    let data = if self.site == to {
                        None
                    } else if upgrade {
                        store.set_prot(seg, page, PageProt::None);
                        None
                    } else {
                        debug_assert!(i_am_writer || held_copy, "clock site must hold a copy");
                        Some(store.take(seg, page))
                    };
                    let mut round = InvRound {
                        demand: Demand::Write { to, upgrade },
                        window,
                        remaining: SiteSet::empty(),
                        to_send: victims.iter().collect(),
                        data,
                    };
                    if round.to_send.is_empty() {
                        self.usr.rounds.insert((seg, page), round);
                        self.finish_write_round(seg, page, store, ctx);
                        return;
                    }
                    if self.config.multicast_invalidation {
                        for v in round.to_send.drain(..) {
                            round.remaining.insert(v);
                            self.emit(
                                v,
                                ProtoMsg::ReaderInvalidate { seg, page, serial: 0 },
                                ctx,
                            );
                        }
                    } else {
                        let first = round.to_send.remove(0);
                        round.remaining.insert(first);
                        self.emit(
                            first,
                            ProtoMsg::ReaderInvalidate { seg, page, serial: 0 },
                            ctx,
                        );
                    }
                    self.usr.rounds.insert((seg, page), round);
                }
            }
        }

        fn use_reader_invalidate(
            &mut self,
            from: SiteId,
            seg: SegmentId,
            page: PageNum,
            store: &mut dyn PageStore,
            ctx: &mut Ctx,
        ) {
            if store.prot(seg, page) == PageProt::None {
                let expecting_grant = self.usr.segs.get(&seg).is_some_and(|st| {
                    st.out_read.contains(&page) || st.out_write.contains(&page)
                });
                if expecting_grant {
                    self.usr
                        .deferred
                        .entry((seg, page))
                        .or_default()
                        .push_back(DeferredOp::ReaderInvalidate { from });
                    return;
                }
            }
            store.set_prot(seg, page, PageProt::None);
            self.emit(from, ProtoMsg::ReaderInvalidateAck { seg, page, serial: 0 }, ctx);
        }

        fn use_reader_ack(
            &mut self,
            from: SiteId,
            seg: SegmentId,
            page: PageNum,
            store: &mut dyn PageStore,
            ctx: &mut Ctx,
        ) {
            let finished = {
                let Some(round) = self.usr.rounds.get_mut(&(seg, page)) else {
                    return;
                };
                round.remaining.remove(from);
                if let Some(next) = (!round.to_send.is_empty()).then(|| round.to_send.remove(0))
                {
                    round.remaining.insert(next);
                    self.emit(next, ProtoMsg::ReaderInvalidate { seg, page, serial: 0 }, ctx);
                    false
                } else {
                    round.remaining.is_empty()
                }
            };
            if finished {
                self.finish_write_round(seg, page, store, ctx);
            }
        }

        fn finish_write_round(
            &mut self,
            seg: SegmentId,
            page: PageNum,
            store: &mut dyn PageStore,
            ctx: &mut Ctx,
        ) {
            let round = self.usr.rounds.remove(&(seg, page)).expect("round in flight");
            let Demand::Write { to, upgrade } = round.demand else {
                unreachable!("read demands never start ack rounds");
            };
            if to == self.site {
                store.set_prot(seg, page, PageProt::ReadWrite);
                if let Some(st) = self.usr.segs.get_mut(&seg) {
                    let e = st.aux.get_mut(page);
                    e.install_time = ctx.now;
                    e.window = round.window;
                    st.out_write.remove(&page);
                    st.out_read.remove(&page);
                }
                self.wake_satisfied(seg, page, store, ctx);
            } else if upgrade {
                self.emit(
                    to,
                    ProtoMsg::UpgradeGrant { seg, page, window: round.window, serial: 0 },
                    ctx,
                );
            } else {
                let data = round.data.expect("non-upgrade write demand carries data");
                self.emit(
                    to,
                    ProtoMsg::PageGrant {
                        seg,
                        page,
                        access: Access::Write,
                        window: round.window,
                        data,
                        serial: 0,
                    },
                    ctx,
                );
            }
            self.emit(
                seg.library,
                ProtoMsg::InvalidateDone {
                    seg,
                    page,
                    info: DoneInfo { writer_downgraded: false },
                    serial: 0,
                },
                ctx,
            );
        }

        fn use_grant(
            &mut self,
            seg: SegmentId,
            page: PageNum,
            access: Access,
            window: Delta,
            data: PageData,
            store: &mut dyn PageStore,
            ctx: &mut Ctx,
        ) {
            let prot = match access {
                Access::Read => PageProt::Read,
                Access::Write => PageProt::ReadWrite,
            };
            store.install(seg, page, data, prot);
            if let Some(st) = self.usr.segs.get_mut(&seg) {
                let e = st.aux.get_mut(page);
                e.install_time = ctx.now;
                e.window = window;
                st.out_read.remove(&page);
                if access == Access::Write {
                    st.out_write.remove(&page);
                }
            }
            self.wake_satisfied(seg, page, store, ctx);
            self.drain_deferred(seg, page, store, ctx);
        }

        fn use_upgrade(
            &mut self,
            seg: SegmentId,
            page: PageNum,
            window: Delta,
            store: &mut dyn PageStore,
            ctx: &mut Ctx,
        ) {
            store.set_prot(seg, page, PageProt::ReadWrite);
            if let Some(st) = self.usr.segs.get_mut(&seg) {
                let e = st.aux.get_mut(page);
                e.install_time = ctx.now;
                e.window = window;
                st.out_read.remove(&page);
                st.out_write.remove(&page);
            }
            self.wake_satisfied(seg, page, store, ctx);
            self.drain_deferred(seg, page, store, ctx);
        }

        fn drain_deferred(
            &mut self,
            seg: SegmentId,
            page: PageNum,
            store: &mut dyn PageStore,
            ctx: &mut Ctx,
        ) {
            let Some(ops) = self.usr.deferred.remove(&(seg, page)) else {
                return;
            };
            for op in ops {
                match op {
                    DeferredOp::Invalidate { demand, readers, window } => {
                        self.use_invalidate(seg, page, demand, readers, window, store, ctx);
                    }
                    DeferredOp::AddReaders { readers, window } => {
                        self.use_add_readers(seg, page, readers, window, store, ctx);
                    }
                    DeferredOp::ReaderInvalidate { from } => {
                        self.use_reader_invalidate(from, seg, page, store, ctx);
                    }
                }
            }
        }

        fn wake_satisfied(
            &mut self,
            seg: SegmentId,
            page: PageNum,
            store: &mut dyn PageStore,
            ctx: &mut Ctx,
        ) {
            let prot = store.prot(seg, page);
            let mut to_wake = Vec::new();
            if let Some(st) = self.usr.segs.get_mut(&seg) {
                if let Some(waiters) = st.waiters.get_mut(&page) {
                    waiters.retain(|&(pid, access)| {
                        if prot.permits(access) {
                            to_wake.push(pid);
                            false
                        } else {
                            true
                        }
                    });
                }
            }
            for pid in to_wake {
                self.wake(pid, ctx);
            }
        }
    }

    fn grow_window(w: Delta, policy: &DeltaPolicy) -> Delta {
        let DeltaPolicy::Dynamic { max, .. } = policy else {
            return w;
        };
        Delta((w.0.max(1) * 2).min(max.0))
    }

    fn shrink_window(w: Delta, policy: &DeltaPolicy) -> Delta {
        let DeltaPolicy::Dynamic { min, .. } = policy else {
            return w;
        };
        Delta((w.0 / 2).max(min.0))
    }
}

/// Both engines side by side, driven by one schedule. Every dispatch
/// asserts the two action streams are element-for-element identical;
/// the dense engine's actions then drive the shared network and timer
/// queues (the reference's are equal, so the schedule is common).
struct Dual {
    dense: Vec<SiteEngine>,
    refer: Vec<reference::RefEngine>,
    dense_stores: Vec<InMemStore>,
    ref_stores: Vec<InMemStore>,
    now: SimTime,
    net: VecDeque<(SiteId, SiteId, ProtoMsg)>,
    timers: Vec<(SimTime, SiteId, u64)>,
    pages: usize,
    seg: SegmentId,
}

impl Dual {
    fn new(sites: usize, pages: usize, cfg: ProtocolConfig) -> Self {
        let mut dense: Vec<SiteEngine> =
            (0..sites).map(|i| SiteEngine::new(SiteId(i as u16), cfg.clone())).collect();
        let mut refer: Vec<reference::RefEngine> = (0..sites)
            .map(|i| reference::RefEngine::new(SiteId(i as u16), cfg.clone()))
            .collect();
        let mut dense_stores = Vec::new();
        let mut ref_stores = Vec::new();
        let seg = SegmentId::new(SiteId(0), 1);
        for i in 0..sites {
            let view = || {
                if i == 0 {
                    LocalSegment::fully_resident(seg, pages)
                } else {
                    LocalSegment::absent(seg, pages)
                }
            };
            let mut ds = InMemStore::new();
            ds.add_segment(view());
            let mut rs = InMemStore::new();
            rs.add_segment(view());
            dense[i].register_segment(seg, pages);
            refer[i].register_segment(seg, pages);
            dense_stores.push(ds);
            ref_stores.push(rs);
        }
        Self {
            dense,
            refer,
            dense_stores,
            ref_stores,
            now: SimTime::ZERO,
            net: VecDeque::new(),
            timers: Vec::new(),
            pages,
            seg,
        }
    }

    /// Dispatches one event through both engines and checks the streams.
    fn dispatch(&mut self, site: usize, ev: Event) {
        let a_dense =
            self.dense[site].handle(ev.clone(), self.now, &mut self.dense_stores[site]);
        let a_ref = self.refer[site].handle(ev.clone(), self.now, &mut self.ref_stores[site]);
        assert_eq!(
            a_dense, a_ref,
            "action streams diverged at site {site} on {ev:?} (t={:?})",
            self.now
        );
        for a in a_dense {
            match a {
                mirage_core::Action::Send { to, msg } => {
                    self.net.push_back((SiteId(site as u16), to, msg));
                }
                mirage_core::Action::SetTimer { at, token } => {
                    self.timers.push((at, SiteId(site as u16), token));
                }
                mirage_core::Action::Wake { .. }
                | mirage_core::Action::Log(_)
                | mirage_core::Action::Trace(_) => {}
            }
        }
    }

    /// Delivers the oldest pending message. Messages stay FIFO (the
    /// wire's virtual circuits sequence them); the *interleaving* with
    /// faults, timers, and time advances is what the schedule varies.
    fn deliver_one(&mut self) -> bool {
        let Some((from, to, msg)) = self.net.pop_front() else {
            return false;
        };
        self.dispatch(to.index(), Event::Deliver { from, msg });
        true
    }

    /// Fires the earliest pending timer, jumping virtual time forward to
    /// its deadline if needed.
    fn fire_timer(&mut self) -> bool {
        let Some(idx) =
            self.timers.iter().enumerate().min_by_key(|(_, &(at, _, _))| at).map(|(i, _)| i)
        else {
            return false;
        };
        let (at, site, token) = self.timers.remove(idx);
        if at > self.now {
            self.now = at;
        }
        self.dispatch(site.index(), Event::Timer { token });
        true
    }

    /// Drains the network and timers to quiescence.
    fn quiesce(&mut self) {
        loop {
            if self.deliver_one() {
                continue;
            }
            if self.fire_timer() {
                continue;
            }
            return;
        }
    }

    /// Asserts the dense and reference models agree on every observable:
    /// page protections, page contents, and the library's records.
    fn assert_state_agrees(&self) {
        for site in 0..self.dense.len() {
            for p in 0..self.pages {
                let page = PageNum(p as u32);
                let dp = self.dense_stores[site].prot(self.seg, page);
                let rp = self.ref_stores[site].prot(self.seg, page);
                assert_eq!(dp, rp, "prot diverged at site {site} page {p}");
                let df = self.dense_stores[site].segment(self.seg).and_then(|s| s.frame(page));
                let rf = self.ref_stores[site].segment(self.seg).and_then(|s| s.frame(page));
                match (df, rf) {
                    (Some(d), Some(r)) => {
                        assert_eq!(
                            d.as_bytes(),
                            r.as_bytes(),
                            "page contents diverged at site {site} page {p}"
                        );
                    }
                    (None, None) => {}
                    _ => panic!("residency diverged at site {site} page {p}"),
                }
                let dv = self.dense[site].library_view(self.seg, page);
                let rv = self.refer[site].library_view(self.seg, page);
                assert_eq!(
                    format!("{dv:?}"),
                    format!("{rv:?}"),
                    "library records diverged at site {site} page {p}"
                );
            }
        }
    }
}

/// Replays one random scenario: interleaved faults, deliveries, timer
/// firings, and time advances, with a full quiesce + state check at the
/// end (and periodic mid-run quiesces to vary the phase structure).
fn run_case(r: &mut Prng, sites: usize, pages: usize, cfg: ProtocolConfig, steps: usize) {
    let mut d = Dual::new(sites, pages, cfg);
    let mut next_local = vec![1u32; sites];
    for _ in 0..steps {
        match r.below(10) {
            // Inject a fault (weighted heaviest: faults create all load).
            0..=4 => {
                let site = r.below(sites as u64) as usize;
                let page = PageNum(r.below(pages as u64) as u32);
                let access = if r.below(2) == 0 { Access::Write } else { Access::Read };
                let pid = Pid::new(SiteId(site as u16), next_local[site]);
                next_local[site] += 1;
                d.dispatch(site, Event::Fault { pid, seg: d.seg, page, access });
            }
            // Deliver one pending message.
            5..=7 => {
                d.deliver_one();
            }
            // Fire a timer.
            8 => {
                d.fire_timer();
            }
            // Let wall-clock pass (windows expire).
            _ => {
                d.now += SimDuration::from_millis(1 + r.below(199));
            }
        }
    }
    d.quiesce();
    d.assert_state_agrees();
}

const CASES: u64 = 48;

#[test]
fn dense_tables_match_reference_default_config() {
    let mut r = Prng::new(0xDF_01);
    for _ in 0..CASES {
        run_case(&mut r, 4, 2, ProtocolConfig::default(), 80);
    }
}

#[test]
fn dense_tables_match_reference_paper_delta() {
    let mut r = Prng::new(0xDF_02);
    for _ in 0..CASES {
        let delta = Delta(r.below(8) as u32);
        run_case(&mut r, 3, 2, ProtocolConfig::paper(delta), 80);
    }
}

#[test]
fn dense_tables_match_reference_no_optimizations() {
    let mut r = Prng::new(0xDF_03);
    for _ in 0..CASES {
        let cfg = ProtocolConfig {
            delta: DeltaPolicy::Uniform(Delta(r.below(4) as u32)),
            upgrade_optimization: false,
            downgrade_optimization: false,
            queued_invalidation: false,
            multicast_invalidation: false,
            retry: None,
            trace: false,
            delta_grants: false,
            shard_pages: 0,
            ..ProtocolConfig::default()
        };
        run_case(&mut r, 3, 2, cfg, 60);
    }
}

#[test]
fn dense_tables_match_reference_queued_and_multicast() {
    let mut r = Prng::new(0xDF_04);
    for _ in 0..CASES {
        let cfg = ProtocolConfig {
            delta: DeltaPolicy::Uniform(Delta(2)),
            upgrade_optimization: true,
            downgrade_optimization: true,
            queued_invalidation: true,
            multicast_invalidation: true,
            retry: None,
            trace: false,
            delta_grants: false,
            shard_pages: 0,
            ..ProtocolConfig::default()
        };
        run_case(&mut r, 5, 2, cfg, 80);
    }
}

#[test]
fn dense_tables_match_reference_dynamic_delta() {
    let mut r = Prng::new(0xDF_05);
    for _ in 0..CASES {
        let cfg = ProtocolConfig {
            delta: DeltaPolicy::Dynamic { initial: Delta(1), min: Delta(0), max: Delta(30) },
            ..Default::default()
        };
        run_case(&mut r, 3, 2, cfg, 70);
    }
}

#[test]
fn dense_tables_match_reference_many_sites_one_page() {
    let mut r = Prng::new(0xDF_06);
    for _ in 0..CASES {
        run_case(&mut r, 8, 1, ProtocolConfig::paper(Delta(1)), 100);
    }
}
