//! Loss, duplication, and crash scenarios for the Tardis timestamp
//! protocol's retry machinery — the timestamp-mode companion to
//! `retry_protocol.rs`.
//!
//! Each shape here is the deterministic pin of a failure family the
//! cross-protocol schedule fuzzer explores at random. To replay the
//! randomized side of any of these, run the storm with the protocol
//! selector, e.g.:
//!
//! ```text
//! cargo run --release -p mirage-bench --bin fault_storm -- \
//!     --seed 7 --protocol tardis --trace
//! ```
//!
//! Every test finishes under both offline oracles: the causal trace
//! checker (vacuous over `Ts*` kinds) and the timestamp-ordering
//! oracle, plus the Tardis structural discipline (at most one exclusive
//! holder, and the home's ownership record names it). Mirage's
//! byte-identity invariant is deliberately *not* asserted: stale leased
//! copies at non-owner sites are legal under Tardis.

mod common;

use common::Cluster;
use mirage_core::{
    PageStore,
    ProtocolConfig,
    RetryPolicy,
};
use mirage_trace::TraceKind;
use mirage_types::{
    Access,
    PageNum,
    PageProt,
    SegmentId,
    SiteId,
};

/// Tardis with retransmission on and a lease short enough that the
/// ownership-duel recipe below expires it within a few rounds.
fn tardis_retry_config() -> ProtocolConfig {
    ProtocolConfig {
        retry: Some(RetryPolicy::default()),
        ts_lease: 2,
        ..ProtocolConfig::tardis()
    }
}

const PAGE: PageNum = PageNum(0);

/// Tardis's quiescent discipline, checked across the whole cluster:
/// exclusive ownership is unique and matches the home's record, and
/// both offline oracles accept the trace so far.
fn check_tardis(c: &Cluster, seg: SegmentId, page: PageNum) {
    let exclusive: Vec<SiteId> = c
        .stores
        .iter()
        .enumerate()
        .filter(|(_, s)| s.prot(seg, page) == PageProt::ReadWrite)
        .map(|(i, _)| SiteId(i as u16))
        .collect();
    assert!(exclusive.len() <= 1, "multiple exclusive holders at quiescence: {exclusive:?}");
    let view = c
        .engine(seg.library.index())
        .tardis_home_view(seg, page)
        .expect("home keeps a timestamp record for every registered page");
    match view.owner {
        Some(owner) => assert!(
            exclusive.iter().all(|&s| s == owner),
            "home records owner {owner:?} but {exclusive:?} hold exclusive frames"
        ),
        None => assert!(
            exclusive.is_empty(),
            "exclusive holders {exclusive:?} but the home records no owner"
        ),
    }
    c.check_trace();
    let ts = mirage_trace::check_timestamps(&c.trace);
    assert!(ts.violations.is_empty(), "timestamp oracle violations: {:?}", ts.violations);
}

/// Expires site 1's lease on page 0 by duelling ownership of page 1
/// between site 1 (writes) and the home (reads): every transfer is a
/// write fault that drags site 1's program timestamp past the lease.
/// This is the engine-level `lease_expiry_then_data_free_renewal`
/// recipe, replayed through the full driver/message path.
fn expire_lease_via_duel(c: &mut Cluster, seg: SegmentId) {
    let duel = PageNum(1);
    for round in 0..4 {
        c.write_u32(1, seg, duel, 0, round);
        // A raw fault, not a value read: the home may legally serve a
        // stale leased copy of the duel page, but the fault still
        // forces the recall round-trip that advances site 1's clock.
        c.fault(0, seg, duel, Access::Read);
    }
    assert_eq!(
        c.stores[1].prot(seg, PAGE),
        PageProt::None,
        "the duel should have expired the page-0 lease"
    );
    assert!(c.trace_count(TraceKind::TsLeaseExpired) >= 1, "no TsLeaseExpired traced");
}

/// A lost lease renewal is recovered by the requester's retry chain:
/// the `TsRead` retransmits, the home answers with a second data-free
/// `TsRenew`, and the page's bytes still cross the wire only once.
/// Randomized twin: `fault_storm --protocol tardis` drops renewal
/// traffic under the same retry policy.
#[test]
fn lost_renewal_is_reissued_data_free() {
    let mut c = Cluster::new(2, tardis_retry_config());
    let seg = c.create_segment(0, 2);
    // Site 1 leases page 0 at its initial version (one data transfer).
    assert_eq!(c.read_u32(1, seg, PAGE, 0), 0);
    expire_lease_via_duel(&mut c, seg);
    let renews_before = c.sent_count("TsRenew");
    let data_before = c.sent_count("TsReadData");
    // Re-read the unchanged page; the home's renewal is lost in flight.
    c.fault_no_run(1, 1, seg, PAGE, Access::Read);
    c.run_dropping(1, |_, to, m| to == SiteId(1) && m.tag() == "TsRenew");
    assert_eq!(c.read_u32(1, seg, PAGE, 0), 0, "reissued renewal never landed");
    assert!(
        c.sent_count("TsRenew") >= renews_before + 2,
        "renewal was not reissued after the loss (sent {} before, {} after)",
        renews_before,
        c.sent_count("TsRenew")
    );
    // Recovery must stay header-only: the version did not move, so no
    // retransmission may escalate to a full data grant.
    assert_eq!(
        c.sent_count("TsReadData"),
        data_before,
        "a lost renewal escalated to re-shipping the page"
    );
    assert!(c.trace_count(TraceKind::TsRenewed) >= 1, "no TsRenewed traced");
    check_tardis(&c, seg, PAGE);
}

/// Duplicated lease grants (and every other timestamp message) are
/// idempotent: request serials make redelivery drop at the receiver, so
/// each fetch installs exactly once and ownership stays unique.
#[test]
fn duplicated_lease_grant_is_idempotent() {
    let mut c = Cluster::new(3, tardis_retry_config());
    let seg = c.create_segment(0, 1);
    // Reader leases the page while every message is delivered twice.
    c.fault_no_run(1, 1, seg, PAGE, Access::Read);
    c.run_duplicating(usize::MAX, |_, _, _| true);
    assert_eq!(c.read_u32(1, seg, PAGE, 0), 0);
    assert_eq!(
        c.trace_count(TraceKind::TsInstalled),
        1,
        "a duplicated lease grant installed more than once"
    );
    // A writer takes ownership under the same doubled delivery, then the
    // recall/write-back cycle runs doubled too.
    c.fault_no_run(2, 1, seg, PAGE, Access::Write);
    c.run_duplicating(usize::MAX, |_, _, _| true);
    c.write_u32(2, seg, PAGE, 0, 21);
    c.fault_no_run(0, 2, seg, PAGE, Access::Read);
    c.run_duplicating(usize::MAX, |_, _, _| true);
    assert_eq!(c.read_u32(0, seg, PAGE, 0), 21);
    // Idempotence of the apply path: each (owner, incarnation) pair
    // folds in exactly once, no matter how often it was delivered.
    let applies: Vec<(Option<SiteId>, u32)> = c
        .trace
        .iter()
        .filter(|e| e.kind == TraceKind::TsWriteBackApplied)
        .map(|e| (e.peer, e.serial))
        .collect();
    let mut distinct = applies.clone();
    distinct.sort_unstable();
    distinct.dedup();
    assert_eq!(
        applies.len(),
        distinct.len(),
        "a duplicated write-back applied more than once: {applies:?}"
    );
    check_tardis(&c, seg, PAGE);
}

/// The home site crashes and restarts: the per-page `wts`/`rts` pair
/// and the ownership record are persistent state (the timestamp-mode
/// analog of the library's queue), so the restarted home must serve
/// from the exact pre-crash table — a reconstructed-from-zero table
/// would re-grant version 1 and violate the timestamp oracle's
/// monotonicity checks.
#[test]
fn home_crash_preserves_rts_wts_and_ownership() {
    let mut c = Cluster::new(3, tardis_retry_config());
    let seg = c.create_segment(0, 1);
    // Site 1 takes ownership; the write serializes past the initial
    // lease, so the home's table is no longer at its register-time state.
    c.write_u32(1, seg, PAGE, 0, 0xAB);
    let before = c.engine(0).tardis_home_view(seg, PAGE).expect("home view");
    assert_eq!(before.owner, Some(SiteId(1)), "write fault did not transfer ownership");
    assert!(before.wts >= 2, "write did not advance the home's wts");
    c.crash(0);
    c.restart(0);
    c.run();
    let after = c.engine(0).tardis_home_view(seg, PAGE).expect("home view lost in crash");
    assert_eq!(
        (after.wts, after.rts, after.owner),
        (before.wts, before.rts, before.owner),
        "restart did not reconstruct the persistent timestamp table"
    );
    // The surviving record still drives correct recalls: a third site's
    // read goes through the restarted home, which recalls the owner it
    // remembers and serves the pre-crash write.
    assert_eq!(c.read_u32(2, seg, PAGE, 0), 0xAB, "restarted home lost track of the owner");
    assert!(c.sent_count("TsRecall") >= 1, "restarted home never recalled the owner");
    check_tardis(&c, seg, PAGE);
}

/// The owner crashes after its write-back is lost in flight (and before
/// the retransmit timer fires — the crash severs the volatile timer).
/// The relinquished bytes are retained persistently until acknowledged,
/// so restart must retransmit the write-back and unblock the reader the
/// home is holding in its queue.
#[test]
fn owner_crash_mid_write_back_retransmits_on_restart() {
    let mut c = Cluster::new(3, tardis_retry_config());
    let seg = c.create_segment(0, 1);
    c.write_u32(1, seg, PAGE, 0, 0xEE);
    // Site 2's read makes the home recall the owner; the write-back is
    // lost, and the owner crashes with only retry timers pending.
    c.fault_no_run(2, 1, seg, PAGE, Access::Read);
    c.run_messages_dropping(1, |_, _, m| m.tag() == "TsWriteBack");
    c.crash(1);
    c.restart(1);
    c.run();
    assert_eq!(c.read_u32(2, seg, PAGE, 0), 0xEE, "retained write-back never reached the home");
    assert!(
        c.sent_count("TsWriteBack") >= 2,
        "restart did not retransmit the retained write-back"
    );
    assert!(c.trace_count(TraceKind::TsWriteBackApplied) >= 1, "write-back never applied");
    check_tardis(&c, seg, PAGE);
}
