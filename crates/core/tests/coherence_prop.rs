//! Property-based coherence tests: arbitrary interleavings of reads and
//! writes from arbitrary sites must never violate the §5.0 coherence
//! definition — every read observes the latest completed write, and the
//! single-writer/multi-reader structure holds at every quiescent point.

mod common;

use common::Cluster;
use mirage_core::{
    DeltaPolicy,
    ProtocolConfig,
};
use mirage_types::{
    Access,
    Delta,
    PageNum,
};
use proptest::prelude::*;

/// One workload step.
#[derive(Clone, Debug)]
enum Op {
    Write { site: usize, page: u32, val: u32 },
    Read { site: usize, page: u32 },
    Advance { ms: u64 },
}

fn op_strategy(sites: usize, pages: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..sites, 0..pages, any::<u32>())
            .prop_map(|(site, page, val)| Op::Write { site, page, val }),
        (0..sites, 0..pages).prop_map(|(site, page)| Op::Read { site, page }),
        (1u64..200).prop_map(|ms| Op::Advance { ms }),
    ]
}

fn run_scenario(sites: usize, pages: u32, delta: Delta, ops: Vec<Op>) {
    let cfg = ProtocolConfig { delta: DeltaPolicy::Uniform(delta), ..Default::default() };
    let mut c = Cluster::new(sites, cfg);
    let seg = c.create_segment(0, pages as usize);
    // Oracle: the latest completed write per page.
    let mut oracle = vec![0u32; pages as usize];
    for op in ops {
        match op {
            Op::Write { site, page, val } => {
                c.write_u32(site, seg, PageNum(page), 0, val);
                oracle[page as usize] = val;
            }
            Op::Read { site, page } => {
                let got = c.read_u32(site, seg, PageNum(page), 0);
                assert_eq!(
                    got, oracle[page as usize],
                    "site {site} read stale data from page {page}"
                );
            }
            Op::Advance { ms } => {
                c.advance(mirage_types::SimDuration::from_millis(ms));
            }
        }
        for p in 0..pages {
            c.check_coherence(seg, PageNum(p));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn coherent_with_zero_delta(
        ops in prop::collection::vec(op_strategy(3, 2), 1..60),
    ) {
        run_scenario(3, 2, Delta::ZERO, ops);
    }

    #[test]
    fn coherent_with_nonzero_delta(
        ops in prop::collection::vec(op_strategy(3, 2), 1..60),
        delta in 0u32..12,
    ) {
        run_scenario(3, 2, Delta(delta), ops);
    }

    #[test]
    fn coherent_many_sites_one_page(
        ops in prop::collection::vec(op_strategy(6, 1), 1..60),
    ) {
        run_scenario(6, 1, Delta(2), ops);
    }

    #[test]
    fn coherent_with_all_optimizations_disabled(
        ops in prop::collection::vec(op_strategy(3, 2), 1..40),
    ) {
        let cfg = ProtocolConfig {
            delta: DeltaPolicy::Uniform(Delta(1)),
            upgrade_optimization: false,
            downgrade_optimization: false,
            queued_invalidation: false,
            multicast_invalidation: false,
        };
        let mut c = Cluster::new(3, cfg);
        let seg = c.create_segment(0, 2);
        let mut oracle = [0u32; 2];
        for op in ops {
            match op {
                Op::Write { site, page, val } => {
                    c.write_u32(site, seg, PageNum(page), 0, val);
                    oracle[page as usize] = val;
                }
                Op::Read { site, page } => {
                    let got = c.read_u32(site, seg, PageNum(page), 0);
                    prop_assert_eq!(got, oracle[page as usize]);
                }
                Op::Advance { ms } => {
                    c.advance(mirage_types::SimDuration::from_millis(ms));
                }
            }
            for p in 0..2 {
                c.check_coherence(seg, PageNum(p));
            }
        }
    }

    #[test]
    fn coherent_with_queued_invalidation_and_multicast(
        ops in prop::collection::vec(op_strategy(4, 2), 1..40),
    ) {
        let cfg = ProtocolConfig {
            delta: DeltaPolicy::Uniform(Delta(2)),
            upgrade_optimization: true,
            downgrade_optimization: true,
            queued_invalidation: true,
            multicast_invalidation: true,
        };
        let mut c = Cluster::new(4, cfg);
        let seg = c.create_segment(0, 2);
        let mut oracle = [0u32; 2];
        for op in ops {
            match op {
                Op::Write { site, page, val } => {
                    c.write_u32(site, seg, PageNum(page), 0, val);
                    oracle[page as usize] = val;
                }
                Op::Read { site, page } => {
                    let got = c.read_u32(site, seg, PageNum(page), 0);
                    prop_assert_eq!(got, oracle[page as usize]);
                }
                Op::Advance { ms } => {
                    c.advance(mirage_types::SimDuration::from_millis(ms));
                }
            }
        }
    }

    #[test]
    fn dynamic_delta_policy_is_coherent(
        ops in prop::collection::vec(op_strategy(3, 2), 1..50),
    ) {
        let cfg = ProtocolConfig {
            delta: DeltaPolicy::Dynamic {
                initial: Delta(1),
                min: Delta(0),
                max: Delta(30),
            },
            ..Default::default()
        };
        let mut c = Cluster::new(3, cfg);
        let seg = c.create_segment(0, 2);
        let mut oracle = [0u32; 2];
        for op in ops {
            match op {
                Op::Write { site, page, val } => {
                    c.write_u32(site, seg, PageNum(page), 0, val);
                    oracle[page as usize] = val;
                }
                Op::Read { site, page } => {
                    let got = c.read_u32(site, seg, PageNum(page), 0);
                    prop_assert_eq!(got, oracle[page as usize]);
                }
                Op::Advance { ms } => {
                    c.advance(mirage_types::SimDuration::from_millis(ms));
                }
            }
            for p in 0..2 {
                c.check_coherence(seg, PageNum(p));
            }
        }
    }

    #[test]
    fn per_page_delta_policy_is_coherent(
        ops in prop::collection::vec(op_strategy(3, 3), 1..40),
    ) {
        let cfg = ProtocolConfig {
            delta: DeltaPolicy::PerPage {
                windows: vec![Delta::ZERO, Delta(4)],
                fallback: Delta(1),
            },
            ..Default::default()
        };
        let mut c = Cluster::new(3, cfg);
        let seg = c.create_segment(0, 3);
        let mut oracle = [0u32; 3];
        for op in ops {
            match op {
                Op::Write { site, page, val } => {
                    c.write_u32(site, seg, PageNum(page), 0, val);
                    oracle[page as usize] = val;
                }
                Op::Read { site, page } => {
                    let got = c.read_u32(site, seg, PageNum(page), 0);
                    prop_assert_eq!(got, oracle[page as usize]);
                }
                Op::Advance { ms } => {
                    c.advance(mirage_types::SimDuration::from_millis(ms));
                }
            }
            for p in 0..3 {
                c.check_coherence(seg, PageNum(p));
            }
        }
    }
}

/// Concurrent (pre-quiescence) fault storms: all sites fault before any
/// message is delivered, then the network runs. The library must
/// serialize everything and end coherent.
#[test]
fn fault_storm_then_quiesce() {
    for delta in [0u32, 1, 3] {
        let cfg = ProtocolConfig::paper(Delta(delta));
        let mut c = Cluster::new(5, cfg);
        let seg = c.create_segment(0, 2);
        for round in 0..10u32 {
            for site in 0..5usize {
                let access =
                    if (site + round as usize).is_multiple_of(2) { Access::Read } else { Access::Write };
                let page = PageNum(round % 2);
                c.fault_no_run(site, 1, seg, page, access);
            }
            c.run();
            c.check_coherence(seg, PageNum(0));
            c.check_coherence(seg, PageNum(1));
        }
    }
}
