//! Property-based coherence tests: randomized interleavings of reads and
//! writes from arbitrary sites must never violate the §5.0 coherence
//! definition — every read observes the latest completed write, and the
//! single-writer/multi-reader structure holds at every quiescent point.
//!
//! Interleavings are generated from the deterministic [`Prng`], so every
//! run replays the same `CASES` scenarios per configuration.

mod common;

use common::Cluster;
use mirage_core::{
    DeltaPolicy,
    ProtocolConfig,
};
use mirage_types::{
    Access,
    Delta,
    PageNum,
    Prng,
    SimDuration,
};

const CASES: u64 = 64;

/// One workload step.
#[derive(Clone, Debug)]
enum Op {
    Write { site: usize, page: u32, val: u32 },
    Read { site: usize, page: u32 },
    Advance { ms: u64 },
}

fn gen_ops(r: &mut Prng, sites: usize, pages: u32, max_len: usize) -> Vec<Op> {
    let len = r.range(1, max_len);
    (0..len)
        .map(|_| match r.below(3) {
            0 => Op::Write {
                site: r.below(sites as u64) as usize,
                page: r.below(u64::from(pages)) as u32,
                val: r.next_u32(),
            },
            1 => Op::Read {
                site: r.below(sites as u64) as usize,
                page: r.below(u64::from(pages)) as u32,
            },
            _ => Op::Advance { ms: 1 + r.below(199) },
        })
        .collect()
}

/// Replays `ops` against a cluster, checking every read against an
/// oracle of the latest completed write and the coherence invariants at
/// every step (when `check_invariants`).
fn run_ops(
    cfg: ProtocolConfig,
    sites: usize,
    pages: u32,
    ops: Vec<Op>,
    check_invariants: bool,
) {
    let mut c = Cluster::new(sites, cfg);
    let seg = c.create_segment(0, pages as usize);
    // Oracle: the latest completed write per page.
    let mut oracle = vec![0u32; pages as usize];
    for op in ops {
        match op {
            Op::Write { site, page, val } => {
                c.write_u32(site, seg, PageNum(page), 0, val);
                oracle[page as usize] = val;
            }
            Op::Read { site, page } => {
                let got = c.read_u32(site, seg, PageNum(page), 0);
                assert_eq!(
                    got, oracle[page as usize],
                    "site {site} read stale data from page {page}"
                );
            }
            Op::Advance { ms } => {
                c.advance(SimDuration::from_millis(ms));
            }
        }
        if check_invariants {
            for p in 0..pages {
                c.check_coherence(seg, PageNum(p));
            }
        }
    }
}

fn run_scenario(sites: usize, pages: u32, delta: Delta, ops: Vec<Op>) {
    let cfg = ProtocolConfig { delta: DeltaPolicy::Uniform(delta), ..Default::default() };
    run_ops(cfg, sites, pages, ops, true);
}

#[test]
fn coherent_with_zero_delta() {
    let mut r = Prng::new(0xD0);
    for _ in 0..CASES {
        let ops = gen_ops(&mut r, 3, 2, 60);
        run_scenario(3, 2, Delta::ZERO, ops);
    }
}

#[test]
fn coherent_with_nonzero_delta() {
    let mut r = Prng::new(0xD1);
    for _ in 0..CASES {
        let delta = Delta(r.below(12) as u32);
        let ops = gen_ops(&mut r, 3, 2, 60);
        run_scenario(3, 2, delta, ops);
    }
}

#[test]
fn coherent_many_sites_one_page() {
    let mut r = Prng::new(0xD2);
    for _ in 0..CASES {
        let ops = gen_ops(&mut r, 6, 1, 60);
        run_scenario(6, 1, Delta(2), ops);
    }
}

#[test]
fn coherent_with_all_optimizations_disabled() {
    let mut r = Prng::new(0xD3);
    for _ in 0..CASES {
        let cfg = ProtocolConfig {
            delta: DeltaPolicy::Uniform(Delta(1)),
            upgrade_optimization: false,
            downgrade_optimization: false,
            queued_invalidation: false,
            multicast_invalidation: false,
            retry: None,
            trace: false,
            delta_grants: false,
            shard_pages: 0,
            ..ProtocolConfig::default()
        };
        let ops = gen_ops(&mut r, 3, 2, 40);
        run_ops(cfg, 3, 2, ops, true);
    }
}

#[test]
fn coherent_with_queued_invalidation_and_multicast() {
    let mut r = Prng::new(0xD4);
    for _ in 0..CASES {
        let cfg = ProtocolConfig {
            delta: DeltaPolicy::Uniform(Delta(2)),
            upgrade_optimization: true,
            downgrade_optimization: true,
            queued_invalidation: true,
            multicast_invalidation: true,
            retry: None,
            trace: false,
            delta_grants: false,
            shard_pages: 0,
            ..ProtocolConfig::default()
        };
        let ops = gen_ops(&mut r, 4, 2, 40);
        run_ops(cfg, 4, 2, ops, false);
    }
}

#[test]
fn dynamic_delta_policy_is_coherent() {
    let mut r = Prng::new(0xD5);
    for _ in 0..CASES {
        let cfg = ProtocolConfig {
            delta: DeltaPolicy::Dynamic { initial: Delta(1), min: Delta(0), max: Delta(30) },
            ..Default::default()
        };
        let ops = gen_ops(&mut r, 3, 2, 50);
        run_ops(cfg, 3, 2, ops, true);
    }
}

#[test]
fn per_page_delta_policy_is_coherent() {
    let mut r = Prng::new(0xD6);
    for _ in 0..CASES {
        let cfg = ProtocolConfig {
            delta: DeltaPolicy::PerPage {
                windows: vec![Delta::ZERO, Delta(4)],
                fallback: Delta(1),
            },
            ..Default::default()
        };
        let ops = gen_ops(&mut r, 3, 3, 40);
        run_ops(cfg, 3, 3, ops, true);
    }
}

/// Concurrent (pre-quiescence) fault storms: all sites fault before any
/// message is delivered, then the network runs. The library must
/// serialize everything and end coherent.
#[test]
fn fault_storm_then_quiesce() {
    for delta in [0u32, 1, 3] {
        let cfg = ProtocolConfig::paper(Delta(delta));
        let mut c = Cluster::new(5, cfg);
        let seg = c.create_segment(0, 2);
        for round in 0..10u32 {
            for site in 0..5usize {
                let access = if (site + round as usize).is_multiple_of(2) {
                    Access::Read
                } else {
                    Access::Write
                };
                let page = PageNum(round % 2);
                c.fault_no_run(site, 1, seg, page, access);
            }
            c.run();
            c.check_coherence(seg, PageNum(0));
            c.check_coherence(seg, PageNum(1));
        }
    }
}
