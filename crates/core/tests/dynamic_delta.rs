//! The §8.0 dynamic Δ-tuning routine (disabled in the paper's prototype,
//! implemented here): thrashing grows a page's window, idleness shrinks
//! it, and coherence is unaffected.

mod common;

use common::Cluster;
use mirage_core::{
    DeltaPolicy,
    ProtocolConfig,
};
use mirage_types::{
    Delta,
    PageNum,
    SimDuration,
};

const PG: PageNum = PageNum(0);

fn dynamic(initial: u32, min: u32, max: u32) -> ProtocolConfig {
    ProtocolConfig {
        delta: DeltaPolicy::Dynamic {
            initial: Delta(initial),
            min: Delta(min),
            max: Delta(max),
        },
        ..Default::default()
    }
}

#[test]
fn thrashing_grows_the_window() {
    let mut c = Cluster::new(2, dynamic(0, 0, 60));
    let seg = c.create_segment(0, 1);
    // Tight ping-pong: each site re-requests immediately after losing
    // the page (the synchronous cluster leaves zero gap — maximal
    // thrash signal).
    for i in 0..12u32 {
        c.write_u32((i % 2) as usize, seg, PG, 0, i);
    }
    let view = c.engine(0).library_view(seg, PG).unwrap();
    assert!(
        view.window > Delta(0),
        "window should have grown under thrash, got {:?}",
        view.window
    );
    c.check_coherence(seg, PG);
}

#[test]
fn idle_access_shrinks_the_window() {
    let mut c = Cluster::new(2, dynamic(32, 0, 60));
    let seg = c.create_segment(0, 1);
    // Accesses spaced far beyond any window: every serve completes
    // without a denial, so the controller shrinks the window each time.
    for i in 0..8u32 {
        c.write_u32((i % 2) as usize, seg, PG, 0, i);
        c.advance(SimDuration::from_millis(5_000));
    }
    let view = c.engine(0).library_view(seg, PG).unwrap();
    assert!(
        view.window < Delta(32),
        "window should have shrunk when unused, got {:?}",
        view.window
    );
    c.check_coherence(seg, PG);
}

#[test]
fn window_respects_bounds() {
    // Grow side saturates at max.
    let mut c = Cluster::new(2, dynamic(1, 1, 4));
    let seg = c.create_segment(0, 1);
    for i in 0..30u32 {
        c.write_u32((i % 2) as usize, seg, PG, 0, i);
    }
    let view = c.engine(0).library_view(seg, PG).unwrap();
    assert!(view.window <= Delta(4), "max bound violated: {:?}", view.window);
    assert!(view.window >= Delta(1), "min bound violated: {:?}", view.window);

    // Shrink side saturates at min.
    let mut c = Cluster::new(2, dynamic(8, 2, 16));
    let seg = c.create_segment(0, 1);
    for i in 0..12u32 {
        c.write_u32((i % 2) as usize, seg, PG, 0, i);
        c.advance(SimDuration::from_millis(10_000));
    }
    let view = c.engine(0).library_view(seg, PG).unwrap();
    assert!(view.window >= Delta(2), "min bound violated: {:?}", view.window);
}

#[test]
fn pages_adapt_independently() {
    let mut c = Cluster::new(2, dynamic(4, 0, 60));
    let seg = c.create_segment(0, 2);
    // Page 0 thrashes; page 1 is touched once and left idle.
    c.write_u32(1, seg, PageNum(1), 0, 1);
    for i in 0..12u32 {
        c.write_u32((i % 2) as usize, seg, PG, 0, i);
    }
    let hot = c.engine(0).library_view(seg, PG).unwrap().window;
    let cold = c.engine(0).library_view(seg, PageNum(1)).unwrap().window;
    assert!(hot > cold, "hot page {hot:?} should out-grow cold page {cold:?}");
}

#[test]
fn dynamic_policy_preserves_coherence_and_values() {
    let mut c = Cluster::new(3, dynamic(0, 0, 30));
    let seg = c.create_segment(0, 1);
    for i in 0..40u32 {
        let site = (i % 3) as usize;
        c.write_u32(site, seg, PG, 0, i);
        let reader = ((i + 1) % 3) as usize;
        assert_eq!(c.read_u32(reader, seg, PG, 0), i);
        c.check_coherence(seg, PG);
    }
}
