//! End-to-end protocol flows over the synchronous test cluster: every
//! Table 1 row, both §6.1 optimizations, Δ deny/retry, read batching,
//! and the reference log.

mod common;

use common::Cluster;
use mirage_core::{
    PageStore,
    ProtocolConfig,
};
use mirage_net::SizeClass;
use mirage_types::{
    Access,
    Delta,
    PageNum,
    PageProt,
    SiteId,
};

const PG: PageNum = PageNum(0);

#[test]
fn remote_read_downgrades_writer() {
    // Table 1 row 3 (Writer/Readers): clock check, downgrade writer.
    let mut c = Cluster::new(2, ProtocolConfig::default());
    let seg = c.create_segment(0, 1);
    c.write_u32(0, seg, PG, 0, 42);
    let v = c.read_u32(1, seg, PG, 0);
    assert_eq!(v, 42, "reader must see the writer's value");
    // Optimization 2: the old writer retains a read copy.
    assert_eq!(c.stores[0].prot(seg, PG), PageProt::Read);
    assert_eq!(c.stores[1].prot(seg, PG), PageProt::Read);
    let view = c.engine(0).library_view(seg, PG).unwrap();
    assert_eq!(view.writer, None);
    assert!(view.readers.contains(SiteId(0)));
    assert!(view.readers.contains(SiteId(1)));
    assert_eq!(view.clock, SiteId(0), "downgraded writer stays clock site");
    c.check_coherence(seg, PG);
}

#[test]
fn remote_write_invalidates_readers_and_transfers() {
    // Table 1 row 2 (Readers/Writer) without upgrade: requester not in
    // the read set.
    let mut c = Cluster::new(3, ProtocolConfig::default());
    let seg = c.create_segment(0, 1);
    c.write_u32(0, seg, PG, 0, 7);
    let _ = c.read_u32(1, seg, PG, 0); // readers now {0, 1}
    c.write_u32(2, seg, PG, 0, 8); // site 2 was never a reader
    assert_eq!(c.stores[0].prot(seg, PG), PageProt::None);
    assert_eq!(c.stores[1].prot(seg, PG), PageProt::None);
    assert_eq!(c.stores[2].prot(seg, PG), PageProt::ReadWrite);
    let view = c.engine(0).library_view(seg, PG).unwrap();
    assert_eq!(view.writer, Some(SiteId(2)));
    assert_eq!(view.clock, SiteId(2), "writer is always the clock site");
    assert_eq!(c.read_u32(2, seg, PG, 0), 8);
    c.check_coherence(seg, PG);
}

#[test]
fn upgrade_sends_notification_not_page() {
    // §6.1 optimization 1: reader-in-set upgraded without a page copy.
    let mut c = Cluster::new(2, ProtocolConfig::default());
    let seg = c.create_segment(0, 1);
    c.write_u32(0, seg, PG, 0, 5);
    let _ = c.read_u32(1, seg, PG, 0); // site 1 becomes a reader
    c.clear_instrumentation();
    c.write_u32(1, seg, PG, 0, 6); // upgrade
                                   // No page-carrying message may have crossed the network.
    assert!(
        c.sent.iter().all(|m| m.size == SizeClass::Short),
        "upgrade must not transfer the page: {:?}",
        c.sent
    );
    assert!(c.sent.iter().any(|m| m.tag == "UpgradeGrant"));
    assert_eq!(c.stores[1].prot(seg, PG), PageProt::ReadWrite);
    assert_eq!(c.stores[0].prot(seg, PG), PageProt::None);
    c.check_coherence(seg, PG);
}

#[test]
fn upgrade_preserves_data_without_transfer() {
    let mut c = Cluster::new(2, ProtocolConfig::default());
    let seg = c.create_segment(0, 1);
    c.write_u32(0, seg, PG, 0, 1234);
    let _ = c.read_u32(1, seg, PG, 0);
    c.write_u32(1, seg, PG, 4, 1); // upgrade in place
    assert_eq!(c.read_u32(1, seg, PG, 0), 1234, "upgraded copy keeps bytes");
}

#[test]
fn disabled_upgrade_optimization_transfers_page() {
    let cfg = ProtocolConfig { upgrade_optimization: false, ..Default::default() };
    let mut c = Cluster::new(2, cfg);
    let seg = c.create_segment(0, 1);
    c.write_u32(0, seg, PG, 0, 5);
    let _ = c.read_u32(1, seg, PG, 0);
    c.clear_instrumentation();
    c.write_u32(1, seg, PG, 0, 6);
    assert!(
        c.sent.iter().any(|m| m.size == SizeClass::Large),
        "without optimization 1 the page must be re-sent"
    );
    assert_eq!(c.read_u32(1, seg, PG, 0), 6);
    c.check_coherence(seg, PG);
}

#[test]
fn disabled_downgrade_optimization_discards_writer_copy() {
    let cfg = ProtocolConfig { downgrade_optimization: false, ..Default::default() };
    let mut c = Cluster::new(2, cfg);
    let seg = c.create_segment(0, 1);
    c.write_u32(0, seg, PG, 0, 5);
    let _ = c.read_u32(1, seg, PG, 0);
    // Without optimization 2 the old writer loses its copy entirely.
    assert_eq!(c.stores[0].prot(seg, PG), PageProt::None);
    assert_eq!(c.stores[1].prot(seg, PG), PageProt::Read);
    let view = c.engine(0).library_view(seg, PG).unwrap();
    assert_eq!(view.clock, SiteId(1), "a reader becomes the clock site");
    c.check_coherence(seg, PG);
}

#[test]
fn writer_writer_transfer() {
    // Table 1 row 4 (Writer/Writer): full invalidation and transfer.
    let mut c = Cluster::new(2, ProtocolConfig::default());
    let seg = c.create_segment(0, 1);
    c.write_u32(0, seg, PG, 0, 1);
    c.write_u32(1, seg, PG, 4, 2);
    assert_eq!(c.stores[0].prot(seg, PG), PageProt::None);
    assert_eq!(c.stores[1].prot(seg, PG), PageProt::ReadWrite);
    // Both words visible at the new writer: data travelled with the page.
    assert_eq!(c.read_u32(1, seg, PG, 0), 1);
    assert_eq!(c.read_u32(1, seg, PG, 4), 2);
    c.check_coherence(seg, PG);
}

#[test]
fn readers_readers_no_clock_check_batched_grant() {
    // Table 1 row 1: additional readers join without any invalidation.
    let mut c = Cluster::new(4, ProtocolConfig::default());
    let seg = c.create_segment(0, 1);
    c.write_u32(0, seg, PG, 0, 9);
    let _ = c.read_u32(1, seg, PG, 0); // downgrade: readers {0,1}
    c.clear_instrumentation();
    let _ = c.read_u32(2, seg, PG, 0);
    let _ = c.read_u32(3, seg, PG, 0);
    assert!(
        c.sent.iter().all(|m| m.tag != "Invalidate" && m.tag != "ReaderInvalidate"),
        "no invalidations for added readers: {:?}",
        c.sent
    );
    for s in 0..4 {
        assert_eq!(c.stores[s].prot(seg, PG), PageProt::Read, "site {s}");
    }
    c.check_coherence(seg, PG);
}

#[test]
fn read_batching_single_library_pass() {
    // Two read requests queued while the library serves a write demand
    // must be granted together in one batch.
    let cfg = ProtocolConfig {
        delta: mirage_core::DeltaPolicy::Uniform(Delta(2)),
        ..Default::default()
    };
    let mut c = Cluster::new(4, cfg);
    let seg = c.create_segment(0, 1);
    c.write_u32(0, seg, PG, 0, 3);
    // Issue two read faults without running the network, so both requests
    // sit in the library queue together.
    c.fault_no_run(1, 1, seg, PG, Access::Read);
    c.fault_no_run(2, 1, seg, PG, Access::Read);
    c.run();
    assert_eq!(c.stores[1].prot(seg, PG), PageProt::Read);
    assert_eq!(c.stores[2].prot(seg, PG), PageProt::Read);
    let view = c.engine(0).library_view(seg, PG).unwrap();
    assert_eq!(view.readers.len(), 3, "writer downgraded + two new readers");
    c.check_coherence(seg, PG);
}

#[test]
fn delta_denies_then_retry_succeeds() {
    // With Δ = 6 ticks (≈100 ms), a steal attempt immediately after
    // install must be denied and succeed only after the window.
    let cfg = ProtocolConfig::paper(Delta(6));
    let mut c = Cluster::new(2, cfg);
    let seg = c.create_segment(0, 1);
    // Site 1 takes the write copy (waiting out the creator's initial
    // window via a loop-back deny at the colocated library/clock).
    c.write_u32(1, seg, PG, 0, 1);
    let view = c.engine(0).library_view(seg, PG).unwrap();
    assert_eq!(view.clock, SiteId(1), "clock moved to the remote writer");
    // Now site 0 reads immediately: the library (site 0) must send the
    // invalidation to the remote clock (site 1), which denies it over
    // the wire because its window just started.
    let before = c.now();
    c.clear_instrumentation();
    assert_eq!(c.read_u32(0, seg, PG, 0), 1);
    assert!(
        c.sent.iter().any(|m| m.tag == "InvalidateDeny"),
        "expected a Δ denial on the wire: {:?}",
        c.sent
    );
    let elapsed = c.now().since(before);
    assert!(elapsed >= Delta(6).duration(), "read must wait out the window: {elapsed:?}");
    c.check_coherence(seg, PG);
}

#[test]
fn zero_delta_never_denies() {
    let cfg = ProtocolConfig::paper(Delta::ZERO);
    let mut c = Cluster::new(2, cfg);
    let seg = c.create_segment(0, 1);
    for i in 0..10 {
        c.write_u32(i % 2, seg, PG, 0, i as u32);
    }
    assert!(c.sent.iter().all(|m| m.tag != "InvalidateDeny"));
    c.check_coherence(seg, PG);
}

#[test]
fn queued_invalidation_avoids_deny_near_expiry() {
    // §7.1 caveat 1: with the optimization on and the remaining window
    // below the retry threshold (12.9 ms), the clock delays and honors
    // instead of denying. Δ=0 windows… need a window that is short but
    // nonzero: Δ=1 tick ≈ 16.7 ms > 12.9 ms, so deny still happens at
    // the very start; advance into the window first.
    let cfg = ProtocolConfig { queued_invalidation: true, ..ProtocolConfig::paper(Delta(1)) };
    let mut c = Cluster::new(2, cfg);
    let seg = c.create_segment(0, 1);
    // Site 1 takes the write copy; its fresh window starts then.
    c.write_u32(1, seg, PG, 0, 1);
    // Move to 10 ms into the 16.7 ms window: 6.7 ms remain < 12.9 ms.
    c.advance(mirage_types::SimDuration::from_millis(10));
    c.clear_instrumentation();
    let before = c.now();
    assert_eq!(c.read_u32(0, seg, PG, 0), 1);
    assert!(
        c.sent.iter().all(|m| m.tag != "InvalidateDeny"),
        "queued invalidation must suppress the deny: {:?}",
        c.sent
    );
    assert!(c.now() > before, "the clock site must still delay to window expiry");
    c.check_coherence(seg, PG);
}

#[test]
fn sequential_and_multicast_invalidation_same_outcome() {
    for multicast in [false, true] {
        let cfg = ProtocolConfig { multicast_invalidation: multicast, ..Default::default() };
        let mut c = Cluster::new(5, cfg);
        let seg = c.create_segment(0, 1);
        c.write_u32(0, seg, PG, 0, 1);
        for s in 1..5 {
            let _ = c.read_u32(s, seg, PG, 0);
        }
        c.clear_instrumentation();
        c.write_u32(4, seg, PG, 0, 2); // upgrade, invalidating 4 readers -> 3 victims
        let invs = c.sent.iter().filter(|m| m.tag == "ReaderInvalidate").count();
        assert_eq!(invs, 3, "multicast={multicast}");
        for s in 0..4 {
            assert_eq!(c.stores[s].prot(seg, PG), PageProt::None, "site {s}");
        }
        assert_eq!(c.read_u32(4, seg, PG, 0), 2);
        c.check_coherence(seg, PG);
    }
}

#[test]
fn colocated_library_requester_uses_no_network_for_local_fault() {
    // §7.3: colocating library and requester avoids remote communication.
    let mut c = Cluster::new(2, ProtocolConfig::default());
    let seg = c.create_segment(0, 1);
    c.clear_instrumentation();
    c.write_u32(0, seg, PG, 0, 1); // library site writes its own page
    assert!(c.sent.is_empty(), "local fault must stay off the wire: {:?}", c.sent);
}

#[test]
fn reference_log_records_requests() {
    // §9: every page request is logged at the library with requester pid.
    let mut c = Cluster::new(2, ProtocolConfig::default());
    let seg = c.create_segment(0, 1);
    c.write_u32(0, seg, PG, 0, 1);
    let _ = c.read_u32(1, seg, PG, 0);
    c.write_u32(1, seg, PG, 0, 2);
    let reads =
        c.ref_log.iter().filter(|e| e.access == Access::Read && e.pid.site == SiteId(1));
    assert_eq!(reads.count(), 1);
    let writes = c.ref_log.iter().filter(|e| e.access == Access::Write).count();
    assert!(writes >= 1);
}

#[test]
fn ping_pong_many_cycles_stays_coherent() {
    // The §7.2 worst case: two sites alternating reads and writes on one
    // page. Every handoff must preserve the latest value.
    let mut c = Cluster::new(2, ProtocolConfig::default());
    let seg = c.create_segment(0, 1);
    for i in 0u32..50 {
        let writer = (i % 2) as usize;
        let reader = 1 - writer;
        c.write_u32(writer, seg, PG, 0, i);
        assert_eq!(c.read_u32(reader, seg, PG, 0), i, "cycle {i}");
        c.check_coherence(seg, PG);
    }
}

#[test]
fn multi_page_independence() {
    // Demands on different pages are independent: a Δ hold on page 0
    // must not delay page 1.
    let cfg = ProtocolConfig::paper(Delta(60));
    let mut c = Cluster::new(2, cfg);
    let seg = c.create_segment(0, 2);
    c.write_u32(0, seg, PageNum(0), 0, 1);
    c.write_u32(0, seg, PageNum(1), 0, 2);
    let before = c.now();
    let _ = c.read_u32(1, seg, PageNum(1), 0);
    // Page 1 was still held by its *initial* window at site 0? The
    // creator's pages have install_time 0, so the window expired long
    // ago only if now > Δ… at t=0 with Δ=60 ticks the very first steal
    // is denied; the point here is page independence, so simply verify
    // both transfers completed and the page-0 hold (none yet) didn't
    // couple with page 1's timing.
    let _ = c.read_u32(1, seg, PageNum(0), 0);
    assert_eq!(c.read_u32(1, seg, PageNum(0), 0), 1);
    assert_eq!(c.read_u32(1, seg, PageNum(1), 0), 2);
    let _ = before;
    c.check_coherence(seg, PageNum(0));
    c.check_coherence(seg, PageNum(1));
}

#[test]
fn two_sites_request_write_simultaneously() {
    // Both sites write-fault before any message flows; the library must
    // serialize the demands and end with exactly one writer.
    let mut c = Cluster::new(3, ProtocolConfig::default());
    let seg = c.create_segment(0, 1);
    c.fault_no_run(1, 1, seg, PG, Access::Write);
    c.fault_no_run(2, 1, seg, PG, Access::Write);
    c.run();
    let view = c.engine(0).library_view(seg, PG).unwrap();
    let writers = (0..3).filter(|&s| c.stores[s].prot(seg, PG) == PageProt::ReadWrite).count();
    assert_eq!(writers, 1);
    assert!(view.writer == Some(SiteId(1)) || view.writer == Some(SiteId(2)));
    assert!(!view.serving);
    assert_eq!(view.queued, 0);
    c.check_coherence(seg, PG);
}

#[test]
fn read_then_write_same_site_in_flight() {
    // A site read-faults and write-faults (different processes) before
    // the network runs: the read is granted, then the write upgrades.
    let mut c = Cluster::new(2, ProtocolConfig::default());
    let seg = c.create_segment(0, 1);
    c.write_u32(0, seg, PG, 0, 5);
    c.fault_no_run(1, 1, seg, PG, Access::Read);
    c.fault_no_run(1, 2, seg, PG, Access::Write);
    c.run();
    assert_eq!(c.stores[1].prot(seg, PG), PageProt::ReadWrite);
    assert_eq!(c.read_u32(1, seg, PG, 0), 5);
    assert_eq!(c.engine(1).waiter_count(seg, PG), 0, "all waiters woken");
    c.check_coherence(seg, PG);
}

#[test]
fn waiters_all_wake_on_grant() {
    // Three processes at one site fault on the same absent page; one
    // request goes out; all three wake on the single grant.
    let mut c = Cluster::new(2, ProtocolConfig::default());
    let seg = c.create_segment(0, 1);
    c.write_u32(0, seg, PG, 0, 5);
    c.clear_instrumentation();
    c.fault_no_run(1, 1, seg, PG, Access::Read);
    c.fault_no_run(1, 2, seg, PG, Access::Read);
    c.fault_no_run(1, 3, seg, PG, Access::Read);
    c.run();
    let reqs = c.sent.iter().filter(|m| m.tag == "PageRequest").count();
    assert_eq!(reqs, 1, "outstanding-request dedup");
    assert_eq!(c.woken.len(), 3, "all blocked processes wake");
}
