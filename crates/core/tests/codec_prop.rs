//! Property tests for the wire codec: randomized protocol messages
//! round-trip, and arbitrary byte soup never panics the decoder.
//!
//! Cases are generated from the deterministic [`Prng`] so every run and
//! every machine exercises the same inputs; bump `CASES` (or vary
//! `SEED`) to widen coverage locally.

use mirage_core::{
    Demand,
    DoneInfo,
    FrozenLibPage,
    FrozenLibrary,
    ProtoMsg,
};
use mirage_net::wire::{
    from_bytes,
    to_bytes,
};
use mirage_types::{
    Access,
    Delta,
    PageNum,
    Pid,
    Prng,
    SegmentId,
    SimDuration,
    SiteId,
    SiteSet,
    PAGE_SIZE,
};

const SEED: u64 = 0xC0DE_C0DE;
const CASES: usize = 512;

fn site(r: &mut Prng) -> SiteId {
    // Spans the extended-encoding boundary: ids at and above 63 force
    // the chunked wire form, ids below it the legacy 8-byte fast path.
    SiteId(r.below(2048) as u16)
}

fn site_set(r: &mut Prng) -> SiteSet {
    let n = r.below(8);
    (0..n).map(|_| site(r)).collect()
}

fn seg(r: &mut Prng) -> SegmentId {
    SegmentId::new(site(r), r.next_u32())
}

fn access(r: &mut Prng) -> Access {
    if r.flip() {
        Access::Write
    } else {
        Access::Read
    }
}

fn demand(r: &mut Prng) -> Demand {
    if r.flip() {
        Demand::Write { to: site(r), upgrade: r.flip() }
    } else {
        Demand::Read { to: site_set(r) }
    }
}

fn frozen(r: &mut Prng) -> FrozenLibrary {
    let n = r.below(4) as usize;
    let pages = (0..n)
        .map(|_| FrozenLibPage {
            readers: site_set(r),
            writer: if r.flip() { Some(site(r)) } else { None },
            clock: site(r),
            queue: (0..r.below(5)).map(|_| (site(r), access(r))).collect(),
            serving: if r.flip() { Some(demand(r)) } else { None },
            window: Delta(r.below(100_000) as u32),
            serial: r.next_u32(),
        })
        .collect();
    FrozenLibrary { start: PageNum(r.below(1 << 20) as u32), pages }
}

/// A randomized timestamp-mode (`Ts*`) message. Timestamps mix small
/// values with the u32 extremes so serialization never assumes "small
/// counters"; data-bearing kinds flip between carrying the page and
/// the data-free (renewal / in-place / clean write-back) forms.
fn ts_msg(r: &mut Prng) -> ProtoMsg {
    let seg = seg(r);
    let page = PageNum(r.next_u32());
    let serial = r.next_u32();
    let ts = |r: &mut Prng| match r.below(4) {
        0 => r.below(16) as u32,
        1 => r.next_u32(),
        2 => u32::MAX,
        _ => u32::MAX - r.below(8) as u32,
    };
    let data =
        |r: &mut Prng| mirage_mem::PageData::from_bytes(&[r.next_u32() as u8; PAGE_SIZE]);
    match r.below(8) {
        0 => ProtoMsg::TsRead { seg, page, pts: ts(r), vts: ts(r), serial },
        1 => ProtoMsg::TsWrite { seg, page, pts: ts(r), vts: ts(r), serial },
        2 => ProtoMsg::TsReadData { seg, page, wts: ts(r), rts: ts(r), data: data(r), serial },
        3 => ProtoMsg::TsRenew { seg, page, wts: ts(r), rts: ts(r), serial },
        4 => ProtoMsg::TsWriteGrant {
            seg,
            page,
            wts: ts(r),
            data: r.flip().then(|| data(r)),
            serial,
        },
        5 => ProtoMsg::TsRecall { seg, page, serial },
        6 => ProtoMsg::TsWriteBack {
            seg,
            page,
            wts: ts(r),
            data: r.flip().then(|| data(r)),
            serial,
        },
        _ => ProtoMsg::TsWriteBackAck { seg, page, serial },
    }
}

fn msg(r: &mut Prng) -> ProtoMsg {
    if r.below(4) == 0 {
        // A quarter of the stream is timestamp-mode traffic, so the
        // byte-soup and truncation properties below cover both
        // protocols without separate loops.
        return ts_msg(r);
    }
    let seg = seg(r);
    let page = PageNum(r.next_u32());
    let window = Delta(r.below(100_000) as u32);
    let serial = r.next_u32();
    match r.below(14) {
        0 => ProtoMsg::PageRequest {
            seg,
            page,
            access: access(r),
            pid: Pid::new(site(r), r.next_u32()),
            epoch: r.next_u32(),
        },
        1 => ProtoMsg::AddReaders { seg, page, readers: site_set(r), window, serial },
        2 => ProtoMsg::Invalidate {
            seg,
            page,
            demand: demand(r),
            readers: site_set(r),
            window,
            serial,
        },
        3 => ProtoMsg::InvalidateDeny { seg, page, wait: SimDuration(r.next_u64()), serial },
        4 => ProtoMsg::InvalidateDone {
            seg,
            page,
            info: DoneInfo { writer_downgraded: r.flip() },
            serial,
        },
        5 => ProtoMsg::ReaderInvalidate { seg, page, serial },
        6 => ProtoMsg::ReaderInvalidateAck { seg, page, serial },
        7 => ProtoMsg::PageGrant {
            seg,
            page,
            access: access(r),
            window,
            data: mirage_mem::PageData::from_bytes(&[r.next_u32() as u8; PAGE_SIZE]),
            serial,
        },
        8 => ProtoMsg::DoneAck { seg, page, serial },
        9 => ProtoMsg::GrantAck { seg, page, serial },
        10 => ProtoMsg::UpgradeGrant { seg, page, window, serial },
        11 => ProtoMsg::LibraryHandoff { seg, page, epoch: r.next_u32(), frozen: frozen(r) },
        12 => ProtoMsg::LibraryHandoffAck { seg, page, epoch: r.next_u32() },
        _ => ProtoMsg::LibraryRedirect { seg, page, epoch: r.next_u32(), to: site(r) },
    }
}

#[test]
fn every_message_round_trips() {
    let mut r = Prng::new(SEED);
    for case in 0..CASES {
        let m = msg(&mut r);
        let bytes = to_bytes(&m);
        let back: ProtoMsg = from_bytes(&bytes).expect("decode");
        assert_eq!(back, m, "case {case}");
    }
}

#[test]
fn arbitrary_bytes_never_panic() {
    let mut r = Prng::new(SEED ^ 1);
    for _ in 0..CASES {
        let len = r.below(2048) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| r.next_u32() as u8).collect();
        // Any result is fine; panicking or unbounded allocation is not.
        let _ = from_bytes::<ProtoMsg>(&bytes);
    }
}

#[test]
fn truncation_of_valid_messages_errors_cleanly() {
    let mut r = Prng::new(SEED ^ 2);
    for case in 0..CASES {
        let m = msg(&mut r);
        let bytes = to_bytes(&m);
        let cut = (r.below(64) as usize).min(bytes.len().saturating_sub(1));
        assert!(
            from_bytes::<ProtoMsg>(&bytes[..cut]).is_err(),
            "case {case}: truncated decode must fail"
        );
    }
}

#[test]
fn ts_messages_round_trip() {
    let mut r = Prng::new(SEED ^ 3);
    for case in 0..CASES {
        let m = ts_msg(&mut r);
        let bytes = to_bytes(&m);
        let back: ProtoMsg = from_bytes(&bytes).expect("decode");
        assert_eq!(back, m, "case {case}");
    }
}

#[test]
fn ts_messages_reject_every_strict_prefix() {
    // Exhaustive over the header-only kinds; the page-bearing kinds
    // (a kilobyte of payload each) are cut at randomized points plus
    // the last few bytes, where an off-by-one would live.
    let mut r = Prng::new(SEED ^ 4);
    for case in 0..CASES {
        let m = ts_msg(&mut r);
        let bytes = to_bytes(&m);
        let cuts: Vec<usize> = if bytes.len() <= 64 {
            (0..bytes.len()).collect()
        } else {
            (0..8)
                .map(|_| r.below(bytes.len() as u64) as usize)
                .chain(bytes.len() - 4..bytes.len())
                .collect()
        };
        for cut in cuts {
            assert!(
                from_bytes::<ProtoMsg>(&bytes[..cut]).is_err(),
                "case {case}: {cut}/{} bytes must not decode",
                bytes.len()
            );
        }
    }
}

#[test]
fn ts_message_bit_flips_never_panic_and_stay_canonical() {
    // Single-bit corruption of a Ts* encoding must decode or error —
    // never panic — and anything the decoder accepts must re-encode to
    // the same bytes it accepted (no non-canonical forms survive). The
    // header-only kinds get every bit flipped; the page-bearing kinds
    // flip a sampled set plus the full header region.
    let mut r = Prng::new(SEED ^ 5);
    for _ in 0..64 {
        let m = ts_msg(&mut r);
        let bytes = to_bytes(&m);
        let positions: Vec<usize> = if bytes.len() <= 64 {
            (0..bytes.len()).collect()
        } else {
            (0..64).chain((0..32).map(|_| r.below(bytes.len() as u64) as usize)).collect()
        };
        for byte in positions {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte] ^= 1 << bit;
                if let Ok(v) = from_bytes::<ProtoMsg>(&corrupt) {
                    let re = to_bytes(&v);
                    let v2: ProtoMsg = from_bytes(&re).expect("canonical re-encode");
                    assert_eq!(v2, v, "accepted corruption must round-trip canonically");
                }
            }
        }
    }
}

#[test]
fn ts_wire_format_spans_2048_sites() {
    // Timestamp traffic must survive the same world sizes the chunked
    // site-set encoding supports: segments homed at every boundary
    // site, extreme timestamps, extreme serials.
    for home in [0u16, 62, 63, 64, 127, 128, 1024, 2047] {
        let seg = SegmentId::new(SiteId(home), u32::MAX);
        for m in [
            ProtoMsg::TsRead {
                seg,
                page: PageNum(u32::MAX),
                pts: u32::MAX,
                vts: u32::MAX,
                serial: u32::MAX,
            },
            ProtoMsg::TsRenew { seg, page: PageNum(0), wts: 0, rts: u32::MAX, serial: 0 },
            ProtoMsg::TsWriteGrant {
                seg,
                page: PageNum(1),
                wts: u32::MAX,
                data: None,
                serial: u32::MAX,
            },
            ProtoMsg::TsWriteBack { seg, page: PageNum(1), wts: 1, data: None, serial: 1 },
        ] {
            let back: ProtoMsg = from_bytes(&to_bytes(&m)).expect("decode");
            assert_eq!(back, m, "home site {home}");
        }
    }
}
