//! Property tests for the wire codec: randomized protocol messages
//! round-trip, and arbitrary byte soup never panics the decoder.
//!
//! Cases are generated from the deterministic [`Prng`] so every run and
//! every machine exercises the same inputs; bump `CASES` (or vary
//! `SEED`) to widen coverage locally.

use mirage_core::{
    Demand,
    DoneInfo,
    FrozenLibPage,
    FrozenLibrary,
    ProtoMsg,
};
use mirage_net::wire::{
    from_bytes,
    to_bytes,
};
use mirage_types::{
    Access,
    Delta,
    PageNum,
    Pid,
    Prng,
    SegmentId,
    SimDuration,
    SiteId,
    SiteSet,
    PAGE_SIZE,
};

const SEED: u64 = 0xC0DE_C0DE;
const CASES: usize = 512;

fn site(r: &mut Prng) -> SiteId {
    // Spans the extended-encoding boundary: ids at and above 63 force
    // the chunked wire form, ids below it the legacy 8-byte fast path.
    SiteId(r.below(2048) as u16)
}

fn site_set(r: &mut Prng) -> SiteSet {
    let n = r.below(8);
    (0..n).map(|_| site(r)).collect()
}

fn seg(r: &mut Prng) -> SegmentId {
    SegmentId::new(site(r), r.next_u32())
}

fn access(r: &mut Prng) -> Access {
    if r.flip() {
        Access::Write
    } else {
        Access::Read
    }
}

fn demand(r: &mut Prng) -> Demand {
    if r.flip() {
        Demand::Write { to: site(r), upgrade: r.flip() }
    } else {
        Demand::Read { to: site_set(r) }
    }
}

fn frozen(r: &mut Prng) -> FrozenLibrary {
    let n = r.below(4) as usize;
    let pages = (0..n)
        .map(|_| FrozenLibPage {
            readers: site_set(r),
            writer: if r.flip() { Some(site(r)) } else { None },
            clock: site(r),
            queue: (0..r.below(5)).map(|_| (site(r), access(r))).collect(),
            serving: if r.flip() { Some(demand(r)) } else { None },
            window: Delta(r.below(100_000) as u32),
            serial: r.next_u32(),
        })
        .collect();
    FrozenLibrary { start: PageNum(r.below(1 << 20) as u32), pages }
}

fn msg(r: &mut Prng) -> ProtoMsg {
    let seg = seg(r);
    let page = PageNum(r.next_u32());
    let window = Delta(r.below(100_000) as u32);
    let serial = r.next_u32();
    match r.below(14) {
        0 => ProtoMsg::PageRequest {
            seg,
            page,
            access: access(r),
            pid: Pid::new(site(r), r.next_u32()),
            epoch: r.next_u32(),
        },
        1 => ProtoMsg::AddReaders { seg, page, readers: site_set(r), window, serial },
        2 => ProtoMsg::Invalidate {
            seg,
            page,
            demand: demand(r),
            readers: site_set(r),
            window,
            serial,
        },
        3 => ProtoMsg::InvalidateDeny { seg, page, wait: SimDuration(r.next_u64()), serial },
        4 => ProtoMsg::InvalidateDone {
            seg,
            page,
            info: DoneInfo { writer_downgraded: r.flip() },
            serial,
        },
        5 => ProtoMsg::ReaderInvalidate { seg, page, serial },
        6 => ProtoMsg::ReaderInvalidateAck { seg, page, serial },
        7 => ProtoMsg::PageGrant {
            seg,
            page,
            access: access(r),
            window,
            data: mirage_mem::PageData::from_bytes(&[r.next_u32() as u8; PAGE_SIZE]),
            serial,
        },
        8 => ProtoMsg::DoneAck { seg, page, serial },
        9 => ProtoMsg::GrantAck { seg, page, serial },
        10 => ProtoMsg::UpgradeGrant { seg, page, window, serial },
        11 => ProtoMsg::LibraryHandoff { seg, page, epoch: r.next_u32(), frozen: frozen(r) },
        12 => ProtoMsg::LibraryHandoffAck { seg, page, epoch: r.next_u32() },
        _ => ProtoMsg::LibraryRedirect { seg, page, epoch: r.next_u32(), to: site(r) },
    }
}

#[test]
fn every_message_round_trips() {
    let mut r = Prng::new(SEED);
    for case in 0..CASES {
        let m = msg(&mut r);
        let bytes = to_bytes(&m);
        let back: ProtoMsg = from_bytes(&bytes).expect("decode");
        assert_eq!(back, m, "case {case}");
    }
}

#[test]
fn arbitrary_bytes_never_panic() {
    let mut r = Prng::new(SEED ^ 1);
    for _ in 0..CASES {
        let len = r.below(2048) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| r.next_u32() as u8).collect();
        // Any result is fine; panicking or unbounded allocation is not.
        let _ = from_bytes::<ProtoMsg>(&bytes);
    }
}

#[test]
fn truncation_of_valid_messages_errors_cleanly() {
    let mut r = Prng::new(SEED ^ 2);
    for case in 0..CASES {
        let m = msg(&mut r);
        let bytes = to_bytes(&m);
        let cut = (r.below(64) as usize).min(bytes.len().saturating_sub(1));
        assert!(
            from_bytes::<ProtoMsg>(&bytes[..cut]).is_err(),
            "case {case}: truncated decode must fail"
        );
    }
}
