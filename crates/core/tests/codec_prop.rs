//! Property tests for the wire codec: arbitrary protocol messages
//! round-trip, and arbitrary byte soup never panics the decoder.

use mirage_core::{
    Demand,
    DoneInfo,
    ProtoMsg,
};
use mirage_net::wire::{
    from_bytes,
    to_bytes,
};
use mirage_types::{
    Access,
    Delta,
    PageNum,
    Pid,
    SegmentId,
    SimDuration,
    SiteId,
    SiteSet,
    PAGE_SIZE,
};
use proptest::prelude::*;

fn site() -> impl Strategy<Value = SiteId> {
    (0u16..64).prop_map(SiteId)
}

fn site_set() -> impl Strategy<Value = SiteSet> {
    prop::collection::vec(site(), 0..8).prop_map(|v| v.into_iter().collect())
}

fn seg() -> impl Strategy<Value = SegmentId> {
    (site(), any::<u32>()).prop_map(|(s, n)| SegmentId::new(s, n))
}

fn access() -> impl Strategy<Value = Access> {
    prop_oneof![Just(Access::Read), Just(Access::Write)]
}

fn demand() -> impl Strategy<Value = Demand> {
    prop_oneof![
        (site(), any::<bool>()).prop_map(|(to, upgrade)| Demand::Write { to, upgrade }),
        site_set().prop_map(|to| Demand::Read { to }),
    ]
}

fn msg() -> impl Strategy<Value = ProtoMsg> {
    let page = any::<u32>().prop_map(PageNum);
    let window = (0u32..100_000).prop_map(Delta);
    prop_oneof![
        (seg(), page.clone(), access(), site(), any::<u32>()).prop_map(
            |(seg, page, access, s, l)| ProtoMsg::PageRequest {
                seg,
                page,
                access,
                pid: Pid::new(s, l),
            }
        ),
        (seg(), page.clone(), site_set(), window.clone()).prop_map(
            |(seg, page, readers, window)| ProtoMsg::AddReaders { seg, page, readers, window }
        ),
        (seg(), page.clone(), demand(), site_set(), window.clone()).prop_map(
            |(seg, page, demand, readers, window)| ProtoMsg::Invalidate {
                seg,
                page,
                demand,
                readers,
                window,
            }
        ),
        (seg(), page.clone(), any::<u64>()).prop_map(|(seg, page, ns)| {
            ProtoMsg::InvalidateDeny { seg, page, wait: SimDuration(ns) }
        }),
        (seg(), page.clone(), any::<bool>()).prop_map(|(seg, page, d)| {
            ProtoMsg::InvalidateDone { seg, page, info: DoneInfo { writer_downgraded: d } }
        }),
        (seg(), page.clone()).prop_map(|(seg, page)| ProtoMsg::ReaderInvalidate { seg, page }),
        (seg(), page.clone()).prop_map(|(seg, page)| ProtoMsg::ReaderInvalidateAck {
            seg,
            page
        }),
        (seg(), page.clone(), access(), window.clone(), any::<u8>()).prop_map(
            |(seg, page, access, window, fill)| ProtoMsg::PageGrant {
                seg,
                page,
                access,
                window,
                data: vec![fill; PAGE_SIZE],
            }
        ),
        (seg(), page, window).prop_map(|(seg, page, window)| ProtoMsg::UpgradeGrant {
            seg,
            page,
            window
        }),
    ]
}

proptest! {
    #[test]
    fn every_message_round_trips(m in msg()) {
        let bytes = to_bytes(&m);
        let back: ProtoMsg = from_bytes(&bytes).expect("decode");
        prop_assert_eq!(back, m);
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        // Any result is fine; panicking or unbounded allocation is not.
        let _ = from_bytes::<ProtoMsg>(&bytes);
    }

    #[test]
    fn truncation_of_valid_messages_errors_cleanly(m in msg(), cut in 0usize..64) {
        let bytes = to_bytes(&m);
        let cut = cut.min(bytes.len().saturating_sub(1));
        prop_assert!(from_bytes::<ProtoMsg>(&bytes[..cut]).is_err());
    }
}
