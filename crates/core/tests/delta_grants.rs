//! End-to-end tests for diff-based write propagation (delta grants).
//!
//! The tentpole guarantees: with `delta_grants` off the wire carries
//! exactly the paper's full-page grants (byte-identical behaviour);
//! with it on, steady-state transfers between a stable pair of sites
//! ship as `PageGrantDelta` diffs, every patched page is byte-identical
//! to what a full serve would have installed (cross-checked by the
//! trace oracle's tag rule), and any site whose shadow base is missing
//! or stale is nacked back onto the full-grant path.

mod common;

use common::Cluster;
use mirage_core::{
    ProtocolConfig,
    RetryPolicy,
};
use mirage_trace::TraceKind;
use mirage_types::{
    Access,
    Delta,
    PageNum,
    SiteId,
};

const PAGE: PageNum = PageNum(0);

fn delta_config() -> ProtocolConfig {
    ProtocolConfig { delta_grants: true, ..ProtocolConfig::paper(Delta::ZERO) }
}

fn delta_retry_config() -> ProtocolConfig {
    ProtocolConfig { retry: Some(RetryPolicy::default()), ..delta_config() }
}

/// With the flag off (the default), nothing delta-related ever appears:
/// no `PageGrantDelta` on the wire, no delta trace events.
#[test]
fn delta_off_emits_no_delta_traffic() {
    let mut c = Cluster::new(3, ProtocolConfig::paper(Delta::ZERO));
    let seg = c.create_segment(0, 1);
    for round in 0..4 {
        c.write_u32(1, seg, PAGE, 0, round);
        c.write_u32(2, seg, PAGE, 256, round + 100);
    }
    assert_eq!(c.sent_count("PageGrantDelta"), 0);
    for kind in [TraceKind::DeltaGrantSent, TraceKind::DeltaPatched, TraceKind::DeltaRejected] {
        assert_eq!(c.trace_count(kind), 0, "delta-off run traced a {kind:?}");
    }
    c.check_coherence(seg, PAGE);
}

/// Two writers ping-ponging disjoint halves of one page: after the
/// bootstrap full transfers, every grant between the stable pair ships
/// as a delta, and each patch reconstructs the full-serve bytes.
#[test]
fn false_sharing_pingpong_settles_into_deltas() {
    let mut c = Cluster::new(3, delta_config());
    let seg = c.create_segment(0, 1);
    for round in 0..6 {
        c.write_u32(1, seg, PAGE, 0, 0xAA00 + round);
        c.write_u32(2, seg, PAGE, 256, 0xBB00 + round);
    }
    // Both halves visible, from both writers' final values.
    assert_eq!(c.read_u32(1, seg, PAGE, 0), 0xAA05);
    assert_eq!(c.read_u32(1, seg, PAGE, 256), 0xBB05);
    let deltas = c.sent_count("PageGrantDelta");
    let fulls = c.sent_count("PageGrant");
    assert!(deltas >= 8, "steady-state pair kept sending full grants ({deltas} deltas)");
    assert!(fulls <= 4, "only the bootstrap transfers may be full pages, got {fulls}");
    assert_eq!(
        c.trace_count(TraceKind::DeltaPatched),
        deltas,
        "every delta on this lossless wire must patch cleanly"
    );
    assert_eq!(c.trace_count(TraceKind::DeltaRejected), 0);
    // check_trace (inside) enforces the tag rule: patched == full-serve.
    c.check_coherence(seg, PAGE);
}

/// A delta whose diff would not undercut the full-page payload is sent
/// as a full grant: rewriting the whole page every round keeps the
/// protocol on `PageGrant` even with the feature enabled.
#[test]
fn incompressible_changes_fall_back_to_full_grants() {
    let mut c = Cluster::new(2, delta_config());
    let seg = c.create_segment(0, 1);
    use mirage_core::PageStore;
    for round in 0..4u32 {
        // Overwrite every word of the page at the current writer.
        let site = (round % 2) as usize;
        for _ in 0..8 {
            if c.stores[site].prot(seg, PAGE).permits(Access::Write) {
                break;
            }
            c.fault(site, seg, PAGE, Access::Write);
        }
        assert!(c.stores[site].prot(seg, PAGE).permits(Access::Write));
        let frame = c.stores[site].segment_mut(seg).unwrap().frame_mut(PAGE).unwrap();
        for off in (0..512).step_by(4) {
            frame.store_u32(off, round.wrapping_mul(0x9E37_79B9) ^ off as u32);
        }
    }
    assert_eq!(
        c.sent_count("PageGrantDelta"),
        0,
        "whole-page rewrites must not win the size race"
    );
    assert!(c.sent_count("PageGrant") >= 3);
    c.check_coherence(seg, PAGE);
}

/// Retry mode, lost delta: the receiver never advanced its shadow, so
/// the retransmission (recomputed against the granter's advanced slot)
/// carries a base tag the receiver cannot match. It nacks, the granter
/// escalates to a full grant, and the write completes.
#[test]
fn lost_delta_retransmission_escalates_to_full_grant() {
    let mut c = Cluster::new(2, delta_retry_config());
    let seg = c.create_segment(0, 1);
    c.write_u32(0, seg, PAGE, 0, 1);
    c.write_u32(1, seg, PAGE, 4, 2);
    c.write_u32(0, seg, PAGE, 8, 3);
    // The pair is in delta steady state now; lose the next delta.
    assert!(c.trace_count(TraceKind::DeltaPatched) >= 1, "setup never used a delta");
    c.fault_no_run(1, 1, seg, PAGE, Access::Write);
    c.run_messages_dropping(1, |_, to, m| to == SiteId(1) && m.tag() == "PageGrantDelta");
    // Also lose the requester's first re-request, so the granter's
    // retransmit timer — not a fresh serve — recovers the grant.
    c.run_dropping(1, |from, _, m| from == SiteId(1) && m.tag() == "PageRequest");
    c.write_u32(1, seg, PAGE, 12, 4);
    assert_eq!(c.read_u32(0, seg, PAGE, 12), 4);
    assert!(
        c.trace_count(TraceKind::DeltaRejected) >= 1,
        "stale-base retransmission was not rejected"
    );
    assert!(
        c.trace_count(TraceKind::GrantEscalated) >= 1,
        "rejection did not escalate to a full grant"
    );
    assert!(c.sent_count("PageGrant") >= 1, "no full grant after escalation");
    c.check_coherence(seg, PAGE);
}

/// Retry mode, receiver crashes while the delta is in flight: the
/// shadow base is volatile, so the restarted site cannot patch the
/// retransmitted delta. It must nack and be escalated — never install
/// a patch against a pre-crash base.
#[test]
fn crash_mid_delta_retransmit_escalates_after_restart() {
    let mut c = Cluster::new(2, delta_retry_config());
    let seg = c.create_segment(0, 1);
    c.write_u32(0, seg, PAGE, 0, 1);
    c.write_u32(1, seg, PAGE, 4, 2);
    c.write_u32(0, seg, PAGE, 8, 3);
    assert!(c.trace_count(TraceKind::DeltaPatched) >= 1, "setup never used a delta");
    // Site 1 demands the page; the delta grant is lost, and the crash
    // takes site 1's volatile shadow with it before the retry fires.
    c.fault_no_run(1, 1, seg, PAGE, Access::Write);
    c.run_messages_dropping(1, |_, to, m| to == SiteId(1) && m.tag() == "PageGrantDelta");
    c.crash(1);
    c.restart(1);
    c.run();
    // The granter's retained grant retransmits (as a delta, its slot
    // still names site 1), the shadowless receiver rejects it, and the
    // escalated full grant lands.
    c.write_u32(1, seg, PAGE, 12, 4);
    assert_eq!(c.read_u32(0, seg, PAGE, 12), 4);
    assert!(
        c.trace_count(TraceKind::DeltaRejected) >= 1,
        "restarted site patched against a lost base"
    );
    assert!(c.trace_count(TraceKind::GrantEscalated) >= 1);
    c.check_coherence(seg, PAGE);
}

/// Duplicated deltas are idempotent: the second copy arrives after the
/// first installed and is dropped by the stale-serial floor.
#[test]
fn duplicated_delta_is_dropped_stale() {
    let mut c = Cluster::new(2, delta_retry_config());
    let seg = c.create_segment(0, 1);
    c.write_u32(0, seg, PAGE, 0, 1);
    c.write_u32(1, seg, PAGE, 4, 2);
    c.write_u32(0, seg, PAGE, 8, 3);
    assert!(c.trace_count(TraceKind::DeltaPatched) >= 1, "setup never used a delta");
    c.fault_no_run(1, 1, seg, PAGE, Access::Write);
    c.run_duplicating(1, |_, to, m| to == SiteId(1) && m.tag() == "PageGrantDelta");
    c.write_u32(1, seg, PAGE, 12, 4);
    assert_eq!(c.read_u32(0, seg, PAGE, 12), 4);
    assert!(
        c.trace_count(TraceKind::StaleGrantDropped) >= 1,
        "duplicate delta was not dropped as stale"
    );
    assert_eq!(c.trace_count(TraceKind::DeltaRejected), 0);
    c.check_coherence(seg, PAGE);
}
