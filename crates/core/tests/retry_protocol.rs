//! Targeted loss/duplication scenarios for the timeout/retry machinery.
//!
//! The schedule-fuzzing harness (`mirage-sim`'s `fuzz_coherence`) found
//! each of these failure shapes by random search; here they are pinned
//! as deterministic regressions. Every test drops or duplicates one
//! specific message and asserts the engines converge to a coherent,
//! write-visible state — plus, where the recovery path is observable,
//! that the expected retransmission or escalation actually happened.

mod common;

use common::Cluster;
use mirage_core::{
    ProtocolConfig,
    RetryPolicy,
};
use mirage_trace::TraceKind;
use mirage_types::{
    Access,
    Delta,
    PageNum,
    SiteId,
};

fn retry_config() -> ProtocolConfig {
    ProtocolConfig { retry: Some(RetryPolicy::default()), ..ProtocolConfig::paper(Delta::ZERO) }
}

const PAGE: PageNum = PageNum(0);

/// With `retry: None` the engines must not emit any of the
/// acknowledgement traffic the retry machinery adds: the paper's
/// message accounting (§7.2) stays exact.
#[test]
fn pristine_mode_emits_no_retry_traffic() {
    let mut c = Cluster::new(3, ProtocolConfig::paper(Delta::ZERO));
    let seg = c.create_segment(0, 1);
    c.write_u32(0, seg, PAGE, 0, 7);
    assert_eq!(c.read_u32(1, seg, PAGE, 0), 7);
    c.write_u32(2, seg, PAGE, 0, 11);
    assert_eq!(c.read_u32(1, seg, PAGE, 0), 11);
    for tag in ["GrantAck", "DoneAck", "UpgradeNack"] {
        assert_eq!(c.sent_count(tag), 0, "pristine run leaked a {tag}");
    }
    // No retry machinery ⇒ no retry events in the trace either.
    for kind in [
        TraceKind::RequestRetry,
        TraceKind::ServeRetry,
        TraceKind::GrantRetry,
        TraceKind::RoundRetry,
        TraceKind::DoneRetry,
        TraceKind::DenyRetry,
        TraceKind::StaleGrantDropped,
    ] {
        assert_eq!(c.trace_count(kind), 0, "pristine run traced a {kind:?}");
    }
    c.check_trace();
}

/// A lost read grant is retransmitted until the receiver acknowledges.
#[test]
fn lost_read_grant_is_retransmitted() {
    let mut c = Cluster::new(3, retry_config());
    let seg = c.create_segment(0, 1);
    c.write_u32(0, seg, PAGE, 0, 42);
    c.fault_no_run(1, 1, seg, PAGE, Access::Read);
    c.run_dropping(1, |_, to, m| to == SiteId(1) && m.tag() == "PageGrant");
    assert_eq!(c.read_u32(1, seg, PAGE, 0), 42, "retransmitted grant never landed");
    assert!(c.sent_count("PageGrant") >= 2, "grant was not retransmitted");
    // The recovery is visible in the trace: a retry fired, and the
    // dropped-then-retransmitted grant installed exactly once per fetch.
    assert!(c.trace_count(TraceKind::GrantRetry) >= 1, "no GrantRetry traced");
    assert!(c.trace_count(TraceKind::Installed) >= 1, "no Installed traced");
    c.check_coherence(seg, PAGE);
}

/// A lost write grant (full data transfer) is retransmitted.
#[test]
fn lost_write_grant_is_retransmitted() {
    let mut c = Cluster::new(3, retry_config());
    let seg = c.create_segment(0, 1);
    c.write_u32(0, seg, PAGE, 0, 5);
    c.fault_no_run(1, 1, seg, PAGE, Access::Write);
    c.run_dropping(1, |_, to, m| to == SiteId(1) && m.tag() == "PageGrant");
    c.write_u32(1, seg, PAGE, 0, 6);
    assert_eq!(c.read_u32(2, seg, PAGE, 0), 6);
    assert!(c.sent_count("PageGrant") >= 2, "grant was not retransmitted");
    c.check_coherence(seg, PAGE);
}

/// A lost upgrade notification (§6.1 optimization 1 — no data on the
/// wire) is retransmitted until acknowledged.
#[test]
fn lost_upgrade_grant_is_retransmitted() {
    let mut c = Cluster::new(2, retry_config());
    let seg = c.create_segment(0, 1);
    c.write_u32(0, seg, PAGE, 0, 9);
    assert_eq!(c.read_u32(1, seg, PAGE, 0), 9);
    // Site 1 holds a read copy, so its write demand upgrades in place.
    c.fault_no_run(1, 1, seg, PAGE, Access::Write);
    c.run_dropping(1, |_, to, m| to == SiteId(1) && m.tag() == "UpgradeGrant");
    c.write_u32(1, seg, PAGE, 0, 10);
    assert_eq!(c.read_u32(0, seg, PAGE, 0), 10);
    assert!(c.sent_count("UpgradeGrant") >= 2, "upgrade grant was not retransmitted");
    c.check_coherence(seg, PAGE);
}

/// The fuzz harness's seed-983 shape: a crash-severed `AddReaders`
/// leaves a site in the library's reader set with no copy and no
/// retained grant anywhere. When that site later demands a write, the
/// upgrade notification finds no frame to upgrade — the receiver must
/// nack, and the granter must escalate to a full data-carrying grant
/// from the reserve bytes it took at relinquish time.
#[test]
fn upgrade_nack_escalates_to_full_grant() {
    let mut c = Cluster::new(3, retry_config());
    let seg = c.create_segment(0, 1);
    // Move the write copy (and clock duty) away from the library site.
    c.write_u32(1, seg, PAGE, 0, 0xBEEF);
    assert_eq!(c.read_u32(2, seg, PAGE, 0), 0xBEEF);
    // Site 0's read demand is served as an AddReaders to the remote
    // clock; losing it records site 0 as a reader that never gets a copy.
    c.fault_no_run(0, 1, seg, PAGE, Access::Read);
    c.run_messages_dropping(1, |_, _, m| m.tag() == "AddReaders");
    // Site 0 now demands a write. The library sees a recorded reader and
    // serves an upgrade; site 0 has no frame, so the notification must
    // escalate.
    c.fault_no_run(0, 2, seg, PAGE, Access::Write);
    c.run();
    assert!(c.sent_count("UpgradeNack") >= 1, "copyless upgrade was not nacked");
    assert!(
        c.trace_count(TraceKind::UpgradeNackSent) >= 1
            && c.trace_count(TraceKind::GrantEscalated) >= 1,
        "trace missed the nack/escalation exchange"
    );
    // The escalated grant carried the real page contents, not zeros.
    assert_eq!(c.read_u32(0, seg, PAGE, 0), 0xBEEF, "escalated grant lost the page data");
    c.write_u32(0, seg, PAGE, 0, 0xCAFE);
    assert_eq!(c.read_u32(2, seg, PAGE, 0), 0xCAFE);
    c.check_coherence(seg, PAGE);
}

/// A lost `GrantAck` makes the granter retransmit to a receiver that
/// already installed; the stale retransmission is re-acknowledged and
/// dropped without disturbing the installed copy.
#[test]
fn lost_grant_ack_is_reacknowledged() {
    let mut c = Cluster::new(2, retry_config());
    let seg = c.create_segment(0, 1);
    c.write_u32(0, seg, PAGE, 0, 3);
    c.fault_no_run(1, 1, seg, PAGE, Access::Read);
    c.run_dropping(1, |from, _, m| from == SiteId(1) && m.tag() == "GrantAck");
    assert_eq!(c.read_u32(1, seg, PAGE, 0), 3);
    assert!(c.sent_count("GrantAck") >= 2, "stale retransmission was not re-acked");
    // The receiver's dedup path is observable: the retransmission was
    // dropped as stale, and only one install happened for the fetch.
    assert!(
        c.trace_count(TraceKind::StaleGrantDropped) >= 1,
        "stale retransmission was not traced as dropped"
    );
    assert_eq!(c.trace_count(TraceKind::Installed), 1, "grant installed more than once");
    c.check_coherence(seg, PAGE);
}

/// Duplicating every message on the wire must not disturb the protocol:
/// serials and acknowledgement matching make redelivery idempotent.
#[test]
fn duplicated_traffic_is_idempotent() {
    let mut c = Cluster::new(3, retry_config());
    let seg = c.create_segment(0, 1);
    c.fault_no_run(1, 1, seg, PAGE, Access::Write);
    c.run_duplicating(usize::MAX, |_, _, _| true);
    c.write_u32(1, seg, PAGE, 0, 21);
    c.fault_no_run(2, 1, seg, PAGE, Access::Read);
    c.fault_no_run(0, 2, seg, PAGE, Access::Read);
    c.run_duplicating(usize::MAX, |_, _, _| true);
    assert_eq!(c.read_u32(2, seg, PAGE, 0), 21);
    assert_eq!(c.read_u32(0, seg, PAGE, 0), 21);
    c.fault_no_run(2, 2, seg, PAGE, Access::Write);
    c.run_duplicating(usize::MAX, |_, _, _| true);
    c.write_u32(2, seg, PAGE, 0, 22);
    assert_eq!(c.read_u32(1, seg, PAGE, 0), 22);
    c.check_coherence(seg, PAGE);
}

/// A granter that crashes with an unacknowledged grant in flight must
/// retransmit it on restart: the pending-grant table is persistent
/// state, reconstructed exactly like the library's queue.
#[test]
fn crash_restart_retransmits_pending_grant() {
    let mut c = Cluster::new(2, retry_config());
    let seg = c.create_segment(0, 1);
    c.write_u32(0, seg, PAGE, 0, 17);
    c.fault_no_run(1, 1, seg, PAGE, Access::Write);
    // The grant is lost; the granter crashes before its retransmit timer
    // fires, taking the volatile timer with it.
    c.run_messages_dropping(1, |_, to, m| to == SiteId(1) && m.tag() == "PageGrant");
    c.crash(0);
    c.restart(0);
    c.run();
    c.write_u32(1, seg, PAGE, 0, 18);
    assert_eq!(c.read_u32(0, seg, PAGE, 0), 18);
    assert!(c.sent_count("PageGrant") >= 2, "restart did not retransmit the pending grant");
    c.check_coherence(seg, PAGE);
}

/// Delta mode, granter crashes mid-delta-retransmit: the pending-grant
/// table survives the restart (it is persistent, as above) but the
/// per-peer shadow slots are volatile, so the restarted granter cannot
/// re-encode the delta — the recovery grant must arrive as a full
/// `PageGrant`. The receiver-side crash twin of this shape lives in
/// `delta_grants.rs` (`crash_mid_delta_retransmit_escalates_after_restart`).
#[test]
fn granter_crash_mid_delta_retransmit_recovers_with_full_grant() {
    let delta_retry = ProtocolConfig {
        delta_grants: true,
        retry: Some(RetryPolicy::default()),
        ..ProtocolConfig::paper(Delta::ZERO)
    };
    let mut c = Cluster::new(2, delta_retry);
    let seg = c.create_segment(0, 1);
    // Ping-pong into delta steady state, then lose the next delta.
    c.write_u32(0, seg, PAGE, 0, 1);
    c.write_u32(1, seg, PAGE, 4, 2);
    c.write_u32(0, seg, PAGE, 8, 3);
    let patched_before_crash = c.trace_count(TraceKind::DeltaPatched);
    assert!(patched_before_crash >= 1, "setup never used a delta");
    c.fault_no_run(1, 1, seg, PAGE, Access::Write);
    c.run_messages_dropping(1, |_, to, m| to == SiteId(1) && m.tag() == "PageGrantDelta");
    let full_before = c.sent_count("PageGrant");
    let deltas_before = c.sent_count("PageGrantDelta");
    // The granter crashes before its retransmit timer fires; the crash
    // takes the shadow slots (volatile) but not the pending grant.
    c.crash(0);
    c.restart(0);
    c.run();
    // The recovery retransmit itself must be a full grant: the restarted
    // granter has no shadow to encode a delta against.
    assert!(c.sent_count("PageGrant") > full_before, "restart never retransmitted the grant");
    assert_eq!(
        c.sent_count("PageGrantDelta"),
        deltas_before,
        "restarted granter re-encoded a delta against a shadow lost in the crash"
    );
    c.write_u32(1, seg, PAGE, 12, 4);
    assert_eq!(c.read_u32(0, seg, PAGE, 12), 4);
    // The full recovery grant re-establishes a shared base, so the pair
    // may resume deltas afterwards — but nothing patched across the
    // crash itself until that grant landed.
    c.check_coherence(seg, PAGE);
}

/// The library site crashes mid-handoff: it has frozen the role and
/// sent the snapshot, but both the snapshot and the site itself are
/// lost before any acknowledgement. The pending handoff is persistent
/// state, so the restarted site must retransmit the frozen role until
/// the destination adopts and acks it — and the forwarding stub must
/// then redirect traffic that still arrives via stale hints.
#[test]
fn library_crash_mid_handoff_resends_the_frozen_role() {
    let mut c = Cluster::new(3, retry_config());
    let seg = c.create_segment(0, 1);
    c.write_u32(1, seg, PAGE, 0, 5);
    assert_eq!(c.read_u32(2, seg, PAGE, 0), 5);
    c.migrate_library_no_run(0, seg, SiteId(2));
    // The snapshot is lost in flight, and the old library crashes
    // before its handoff-retransmit timer fires (the crash severs the
    // volatile timer too).
    c.run_messages_dropping(1, |_, _, m| m.tag() == "LibraryHandoff");
    c.crash(0);
    c.restart(0);
    c.run();
    assert!(c.engine(2).library_active(seg), "frozen role never reached site 2");
    assert_eq!(c.engine(2).library_epoch(seg, PageNum(0)), 1);
    assert!(!c.engine(0).library_active(seg), "old library kept the role");
    assert!(c.sent_count("LibraryHandoff") >= 2, "restart did not retransmit the handoff");
    // The role is live at its new site: faults keep being served, with
    // stale-hint requests bounced through the stub.
    c.write_u32(1, seg, PAGE, 0, 9);
    assert_eq!(c.read_u32(2, seg, PAGE, 0), 9);
    c.check_coherence(seg, PAGE);
}

/// The adopting site crashes mid-handoff: it has installed the frozen
/// role but its acknowledgement is lost with the crash. The adopted
/// role (active flag, epoch, records) is persistent, so after restart
/// the old site's retransmit chain re-elicits the ack and both sides
/// converge on the new placement.
#[test]
fn adopting_site_crash_mid_handoff_still_acks_the_role() {
    let mut c = Cluster::new(3, retry_config());
    let seg = c.create_segment(0, 1);
    c.write_u32(1, seg, PAGE, 0, 5);
    c.migrate_library_no_run(0, seg, SiteId(2));
    // Deliver the handoff (site 2 adopts) but lose the ack, then crash
    // the adopting site before anything else reaches it.
    c.run_messages_dropping(1, |_, _, m| m.tag() == "LibraryHandoffAck");
    c.crash(2);
    c.restart(2);
    c.run();
    assert!(c.engine(2).library_active(seg), "adopted role lost in the crash");
    assert!(!c.engine(0).library_active(seg), "old library never saw the ack");
    assert_eq!(c.engine(2).library_epoch(seg, PageNum(0)), 1);
    c.write_u32(2, seg, PAGE, 0, 9);
    assert_eq!(c.read_u32(1, seg, PAGE, 0), 9);
    c.check_coherence(seg, PAGE);
}

fn sharded_retry_config() -> ProtocolConfig {
    ProtocolConfig { shard_pages: 2, ..retry_config() }
}

/// The library site crashes mid-handoff of ONE page-range shard: the
/// frozen shard snapshot and the site are lost before any ack. The
/// pending handoff is persistent per shard, so the restarted site must
/// retransmit the frozen range until the destination adopts it — while
/// the segment's other shard never leaves the old site and stays
/// servable at epoch 0 throughout.
#[test]
fn library_crash_mid_shard_handoff_resends_the_frozen_shard() {
    let mut c = Cluster::new(3, sharded_retry_config());
    // 4 pages at 2 pages/shard: shard 0 = pages 0–1, shard 1 = pages 2–3.
    let seg = c.create_segment(0, 4);
    let (p0, p2) = (PageNum(0), PageNum(2));
    c.write_u32(1, seg, p0, 0, 5);
    assert_eq!(c.read_u32(2, seg, p0, 0), 5);
    c.write_u32(1, seg, p2, 0, 6);
    assert_eq!(c.read_u32(2, seg, p2, 0), 6);
    c.migrate_library_shard_no_run(0, seg, SiteId(2), 1);
    // The shard snapshot is lost in flight, and the old library crashes
    // before its handoff-retransmit timer fires.
    c.run_messages_dropping(1, |_, _, m| m.tag() == "LibraryHandoff");
    c.crash(0);
    c.restart(0);
    c.run();
    assert!(c.engine(2).library_active_for(seg, p2), "frozen shard never reached site 2");
    assert_eq!(c.engine(2).library_epoch(seg, p2), 1);
    assert!(!c.engine(0).library_active_for(seg, p2), "old library kept the migrated shard");
    // The untouched shard survived the crash at its original site.
    assert!(c.engine(0).library_active_for(seg, p0), "crash evicted the unmigrated shard");
    assert_eq!(c.engine(0).library_epoch(seg, p0), 0);
    assert!(c.sent_count("LibraryHandoff") >= 2, "restart did not retransmit the handoff");
    // Both shards keep serving: the moved one at its new site, the
    // other still at the restarted origin.
    c.write_u32(1, seg, p2, 0, 9);
    assert_eq!(c.read_u32(2, seg, p2, 0), 9);
    c.write_u32(2, seg, p0, 0, 10);
    assert_eq!(c.read_u32(1, seg, p0, 0), 10);
    c.check_coherence(seg, p0);
    c.check_coherence(seg, p2);
}

/// The adopting site crashes mid-shard-handoff: it installed the frozen
/// shard but the ack dies with it. The adopted shard is persistent, so
/// after restart the old site's retransmit chain re-elicits the ack and
/// the two sites converge — each holding one shard of the segment.
#[test]
fn adopting_site_crash_mid_shard_handoff_still_acks_the_shard() {
    let mut c = Cluster::new(3, sharded_retry_config());
    let seg = c.create_segment(0, 4);
    let (p0, p2) = (PageNum(0), PageNum(2));
    c.write_u32(1, seg, p0, 0, 5);
    c.write_u32(1, seg, p2, 0, 6);
    c.migrate_library_shard_no_run(0, seg, SiteId(2), 1);
    // Deliver the shard (site 2 adopts pages 2–3) but lose the ack,
    // then crash the adopting site before anything else reaches it.
    c.run_messages_dropping(1, |_, _, m| m.tag() == "LibraryHandoffAck");
    c.crash(2);
    c.restart(2);
    c.run();
    assert!(c.engine(2).library_active_for(seg, p2), "adopted shard lost in the crash");
    assert!(!c.engine(0).library_active_for(seg, p2), "old library never saw the ack");
    assert_eq!(c.engine(2).library_epoch(seg, p2), 1);
    assert!(c.engine(0).library_active_for(seg, p0), "handoff dragged the other shard along");
    c.write_u32(2, seg, p2, 0, 9);
    assert_eq!(c.read_u32(1, seg, p2, 0), 9);
    c.write_u32(2, seg, p0, 0, 11);
    assert_eq!(c.read_u32(1, seg, p0, 0), 11);
    c.check_coherence(seg, p0);
    c.check_coherence(seg, p2);
}
