//! Li & Hudak's dynamic distributed manager.
//!
//! No fixed manager: every site keeps a per-page `probOwner` hint.
//! Requests are forwarded along the hint chain until they reach the true
//! owner; every site on the chain updates its hint to the requester,
//! which keeps chains short (amortized O(log N) forwards). The owner
//! holds the copy set and conducts invalidations for write transfers.

use std::collections::HashMap;

use mirage_net::{
    NetCosts,
    SizeClass,
};
use mirage_types::{
    Access,
    PageNum,
    SiteId,
    SiteSet,
};

use crate::common::{
    CostReport,
    DsmProtocol,
    TraceOp,
};

struct PageRec {
    /// Each site's probOwner hint, indexed by site.
    prob_owner: Vec<SiteId>,
    /// The true owner.
    owner: SiteId,
    /// Read copies outstanding (owner excluded).
    copy_set: SiteSet,
    owner_writable: bool,
}

/// The dynamic distributed manager protocol.
pub struct LiDistributed {
    sites: usize,
    costs: NetCosts,
    initial_owner: SiteId,
    pages: HashMap<PageNum, PageRec>,
    /// Total forwarding hops taken (for chain-length statistics).
    pub forward_hops: u64,
}

impl LiDistributed {
    /// Builds the protocol for `sites` sites with pages initially owned
    /// by `initial_owner`.
    pub fn new(sites: usize, initial_owner: SiteId, costs: NetCosts) -> Self {
        Self { sites, costs, initial_owner, pages: HashMap::new(), forward_hops: 0 }
    }

    fn rec(&mut self, page: PageNum) -> &mut PageRec {
        let owner = self.initial_owner;
        let sites = self.sites;
        self.pages.entry(page).or_insert_with(|| PageRec {
            prob_owner: vec![owner; sites],
            owner,
            copy_set: SiteSet::empty(),
            owner_writable: true,
        })
    }

    fn hit(&mut self, op: TraceOp) -> bool {
        let rec = self.rec(op.page);
        match op.access {
            Access::Read => rec.copy_set.contains(op.site) || rec.owner == op.site,
            Access::Write => rec.owner == op.site && rec.owner_writable,
        }
    }
}

impl DsmProtocol for LiDistributed {
    fn name(&self) -> &'static str {
        "li-distributed"
    }

    fn access(&mut self, op: TraceOp) -> CostReport {
        let mut cost = CostReport::default();
        if self.hit(op) {
            return cost;
        }
        cost.faults = 1;
        let costs = self.costs.clone();
        let rec = self.pages.get_mut(&op.page).expect("hit() materialized the record");
        // Chase the probOwner chain; each hop is one short message and
        // collapses the hint toward the requester.
        let mut at = op.site;
        let mut hops = 0u64;
        while at != rec.owner {
            let next = rec.prob_owner[at.index()];
            rec.prob_owner[at.index()] = op.site;
            if at != op.site {
                // Forward from an intermediate site.
            }
            cost.add_msg(SizeClass::Short, &costs);
            hops += 1;
            at = next;
            if hops as usize > self.sites + 1 {
                unreachable!("probOwner chain must terminate at the owner");
            }
        }
        self.forward_hops += hops;
        match op.access {
            Access::Read => {
                if rec.owner != op.site {
                    cost.add_msg(SizeClass::Large, &costs);
                }
                rec.owner_writable = false;
                rec.copy_set.insert(op.site);
                // Readers learn where the owner is.
                rec.prob_owner[op.site.index()] = rec.owner;
            }
            Access::Write => {
                // Owner invalidates the copy set (minus requester).
                // Taken by value: the write branch clears it below.
                let mut victims = std::mem::take(&mut rec.copy_set);
                victims.remove(op.site);
                victims.remove(rec.owner);
                for _v in victims.iter() {
                    cost.add_msg(SizeClass::Short, &costs); // invalidate
                    cost.add_msg(SizeClass::Short, &costs); // ack
                }
                if rec.owner != op.site {
                    cost.add_msg(SizeClass::Large, &costs);
                }
                let old_owner = rec.owner;
                rec.owner = op.site;
                rec.owner_writable = true;
                rec.copy_set.clear();
                // The old owner's hint now points at the new owner.
                rec.prob_owner[old_owner.index()] = op.site;
                rec.prob_owner[op.site.index()] = op.site;
            }
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(site: u16, access: Access) -> TraceOp {
        TraceOp { site: SiteId(site), page: PageNum(0), access }
    }

    #[test]
    fn first_remote_write_takes_one_hop() {
        let mut p = LiDistributed::new(3, SiteId(0), NetCosts::vax_locus());
        let c = p.access(op(1, Access::Write));
        assert_eq!(c.faults, 1);
        assert_eq!(c.shorts, 1, "direct hint to initial owner");
        assert_eq!(c.larges, 1);
    }

    #[test]
    fn hint_chains_collapse() {
        let mut p = LiDistributed::new(4, SiteId(0), NetCosts::vax_locus());
        // Ownership walks 0 -> 1 -> 2; site 3 still hints at 0.
        p.access(op(1, Access::Write));
        p.access(op(2, Access::Write));
        let before = p.forward_hops;
        // Site 3's request chases 3 -> 0 -> 2: site 0's hint already
        // collapsed to the true owner when site 2's request passed
        // through it, so only two hops remain.
        let c = p.access(op(3, Access::Write));
        assert_eq!(p.forward_hops - before, 2, "{c:?}");
        // …but a repeat from site 0 now goes straight to 3 (hint
        // collapsed when the request passed through).
        let before = p.forward_hops;
        p.access(op(0, Access::Read));
        assert_eq!(p.forward_hops - before, 1);
    }

    #[test]
    fn read_then_write_by_same_site_needs_page_only_once() {
        let mut p = LiDistributed::new(2, SiteId(0), NetCosts::vax_locus());
        let c1 = p.access(op(1, Access::Read));
        assert_eq!(c1.larges, 1);
        let c2 = p.access(op(1, Access::Write));
        // Like the centralized variant, Li re-ships on the write unless
        // the requester already owns it; here site 1 is not the owner.
        assert_eq!(c2.larges, 1);
        // Now site 1 owns it; further writes are free.
        assert_eq!(p.access(op(1, Access::Write)).faults, 0);
    }

    #[test]
    fn owner_read_after_downgrade_is_free() {
        let mut p = LiDistributed::new(2, SiteId(0), NetCosts::vax_locus());
        p.access(op(1, Access::Read));
        // Owner (site 0) still reads for free.
        assert_eq!(p.access(op(0, Access::Read)).faults, 0);
    }
}
