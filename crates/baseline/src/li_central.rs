//! Li & Hudak's centralized-manager shared virtual memory.
//!
//! One manager site records, per page, the current **owner** and the
//! **copy set** (sites holding read copies). Faults go to the manager;
//! the manager forwards to the owner; the owner serves the page. A write
//! fault makes the requester the new owner after the copy set is
//! invalidated. "The last writer to a page becomes the new owner"
//! (Appendix I). There is no time window: every request is served as
//! soon as the messages land — the protocol Mirage degenerates to at
//! Δ = 0 minus the library's batching and downgrade/upgrade tricks.

use std::collections::HashMap;

use mirage_net::{
    NetCosts,
    SizeClass,
};
use mirage_types::{
    Access,
    PageNum,
    SiteId,
    SiteSet,
};

use crate::common::{
    CostReport,
    DsmProtocol,
    TraceOp,
};

struct PageRec {
    owner: SiteId,
    copy_set: SiteSet,
    /// Owner's copy is writable (true) or it was downgraded to a read
    /// copy by serving readers (Li keeps the owner readable).
    owner_writable: bool,
}

/// The centralized-manager protocol.
pub struct LiCentral {
    manager: SiteId,
    costs: NetCosts,
    pages: HashMap<PageNum, PageRec>,
    initial_owner: SiteId,
}

impl LiCentral {
    /// Builds the protocol with the manager (and initial page owner) at
    /// `manager`.
    pub fn new(manager: SiteId, costs: NetCosts) -> Self {
        Self { manager, costs, pages: HashMap::new(), initial_owner: manager }
    }

    fn rec(&mut self, page: PageNum) -> &mut PageRec {
        let owner = self.initial_owner;
        self.pages.entry(page).or_insert(PageRec {
            owner,
            copy_set: SiteSet::empty(),
            owner_writable: true,
        })
    }

    /// Does this access hit locally without a fault?
    fn hit(&mut self, op: TraceOp) -> bool {
        let rec = self.rec(op.page);
        match op.access {
            Access::Read => rec.copy_set.contains(op.site) || (rec.owner == op.site),
            Access::Write => rec.owner == op.site && rec.owner_writable,
        }
    }
}

impl DsmProtocol for LiCentral {
    fn name(&self) -> &'static str {
        "li-central"
    }

    fn access(&mut self, op: TraceOp) -> CostReport {
        let mut cost = CostReport::default();
        if self.hit(op) {
            return cost;
        }
        cost.faults = 1;
        let manager = self.manager;
        let costs = self.costs.clone();
        let rec = self.pages.get_mut(&op.page).expect("hit() materialized the record");
        match op.access {
            Access::Read => {
                // Requester -> manager (short), unless colocated.
                if op.site != manager {
                    cost.add_msg(SizeClass::Short, &costs);
                }
                // Manager -> owner forward (short), unless colocated.
                if rec.owner != manager {
                    cost.add_msg(SizeClass::Short, &costs);
                }
                // Owner -> requester: the page (large). The owner keeps a
                // read copy (its write bit is cleared).
                if rec.owner != op.site {
                    cost.add_msg(SizeClass::Large, &costs);
                }
                // Requester -> manager confirmation (short).
                if op.site != manager {
                    cost.add_msg(SizeClass::Short, &costs);
                }
                rec.owner_writable = false;
                rec.copy_set.insert(op.site);
            }
            Access::Write => {
                if op.site != manager {
                    cost.add_msg(SizeClass::Short, &costs);
                }
                // Manager invalidates every copy-set member except the
                // requester: one short out, one short ack, each.
                let victims = {
                    // Taken by value: the write branch clears the copy
                    // set below anyway.
                    let mut v = std::mem::take(&mut rec.copy_set);
                    v.remove(op.site);
                    if !rec.owner_writable {
                        v.insert(rec.owner);
                    }
                    v.remove(op.site);
                    v
                };
                for v in victims.iter() {
                    if v != manager {
                        cost.add_msg(SizeClass::Short, &costs); // invalidate
                        cost.add_msg(SizeClass::Short, &costs); // ack
                    }
                }
                // Forward to owner; owner ships the page unless the
                // requester already holds a copy (Li sends it anyway —
                // no Mirage-style upgrade optimization).
                if rec.owner != manager {
                    cost.add_msg(SizeClass::Short, &costs);
                }
                if rec.owner != op.site {
                    cost.add_msg(SizeClass::Large, &costs);
                }
                if op.site != manager {
                    cost.add_msg(SizeClass::Short, &costs); // confirmation
                }
                rec.owner = op.site;
                rec.owner_writable = true;
                rec.copy_set.clear();
            }
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(site: u16, access: Access) -> TraceOp {
        TraceOp { site: SiteId(site), page: PageNum(0), access }
    }

    #[test]
    fn owner_hits_locally() {
        let mut p = LiCentral::new(SiteId(0), NetCosts::vax_locus());
        let c = p.access(op(0, Access::Write));
        assert_eq!(c.faults, 0, "initial owner writes for free");
        let c = p.access(op(0, Access::Read));
        assert_eq!(c.faults, 0);
    }

    #[test]
    fn remote_read_ships_page_and_clears_write_bit() {
        let mut p = LiCentral::new(SiteId(0), NetCosts::vax_locus());
        let c = p.access(op(1, Access::Read));
        assert_eq!(c.faults, 1);
        assert_eq!(c.larges, 1);
        assert_eq!(c.shorts, 2, "request + confirmation (manager is owner)");
        // Owner's write bit cleared: its next write faults.
        let c = p.access(op(0, Access::Write));
        assert_eq!(c.faults, 1);
    }

    #[test]
    fn write_invalidates_copy_set() {
        let mut p = LiCentral::new(SiteId(0), NetCosts::vax_locus());
        p.access(op(1, Access::Read));
        p.access(op(2, Access::Read));
        let c = p.access(op(3, Access::Write));
        // Victims: sites 1, 2 (owner site 0 is the manager; its copy is
        // invalidated locally for free). 2 invalidate+ack pairs.
        assert!(c.shorts >= 4, "invalidate/ack pairs: {c:?}");
        assert_eq!(c.larges, 1, "page shipped to new owner");
        // New owner writes for free now.
        assert_eq!(p.access(op(3, Access::Write)).faults, 0);
    }

    #[test]
    fn no_upgrade_optimization_page_reshipped() {
        // A reader that writes gets the whole page again — Li lacks
        // Mirage's optimization 1.
        let mut p = LiCentral::new(SiteId(0), NetCosts::vax_locus());
        p.access(op(1, Access::Read));
        let c = p.access(op(1, Access::Write));
        assert_eq!(c.larges, 1, "Li re-ships the page on upgrade");
    }
}
