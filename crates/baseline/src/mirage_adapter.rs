//! The real Mirage engine behind the trace-comparison interface.

use std::collections::VecDeque;

use mirage_core::{
    DriverOps,
    Event,
    InMemStore,
    PageStore,
    ProtoMsg,
    ProtocolConfig,
    ProtocolDriver,
    RefLogEntry,
};
use mirage_mem::LocalSegment;
use mirage_net::{
    message::Sized2,
    NetCosts,
};
use mirage_types::{
    PageNum,
    Pid,
    SegmentId,
    SimTime,
    SiteId,
};

use crate::common::{
    CostReport,
    DsmProtocol,
    TraceOp,
};

/// Mirage's protocol engine, driven synchronously over an access trace.
///
/// Message *counts* are exact; timers (Δ denials) advance a virtual
/// clock, so nonzero Δ configurations replay correctly too.
pub struct MirageCost {
    drivers: Vec<ProtocolDriver>,
    stores: Vec<InMemStore>,
    seg: SegmentId,
    costs: NetCosts,
    now: SimTime,
    net: VecDeque<(SiteId, SiteId, ProtoMsg)>,
    timers: Vec<(SimTime, usize, u64)>,
}

impl MirageCost {
    /// Builds a Mirage cluster of `sites` sites with pages (library) at
    /// site 0, covering `pages` pages.
    pub fn new(sites: usize, pages: usize, config: ProtocolConfig, costs: NetCosts) -> Self {
        let seg = SegmentId::new(SiteId(0), 1);
        let mut drivers = Vec::new();
        let mut stores = Vec::new();
        for i in 0..sites {
            let mut d = ProtocolDriver::from_config(SiteId(i as u16), config.clone());
            d.register_segment(seg, pages);
            let mut st = InMemStore::new();
            st.add_segment(if i == 0 {
                LocalSegment::fully_resident(seg, pages)
            } else {
                LocalSegment::absent(seg, pages)
            });
            drivers.push(d);
            stores.push(st);
        }
        Self {
            drivers,
            stores,
            seg,
            costs,
            now: SimTime::ZERO,
            net: VecDeque::new(),
            timers: Vec::new(),
        }
    }

    /// Dispatches one event at `site` and drains the resulting actions
    /// into the synchronous network queue, timer list, and cost report.
    fn dispatch(&mut self, site: usize, ev: Event, cost: &mut CostReport) {
        let Self { drivers, stores, costs, now, net, timers, .. } = self;
        drivers[site].drive(
            ev,
            *now,
            &mut stores[site],
            &mut BaselineOps { site, costs, cost, net, timers },
        );
    }

    fn quiesce(&mut self, cost: &mut CostReport) {
        loop {
            if let Some((from, to, msg)) = self.net.pop_front() {
                let s = to.index();
                self.dispatch(s, Event::Deliver { from, msg }, cost);
                continue;
            }
            if !self.timers.is_empty() {
                let idx = self
                    .timers
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &(at, _, _))| at)
                    .map(|(i, _)| i)
                    .expect("nonempty");
                let (at, s, token) = self.timers.remove(idx);
                if at > self.now {
                    self.now = at;
                }
                self.dispatch(s, Event::Timer { token }, cost);
                continue;
            }
            return;
        }
    }
}

/// [`DriverOps`] receiver for the trace adapter: sends are costed and
/// queued on the synchronous network; wakes and log records are
/// irrelevant to message accounting and dropped.
struct BaselineOps<'a> {
    site: usize,
    costs: &'a NetCosts,
    cost: &'a mut CostReport,
    net: &'a mut VecDeque<(SiteId, SiteId, ProtoMsg)>,
    timers: &'a mut Vec<(SimTime, usize, u64)>,
}

impl DriverOps for BaselineOps<'_> {
    fn send(&mut self, to: SiteId, msg: ProtoMsg) {
        self.cost.add_msg(msg.size_class(), self.costs);
        self.net.push_back((SiteId(self.site as u16), to, msg));
    }

    fn wake(&mut self, _pid: Pid) {}

    fn set_timer(&mut self, at: SimTime, token: u64) {
        self.timers.push((at, self.site, token));
    }

    fn log(&mut self, _entry: RefLogEntry) {}
}

impl DsmProtocol for MirageCost {
    fn name(&self) -> &'static str {
        "mirage"
    }

    fn access(&mut self, op: TraceOp) -> CostReport {
        let mut cost = CostReport::default();
        let s = op.site.index();
        let page = PageNum(op.page.0);
        if self.stores[s].prot(self.seg, page).permits(op.access) {
            return cost;
        }
        cost.faults = 1;
        let pid = Pid::new(op.site, 1);
        let seg = self.seg;
        self.dispatch(s, Event::Fault { pid, seg, page, access: op.access }, &mut cost);
        self.quiesce(&mut cost);
        debug_assert!(
            self.stores[s].prot(self.seg, page).permits(op.access),
            "access must be granted at quiescence"
        );
        cost
    }
}

#[cfg(test)]
mod tests {
    use mirage_types::{
        Access,
        Delta,
    };

    use super::*;
    use crate::common::AccessTrace;

    fn op(site: u16, access: Access) -> TraceOp {
        TraceOp { site: SiteId(site), page: PageNum(0), access }
    }

    #[test]
    fn upgrade_saves_a_large_message_vs_li() {
        use crate::li_central::LiCentral;
        let mut mirage =
            MirageCost::new(2, 1, ProtocolConfig::default(), NetCosts::vax_locus());
        let mut li = LiCentral::new(SiteId(0), NetCosts::vax_locus());
        // Reader at site 1, then the same site writes (upgrade case).
        for p in [&mut mirage as &mut dyn DsmProtocol, &mut li as &mut dyn DsmProtocol] {
            p.access(op(1, Access::Read));
        }
        let m = mirage.access(op(1, Access::Write));
        let l = li.access(op(1, Access::Write));
        assert_eq!(m.larges, 0, "Mirage upgrades with a notification: {m:?}");
        assert_eq!(l.larges, 1, "Li re-ships the page: {l:?}");
    }

    #[test]
    fn ping_pong_trace_replays_coherently() {
        let mut mirage =
            MirageCost::new(2, 1, ProtocolConfig::default(), NetCosts::vax_locus());
        let report = mirage.replay(&AccessTrace::ping_pong(25));
        assert!(report.faults > 0);
        assert!(report.larges > 0);
        assert!(report.shorts > report.larges);
    }

    #[test]
    fn nonzero_delta_replays_via_virtual_time() {
        let cfg = ProtocolConfig::paper(Delta(6));
        let mut mirage = MirageCost::new(2, 1, cfg, NetCosts::vax_locus());
        let report = mirage.replay(&AccessTrace::ping_pong(10));
        assert!(report.faults > 0, "trace must complete despite Δ denials");
    }
}
