//! The trace-driven protocol comparison interface.

use mirage_net::{
    NetCosts,
    SizeClass,
};
use mirage_types::{
    Access,
    PageNum,
    SimDuration,
    SiteId,
};

/// Accumulated cost of serving accesses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostReport {
    /// Short control messages sent.
    pub shorts: u64,
    /// Page-carrying messages sent.
    pub larges: u64,
    /// Page faults taken (accesses that were not free).
    pub faults: u64,
    /// Estimated elapsed communication time (wire only, serialized),
    /// using the calibrated cost model.
    pub wire_time: SimDuration,
}

impl CostReport {
    /// Total messages.
    pub fn total_msgs(&self) -> u64 {
        self.shorts + self.larges
    }

    /// Adds a message of the given size.
    pub fn add_msg(&mut self, size: SizeClass, costs: &NetCosts) {
        match size {
            SizeClass::Short => self.shorts += 1,
            // The baseline protocols never send byte-sized (delta)
            // messages; bucket any with the page-carrying class.
            SizeClass::Large | SizeClass::Bytes(_) => self.larges += 1,
        }
        self.wire_time += costs.one_way(size);
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: CostReport) {
        self.shorts += other.shorts;
        self.larges += other.larges;
        self.faults += other.faults;
        self.wire_time += other.wire_time;
    }
}

/// One access in a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceOp {
    /// The accessing site.
    pub site: SiteId,
    /// The page accessed.
    pub page: PageNum,
    /// Read or write.
    pub access: Access,
}

/// A sequence of accesses, replayed against each protocol.
#[derive(Clone, Debug, Default)]
pub struct AccessTrace {
    /// The operations in order.
    pub ops: Vec<TraceOp>,
}

impl AccessTrace {
    /// The §7.2 worst case as a trace: two sites alternately write and
    /// read the same page.
    pub fn ping_pong(cycles: usize) -> Self {
        let mut ops = Vec::new();
        let (a, b) = (SiteId(0), SiteId(1));
        let page = PageNum(0);
        for _ in 0..cycles {
            ops.push(TraceOp { site: a, page, access: Access::Write });
            ops.push(TraceOp { site: b, page, access: Access::Read });
            ops.push(TraceOp { site: b, page, access: Access::Write });
            ops.push(TraceOp { site: a, page, access: Access::Read });
        }
        Self { ops }
    }

    /// Read-mostly: `readers` sites read a page repeatedly; one writer
    /// site writes once per `reads_per_write` reads.
    pub fn read_mostly(readers: usize, rounds: usize, reads_per_write: usize) -> Self {
        let mut ops = Vec::new();
        let page = PageNum(0);
        let writer = SiteId(0);
        let mut since_write = 0;
        for round in 0..rounds {
            for r in 0..readers {
                ops.push(TraceOp { site: SiteId((r + 1) as u16), page, access: Access::Read });
                since_write += 1;
                if since_write >= reads_per_write {
                    since_write = 0;
                    ops.push(TraceOp { site: writer, page, access: Access::Write });
                }
            }
            let _ = round;
        }
        Self { ops }
    }

    /// A deterministic pseudo-random mixed trace over several pages.
    pub fn mixed(sites: usize, pages: u32, ops_count: usize, seed: u64) -> Self {
        // Small xorshift so the trace is reproducible without pulling in
        // a full RNG here.
        let mut s = seed.max(1);
        let mut next = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let ops = (0..ops_count)
            .map(|_| {
                let r = next();
                TraceOp {
                    site: SiteId((r % sites as u64) as u16),
                    page: PageNum(((r >> 8) % u64::from(pages)) as u32),
                    access: if (r >> 16) % 3 == 0 { Access::Write } else { Access::Read },
                }
            })
            .collect();
        Self { ops }
    }
}

/// A DSM protocol replaying an access trace.
pub trait DsmProtocol {
    /// Human-readable protocol name.
    fn name(&self) -> &'static str;

    /// Serves one access to completion, returning its cost.
    fn access(&mut self, op: TraceOp) -> CostReport;

    /// Replays a whole trace.
    fn replay(&mut self, trace: &AccessTrace) -> CostReport {
        let mut total = CostReport::default();
        for &op in &trace.ops {
            total.merge(self.access(op));
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong_trace_shape() {
        let t = AccessTrace::ping_pong(3);
        assert_eq!(t.ops.len(), 12);
        assert_eq!(t.ops[0].access, Access::Write);
        assert_eq!(t.ops[1].site, SiteId(1));
    }

    #[test]
    fn mixed_trace_is_deterministic() {
        let a = AccessTrace::mixed(3, 4, 100, 42);
        let b = AccessTrace::mixed(3, 4, 100, 42);
        assert_eq!(a.ops, b.ops);
        let c = AccessTrace::mixed(3, 4, 100, 43);
        assert_ne!(a.ops, c.ops);
    }

    #[test]
    fn cost_report_accumulates() {
        let costs = NetCosts::vax_locus();
        let mut r = CostReport::default();
        r.add_msg(SizeClass::Short, &costs);
        r.add_msg(SizeClass::Large, &costs);
        assert_eq!(r.total_msgs(), 2);
        let expect = costs.one_way(SizeClass::Short) + costs.one_way(SizeClass::Large);
        assert_eq!(r.wire_time, expect);
    }
}
