//! Tardis-style timestamp coherence as a trace-driven cost model.
//!
//! Yu & Devadas's Tardis (PAPERS.md) replaces invalidation-time
//! coordination with logical leases: the home site keeps per-page
//! read/write timestamp counters (`rts`/`wts`), a write serializes at
//! `max(wts, rts) + 1` without telling any reader, and read copies
//! simply age out of their lease and renew with a header-only exchange.
//! The model here prices that protocol over the same
//! [`AccessTrace`](crate::common::AccessTrace)s
//! the Li baselines replay, with the paper's calibrated
//! [`NetCosts`] — the logical-lease counterpart to Mirage's physical-Δ
//! window.
//!
//! Message accounting per fault (colocated hops are free, as in the Li
//! models):
//!
//! * read miss — request (short), plus a write-back recall of the
//!   current exclusive owner if one exists (short out, large back),
//!   then either a data grant (large) or, when the requester already
//!   caches the current version, a data-free lease renewal (short);
//! * write miss — request (short), owner recall as above, then the
//!   exclusive grant: large when the requester's cached version is
//!   behind, short (in-place) when it is current. **No reader is ever
//!   messaged** — the fan-out Mirage and Li pay on every write is
//!   traded for renewals on later reads.

use std::collections::HashMap;

use mirage_net::{
    NetCosts,
    SizeClass,
};
use mirage_types::{
    Access,
    PageNum,
    SiteId,
};

use crate::common::{
    CostReport,
    DsmProtocol,
    TraceOp,
};

/// A cached (non-exclusive) copy at one site.
#[derive(Clone, Copy, Debug)]
struct CachedCopy {
    /// Version (the home's `wts` when the copy was granted).
    vts: u32,
    /// Lease horizon: the copy serves reads while the holder's program
    /// timestamp is at or below this.
    lease: u32,
}

/// Home-site timestamp state for one page.
struct PageRec {
    wts: u32,
    rts: u32,
    owner: Option<SiteId>,
    copies: HashMap<SiteId, CachedCopy>,
}

/// The timestamp-coherence cost model.
pub struct TardisCost {
    home: SiteId,
    lease: u32,
    costs: NetCosts,
    /// Per-site program timestamps (advance only at protocol events).
    pts: HashMap<SiteId, u32>,
    pages: HashMap<PageNum, PageRec>,
    /// Data-free lease extensions granted (the renewal side of the
    /// renewal-vs-invalidation comparison).
    pub renewals: u64,
    /// Owner write-back recalls issued (the only coherence traffic a
    /// conflicting access ever causes).
    pub recalls: u64,
}

impl TardisCost {
    /// Builds the model with the home (and initial owner) at `home` and
    /// the given logical lease length.
    pub fn new(home: SiteId, lease: u32, costs: NetCosts) -> Self {
        Self {
            home,
            lease: lease.max(1),
            costs,
            pts: HashMap::new(),
            pages: HashMap::new(),
            renewals: 0,
            recalls: 0,
        }
    }

    fn rec(&mut self, page: PageNum) -> &mut PageRec {
        let home = self.home;
        self.pages.entry(page).or_insert(PageRec {
            wts: 1,
            rts: 1,
            owner: Some(home),
            copies: HashMap::new(),
        })
    }

    /// Does this access hit locally without a fault?
    fn hit(&mut self, op: TraceOp) -> bool {
        let pts = self.pts.get(&op.site).copied().unwrap_or(0);
        let rec = self.rec(op.page);
        if rec.owner == Some(op.site) {
            // The exclusive owner reads and writes in place.
            return true;
        }
        match op.access {
            // A cached copy serves reads until its lease expires
            // relative to the holder's own program timestamp — even if
            // the home's `wts` has moved on (Tardis reads are allowed
            // to be stale; they are merely *ordered* before the
            // conflicting write).
            Access::Read => rec.copies.get(&op.site).is_some_and(|c| pts <= c.lease),
            Access::Write => false,
        }
    }

    /// Recalls the current exclusive owner, if some other site holds
    /// the page: one short recall out, one large write-back home.
    fn recall_owner(&mut self, op: TraceOp, cost: &mut CostReport) {
        let home = self.home;
        let costs = self.costs.clone();
        let rec = self.pages.get_mut(&op.page).expect("hit() materialized the record");
        let Some(owner) = rec.owner else { return };
        if owner == op.site {
            return;
        }
        rec.owner = None;
        if owner != home {
            // Demoting the home's own master is free; only a remote
            // owner costs a wire round trip.
            self.recalls += 1;
            cost.add_msg(SizeClass::Short, &costs); // recall
            cost.add_msg(SizeClass::Large, &costs); // write-back (dirty)
        }
    }
}

impl DsmProtocol for TardisCost {
    fn name(&self) -> &'static str {
        "tardis"
    }

    fn access(&mut self, op: TraceOp) -> CostReport {
        let mut cost = CostReport::default();
        if self.hit(op) {
            return cost;
        }
        cost.faults = 1;
        let home = self.home;
        let costs = self.costs.clone();
        if op.site != home {
            cost.add_msg(SizeClass::Short, &costs); // request
        }
        self.recall_owner(op, &mut cost);
        let lease = self.lease;
        let pts = self.pts.entry(op.site).or_insert(0);
        let rec = self.pages.get_mut(&op.page).expect("hit() materialized the record");
        match op.access {
            Access::Read => {
                // The grant carries the current version; the reader's
                // program timestamp catches up to it and the lease
                // horizon extends past the reader's clock.
                *pts = (*pts).max(rec.wts);
                rec.rts = rec.rts.max(pts.saturating_add(lease));
                let current = rec.copies.get(&op.site).is_some_and(|c| c.vts == rec.wts);
                if current {
                    // Same version already cached: extend the lease
                    // with a header-only renewal instead of re-shipping
                    // the page.
                    self.renewals += 1;
                    if op.site != home {
                        cost.add_msg(SizeClass::Short, &costs);
                    }
                } else if op.site != home {
                    cost.add_msg(SizeClass::Large, &costs);
                }
                rec.copies.insert(op.site, CachedCopy { vts: rec.wts, lease: rec.rts });
            }
            Access::Write => {
                // The write serializes after every granted lease — no
                // reader hears about it; their copies expire logically.
                let new_wts = rec.wts.max(rec.rts).max(*pts) + 1;
                let current = rec.copies.get(&op.site).is_some_and(|c| c.vts == rec.wts);
                if op.site != home {
                    // In-place exclusive grant when the requester's
                    // cached version is current (the Tardis analogue of
                    // Mirage's upgrade optimization); full page
                    // otherwise.
                    cost.add_msg(
                        if current { SizeClass::Short } else { SizeClass::Large },
                        &costs,
                    );
                }
                rec.wts = new_wts;
                rec.rts = rec.rts.max(new_wts);
                rec.owner = Some(op.site);
                rec.copies.remove(&op.site);
                *pts = new_wts;
            }
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::AccessTrace;
    use crate::li_central::LiCentral;

    fn model() -> TardisCost {
        TardisCost::new(SiteId(0), 8, NetCosts::vax_locus())
    }

    fn op(site: u16, access: Access) -> TraceOp {
        TraceOp { site: SiteId(site), page: PageNum(0), access }
    }

    #[test]
    fn home_owner_hits_locally() {
        let mut p = model();
        assert_eq!(p.access(op(0, Access::Write)).faults, 0, "home starts as owner");
        assert_eq!(p.access(op(0, Access::Read)).faults, 0);
    }

    #[test]
    fn remote_write_takes_exclusive_ownership() {
        let mut p = model();
        let c = p.access(op(1, Access::Write));
        assert_eq!(c.faults, 1);
        assert_eq!(c.larges, 1, "page ships to the new owner");
        assert_eq!(p.access(op(1, Access::Write)).faults, 0, "owner writes in place");
        assert_eq!(p.access(op(1, Access::Read)).faults, 0);
    }

    #[test]
    fn conflicting_read_recalls_the_owner_once() {
        let mut p = model();
        p.access(op(1, Access::Write));
        let c = p.access(op(2, Access::Read));
        // Request + recall (short) and write-back + grant (large).
        assert_eq!(c.shorts, 2, "{c:?}");
        assert_eq!(c.larges, 2, "{c:?}");
        assert_eq!(p.recalls, 1);
        // The home's master is now current: the next reader pays no
        // recall.
        let c = p.access(op(3, Access::Read));
        assert_eq!(c.shorts, 1);
        assert_eq!(c.larges, 1);
        assert_eq!(p.recalls, 1);
    }

    #[test]
    fn writes_never_message_readers() {
        let mut p = model();
        for r in 1..=4 {
            p.access(op(r, Access::Read));
        }
        // Every reader holds a leased copy; the write invalidates no
        // one. Cost: request + in-place... the writer holds a current
        // copy too (site 4 read above), so the grant is short.
        let c = p.access(op(4, Access::Write));
        assert_eq!(c.larges, 0, "no page traffic and no fan-out: {c:?}");
        assert_eq!(c.shorts, 2, "request + in-place exclusive grant: {c:?}");
    }

    #[test]
    fn expired_lease_renews_without_data() {
        let mut p = TardisCost::new(SiteId(0), 2, NetCosts::vax_locus());
        p.access(op(1, Access::Read));
        // The reader trades writes on a *different* page with another
        // site; each transfer bumps that page's `wts`, dragging site
        // 1's program timestamp past the lease horizon of its cached
        // copy of page 0.
        let far =
            |site: u16| TraceOp { site: SiteId(site), page: PageNum(1), access: Access::Write };
        p.access(far(1));
        p.access(far(2));
        p.access(far(1));
        let before = p.renewals;
        let c = p.access(op(1, Access::Read));
        assert_eq!(c.faults, 1, "lease must have expired");
        assert_eq!(c.larges, 0, "version unchanged: no data on the wire");
        assert_eq!(c.shorts, 2, "request + renewal");
        assert_eq!(p.renewals, before + 1);
    }

    #[test]
    fn stale_read_inside_lease_is_a_hit() {
        let mut p = model();
        p.access(op(1, Access::Read));
        p.access(op(2, Access::Write));
        // Site 1's copy is now stale, but its lease (relative to its
        // own program timestamp, which has not moved) still covers it:
        // Tardis reads it locally, no message.
        assert_eq!(p.access(op(1, Access::Read)).faults, 0);
    }

    #[test]
    fn pingpong_beats_li_on_messages() {
        // Two sites alternating write/read on one page: Li invalidates
        // and re-ships constantly; Tardis pays one recall + grant per
        // transfer and serves the read side from leases where it can.
        let trace = AccessTrace::ping_pong(100);
        let mut li = LiCentral::new(SiteId(0), NetCosts::vax_locus());
        let mut ts = model();
        let li_cost = li.replay(&trace);
        let ts_cost = ts.replay(&trace);
        assert!(
            ts_cost.total_msgs() < li_cost.total_msgs(),
            "tardis {ts_cost:?} vs li {li_cost:?}"
        );
    }

    #[test]
    fn timestamps_serialize_writes_monotonically() {
        let mut p = model();
        p.access(op(1, Access::Write));
        let w1 = p.pages[&PageNum(0)].wts;
        p.access(op(2, Access::Read));
        p.access(op(3, Access::Write));
        let w2 = p.pages[&PageNum(0)].wts;
        assert!(w2 > w1, "every write bumps wts: {w1} -> {w2}");
        let rec = &p.pages[&PageNum(0)];
        assert!(rec.rts >= rec.wts, "leases never trail the version");
    }
}
