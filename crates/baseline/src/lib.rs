//! Baseline shared-virtual-memory protocols for comparison with Mirage.
//!
//! Appendix I of the paper reviews Kai Li's shared virtual memory
//! (\[LI86\]) as the closest prior work. This crate implements Li's two main
//! page-ownership algorithms from "Memory Coherence in Shared Virtual
//! Memory Systems" (Li & Hudak, PODC '86):
//!
//! * [`li_central`] — the **centralized manager**: one manager site per
//!   page tracks the owner and the copy set; requests are forwarded to
//!   the owner; the last writer becomes the new owner;
//! * [`li_distributed`] — the **dynamic distributed manager**: no fixed
//!   manager; each site keeps a `probOwner` hint and requests chase the
//!   hint chain to the true owner.
//!
//! A third rival, [`tardis_cost::TardisCost`], models Yu & Devadas's
//! Tardis timestamp coherence: per-page logical `rts`/`wts` leases at a
//! home site, write-back recalls instead of invalidation fan-out, and
//! data-free lease renewals — the logical-lease counterpart to Mirage's
//! physical-Δ window.
//!
//! All are exercised through [`common::DsmProtocol`], a trace-driven
//! interface that counts the messages each access needs and prices them
//! with the paper's calibrated [`mirage_net::NetCosts`].
//! [`mirage_adapter::MirageCost`] wraps the real Mirage engine behind
//! the same interface, so benchmark B1 can run identical access traces
//! through all the protocols.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod common;
pub mod li_central;
pub mod li_distributed;
pub mod mirage_adapter;
pub mod tardis_cost;

pub use common::{
    AccessTrace,
    CostReport,
    DsmProtocol,
    TraceOp,
};
pub use li_central::LiCentral;
pub use li_distributed::LiDistributed;
pub use mirage_adapter::MirageCost;
pub use tardis_cost::TardisCost;
