//! A deterministic discrete-event simulator of the paper's environment:
//! VAX 11/750 sites running Locus, connected by point-to-point virtual
//! circuits over a 10 Mbit Ethernet.
//!
//! The simulator exists because the paper's evaluation is inseparable
//! from its environment: the worst-case application (Figure 7) measures
//! the interaction of the DSM protocol with *scheduling quanta*,
//! *interrupt servicing*, and *message costs*; the representative
//! application (Figure 8) measures the Δ window against the same costs.
//! Every cost constant is taken from the paper via
//! [`mirage_net::NetCosts`]; the protocol logic is the real
//! [`mirage_core::SiteEngine`] — the simulator fabricates nothing but
//! time.
//!
//! # Scheduling model
//!
//! Each site has one CPU. User processes run round-robin with a
//! 6-tick (≈100 ms) quantum. Kernel protocol work (the Locus lightweight
//! server processes, §6.0) runs with priority **but only at scheduling
//! points** — when the running process blocks, yields, sleeps, exits, or
//! exhausts its quantum. This models the System V behaviour the paper
//! leans on: a busy-waiting process holds the CPU for its whole quantum,
//! which is exactly why the paper added `yield()` (§7.2) and why Figure
//! 7's curves intersect at Δ = quantum.
//!
//! `yield()` moves the caller to the back of the run queue; if no other
//! process is ready the caller sleeps for 2 ticks (≈33 ms), reproducing
//! the paper's "2.75 sleeps of 33 msecs" accounting.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod calendar;
pub mod faults;
pub mod fuzz;
pub mod instrument;
pub mod openloop;
pub mod process;
pub mod program;
pub mod site;
pub mod world;

pub use calendar::CalendarQueue;
pub use faults::FaultStats;
pub use fuzz::{
    authoritative_value,
    run_fuzz_seed,
    run_fuzz_seed_delta,
    run_fuzz_seed_delta_traced,
    run_fuzz_seed_large,
    run_fuzz_seed_large_traced,
    run_fuzz_seed_matrix,
    run_fuzz_seed_migrating,
    run_fuzz_seed_migrating_traced,
    run_fuzz_seed_protocol,
    run_fuzz_seed_protocol_traced,
    run_fuzz_seed_sized_traced,
    run_fuzz_seed_traced,
    structural_violations,
    FuzzOutcome,
    FuzzProtocol,
};
pub use instrument::Instrumentation;
pub use openloop::{
    OpenLoopDemand,
    OpenLoopRecord,
    OpenLoopStation,
    StationHandle,
    StationState,
};
pub use process::{
    ProcState,
    Process,
};
pub use program::{
    MemRef,
    Op,
    Program,
};
pub use site::SchedParams;
pub use world::{
    MigrationEvent,
    PlacementPolicy,
    SimConfig,
    World,
};
