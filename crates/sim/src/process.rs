//! Simulated user processes.

use mirage_types::{
    Pid,
    SimDuration,
    SimTime,
};

use crate::program::{
    Op,
    Program,
};

/// Scheduling state of a process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcState {
    /// On the run queue (or currently running).
    Ready,
    /// Blocked in a page fault, awaiting a wake from the protocol
    /// engine ("the faulting process awaits the library's request
    /// processing by sleeping", §6.1).
    Blocked,
    /// Sleeping until the given time (yield-sleep or explicit sleep).
    Sleeping(SimTime),
    /// Exited.
    Done,
}

/// One simulated user process.
pub struct Process {
    /// The process id.
    pub pid: Pid,
    /// The program it runs.
    pub program: Box<dyn Program>,
    /// Scheduling state.
    pub state: ProcState,
    /// The operation currently being executed, with CPU time still owed.
    pub pending: Option<(Op, SimDuration)>,
    /// Value delivered by the last completed read.
    pub last_read: Option<u32>,
    /// Number of shared pages mapped, for the lazy-remap charge at
    /// dispatch (§6.2).
    pub shm_pages: usize,
    /// Total CPU time consumed (reporting).
    pub cpu_used: SimDuration,
    /// Completed memory accesses (reporting).
    pub accesses: u64,
    /// Number of times the process blocked in a fault (reporting).
    pub faults: u64,
    /// Number of yield-sleeps taken (reporting; the paper counts "2.75
    /// sleeps of 33 msecs" per cycle at Δ=2).
    pub yield_sleeps: u64,
    /// Woken from a fault sleep: runs at kernel sleep priority, ahead of
    /// pending server work, until its faulted access completes (the
    /// classic UNIX sleep-priority boost).
    pub boosted: bool,
    /// Blocked by [`Op::Park`] (waiting for open-loop work) rather than
    /// by a page fault: woken by the world's station machinery, never by
    /// the protocol engine.
    pub parked: bool,
}

impl Process {
    /// Creates a ready process.
    pub fn new(pid: Pid, program: Box<dyn Program>, shm_pages: usize) -> Self {
        Self {
            pid,
            program,
            state: ProcState::Ready,
            pending: None,
            last_read: None,
            shm_pages,
            cpu_used: SimDuration::ZERO,
            accesses: 0,
            faults: 0,
            yield_sleeps: 0,
            boosted: false,
            parked: false,
        }
    }

    /// The program's progress metric.
    pub fn metric(&self) -> u64 {
        self.program.metric()
    }
}

impl core::fmt::Debug for Process {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Process")
            .field("pid", &self.pid)
            .field("state", &self.state)
            .field("label", &self.program.label())
            .field("metric", &self.metric())
            .finish()
    }
}
