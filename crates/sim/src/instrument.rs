//! Simulation instrumentation: message counts, fault counts, and the
//! phase trace used to regenerate Table 3.

use mirage_net::{
    MsgKind,
    SizeClass,
};
use mirage_types::{
    SimDuration,
    SimTime,
    SiteId,
};

/// Message counters.
#[derive(Clone, Debug, Default)]
pub struct MsgStats {
    /// Short (header-only) messages sent.
    pub short: u64,
    /// Large (page-carrying) messages sent.
    pub large: u64,
    /// Variable-payload messages sent (delta grants).
    pub byte_sized: u64,
    /// Per-kind counts, indexed by [`MsgKind`]. A fixed array instead of
    /// a tag-keyed map: no hashing per message and a deterministic
    /// iteration order for reports.
    pub by_kind: [u64; MsgKind::COUNT],
    /// Total payload bytes placed on the wire: 1024 per large message
    /// (§7.2's page buffer), the encoded payload of each byte-sized
    /// message, 0 for headers-only. The numerator of the bytes-per-serve
    /// metric the delta-grant experiment reports.
    pub payload_bytes: u64,
    /// Payload bytes per kind — splits full-grant from delta-grant
    /// traffic.
    pub payload_by_kind: [u64; MsgKind::COUNT],
}

impl MsgStats {
    /// Total messages.
    pub fn total(&self) -> u64 {
        self.short + self.large + self.byte_sized
    }

    /// Messages of one kind.
    pub fn count(&self, kind: MsgKind) -> u64 {
        self.by_kind[kind.index()]
    }

    /// Payload bytes carried by one kind.
    pub fn payload(&self, kind: MsgKind) -> u64 {
        self.payload_by_kind[kind.index()]
    }
}

/// A phase marker in the life of one remote page fetch (Table 3 rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FetchPhase {
    /// Fault taken; request CPU starts at the using site.
    FaultTaken,
    /// Request handed to the wire.
    RequestSent,
    /// Request received at the serving site.
    RequestReceived,
    /// Server process picked the request up.
    ServerStart,
    /// Page handed to the wire at the serving site.
    PageSent,
    /// Page received at the using site.
    PageReceived,
    /// Page installed; faulting process woken.
    Installed,
}

/// One timestamped phase event.
#[derive(Clone, Copy, Debug)]
pub struct PhaseEvent {
    /// Which site recorded it.
    pub site: SiteId,
    /// Phase marker.
    pub phase: FetchPhase,
    /// When.
    pub at: SimTime,
}

/// World-level instrumentation, cheap enough to leave always on.
#[derive(Clone, Debug, Default)]
pub struct Instrumentation {
    /// Messages placed on the wire (self-deliveries never counted).
    pub msgs: MsgStats,
    /// Page faults that required a request to the library.
    pub remote_faults: u64,
    /// Remote faults attributed to the faulting site, indexed by site.
    /// The M1 migration experiment reads this to show the hot site's
    /// fault count dropping once the library moves to it.
    pub remote_faults_by_site: Vec<u64>,
    /// Page faults serviced by a colocated library without any network
    /// message.
    pub local_faults: u64,
    /// Invalidation denials (Δ window not expired).
    pub denials: u64,
    /// Reader invalidations delivered.
    pub reader_invalidations: u64,
    /// Upgrade notifications (optimization 1 hits).
    pub upgrades: u64,
    /// Total simulated CPU time spent in kernel server work, per site
    /// index.
    pub server_cpu: Vec<SimDuration>,
    /// Phase trace (enabled on demand; empty otherwise).
    pub phases: Vec<PhaseEvent>,
    /// Whether phase tracing is active.
    pub trace_phases: bool,
}

impl Instrumentation {
    /// Fresh counters for `n` sites.
    pub fn new(n: usize) -> Self {
        Self {
            server_cpu: vec![SimDuration::ZERO; n],
            remote_faults_by_site: vec![0; n],
            ..Default::default()
        }
    }

    /// Records a wire message.
    pub fn record_msg(&mut self, kind: MsgKind, size: SizeClass) {
        let bytes = match size {
            SizeClass::Short => {
                self.msgs.short += 1;
                0
            }
            SizeClass::Large => {
                self.msgs.large += 1;
                1024
            }
            SizeClass::Bytes(b) => {
                self.msgs.byte_sized += 1;
                u64::from(b)
            }
        };
        self.msgs.by_kind[kind.index()] += 1;
        self.msgs.payload_bytes += bytes;
        self.msgs.payload_by_kind[kind.index()] += bytes;
    }

    /// Records a phase event if tracing is on.
    pub fn record_phase(&mut self, site: SiteId, phase: FetchPhase, at: SimTime) {
        if self.trace_phases {
            self.phases.push(PhaseEvent { site, phase, at });
        }
    }

    /// Time between the first occurrences of two phases, if both present.
    pub fn phase_gap(&self, a: FetchPhase, b: FetchPhase) -> Option<SimDuration> {
        let ta = self.phases.iter().find(|e| e.phase == a)?.at;
        let tb = self.phases.iter().find(|e| e.phase == b)?.at;
        Some(tb.since(ta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_counters_split_by_size() {
        let mut i = Instrumentation::new(2);
        i.record_msg(MsgKind::PageRequest, SizeClass::Short);
        i.record_msg(MsgKind::PageGrant, SizeClass::Large);
        i.record_msg(MsgKind::PageGrant, SizeClass::Large);
        i.record_msg(MsgKind::PageGrantDelta, SizeClass::Bytes(37));
        assert_eq!(i.msgs.short, 1);
        assert_eq!(i.msgs.large, 2);
        assert_eq!(i.msgs.byte_sized, 1);
        assert_eq!(i.msgs.total(), 4);
        assert_eq!(i.msgs.count(MsgKind::PageGrant), 2);
        assert_eq!(i.msgs.count(MsgKind::Invalidate), 0);
        assert_eq!(i.msgs.payload_bytes, 2048 + 37);
        assert_eq!(i.msgs.payload(MsgKind::PageGrant), 2048);
        assert_eq!(i.msgs.payload(MsgKind::PageGrantDelta), 37);
        assert_eq!(i.msgs.payload(MsgKind::PageRequest), 0);
    }

    #[test]
    fn phase_trace_respects_flag() {
        let mut i = Instrumentation::new(1);
        i.record_phase(SiteId(0), FetchPhase::FaultTaken, SimTime::ZERO);
        assert!(i.phases.is_empty(), "tracing off by default");
        i.trace_phases = true;
        i.record_phase(SiteId(0), FetchPhase::FaultTaken, SimTime::from_millis(1));
        i.record_phase(SiteId(0), FetchPhase::Installed, SimTime::from_millis(28));
        assert_eq!(
            i.phase_gap(FetchPhase::FaultTaken, FetchPhase::Installed),
            Some(SimDuration::from_millis(27))
        );
    }
}
