//! One simulated Locus site: CPU scheduler, kernel server work, and the
//! protocol engine.

use std::collections::VecDeque;

use mirage_core::{
    Action,
    DriverOps,
    Event,
    InMemStore,
    PageStore,
    ProtoMsg,
    ProtocolDriver,
    RefLogEntry,
};
use mirage_net::{
    NetCosts,
    SizeClass,
};
use mirage_trace::TraceEvent;
use mirage_types::{
    Pid,
    SimDuration,
    SimTime,
    SiteId,
    TICK,
};

use crate::{
    process::{
        ProcState,
        Process,
    },
    program::Op,
};

/// Scheduler parameters (defaults model the paper's Locus/VAX system).
#[derive(Clone, Debug)]
pub struct SchedParams {
    /// Round-robin quantum. 6 ticks ≈ 100 ms: "the intersection of the
    /// two curves (Δ=6) is the system's scheduling quantum" (§7.3).
    pub quantum: SimDuration,
    /// Sleep taken by `yield()` when no other process is ready:
    /// 2 ticks ≈ 33 ms ("2.75 sleeps of 33 msecs", §7.3).
    pub yield_sleep: SimDuration,
    /// Base context-switch cost at dispatch (plus the per-page remap).
    pub context_switch: SimDuration,
    /// CPU cost of one shared-memory access (load or store with loop
    /// overhead) — calibrated so an uncontended read-write loop runs at
    /// ≈115 k accesses/s, Figure 8's peak.
    pub access_cost: SimDuration,
    /// CPU cost of the `yield()` system call itself.
    pub yield_cost: SimDuration,
    /// Kernel cost to process an expired protocol timer.
    pub timer_cost: SimDuration,
}

impl Default for SchedParams {
    fn default() -> Self {
        Self {
            quantum: TICK.scale(6),
            yield_sleep: TICK.scale(2),
            context_switch: SimDuration::from_micros(2800),
            access_cost: SimDuration(8_700), // 8.7 µs ⇒ ≈115 k accesses/s

            yield_cost: SimDuration::from_micros(200),
            timer_cost: SimDuration::from_micros(300),
        }
    }
}

/// Kernel server work awaiting a scheduling point.
#[derive(Debug)]
pub(crate) enum ServerWork {
    /// Deliver a received protocol message to the engine.
    Deliver {
        /// Originating site.
        from: SiteId,
        /// The message.
        msg: ProtoMsg,
    },
    /// Fire an engine timer.
    Timer {
        /// Timer token.
        token: u64,
    },
}

/// Effects a site hands back to the world for global application.
#[derive(Debug)]
pub(crate) enum OutEffect {
    /// Put a message on the wire at `depart`.
    Send {
        /// Destination site.
        to: SiteId,
        /// The message.
        msg: ProtoMsg,
        /// Departure time (end of the kernel work that produced it).
        depart: SimTime,
    },
    /// Schedule an engine timer.
    SetTimer {
        /// Fire time.
        at: SimTime,
        /// Token.
        token: u64,
    },
    /// A library reference-log record (§9).
    Log(RefLogEntry),
    /// A protocol trace event (observability layer; only produced when
    /// tracing is enabled in the protocol configuration).
    Trace(TraceEvent),
    /// A fault was raised and required a request to a *remote* library.
    RemoteFault,
    /// A fault was serviced entirely by a colocated library.
    LocalFault,
    /// An invalidation denial was sent (Δ unexpired).
    Denial,
    /// Kernel server CPU time consumed (for utilization accounting).
    ServerCpu(SimDuration),
}

/// One simulated site.
pub struct Site {
    /// Site id.
    pub id: SiteId,
    /// The protocol driver wrapping the real engine from `mirage-core`.
    pub driver: ProtocolDriver,
    /// Page-frame storage for this site.
    pub store: InMemStore,
    /// All processes ever spawned here.
    pub procs: Vec<Process>,
    run_queue: VecDeque<usize>,
    current: Option<usize>,
    quantum_end: SimTime,
    busy_until: SimTime,
    server_q: VecDeque<ServerWork>,
    /// When the oldest still-pending server work was enqueued; kernel
    /// work preempts a running user process at the first clock tick
    /// after this instant (classic UNIX: the wakeup sets `runrun` and
    /// the next tick reschedules).
    server_pending_since: Option<SimTime>,
    /// The current process was just woken from a fault sleep and has not
    /// yet completed the faulted access; it runs at kernel sleep
    /// priority and is immune to tick preemption until then.
    boost_shield: bool,
    sched: SchedParams,
    costs: NetCosts,
    /// Per-page remap charge at dispatch = remap_per_page × shm_pages.
    remap_per_page: SimDuration,
    /// `MIRAGE_SIM_TRACE` was set at construction. Cached: an environment
    /// lookup per server event would dominate the dispatch hot path.
    trace: bool,
}

impl Site {
    pub(crate) fn new(
        id: SiteId,
        driver: ProtocolDriver,
        sched: SchedParams,
        costs: NetCosts,
    ) -> Self {
        let remap_per_page = costs.remap_per_page;
        Self {
            id,
            driver,
            store: InMemStore::new(),
            procs: Vec::new(),
            run_queue: VecDeque::new(),
            current: None,
            quantum_end: SimTime::ZERO,
            busy_until: SimTime::ZERO,
            server_q: VecDeque::new(),
            server_pending_since: None,
            boost_shield: false,
            sched,
            costs,
            remap_per_page,
            trace: std::env::var_os("MIRAGE_SIM_TRACE").is_some(),
        }
    }

    /// Spawns a process; it joins the run queue immediately.
    pub(crate) fn spawn(&mut self, proc: Process) -> usize {
        let idx = self.procs.len();
        self.procs.push(proc);
        self.run_queue.push_back(idx);
        idx
    }

    /// Queues kernel server work (message delivery or timer).
    pub(crate) fn queue_server_work(&mut self, work: ServerWork, now: SimTime) {
        if self.server_pending_since.is_none() {
            self.server_pending_since = Some(now);
        }
        self.server_q.push_back(work);
    }

    /// The first clock-tick boundary strictly after `t`.
    fn tick_after(t: SimTime) -> SimTime {
        t.next_tick_boundary()
    }

    /// True when nothing can ever happen again at this site without
    /// external input.
    pub(crate) fn is_idle(&self) -> bool {
        self.current.is_none()
            && self.server_q.is_empty()
            && self.run_queue.is_empty()
            && !self.procs.iter().any(|p| matches!(p.state, ProcState::Sleeping(_)))
    }

    /// All user programs have exited.
    pub fn all_done(&self) -> bool {
        self.procs.iter().all(|p| p.state == ProcState::Done)
    }

    fn nearest_sleeper(&self) -> Option<SimTime> {
        self.procs
            .iter()
            .filter_map(|p| match p.state {
                ProcState::Sleeping(t) => Some(t),
                _ => None,
            })
            .min()
    }

    /// Drains the driver's pending actions into world effects and local
    /// process wakes. Sends depart at `depart` (the end of the kernel
    /// work that produced them).
    fn flush_driver(&mut self, depart: SimTime, effects: &mut Vec<OutEffect>) {
        let Site { driver, procs, run_queue, .. } = self;
        driver.flush(&mut SimOps { depart, effects, procs, run_queue });
    }

    /// The site halts. Volatile state dies: queued kernel work, the run
    /// queue, the engine's in-flight rounds and timers. Every live
    /// process freezes as `Blocked` with its interrupted operation still
    /// pending, so on restart it re-issues the access and re-faults if
    /// the page went away. Page frames and the engine's persistent
    /// tables survive (the crash model journals them).
    pub(crate) fn crash(&mut self) {
        self.driver.crash();
        self.server_q.clear();
        self.server_pending_since = None;
        self.boost_shield = false;
        self.run_queue.clear();
        self.current = None;
        for p in &mut self.procs {
            if p.state != ProcState::Done {
                p.state = ProcState::Blocked;
                p.boosted = false;
            }
        }
    }

    /// The site comes back at `now` with cold scheduler state. Frozen
    /// processes rejoin the run queue (parked workers included: they
    /// re-check their station queue and re-park if it is still empty);
    /// the engine reconstructs its retransmission obligations from the
    /// persistent tables, and the resulting sends depart immediately.
    pub(crate) fn restart(&mut self, now: SimTime, effects: &mut Vec<OutEffect>) {
        self.busy_until = now;
        self.quantum_end = now;
        self.boost_shield = false;
        for i in 0..self.procs.len() {
            if self.procs[i].state == ProcState::Blocked {
                self.procs[i].state = ProcState::Ready;
                self.procs[i].parked = false;
                self.run_queue.push_back(i);
            }
        }
        self.driver.restart(now, &mut self.store);
        self.flush_driver(now, effects);
    }

    /// Re-readies parked processes whose pid is in `pids` (an open-loop
    /// station's workers, when an arrival lands). Returns whether any
    /// process was woken. No wake boost: a fresh request is ordinary
    /// work, not a fault-sleep resumption.
    pub(crate) fn wake_parked(&mut self, pids: &[Pid]) -> bool {
        let mut woke = false;
        for i in 0..self.procs.len() {
            let p = &mut self.procs[i];
            if p.parked && p.state == ProcState::Blocked && pids.contains(&p.pid) {
                p.state = ProcState::Ready;
                p.parked = false;
                self.run_queue.push_back(i);
                woke = true;
            }
        }
        woke
    }

    /// Initiates a library-role handoff at this site (which must hold
    /// the active role for `seg`). Administrative, like [`Site::restart`]:
    /// no CPU is charged — the placement machinery models a kernel
    /// daemon acting between scheduling points.
    pub(crate) fn migrate_library(
        &mut self,
        now: SimTime,
        seg: mirage_types::SegmentId,
        to: SiteId,
        shard: Option<u32>,
        effects: &mut Vec<OutEffect>,
    ) {
        self.driver.dispatch(Event::MigrateLibrary { seg, to, shard }, now, &mut self.store);
        self.flush_driver(now, effects);
    }

    /// Advances the site at `now`. `horizon` is the next global event
    /// time: user-op batches never run past it. Returns when the site
    /// next needs attention (`None` if idle).
    pub(crate) fn step(
        &mut self,
        now: SimTime,
        horizon: SimTime,
        effects: &mut Vec<OutEffect>,
    ) -> Option<SimTime> {
        if now < self.busy_until {
            return Some(self.busy_until);
        }
        // Promote due sleepers.
        for i in 0..self.procs.len() {
            if let ProcState::Sleeping(t) = self.procs[i].state {
                if t <= now {
                    self.procs[i].state = ProcState::Ready;
                    self.run_queue.push_back(i);
                }
            }
        }
        // Quantum expiry is a scheduling point.
        if let Some(c) = self.current {
            if now >= self.quantum_end {
                self.run_queue.push_back(c);
                self.current = None;
                self.boost_shield = false;
            }
        }
        // Pending kernel work preempts the running user process at the
        // first clock tick after it became pending — unless the process
        // is still under its wake boost.
        if let (Some(c), Some(since)) = (self.current, self.server_pending_since) {
            if !self.boost_shield && now >= Self::tick_after(since) {
                self.run_queue.push_front(c);
                self.current = None;
            }
        }
        if self.current.is_none() {
            // A process just woken from a fault sleep runs first (UNIX
            // kernel sleep priority beats the network server process).
            if let Some(pos) = self.run_queue.iter().position(|&i| self.procs[i].boosted) {
                let next = self.run_queue.remove(pos).expect("position valid");
                self.procs[next].boosted = false;
                self.boost_shield = true;
                let remap = self.remap_per_page.scale(self.procs[next].shm_pages as u64);
                let dispatch = self.sched.context_switch + remap;
                self.current = Some(next);
                self.busy_until = now + dispatch;
                self.quantum_end = self.busy_until + self.sched.quantum;
                self.procs[next].cpu_used += dispatch;
                return Some(self.busy_until);
            }
            // Kernel server work has priority at ordinary scheduling
            // points.
            if let Some(work) = self.server_q.pop_front() {
                if self.server_q.is_empty() {
                    self.server_pending_since = None;
                } else {
                    self.server_pending_since = Some(now);
                }
                return Some(self.run_server_work(work, now, effects));
            }
            if let Some(next) = self.run_queue.pop_front() {
                self.boost_shield = false;
                // Dispatch: context switch plus the lazy remap of all the
                // process's shared pages (§6.2).
                let remap = self.remap_per_page.scale(self.procs[next].shm_pages as u64);
                let dispatch = self.sched.context_switch + remap;
                self.current = Some(next);
                self.busy_until = now + dispatch;
                self.quantum_end = self.busy_until + self.sched.quantum;
                self.procs[next].cpu_used += dispatch;
                return Some(self.busy_until);
            }
            // Idle; wake when the nearest sleeper is due.
            return self.nearest_sleeper();
        }
        // A user process is running: execute ops up to the horizon or
        // the quantum end, whichever is first. A horizon at the current
        // instant does not bind: same-time events cannot preempt the
        // running process (kernel work waits for a scheduling point), so
        // stopping for them would spin the event loop without progress.
        let stop = if horizon > now { horizon.min(self.quantum_end) } else { self.quantum_end };
        self.run_user_ops(now, stop, effects)
    }

    fn run_server_work(
        &mut self,
        work: ServerWork,
        now: SimTime,
        effects: &mut Vec<OutEffect>,
    ) -> SimTime {
        let (base, ev) = match work {
            ServerWork::Deliver { from, msg } => {
                let base = match &msg {
                    // Table 3: "Server process time for request* 1.5".
                    ProtoMsg::PageRequest { .. } => self.costs.server_cpu,
                    // §7.2: 1.5 ms per input interrupt to install,
                    // invalidate, or upgrade.
                    _ => self.costs.input_interrupt,
                };
                (base, Event::Deliver { from, msg })
            }
            ServerWork::Timer { token } => (self.sched.timer_cost, Event::Timer { token }),
        };
        // Run the engine, then charge `serve_processing` per page grant
        // emitted (Table 3: "Processing Time* 2" — PTE allocate, map,
        // copy to message, unmap; see the §7.1 footnote).
        if self.trace {
            if let Event::Deliver { from, ref msg } = ev {
                eprintln!(
                    "[{:?}] site{} <- {:?}: {} {:?}",
                    now,
                    self.id.0,
                    from,
                    msg.tag(),
                    msg.subject()
                );
            } else if let Event::Timer { token } = ev {
                eprintln!("[{:?}] site{} timer {}", now, self.id.0, token);
            }
        }
        let summary = self.driver.dispatch(ev, now, &mut self.store);
        if self.trace {
            for a in self.driver.pending() {
                if let Action::Send { to, msg } = a {
                    eprintln!("    site{} -> site{}: {} ", self.id.0, to.0, msg.tag());
                }
                if let Action::Wake { pid } = a {
                    eprintln!("    site{} wake {:?}", self.id.0, pid);
                }
            }
        }
        // Sends depart when the kernel work completes; the two-phase
        // driver lets us price the work from the grant count before the
        // departure timestamp exists.
        let cost = base + self.costs.serve_processing.scale(u64::from(summary.grants));
        let done = now + cost;
        self.flush_driver(done, effects);
        effects.push(OutEffect::ServerCpu(cost));
        self.busy_until = done;
        done
    }

    fn run_user_ops(
        &mut self,
        now: SimTime,
        stop: SimTime,
        effects: &mut Vec<OutEffect>,
    ) -> Option<SimTime> {
        let c = self.current.expect("user batch requires a running process");
        let mut t = now;
        loop {
            // Recompute the effective stop: pending server work preempts
            // at the next tick once the wake boost is spent.
            let mut stop = stop;
            if !self.boost_shield {
                if let Some(since) = self.server_pending_since {
                    stop = stop.min(Self::tick_after(since).max(t));
                }
            }
            if t >= stop {
                // Horizon or quantum boundary; resume at `stop` (quantum
                // expiry is then handled as a scheduling point).
                self.busy_until = t;
                return Some(stop);
            }
            let (op, remaining) = match self.procs[c].pending.take() {
                Some(p) => p,
                None => {
                    let last = self.procs[c].last_read.take();
                    let op = self.procs[c].program.step_at(t, last);
                    (op, self.op_cost(op))
                }
            };
            // Memory accesses fault on issue if the protection is
            // insufficient.
            if let Some((r, access)) = op.access() {
                if !self.store.prot(r.seg, r.page).permits(access) {
                    let pid = self.procs[c].pid;
                    self.procs[c].faults += 1;
                    // Local iff the engine will serve the fault inline:
                    // this site both resolves the library here *and*
                    // holds the active role (a stale self-hint after a
                    // handoff still pays the remote-request cost).
                    let engine = self.driver.engine();
                    let local_library = engine.resolved_library(r.seg, r.page) == self.id
                        && engine.library_active_for(r.seg, r.page);
                    let fault_cost = if local_library {
                        self.costs.local_fault
                    } else {
                        self.costs.request_cpu
                    };
                    effects.push(if local_library {
                        OutEffect::LocalFault
                    } else {
                        OutEffect::RemoteFault
                    });
                    let done = t + fault_cost;
                    self.driver.dispatch(
                        Event::Fault { pid, seg: r.seg, page: r.page, access },
                        t,
                        &mut self.store,
                    );
                    // Re-attempt the access when the process resumes.
                    self.procs[c].pending = Some((op, self.op_cost(op)));
                    self.procs[c].state = ProcState::Blocked;
                    self.procs[c].cpu_used += fault_cost;
                    self.current = None;
                    self.busy_until = done;
                    self.flush_driver(done, effects);
                    // A colocated library may have completed the whole
                    // request inline, waking us synchronously: `wake`
                    // has then already re-queued the process.
                    return Some(done);
                }
            }
            if t + remaining > stop {
                self.procs[c].pending = Some((op, remaining.saturating_sub(stop - t)));
                self.procs[c].cpu_used += stop - t;
                self.busy_until = stop;
                return Some(stop);
            }
            t += remaining;
            self.procs[c].cpu_used += remaining;
            self.boost_shield = false;
            match op {
                Op::Read(r) => {
                    let val = self
                        .store
                        .segment(r.seg)
                        .and_then(|s| s.frame(r.page))
                        .map(|f| f.load_u32(r.offset))
                        .unwrap_or_else(|| {
                            // Residency was verified at issue; the page
                            // cannot vanish while we hold the CPU.
                            unreachable!("read from non-resident page")
                        });
                    self.procs[c].last_read = Some(val);
                    self.procs[c].accesses += 1;
                }
                Op::Write(r, val) => {
                    self.store
                        .segment_mut(r.seg)
                        .and_then(|s| s.frame_mut(r.page))
                        .map(|f| f.store_u32(r.offset, val))
                        .unwrap_or_else(|| unreachable!("write to non-resident page"));
                    self.procs[c].accesses += 1;
                }
                Op::Compute(_) => {}
                Op::Yield => {
                    self.current = None;
                    self.busy_until = t;
                    if self.run_queue.is_empty() {
                        // No one else to run: Locus sleeps the yielder
                        // until the next scheduling interval.
                        self.procs[c].state = ProcState::Sleeping(t + self.sched.yield_sleep);
                        self.procs[c].yield_sleeps += 1;
                    } else {
                        self.run_queue.push_back(c);
                    }
                    return Some(t);
                }
                Op::Sleep(d) => {
                    self.current = None;
                    self.busy_until = t;
                    self.procs[c].state = ProcState::Sleeping(t + d);
                    return Some(t);
                }
                Op::Park => {
                    self.current = None;
                    self.busy_until = t;
                    self.procs[c].state = ProcState::Blocked;
                    self.procs[c].parked = true;
                    return Some(t);
                }
                Op::Exit => {
                    self.current = None;
                    self.busy_until = t;
                    self.procs[c].state = ProcState::Done;
                    return Some(t);
                }
            }
        }
    }

    fn op_cost(&self, op: Op) -> SimDuration {
        match op {
            Op::Read(_) | Op::Write(_, _) => self.sched.access_cost,
            Op::Compute(d) => d,
            Op::Yield => self.sched.yield_cost,
            Op::Sleep(_) | Op::Park | Op::Exit => SimDuration::ZERO,
        }
    }
}

impl core::fmt::Debug for Site {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Site")
            .field("id", &self.id)
            .field("procs", &self.procs.len())
            .field("run_queue", &self.run_queue)
            .field("current", &self.current)
            .field("server_q", &self.server_q.len())
            .finish()
    }
}

/// [`DriverOps`] receiver for the simulator: sends and timers become
/// [`OutEffect`]s for the world to apply globally; wakes act directly on
/// this site's process table and run queue.
struct SimOps<'a> {
    /// Departure timestamp stamped onto every send.
    depart: SimTime,
    effects: &'a mut Vec<OutEffect>,
    procs: &'a mut Vec<Process>,
    run_queue: &'a mut VecDeque<usize>,
}

impl DriverOps for SimOps<'_> {
    fn send(&mut self, to: SiteId, msg: ProtoMsg) {
        if matches!(msg, ProtoMsg::InvalidateDeny { .. }) {
            self.effects.push(OutEffect::Denial);
        }
        self.effects.push(OutEffect::Send { to, msg, depart: self.depart });
    }

    fn wake(&mut self, pid: Pid) {
        for (i, p) in self.procs.iter_mut().enumerate() {
            if p.pid == pid && p.state == ProcState::Blocked {
                p.state = ProcState::Ready;
                p.boosted = true;
                p.parked = false;
                self.run_queue.push_back(i);
            }
        }
    }

    fn set_timer(&mut self, at: SimTime, token: u64) {
        self.effects.push(OutEffect::SetTimer { at, token });
    }

    fn log(&mut self, entry: RefLogEntry) {
        self.effects.push(OutEffect::Log(entry));
    }

    fn trace(&mut self, ev: TraceEvent) {
        self.effects.push(OutEffect::Trace(ev));
    }
}

/// Size class of a message (used by the world for wire-delay lookup).
pub(crate) fn msg_size(msg: &ProtoMsg) -> SizeClass {
    use mirage_net::message::Sized2;
    msg.size_class()
}
