//! A calendar (indexed-bucket) event queue for the simulation hot loop.
//!
//! The world's event queue used to be a `BinaryHeap<Reverse<(time, seq,
//! ev)>>`: every push and pop paid `O(log n)` comparisons plus the cache
//! misses of sifting through the heap array. Discrete-event simulation
//! has much more structure than an arbitrary priority queue workload —
//! time is monotone (events are only scheduled at or after the instant
//! being processed) and events cluster tightly around the cursor — which
//! is exactly the regime calendar queues were designed for (Brown 1988):
//! hash each event by its "day" (a fixed-width time bucket) into a
//! circular array of "year" length, keep each bucket sorted, and walk
//! the cursor day by day.
//!
//! Ordering contract (identical to the heap it replaces): events pop in
//! ascending `(time, seq)` order, where `seq` is the queue-assigned push
//! sequence number — so events scheduled for the same instant pop in
//! FIFO push order. The differential test in
//! `crates/sim/tests/calendar_differential.rs` checks this against the
//! old heap over randomized schedules.

use mirage_types::SimTime;

/// Log₂ of the bucket ("day") width in simulated nanoseconds.
///
/// 2²¹ ns ≈ 2.1 ms: a few kernel-work hops or one short wire transit per
/// day, so buckets stay nearly empty and the cursor never scans far.
const DAY_SHIFT: u32 = 21;

/// Number of buckets (one "year" of days). Power of two for mask
/// indexing; 512 days ≈ 1.07 s of simulated time per rotation.
const DAYS: usize = 512;

/// An indexed bucket queue ordered by `(SimTime, push seq)`.
///
/// Generic over the payload so tests can drive it with plain markers;
/// the world instantiates it with its event type.
#[derive(Debug)]
pub struct CalendarQueue<T> {
    /// `buckets[day & (DAYS-1)]`, each sorted ascending by `(time, seq)`.
    buckets: Vec<Vec<(SimTime, u64, T)>>,
    /// Total queued events.
    len: usize,
    /// Monotone push counter: the FIFO tie-break within an instant.
    seq: u64,
    /// Lower bound on the day of the earliest queued event. May move
    /// backwards when a push lands before the cursor (the world peeks
    /// ahead for its horizon, then schedules at `now`).
    cursor: u64,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// An empty queue with all buckets preallocated.
    pub fn new() -> Self {
        Self { buckets: (0..DAYS).map(|_| Vec::new()).collect(), len: 0, seq: 0, cursor: 0 }
    }

    /// Queued event count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The day (bucket index in absolute time) of an instant.
    #[inline]
    fn day(at: SimTime) -> u64 {
        at.0 >> DAY_SHIFT
    }

    /// Schedules `item` at `at`; returns the sequence number assigned.
    pub fn push(&mut self, at: SimTime, item: T) -> u64 {
        self.seq += 1;
        let seq = self.seq;
        let day = Self::day(at);
        if day < self.cursor {
            self.cursor = day;
        }
        let bucket = &mut self.buckets[day as usize & (DAYS - 1)];
        // Insert keeping the bucket sorted by (time, seq). `seq` is
        // monotone, so inserting after every entry with time <= at keeps
        // equal-time entries in FIFO order.
        let idx = bucket.partition_point(|e| e.0 <= at);
        bucket.insert(idx, (at, seq, item));
        self.len += 1;
        seq
    }

    /// Advances the cursor to the day of the earliest event and returns
    /// its bucket index, or `None` when empty.
    fn seek(&mut self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        for _ in 0..DAYS {
            let idx = self.cursor as usize & (DAYS - 1);
            if let Some(&(t, _, _)) = self.buckets[idx].first() {
                // The bucket is sorted, so its front is its minimum; a
                // front from this day is the global minimum (every other
                // bucket holds only later days once this day is current).
                if Self::day(t) == self.cursor {
                    return Some(idx);
                }
            }
            self.cursor += 1;
        }
        // A whole empty year: jump straight to the earliest event.
        let min_day = self
            .buckets
            .iter()
            .filter_map(|b| b.first())
            .map(|&(t, _, _)| Self::day(t))
            .min()
            .expect("len > 0");
        self.cursor = min_day;
        Some(min_day as usize & (DAYS - 1))
    }

    /// The `(time, seq)` of the next event to pop, without removing it.
    pub fn peek(&mut self) -> Option<(SimTime, u64)> {
        let idx = self.seek()?;
        self.buckets[idx].first().map(|&(t, s, _)| (t, s))
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        let idx = self.seek()?;
        let ev = self.buckets[idx].remove(0);
        self.len -= 1;
        Some(ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_fifo_order() {
        let mut q = CalendarQueue::new();
        q.push(SimTime(50), "b");
        q.push(SimTime(10), "a");
        q.push(SimTime(50), "c");
        assert_eq!(q.peek(), Some((SimTime(10), 2)));
        assert_eq!(q.pop().map(|(t, _, v)| (t, v)), Some((SimTime(10), "a")));
        // Same instant: FIFO by push order.
        assert_eq!(q.pop().map(|(t, _, v)| (t, v)), Some((SimTime(50), "b")));
        assert_eq!(q.pop().map(|(t, _, v)| (t, v)), Some((SimTime(50), "c")));
        assert_eq!(q.pop().map(|(t, _, v)| (t, v)), None);
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_cross_year_boundaries() {
        let mut q = CalendarQueue::new();
        // > one year (512 days of 2^21 ns ≈ 1.07 s) ahead, and two
        // events one year apart that share a bucket.
        let far = SimTime(600 * (1 << DAY_SHIFT));
        let very_far = SimTime((600 + DAYS as u64) * (1 << DAY_SHIFT));
        q.push(very_far, 2u32);
        q.push(far, 1u32);
        q.push(SimTime(5), 0u32);
        assert_eq!(q.pop().map(|(_, _, v)| v), Some(0));
        assert_eq!(q.pop().map(|(_, _, v)| v), Some(1));
        assert_eq!(q.pop().map(|(_, _, v)| v), Some(2));
    }

    #[test]
    fn push_behind_peeked_cursor_is_found() {
        let mut q = CalendarQueue::new();
        let far = SimTime(100 * (1 << DAY_SHIFT));
        q.push(far, "far");
        // Peeking advances the cursor to the far event's day...
        assert_eq!(q.peek(), Some((far, 1)));
        // ...but the world may then schedule at `now`, long before it.
        q.push(SimTime(7), "near");
        assert_eq!(q.pop().map(|(_, _, v)| v), Some("near"));
        assert_eq!(q.pop().map(|(_, _, v)| v), Some("far"));
    }
}
