//! User programs as resumable operation streams.
//!
//! A [`Program`] is the simulator's equivalent of application code: each
//! call to [`Program::step`] returns the next [`Op`] the process
//! performs. Memory reads deliver their value to the *next* `step` call,
//! letting programs branch on shared data exactly as the paper's C
//! programs do (Figure 4).

use mirage_types::{
    Access,
    PageNum,
    SegmentId,
    SimDuration,
    SimTime,
};

/// A shared-memory location: (segment, page, byte offset).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemRef {
    /// The segment.
    pub seg: SegmentId,
    /// The page within the segment.
    pub page: PageNum,
    /// Word-aligned byte offset within the page.
    pub offset: usize,
}

impl MemRef {
    /// Builds a reference.
    pub fn new(seg: SegmentId, page: PageNum, offset: usize) -> Self {
        Self { seg, page, offset }
    }
}

/// One operation performed by a user process.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Op {
    /// Load a `u32` from shared memory. Faults if no readable copy is
    /// resident. The value is passed to the next [`Program::step`] call.
    Read(MemRef),
    /// Store a `u32` to shared memory. Faults if no writable copy is
    /// resident.
    Write(MemRef, u32),
    /// Burn CPU for the given duration (models private computation).
    Compute(SimDuration),
    /// The `yield()` system call the paper added to Locus (§7.2): give up
    /// the remainder of the quantum. If another process is ready it runs
    /// next; otherwise the caller sleeps for the yield interval.
    Yield,
    /// Sleep for the given duration.
    Sleep(SimDuration),
    /// Block until external work arrives (open-loop request queues):
    /// the process leaves the run queue with nothing pending and is
    /// re-readied by the world when its station injects a request. A
    /// program must only park while more arrivals are scheduled —
    /// a parked process with no future arrival is stuck forever.
    Park,
    /// Terminate the process.
    Exit,
}

impl Op {
    /// The access class of a memory op, if it is one.
    pub fn access(&self) -> Option<(MemRef, Access)> {
        match self {
            Op::Read(r) => Some((*r, Access::Read)),
            Op::Write(r, _) => Some((*r, Access::Write)),
            _ => None,
        }
    }
}

/// A resumable user program.
pub trait Program: Send {
    /// Produces the next operation. `last_read` carries the value loaded
    /// by the immediately preceding [`Op::Read`], if any.
    fn step(&mut self, last_read: Option<u32>) -> Op;

    /// Like [`Program::step`], but with the current simulated time. The
    /// scheduler always calls this entry point; the default forwards to
    /// `step`, so ordinary programs never see the clock. Programs that
    /// timestamp request lifecycles (the open-loop workers) override
    /// this and leave `step` unreachable.
    fn step_at(&mut self, _now: SimTime, last_read: Option<u32>) -> Op {
        self.step(last_read)
    }

    /// A monotone progress metric the harness reports (cycles completed,
    /// iterations done — program-defined).
    fn metric(&self) -> u64 {
        0
    }

    /// Short label for reports.
    fn label(&self) -> &str {
        "program"
    }
}

/// A program built from a fixed list of ops (for tests).
#[derive(Debug)]
pub struct Script {
    ops: Vec<Op>,
    next: usize,
    done: u64,
}

impl Script {
    /// Builds a program that performs `ops` in order, then exits.
    pub fn new(ops: Vec<Op>) -> Self {
        Self { ops, next: 0, done: 0 }
    }
}

impl Program for Script {
    fn step(&mut self, _last_read: Option<u32>) -> Op {
        if self.next >= self.ops.len() {
            return Op::Exit;
        }
        let op = self.ops[self.next];
        self.next += 1;
        self.done += 1;
        op
    }

    fn metric(&self) -> u64 {
        self.done
    }

    fn label(&self) -> &str {
        "script"
    }
}

#[cfg(test)]
mod tests {
    use mirage_types::SiteId;

    use super::*;

    #[test]
    fn script_replays_then_exits() {
        let seg = SegmentId::new(SiteId(0), 1);
        let r = MemRef::new(seg, PageNum(0), 0);
        let mut s = Script::new(vec![Op::Write(r, 1), Op::Read(r)]);
        assert_eq!(s.step(None), Op::Write(r, 1));
        assert_eq!(s.step(None), Op::Read(r));
        assert_eq!(s.step(Some(1)), Op::Exit);
        assert_eq!(s.metric(), 2);
    }

    #[test]
    fn op_access_classification() {
        let seg = SegmentId::new(SiteId(0), 1);
        let r = MemRef::new(seg, PageNum(0), 4);
        assert_eq!(Op::Read(r).access(), Some((r, Access::Read)));
        assert_eq!(Op::Write(r, 9).access(), Some((r, Access::Write)));
        assert_eq!(Op::Yield.access(), None);
        assert_eq!(Op::Compute(SimDuration::ZERO).access(), None);
    }
}
