//! Open-loop request stations: scheduled page demands injected by the
//! world event loop, independent of completion.
//!
//! Every workload built on the [`Program`] trait alone is
//! closed-loop — the next operation issues only after the previous one
//! completes, so offered load collapses to match service capacity and
//! tail latency never shows saturation. A station breaks that coupling:
//! its demand schedule is fixed up front (arrival times drawn from a
//! seeded arrival process in `mirage-workloads::openloop`), the world
//! injects each demand into the station's queue at its scheduled
//! sim-time whether or not earlier demands have finished, and one or
//! more worker processes drain the queue through the ordinary
//! fault/driver path. Each request carries a lifecycle record —
//! arrival, submit, grant, queue depth at submit — that the harness
//! converts into `mirage-trace` latency records after the run.

use std::{
    collections::VecDeque,
    sync::{
        Arc,
        Mutex,
    },
};

use mirage_types::{
    Access,
    SimTime,
};

use crate::program::{
    MemRef,
    Op,
    Program,
};

/// One scheduled page demand.
#[derive(Clone, Copy, Debug)]
pub struct OpenLoopDemand {
    /// The location touched.
    pub r: MemRef,
    /// Read or write.
    pub access: Access,
    /// Value stored on writes (ignored for reads).
    pub value: u32,
}

/// The lifecycle record of one request, filled in as it progresses.
#[derive(Clone, Copy, Debug)]
pub struct OpenLoopRecord {
    /// The demand itself.
    pub demand: OpenLoopDemand,
    /// Scheduled arrival time (fixed at install).
    pub arrival: SimTime,
    /// When a worker dequeued it and issued the access.
    pub submit: Option<SimTime>,
    /// When the access completed (fault serviced, value delivered).
    pub grant: Option<SimTime>,
    /// Requests still waiting in the queue at submit.
    pub depth_at_submit: u32,
}

/// Shared station state: the pending-request queue and every record.
///
/// Shared `Arc<Mutex<…>>`-style between the world (which injects
/// arrivals), the worker programs (which dequeue, stamp, and issue),
/// and the harness (which reads the records afterwards). Worlds are
/// single-threaded, so the mutex is coordination-free in practice.
#[derive(Debug)]
pub struct StationState {
    /// Per-request records, indexed by arrival order.
    pub records: Vec<OpenLoopRecord>,
    /// Indices of injected-but-not-yet-submitted requests, FIFO.
    queue: VecDeque<usize>,
    /// How many arrivals the world has injected so far.
    injected: usize,
}

impl StationState {
    /// Every scheduled arrival has been injected.
    fn exhausted(&self) -> bool {
        self.injected == self.records.len()
    }

    /// Completed request count (records with a grant time).
    pub fn completed(&self) -> usize {
        self.records.iter().filter(|r| r.grant.is_some()).count()
    }
}

/// Handle to a station's shared state.
pub type StationHandle = Arc<Mutex<StationState>>;

/// Configuration for one open-loop station, ready to install.
#[derive(Debug)]
pub struct OpenLoopStation {
    /// The site whose workers serve this station's queue.
    pub site: usize,
    /// Scheduled demands, ascending by arrival time.
    pub demands: Vec<(SimTime, OpenLoopDemand)>,
    /// How many worker processes drain the queue (FCFS with `workers`
    /// servers; 1 preserves program order of the demands).
    pub workers: usize,
    /// `shm_pages` for the workers' dispatch remap charge.
    pub shm_pages: usize,
}

/// Builds the shared state and worker programs for a station.
/// Called by `World::install_open_loop`.
pub(crate) fn build_station(
    st: &OpenLoopStation,
) -> (StationHandle, Vec<OpenLoopWorker>, Vec<SimTime>) {
    assert!(st.workers >= 1, "a station needs at least one worker");
    assert!(
        st.demands.windows(2).all(|w| w[0].0 <= w[1].0),
        "open-loop demands must be sorted by arrival time"
    );
    let records = st
        .demands
        .iter()
        .map(|&(at, demand)| OpenLoopRecord {
            demand,
            arrival: at,
            submit: None,
            grant: None,
            depth_at_submit: 0,
        })
        .collect();
    let state: StationHandle =
        Arc::new(Mutex::new(StationState { records, queue: VecDeque::new(), injected: 0 }));
    let workers = (0..st.workers).map(|_| OpenLoopWorker::new(Arc::clone(&state))).collect();
    let arrivals = st.demands.iter().map(|&(at, _)| at).collect();
    (state, workers, arrivals)
}

/// Injects arrival `i` into the station queue (world event handler).
pub(crate) fn inject(state: &StationHandle, i: usize) {
    let mut s = state.lock().expect("station poisoned");
    debug_assert_eq!(s.injected, i, "arrivals inject in schedule order");
    s.queue.push_back(i);
    s.injected += 1;
}

/// A worker process: dequeues requests FIFO, stamps submit/grant times,
/// and parks when the queue is empty (the world wakes it on the next
/// arrival). Exits once the schedule is exhausted and the queue drained.
pub struct OpenLoopWorker {
    station: StationHandle,
    in_flight: Option<usize>,
    completed: u64,
}

impl OpenLoopWorker {
    fn new(station: StationHandle) -> Self {
        Self { station, in_flight: None, completed: 0 }
    }
}

impl Program for OpenLoopWorker {
    fn step(&mut self, _last_read: Option<u32>) -> Op {
        unreachable!("open-loop workers are driven through step_at")
    }

    fn step_at(&mut self, now: SimTime, _last_read: Option<u32>) -> Op {
        let mut s = self.station.lock().expect("station poisoned");
        // The previous step's access has completed by the time the
        // scheduler asks for another op: stamp its grant.
        if let Some(i) = self.in_flight.take() {
            s.records[i].grant = Some(now);
            self.completed += 1;
        }
        match s.queue.pop_front() {
            Some(i) => {
                s.records[i].submit = Some(now);
                s.records[i].depth_at_submit = s.queue.len() as u32;
                self.in_flight = Some(i);
                let d = s.records[i].demand;
                match d.access {
                    Access::Write => Op::Write(d.r, d.value),
                    Access::Read => Op::Read(d.r),
                }
            }
            // Parking is only safe while another arrival is scheduled
            // to wake us; once the schedule is exhausted, exit.
            None if s.exhausted() => Op::Exit,
            None => Op::Park,
        }
    }

    fn metric(&self) -> u64 {
        self.completed
    }

    fn label(&self) -> &str {
        "openloop-worker"
    }
}
