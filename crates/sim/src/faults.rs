//! The simulator's interpretation of a [`FaultPlan`].
//!
//! `mirage-net` describes faults ([`FaultPlan`] is a pure, replayable
//! description); this module *executes* them. `FaultState` holds the
//! seeded fault PRNG, per-site incarnation numbers, per-site
//! [`CircuitTable`]s, and the held-back out-of-order messages per
//! directed link. The [`crate::world::World`] consults it on every send
//! and every arrival when (and only when) an active plan is installed —
//! with no plan, or with `FaultPlan::none()`, none of this code runs and
//! the simulation is byte-identical to a build without the layer.
//!
//! Division of labour with the protocol:
//!
//! * **Sequencing faults** (reordering, duplicate deliveries, declared
//!   losses) are absorbed *here*, at the transport: gaps hold messages
//!   back until they fill or `gap_wait` expires, duplicates are
//!   discarded by verdict. This models Locus virtual circuits doing
//!   their job over a lossy wire.
//! * **Lost messages and crashed sites** are *not* hidden: the engine's
//!   timeout/retry machinery (`ProtocolConfig::retry`) must recover.
//!   The fuzz harness runs with retries enabled and asserts coherence
//!   and convergence after the storm.

use std::collections::BTreeMap;

use mirage_core::ProtoMsg;
use mirage_net::{
    CircuitTable,
    FaultPlan,
    Verdict,
};
use mirage_types::{
    Prng,
    SimDuration,
    SimTime,
    SiteId,
};

/// Out-of-band circuit stamp carried by every arrival in fault mode.
///
/// The sequence number drives the receiver's [`Verdict`]; the
/// incarnation pair severs circuits across crashes — a message stamped
/// under an old incarnation of either endpoint is discarded on
/// delivery, exactly as Locus discards traffic from a torn-down
/// circuit after a topology change.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Stamp {
    /// Circuit sequence number on the directed link.
    pub seq: u64,
    /// Sender incarnation at send time.
    pub src_inc: u32,
    /// Receiver incarnation at send time.
    pub dst_inc: u32,
}

/// What the fault layer did to the traffic (reporting / assertions).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages silently dropped by the plan.
    pub dropped: u64,
    /// Duplicate copies injected by the plan.
    pub duplicated: u64,
    /// Duplicates discarded at the receiver (injected or retransmitted).
    pub dup_discarded: u64,
    /// Messages given extra wire latency.
    pub delayed: u64,
    /// Out-of-order messages held back awaiting a gap fill.
    pub held_back: u64,
    /// Gaps declared lost after `gap_wait` (circuit advanced past them).
    pub gaps_declared: u64,
    /// Messages discarded for a stale incarnation or a down receiver.
    pub stale_dropped: u64,
    /// Site crashes executed.
    pub crashes: u64,
    /// Site restarts executed.
    pub restarts: u64,
}

/// Live fault-execution state for one [`crate::world::World`].
pub(crate) struct FaultState {
    /// The installed plan.
    pub(crate) plan: FaultPlan,
    /// The fault-side PRNG (seeded from the plan; independent of any
    /// workload randomness).
    rng: Prng,
    /// Per-site incarnation number, bumped at each crash.
    pub(crate) incarnation: Vec<u32>,
    /// Per-site "currently crashed" flag.
    pub(crate) down: Vec<bool>,
    /// Per-site circuit tables (site *i* stamps its sends and classifies
    /// its receipts through `tables[i]`).
    pub(crate) tables: Vec<CircuitTable>,
    /// Held-back out-of-order messages per directed link `(src, dst)`,
    /// ordered by sequence number.
    pub(crate) holdback: BTreeMap<(usize, usize), BTreeMap<u64, ProtoMsg>>,
    /// Counters.
    pub(crate) stats: FaultStats,
    /// `MIRAGE_FAULT_TRACE` was set: narrate every fault decision to
    /// stderr (the replay aid printed by the fuzz harness on failure).
    pub(crate) trace: bool,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, n_sites: usize) -> Self {
        let rng = Prng::new(plan.seed);
        Self {
            plan,
            rng,
            incarnation: vec![0; n_sites],
            down: vec![false; n_sites],
            tables: (0..n_sites).map(|_| CircuitTable::new()).collect(),
            holdback: BTreeMap::new(),
            stats: FaultStats::default(),
            trace: std::env::var_os("MIRAGE_FAULT_TRACE").is_some(),
        }
    }

    /// Bernoulli roll at `pm` parts per 10 000. Consumes randomness only
    /// for a non-zero rate, so quiet links don't perturb the stream.
    fn roll(&mut self, pm: u32) -> bool {
        pm > 0 && self.rng.below(10_000) < u64::from(pm)
    }

    /// Stamps one outgoing message on the directed link and decides its
    /// fate. Returns `None` if the plan drops it; otherwise the stamp,
    /// the (possibly delayed) arrival time, and an optional arrival time
    /// for an injected duplicate.
    pub(crate) fn outbound(
        &mut self,
        src: usize,
        dst: usize,
        now: SimTime,
        base_arrive: SimTime,
    ) -> Option<(Stamp, SimTime, Option<SimTime>)> {
        let stamp = Stamp {
            seq: self.tables[src].stamp_seq(SiteId(dst as u16)),
            src_inc: self.incarnation[src],
            dst_inc: self.incarnation[dst],
        };
        // After the storm horizon the network is perfect: the run ends
        // with a clean window so convergence (not mere survival) is
        // what the harness asserts.
        if now > self.plan.horizon {
            return Some((stamp, base_arrive, None));
        }
        let lf = self.plan.link(SiteId(src as u16), SiteId(dst as u16));
        if self.roll(lf.drop_pm) {
            self.stats.dropped += 1;
            if self.trace {
                eprintln!("[fault] drop {}->{} seq {}", src, dst, stamp.seq);
            }
            return None;
        }
        let mut arrive = base_arrive;
        if self.roll(lf.delay_pm) {
            let extra = SimDuration(1 + self.rng.below(lf.max_delay.0.max(1)));
            arrive += extra;
            self.stats.delayed += 1;
            if self.trace {
                eprintln!("[fault] delay {}->{} seq {} +{:?}", src, dst, stamp.seq, extra);
            }
        }
        let dup = if self.roll(lf.dup_pm) {
            self.stats.duplicated += 1;
            let extra = SimDuration(1 + self.rng.below(lf.max_delay.0.max(1_000_000)));
            if self.trace {
                eprintln!("[fault] dup {}->{} seq {}", src, dst, stamp.seq);
            }
            Some(base_arrive + extra)
        } else {
            None
        };
        Some((stamp, arrive, dup))
    }

    /// Classifies an arrival that already passed the down/incarnation
    /// screens.
    pub(crate) fn check(&mut self, src: SiteId, dst: usize, seq: u64) -> Verdict {
        self.tables[dst].check_seq(src, seq)
    }

    /// Severs every circuit of `site` at a crash: both of the site's own
    /// directions restart from zero and every peer forgets the site, so
    /// the restarted incarnation begins on fresh circuits. Held-back
    /// traffic touching the site belongs to the dead incarnation.
    pub(crate) fn sever(&mut self, site: usize) {
        let sid = SiteId(site as u16);
        self.tables[site] = CircuitTable::new();
        for (j, t) in self.tables.iter_mut().enumerate() {
            if j != site {
                t.reset_peer(sid);
            }
        }
        self.holdback.retain(|&(s, d), _| s != site && d != site);
    }
}

impl core::fmt::Debug for FaultState {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FaultState")
            .field("down", &self.down)
            .field("incarnation", &self.incarnation)
            .field("stats", &self.stats)
            .finish()
    }
}
