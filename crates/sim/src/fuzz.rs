//! Schedule-fuzzing coherence scenarios.
//!
//! One seed drives everything: the world shape (sites, pages,
//! processes), the workload each process runs, and the [`FaultPlan`]
//! (drop/duplicate/delay rates plus site crash/restart times). The
//! scenario runs the storm, lets the network go perfect after the
//! plan's horizon, drives every program to completion, and then checks
//! the two properties the paper's §5.0 coherence definition demands at
//! quiescence:
//!
//! 1. the structural invariants of [`mirage_core::invariants::check_page`]
//!    (single writer, no writer/reader coexistence, byte-identical
//!    copies, page not lost), and
//! 2. **write visibility**: each process wrote a monotone series of
//!    values to its own private word of each page; the final resident
//!    copy must hold exactly the last value each process wrote.
//!
//! The same entry point backs the `fuzz_coherence` integration test
//! (bounded seed sweep in CI) and the `fault_storm` binary in
//! `mirage-bench` (thousands of seeds, replay of a single failing
//! seed). Everything is deterministic: a failing seed replays
//! identically, and `MIRAGE_FAULT_TRACE=1` narrates the fault schedule.

use std::sync::{
    Arc,
    Mutex,
};

use mirage_core::{
    invariants,
    DeltaPolicy,
    PageStore,
    RetryPolicy,
};
use mirage_net::{
    CrashEvent,
    FaultPlan,
    LinkFaults,
};
use mirage_types::{
    Delta,
    PageNum,
    PageProt,
    Pid,
    Prng,
    SegmentId,
    SimDuration,
    SimTime,
    SiteId,
};

use crate::{
    faults::FaultStats,
    process::ProcState,
    program::{
        MemRef,
        Op,
        Program,
    },
    world::{
        MigrationEvent,
        PlacementPolicy,
        SimConfig,
        World,
    },
};

/// What one fuzz scenario concluded.
#[derive(Debug)]
pub struct FuzzOutcome {
    /// The driving seed.
    pub seed: u64,
    /// Every program ran to completion before the deadline.
    pub completed: bool,
    /// Human-readable coherence violations found at quiescence.
    pub violations: Vec<String>,
    /// Processes that never finished (empty when `completed`).
    pub stuck: Vec<(Pid, ProcState)>,
    /// Fault-layer counters (`None` if the seed rolled an inactive plan).
    pub stats: Option<FaultStats>,
    /// Total completed shared-memory accesses (sanity: the workload ran).
    pub accesses: u64,
}

impl FuzzOutcome {
    /// The scenario passed: everything completed and nothing diverged.
    pub fn is_ok(&self) -> bool {
        self.completed && self.violations.is_empty()
    }

    /// One-line failure description (for harness output).
    pub fn describe(&self) -> String {
        if self.is_ok() {
            return format!("seed {:#x}: ok ({} accesses)", self.seed, self.accesses);
        }
        let mut s = format!("seed {:#x}: FAILED", self.seed);
        if !self.completed {
            s.push_str(&format!(" — stuck pids {:?}", self.stuck));
        }
        for v in &self.violations {
            s.push_str(&format!("\n  violation: {v}"));
        }
        s
    }
}

/// A randomized workload process: writes a monotone value series to its
/// own word of random pages, reads other processes' words, and mixes in
/// yields and compute bursts so the scheduler states get shuffled too.
struct FuzzProgram {
    seg: SegmentId,
    pages: u64,
    /// This process's private word offset (no other process writes it).
    offset: usize,
    /// Bound on read offsets: one word per process in the world.
    total_procs: u64,
    rng: Prng,
    ops_left: u32,
    done: u64,
    next_val: u32,
    /// Last value issued per page, shared with the harness for the
    /// post-run visibility check.
    expected: Arc<Mutex<Vec<Option<u32>>>>,
}

impl Program for FuzzProgram {
    fn step(&mut self, _last_read: Option<u32>) -> Op {
        if self.ops_left == 0 {
            return Op::Exit;
        }
        self.ops_left -= 1;
        self.done += 1;
        let page = PageNum(self.rng.below(self.pages) as u32);
        match self.rng.below(10) {
            0 => Op::Yield,
            1 => Op::Compute(SimDuration::from_micros(50 + self.rng.below(3_000))),
            2..=5 => {
                let off = self.rng.below(self.total_procs) as usize * 4;
                Op::Read(MemRef::new(self.seg, page, off))
            }
            _ => {
                let v = self.next_val;
                self.next_val += 1;
                self.expected.lock().expect("poisoned")[page.index()] = Some(v);
                Op::Write(MemRef::new(self.seg, page, self.offset), v)
            }
        }
    }

    fn metric(&self) -> u64 {
        self.done
    }

    fn label(&self) -> &str {
        "fuzz"
    }
}

/// The value of `(page, offset)` in the authoritative resident copy:
/// the writer's copy if one exists, else any reader's (they are
/// byte-identical when the invariants hold).
fn resident_value(world: &World, seg: SegmentId, page: PageNum, offset: usize) -> Option<u32> {
    let mut fallback = None;
    for s in &world.sites {
        let val =
            || s.store.segment(seg).and_then(|ls| ls.frame(page)).map(|f| f.load_u32(offset));
        match s.store.prot(seg, page) {
            PageProt::ReadWrite => return val(),
            PageProt::Read => {
                if fallback.is_none() {
                    fallback = val();
                }
            }
            PageProt::None => {}
        }
    }
    fallback
}

/// Builds and runs the scenario for one seed. Deterministic: the same
/// seed always produces the same world, workload, fault schedule, and
/// outcome.
pub fn run_fuzz_seed(seed: u64) -> FuzzOutcome {
    run_fuzz_seed_inner(seed, false, false, false).0
}

/// [`run_fuzz_seed`] with protocol tracing enabled: the same scenario
/// (tracing never changes simulated behaviour) plus the collected event
/// trace. The offline trace checker ([`mirage_trace::check()`]) runs over
/// the trace and its violations are merged into the outcome, so the
/// structural `check_page` oracle and the causal trace oracle cross-check
/// each other on every seed.
pub fn run_fuzz_seed_traced(seed: u64) -> (FuzzOutcome, Vec<mirage_trace::TraceEvent>) {
    run_fuzz_seed_inner(seed, true, false, false)
}

/// [`run_fuzz_seed`] with sub-page delta grants enabled. The flag draws
/// nothing from the PRNG, so the world shape, workload, and fault plan
/// are exactly the classic seed's — the only difference is the wire
/// form of the grants, which is what the storm then attacks: deltas
/// dropped, duplicated, delayed, and granters crashed mid-retransmit
/// (clearing their volatile shadow bases) must all converge to the same
/// coherent quiescent state the full-grant run reaches.
pub fn run_fuzz_seed_delta(seed: u64) -> FuzzOutcome {
    run_fuzz_seed_inner(seed, false, false, true).0
}

/// [`run_fuzz_seed_delta`] with tracing: the causal trace checker
/// (including the delta tag-fidelity rule — a patched page must hash to
/// the exact content tag the granter shipped) cross-checks the
/// structural oracle on every seed.
pub fn run_fuzz_seed_delta_traced(seed: u64) -> (FuzzOutcome, Vec<mirage_trace::TraceEvent>) {
    run_fuzz_seed_inner(seed, true, false, true)
}

/// [`run_fuzz_seed`] with a seeded manual library-migration schedule
/// layered *under* the fault storm: 1–3 handoffs at random times while
/// messages drop, duplicate, reorder, and sites crash. The schedule is
/// drawn from its own PRNG stream, so the world shape, workload, and
/// fault plan stay identical to the non-migrating run of the same seed.
pub fn run_fuzz_seed_migrating(seed: u64) -> FuzzOutcome {
    run_fuzz_seed_inner(seed, false, true, false).0
}

/// [`run_fuzz_seed_migrating`] with tracing plus the epoch-aware trace
/// checker merged into the outcome.
pub fn run_fuzz_seed_migrating_traced(
    seed: u64,
) -> (FuzzOutcome, Vec<mirage_trace::TraceEvent>) {
    run_fuzz_seed_inner(seed, true, true, false)
}

/// [`run_fuzz_seed`] over a planet-scale world: 65–160 sites (so reader
/// masks run chunked and the circuit table runs paged), a multi-page
/// segment whose library is split into page-range shards, and a
/// shard-aware migration schedule layered *under* the fault storm. A
/// separate entry point with its own PRNG stream, so the classic seeds
/// keep their exact historical scenarios.
pub fn run_fuzz_seed_large(seed: u64) -> FuzzOutcome {
    run_fuzz_seed_large_inner(seed, false, None).0
}

/// [`run_fuzz_seed_large`] with tracing and the epoch-aware trace
/// checker merged into the outcome.
pub fn run_fuzz_seed_large_traced(seed: u64) -> (FuzzOutcome, Vec<mirage_trace::TraceEvent>) {
    run_fuzz_seed_large_inner(seed, true, None)
}

/// [`run_fuzz_seed_large_traced`] at an explicit world size. The CI
/// smoke drives one traced seed through a 1,024-site world with both
/// oracles; everything but the site count is drawn as in the random
/// large scenario.
pub fn run_fuzz_seed_sized_traced(
    seed: u64,
    n_sites: usize,
) -> (FuzzOutcome, Vec<mirage_trace::TraceEvent>) {
    run_fuzz_seed_large_inner(seed, true, Some(n_sites))
}

fn run_fuzz_seed_large_inner(
    seed: u64,
    traced: bool,
    sites_override: Option<usize>,
) -> (FuzzOutcome, Vec<mirage_trace::TraceEvent>) {
    let mut rng = Prng::new(seed ^ 0x001A_26E5_17E5);
    let n_sites = sites_override.unwrap_or_else(|| 65 + rng.below(96) as usize); // 65..=160
    let pages = 4 + rng.below(5); // 4..=8

    let mut cfg = SimConfig::default();
    cfg.protocol.delta = DeltaPolicy::Uniform(Delta(rng.below(3) as u32));
    cfg.protocol.retry = Some(RetryPolicy::default());
    // 1–3 pages per shard over 4–8 pages: always at least two shards,
    // so role handoffs and forwarding stubs are range-scoped.
    cfg.protocol.shard_pages = 1 + rng.below(3) as u32;
    let shard_count = (pages as u32).div_ceil(cfg.protocol.shard_pages).max(1);

    let mut world = World::new(n_sites, cfg);
    if traced {
        world.enable_tracing();
    }
    let seg = world.create_segment(0, pages as usize);

    // The workload lives on a handful of *active* sites scattered over
    // the whole id range — a fleet where most machines are quiet. Site 0
    // (the library home) always participates; at least one active site
    // has an id past 63, so chunked reader masks actually circulate.
    let mut active: Vec<usize> = vec![0];
    let extras = 2 + rng.below(3) as usize; // 2..=4 more sites
    while active.len() < 1 + extras {
        let s = rng.below(n_sites as u64) as usize;
        if !active.contains(&s) {
            active.push(s);
        }
    }
    if !active.iter().any(|&s| s > 63) {
        let s = 64 + rng.below((n_sites - 64) as u64) as usize;
        if !active.contains(&s) {
            active.push(s);
        }
    }

    let horizon_ms = 1_500 + rng.below(2_500);
    let horizon = SimTime::ZERO + SimDuration::from_millis(horizon_ms);
    let mut plan = FaultPlan::none();
    plan.seed = seed;
    plan.horizon = horizon;
    plan.gap_wait = SimDuration::from_millis(25);
    plan.default_link = LinkFaults {
        drop_pm: rng.below(300) as u32,
        dup_pm: rng.below(200) as u32,
        delay_pm: rng.below(1_500) as u32,
        max_delay: SimDuration::from_millis(1 + rng.below(30)),
    };
    // Crashes hit *active* sites (crashing an idle spectator exercises
    // nothing), including the library home with its sharded roles.
    let mut candidates = active.clone();
    for _ in 0..rng.below(3) {
        let site = candidates.swap_remove(rng.below(candidates.len() as u64) as usize);
        let at = SimTime::ZERO + SimDuration::from_millis(200 + rng.below(horizon_ms - 400));
        let down = SimDuration::from_millis(80 + rng.below(600));
        plan.crashes.push(CrashEvent { site: SiteId(site as u16), at, back_at: at + down });
    }
    let fault_active = plan.is_active();
    world.install_fault_plan(plan);

    // Per-shard migrations are the point of the large scenario, so the
    // schedule is unconditional: 1–4 handoffs, each aimed at one shard
    // (or occasionally the whole segment), racing the storm above.
    let mut mrng = Prng::new(seed ^ 0x5AA5_D15C_0BA1);
    let moves = 1 + mrng.below(4);
    let schedule: Vec<MigrationEvent> = (0..moves)
        .map(|_| MigrationEvent {
            at: SimTime::ZERO + SimDuration::from_millis(300 + mrng.below(horizon_ms + 5_000)),
            seg,
            to: SiteId(active[mrng.below(active.len() as u64) as usize] as u16),
            shard: if mrng.below(5) == 0 {
                None
            } else {
                Some(mrng.below(shard_count as u64) as u32)
            },
        })
        .collect();
    world.set_placement_policy(PlacementPolicy::Manual(schedule));

    // 1–2 processes per active site, each with a dedicated word per page.
    let per_site: Vec<(usize, usize)> =
        active.iter().map(|&s| (s, 1 + rng.below(2) as usize)).collect();
    let total_procs: u64 = per_site.iter().map(|&(_, c)| c as u64).sum();
    let mut expected_handles: Vec<Arc<Mutex<Vec<Option<u32>>>>> = Vec::new();
    let mut k = 0u64;
    for &(site, count) in &per_site {
        for _ in 0..count {
            let expected = Arc::new(Mutex::new(vec![None; pages as usize]));
            expected_handles.push(Arc::clone(&expected));
            let prog = FuzzProgram {
                seg,
                pages,
                offset: k as usize * 4,
                total_procs,
                rng: Prng::new(seed.wrapping_add(0x9E37 * (k + 1))),
                ops_left: 12 + rng.below(20) as u32,
                done: 0,
                next_val: (k as u32) * 1_000_000 + 1,
                expected,
            };
            world.spawn(site, Box::new(prog), pages as usize);
            k += 1;
        }
    }

    let deadline = horizon + SimDuration::from_millis(120_000);
    let completed = world.run_to_completion(deadline);
    world.run_for(SimDuration::from_millis(5_000));

    let mut violations = Vec::new();
    if completed {
        for p in 0..pages {
            let page = PageNum(p as u32);
            let stores: Vec<(SiteId, &dyn PageStore)> =
                world.sites.iter().map(|s| (s.id, &s.store as &dyn PageStore)).collect();
            for v in invariants::check_page(&stores, seg, page) {
                violations.push(format!("page {p}: {v:?}"));
            }
        }
        for (k, handle) in expected_handles.iter().enumerate() {
            let exp = handle.lock().expect("poisoned");
            for (p, want) in exp.iter().enumerate() {
                let Some(want) = want else { continue };
                let page = PageNum(p as u32);
                let got = resident_value(&world, seg, page, k * 4);
                if got != Some(*want) {
                    violations.push(format!(
                        "write visibility: proc {k} page {p}: last wrote {want}, \
                         resident copy holds {got:?}"
                    ));
                }
            }
        }
    }

    let trace = world.take_trace();
    if traced && completed {
        let report = mirage_trace::check(&trace);
        for v in report.violations {
            violations.push(format!("trace checker: {v}"));
        }
    }

    (
        FuzzOutcome {
            seed,
            completed,
            violations,
            stuck: world.stuck_pids(),
            stats: if fault_active { world.fault_stats() } else { None },
            accesses: world.total_accesses(),
        },
        trace,
    )
}

fn run_fuzz_seed_inner(
    seed: u64,
    traced: bool,
    migrate: bool,
    delta_grants: bool,
) -> (FuzzOutcome, Vec<mirage_trace::TraceEvent>) {
    let mut rng = Prng::new(seed ^ 0xF0_55ED);
    let n_sites = 2 + rng.below(3) as usize; // 2..=4
    let pages = 1 + rng.below(2); // 1..=2

    let mut cfg = SimConfig::default();
    cfg.protocol.delta = DeltaPolicy::Uniform(Delta(rng.below(3) as u32));
    cfg.protocol.retry = Some(RetryPolicy::default());
    // Set after every PRNG draw: delta mode replays the classic seed's
    // exact scenario, changing only the grants' wire form.
    cfg.protocol.delta_grants = delta_grants;

    let mut world = World::new(n_sites, cfg);
    if traced {
        world.enable_tracing();
    }
    let seg = world.create_segment(0, pages as usize);

    // The fault storm: random link misbehaviour until `horizon`, then a
    // perfect network so the run must *converge*, not merely survive.
    let horizon_ms = 1_500 + rng.below(2_500);
    let horizon = SimTime::ZERO + SimDuration::from_millis(horizon_ms);
    let mut plan = FaultPlan::none();
    plan.seed = seed;
    plan.horizon = horizon;
    plan.gap_wait = SimDuration::from_millis(25);
    plan.default_link = LinkFaults {
        drop_pm: rng.below(300) as u32,
        dup_pm: rng.below(200) as u32,
        delay_pm: rng.below(1_500) as u32,
        max_delay: SimDuration::from_millis(1 + rng.below(30)),
    };
    // Up to two distinct sites crash (any site — including the library
    // site, whose request queue must be reconstructed on restart).
    let mut candidates: Vec<usize> = (0..n_sites).collect();
    for _ in 0..rng.below(3) {
        let site = candidates.swap_remove(rng.below(candidates.len() as u64) as usize);
        let at = SimTime::ZERO + SimDuration::from_millis(200 + rng.below(horizon_ms - 400));
        let down = SimDuration::from_millis(80 + rng.below(600));
        plan.crashes.push(CrashEvent { site: SiteId(site as u16), at, back_at: at + down });
    }
    let active = plan.is_active();
    world.install_fault_plan(plan);

    if migrate {
        // A separate PRNG stream: adding the schedule must not perturb
        // the world shape, workload, or fault plan above.
        let mut mrng = Prng::new(seed ^ 0x4D31_6772_A7E5);
        let moves = 1 + mrng.below(3); // 1..=3 handoffs
        let schedule: Vec<MigrationEvent> = (0..moves)
            .map(|_| MigrationEvent {
                at: SimTime::ZERO
                    + SimDuration::from_millis(300 + mrng.below(horizon_ms + 5_000)),
                seg,
                to: SiteId(mrng.below(n_sites as u64) as u16),
                shard: None,
            })
            .collect();
        world.set_placement_policy(PlacementPolicy::Manual(schedule));
    }

    // Processes: 1–2 per site, each with a dedicated word per page.
    let per_site: Vec<usize> = (0..n_sites).map(|_| 1 + rng.below(2) as usize).collect();
    let total_procs: u64 = per_site.iter().map(|&c| c as u64).sum();
    let mut expected_handles: Vec<Arc<Mutex<Vec<Option<u32>>>>> = Vec::new();
    let mut k = 0u64;
    for (site, &count) in per_site.iter().enumerate() {
        for _ in 0..count {
            let expected = Arc::new(Mutex::new(vec![None; pages as usize]));
            expected_handles.push(Arc::clone(&expected));
            let prog = FuzzProgram {
                seg,
                pages,
                offset: k as usize * 4,
                total_procs,
                rng: Prng::new(seed.wrapping_add(0x9E37 * (k + 1))),
                ops_left: 12 + rng.below(20) as u32,
                done: 0,
                next_val: (k as u32) * 1_000_000 + 1,
                expected,
            };
            world.spawn(site, Box::new(prog), pages as usize);
            k += 1;
        }
    }

    let deadline = horizon + SimDuration::from_millis(120_000);
    let completed = world.run_to_completion(deadline);
    // Quiescence: drain residual protocol traffic (trailing acks and
    // retransmissions) in the clean window before checking state.
    world.run_for(SimDuration::from_millis(5_000));

    let mut violations = Vec::new();
    if completed {
        for p in 0..pages {
            let page = PageNum(p as u32);
            let stores: Vec<(SiteId, &dyn PageStore)> =
                world.sites.iter().map(|s| (s.id, &s.store as &dyn PageStore)).collect();
            for v in invariants::check_page(&stores, seg, page) {
                violations.push(format!("page {p}: {v:?}"));
            }
        }
        for (k, handle) in expected_handles.iter().enumerate() {
            let exp = handle.lock().expect("poisoned");
            for (p, want) in exp.iter().enumerate() {
                let Some(want) = want else { continue };
                let page = PageNum(p as u32);
                let got = resident_value(&world, seg, page, k * 4);
                if got != Some(*want) {
                    violations.push(format!(
                        "write visibility: proc {k} page {p}: last wrote {want}, \
                         resident copy holds {got:?}"
                    ));
                }
            }
        }
    }

    let trace = world.take_trace();
    if traced && completed {
        let report = mirage_trace::check(&trace);
        for v in report.violations {
            violations.push(format!("trace checker: {v}"));
        }
    }

    (
        FuzzOutcome {
            seed,
            completed,
            violations,
            stuck: world.stuck_pids(),
            stats: if active { world.fault_stats() } else { None },
            accesses: world.total_accesses(),
        },
        trace,
    )
}
