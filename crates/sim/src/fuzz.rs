//! Schedule-fuzzing coherence scenarios.
//!
//! One seed drives everything: the world shape (sites, pages,
//! processes), the workload each process runs, and the [`FaultPlan`]
//! (drop/duplicate/delay rates plus site crash/restart times). The
//! scenario runs the storm, lets the network go perfect after the
//! plan's horizon, drives every program to completion, and then checks
//! the two properties the paper's §5.0 coherence definition demands at
//! quiescence:
//!
//! 1. the structural invariants of [`mirage_core::invariants::check_page`]
//!    (single writer, no writer/reader coexistence, byte-identical
//!    copies, page not lost), and
//! 2. **write visibility**: each process wrote a monotone series of
//!    values to its own private word of each page; the final resident
//!    copy must hold exactly the last value each process wrote.
//!
//! The same entry point backs the `fuzz_coherence` integration test
//! (bounded seed sweep in CI) and the `fault_storm` binary in
//! `mirage-bench` (thousands of seeds, replay of a single failing
//! seed). Everything is deterministic: a failing seed replays
//! identically, and `MIRAGE_FAULT_TRACE=1` narrates the fault schedule.

use std::sync::{
    Arc,
    Mutex,
};

use mirage_core::{
    invariants,
    Coherence,
    DeltaPolicy,
    PageStore,
    RetryPolicy,
};
use mirage_net::{
    CrashEvent,
    FaultPlan,
    LinkFaults,
};
use mirage_types::{
    Delta,
    PageNum,
    PageProt,
    Pid,
    Prng,
    SegmentId,
    SimDuration,
    SimTime,
    SiteId,
};

use crate::{
    faults::FaultStats,
    process::ProcState,
    program::{
        MemRef,
        Op,
        Program,
    },
    world::{
        MigrationEvent,
        PlacementPolicy,
        SimConfig,
        World,
    },
};

/// Which rival coherence protocol a fuzz scenario drives.
///
/// The selector is applied to the [`SimConfig`] *after* every PRNG draw
/// in the scenario builder, so for a given seed all three protocols see
/// the bit-identical world shape, workload, and fault plan — the only
/// variable is the protocol. That makes per-seed results directly
/// comparable and lets [`run_fuzz_seed_matrix`] assert the protocols
/// converge to the same final contents.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FuzzProtocol {
    /// The paper's protocol: Δ windows, library site, invalidation
    /// rounds (the classic fuzz scenario, unchanged).
    #[default]
    Mirage,
    /// The Li–Hudak degenerate: Δ = 0 and both §6.1 optimizations off
    /// ([`mirage_core::ProtocolConfig::li`]).
    Li,
    /// Tardis timestamp coherence: logical leases at a home site,
    /// renewals instead of invalidation fan-out.
    Tardis,
}

impl FuzzProtocol {
    /// All protocols, in matrix order.
    pub const ALL: [FuzzProtocol; 3] =
        [FuzzProtocol::Mirage, FuzzProtocol::Li, FuzzProtocol::Tardis];

    /// Stable lowercase name (CLI flag value, report labels).
    pub fn name(self) -> &'static str {
        match self {
            FuzzProtocol::Mirage => "mirage",
            FuzzProtocol::Li => "li",
            FuzzProtocol::Tardis => "tardis",
        }
    }

    /// Parses a [`Self::name`] back (for `fault_storm --protocol`).
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "mirage" => Some(FuzzProtocol::Mirage),
            "li" => Some(FuzzProtocol::Li),
            "tardis" => Some(FuzzProtocol::Tardis),
            _ => None,
        }
    }

    /// Rewrites the drawn config for this protocol. Draws nothing from
    /// any PRNG: the scenario stays bit-identical across protocols.
    /// Public so out-of-crate fuzz harnesses (the open-loop family in
    /// `mirage-workloads`) follow the same apply-after-all-draws idiom.
    pub fn apply(self, cfg: &mut SimConfig) {
        match self {
            FuzzProtocol::Mirage => {}
            FuzzProtocol::Li => {
                cfg.protocol.delta = DeltaPolicy::Uniform(Delta::ZERO);
                cfg.protocol.upgrade_optimization = false;
                cfg.protocol.downgrade_optimization = false;
            }
            FuzzProtocol::Tardis => {
                cfg.protocol.coherence = Coherence::Tardis;
            }
        }
    }
}

/// What one fuzz scenario concluded.
#[derive(Debug)]
pub struct FuzzOutcome {
    /// The driving seed.
    pub seed: u64,
    /// Every program ran to completion before the deadline.
    pub completed: bool,
    /// Human-readable coherence violations found at quiescence.
    pub violations: Vec<String>,
    /// Processes that never finished (empty when `completed`).
    pub stuck: Vec<(Pid, ProcState)>,
    /// Fault-layer counters (`None` if the seed rolled an inactive plan).
    pub stats: Option<FaultStats>,
    /// Total completed shared-memory accesses (sanity: the workload ran).
    pub accesses: u64,
}

impl FuzzOutcome {
    /// The scenario passed: everything completed and nothing diverged.
    pub fn is_ok(&self) -> bool {
        self.completed && self.violations.is_empty()
    }

    /// One-line failure description (for harness output).
    pub fn describe(&self) -> String {
        if self.is_ok() {
            return format!("seed {:#x}: ok ({} accesses)", self.seed, self.accesses);
        }
        let mut s = format!("seed {:#x}: FAILED", self.seed);
        if !self.completed {
            s.push_str(&format!(" — stuck pids {:?}", self.stuck));
        }
        for v in &self.violations {
            s.push_str(&format!("\n  violation: {v}"));
        }
        s
    }
}

/// A randomized workload process: writes a monotone value series to its
/// own word of random pages, reads other processes' words, and mixes in
/// yields and compute bursts so the scheduler states get shuffled too.
struct FuzzProgram {
    seg: SegmentId,
    pages: u64,
    /// This process's private word offset (no other process writes it).
    offset: usize,
    /// Bound on read offsets: one word per process in the world.
    total_procs: u64,
    rng: Prng,
    ops_left: u32,
    done: u64,
    next_val: u32,
    /// Last value issued per page, shared with the harness for the
    /// post-run visibility check.
    expected: Arc<Mutex<Vec<Option<u32>>>>,
}

impl Program for FuzzProgram {
    fn step(&mut self, _last_read: Option<u32>) -> Op {
        if self.ops_left == 0 {
            return Op::Exit;
        }
        self.ops_left -= 1;
        self.done += 1;
        let page = PageNum(self.rng.below(self.pages) as u32);
        match self.rng.below(10) {
            0 => Op::Yield,
            1 => Op::Compute(SimDuration::from_micros(50 + self.rng.below(3_000))),
            2..=5 => {
                let off = self.rng.below(self.total_procs) as usize * 4;
                Op::Read(MemRef::new(self.seg, page, off))
            }
            _ => {
                let v = self.next_val;
                self.next_val += 1;
                self.expected.lock().expect("poisoned")[page.index()] = Some(v);
                Op::Write(MemRef::new(self.seg, page, self.offset), v)
            }
        }
    }

    fn metric(&self) -> u64 {
        self.done
    }

    fn label(&self) -> &str {
        "fuzz"
    }
}

/// The value of `(page, offset)` in the authoritative copy at
/// quiescence, under the given protocol's notion of "authoritative":
/// Mirage/Li use the resident copy (writer's frame, else any reader's),
/// Tardis the exclusive owner's frame (else the home's master). The
/// write-visibility oracle for every fuzz family, exported so the
/// open-loop fuzz harness in `mirage-workloads` can assert it too.
pub fn authoritative_value(
    world: &World,
    seg: SegmentId,
    page: PageNum,
    offset: usize,
    protocol: FuzzProtocol,
) -> Option<u32> {
    match protocol {
        FuzzProtocol::Tardis => tardis_authoritative_value(world, seg, page, offset),
        _ => resident_value(world, seg, page, offset),
    }
}

/// Structural coherence violations for the first `pages` pages of `seg`
/// at quiescence: Mirage/Li run the §5.0 invariants
/// ([`invariants::check_page`]), Tardis the exclusive-ownership
/// discipline. Exported for the open-loop fuzz harness.
pub fn structural_violations(
    world: &World,
    seg: SegmentId,
    pages: u64,
    protocol: FuzzProtocol,
) -> Vec<String> {
    match protocol {
        FuzzProtocol::Mirage | FuzzProtocol::Li => {
            let mut violations = Vec::new();
            for p in 0..pages {
                let page = PageNum(p as u32);
                let stores: Vec<(SiteId, &dyn PageStore)> =
                    world.sites.iter().map(|s| (s.id, &s.store as &dyn PageStore)).collect();
                for v in invariants::check_page(&stores, seg, page) {
                    violations.push(format!("page {p}: {v:?}"));
                }
            }
            violations
        }
        FuzzProtocol::Tardis => tardis_quiescence_violations(world, seg, pages),
    }
}

/// The value of `(page, offset)` in the authoritative resident copy:
/// the writer's copy if one exists, else any reader's (they are
/// byte-identical when the invariants hold).
fn resident_value(world: &World, seg: SegmentId, page: PageNum, offset: usize) -> Option<u32> {
    let mut fallback = None;
    for s in &world.sites {
        let val =
            || s.store.segment(seg).and_then(|ls| ls.frame(page)).map(|f| f.load_u32(offset));
        match s.store.prot(seg, page) {
            PageProt::ReadWrite => return val(),
            PageProt::Read => {
                if fallback.is_none() {
                    fallback = val();
                }
            }
            PageProt::None => {}
        }
    }
    fallback
}

/// Builds and runs the scenario for one seed. Deterministic: the same
/// seed always produces the same world, workload, fault schedule, and
/// outcome.
pub fn run_fuzz_seed(seed: u64) -> FuzzOutcome {
    run_fuzz_seed_inner(seed, false, false, false, FuzzProtocol::Mirage).0
}

/// [`run_fuzz_seed`] under an explicit rival protocol. The seed's world
/// shape, workload, and fault plan are bit-identical to the classic
/// Mirage run; only the coherence machinery differs. Under
/// [`FuzzProtocol::Tardis`] the quiescence oracle swaps the Mirage
/// structural invariants for the Tardis ones: at most one exclusive
/// owner, home/owner agreement, and write visibility against the
/// authoritative copy (the owner's frame, else the home's master) —
/// stale read leases at other sites are legal and left alone.
pub fn run_fuzz_seed_protocol(seed: u64, protocol: FuzzProtocol) -> FuzzOutcome {
    run_fuzz_seed_inner(seed, false, false, false, protocol).0
}

/// [`run_fuzz_seed_protocol`] with tracing: both offline oracles — the
/// Mirage copy-state checker and the timestamp-ordering checker — run
/// over the trace and their violations merge into the outcome. Each is
/// vacuous over the other protocol's events, so both always run.
pub fn run_fuzz_seed_protocol_traced(
    seed: u64,
    protocol: FuzzProtocol,
) -> (FuzzOutcome, Vec<mirage_trace::TraceEvent>) {
    run_fuzz_seed_inner(seed, true, false, false, protocol)
}

/// Cross-protocol differential check: runs the same seed under all
/// three protocols (identical world, workload, and fault plan) and
/// asserts they converge to byte-identical authoritative page contents
/// at quiescence. Returns the per-protocol outcomes plus any divergence
/// violations; everything is merged into the returned outcomes'
/// `violations`, so `all(FuzzOutcome::is_ok)` is the pass criterion.
pub fn run_fuzz_seed_matrix(seed: u64) -> Vec<FuzzOutcome> {
    let mut outcomes: Vec<(FuzzProtocol, FuzzOutcome, Vec<Vec<u8>>)> = FuzzProtocol::ALL
        .into_iter()
        .map(|p| {
            let (out, pages) = run_fuzz_seed_final_pages(seed, p);
            (p, out, pages)
        })
        .collect();
    // Compare every protocol's authoritative contents against Mirage's.
    let (baseline, rest) = outcomes.split_first_mut().expect("three outcomes");
    if baseline.1.completed {
        for (p, out, pages) in rest.iter_mut() {
            if !out.completed {
                continue;
            }
            for (i, (a, b)) in baseline.2.iter().zip(pages.iter()).enumerate() {
                if a != b {
                    out.violations.push(format!(
                        "cross-protocol divergence: page {i} differs between \
                         mirage and {} (first diff at byte {})",
                        p.name(),
                        a.iter().zip(b.iter()).position(|(x, y)| x != y).unwrap_or(0),
                    ));
                }
            }
        }
    }
    outcomes.into_iter().map(|(_, out, _)| out).collect()
}

/// One protocol's run plus the authoritative bytes of every page at
/// quiescence (for the cross-protocol diff).
fn run_fuzz_seed_final_pages(seed: u64, protocol: FuzzProtocol) -> (FuzzOutcome, Vec<Vec<u8>>) {
    let (out, _trace, pages) = run_fuzz_seed_full(seed, false, false, false, protocol);
    (out, pages)
}

/// [`run_fuzz_seed`] with protocol tracing enabled: the same scenario
/// (tracing never changes simulated behaviour) plus the collected event
/// trace. The offline trace checker ([`mirage_trace::check()`]) runs over
/// the trace and its violations are merged into the outcome, so the
/// structural `check_page` oracle and the causal trace oracle cross-check
/// each other on every seed.
pub fn run_fuzz_seed_traced(seed: u64) -> (FuzzOutcome, Vec<mirage_trace::TraceEvent>) {
    run_fuzz_seed_inner(seed, true, false, false, FuzzProtocol::Mirage)
}

/// [`run_fuzz_seed`] with sub-page delta grants enabled. The flag draws
/// nothing from the PRNG, so the world shape, workload, and fault plan
/// are exactly the classic seed's — the only difference is the wire
/// form of the grants, which is what the storm then attacks: deltas
/// dropped, duplicated, delayed, and granters crashed mid-retransmit
/// (clearing their volatile shadow bases) must all converge to the same
/// coherent quiescent state the full-grant run reaches.
pub fn run_fuzz_seed_delta(seed: u64) -> FuzzOutcome {
    run_fuzz_seed_inner(seed, false, false, true, FuzzProtocol::Mirage).0
}

/// [`run_fuzz_seed_delta`] with tracing: the causal trace checker
/// (including the delta tag-fidelity rule — a patched page must hash to
/// the exact content tag the granter shipped) cross-checks the
/// structural oracle on every seed.
pub fn run_fuzz_seed_delta_traced(seed: u64) -> (FuzzOutcome, Vec<mirage_trace::TraceEvent>) {
    run_fuzz_seed_inner(seed, true, false, true, FuzzProtocol::Mirage)
}

/// [`run_fuzz_seed`] with a seeded manual library-migration schedule
/// layered *under* the fault storm: 1–3 handoffs at random times while
/// messages drop, duplicate, reorder, and sites crash. The schedule is
/// drawn from its own PRNG stream, so the world shape, workload, and
/// fault plan stay identical to the non-migrating run of the same seed.
pub fn run_fuzz_seed_migrating(seed: u64) -> FuzzOutcome {
    run_fuzz_seed_inner(seed, false, true, false, FuzzProtocol::Mirage).0
}

/// [`run_fuzz_seed_migrating`] with tracing plus the epoch-aware trace
/// checker merged into the outcome.
pub fn run_fuzz_seed_migrating_traced(
    seed: u64,
) -> (FuzzOutcome, Vec<mirage_trace::TraceEvent>) {
    run_fuzz_seed_inner(seed, true, true, false, FuzzProtocol::Mirage)
}

/// [`run_fuzz_seed`] over a planet-scale world: 65–160 sites (so reader
/// masks run chunked and the circuit table runs paged), a multi-page
/// segment whose library is split into page-range shards, and a
/// shard-aware migration schedule layered *under* the fault storm. A
/// separate entry point with its own PRNG stream, so the classic seeds
/// keep their exact historical scenarios.
pub fn run_fuzz_seed_large(seed: u64) -> FuzzOutcome {
    run_fuzz_seed_large_inner(seed, false, None).0
}

/// [`run_fuzz_seed_large`] with tracing and the epoch-aware trace
/// checker merged into the outcome.
pub fn run_fuzz_seed_large_traced(seed: u64) -> (FuzzOutcome, Vec<mirage_trace::TraceEvent>) {
    run_fuzz_seed_large_inner(seed, true, None)
}

/// [`run_fuzz_seed_large_traced`] at an explicit world size. The CI
/// smoke drives one traced seed through a 1,024-site world with both
/// oracles; everything but the site count is drawn as in the random
/// large scenario.
pub fn run_fuzz_seed_sized_traced(
    seed: u64,
    n_sites: usize,
) -> (FuzzOutcome, Vec<mirage_trace::TraceEvent>) {
    run_fuzz_seed_large_inner(seed, true, Some(n_sites))
}

fn run_fuzz_seed_large_inner(
    seed: u64,
    traced: bool,
    sites_override: Option<usize>,
) -> (FuzzOutcome, Vec<mirage_trace::TraceEvent>) {
    let mut rng = Prng::new(seed ^ 0x001A_26E5_17E5);
    let n_sites = sites_override.unwrap_or_else(|| 65 + rng.below(96) as usize); // 65..=160
    let pages = 4 + rng.below(5); // 4..=8

    let mut cfg = SimConfig::default();
    cfg.protocol.delta = DeltaPolicy::Uniform(Delta(rng.below(3) as u32));
    cfg.protocol.retry = Some(RetryPolicy::default());
    // 1–3 pages per shard over 4–8 pages: always at least two shards,
    // so role handoffs and forwarding stubs are range-scoped.
    cfg.protocol.shard_pages = 1 + rng.below(3) as u32;
    let shard_count = (pages as u32).div_ceil(cfg.protocol.shard_pages).max(1);

    let mut world = World::new(n_sites, cfg);
    if traced {
        world.enable_tracing();
    }
    let seg = world.create_segment(0, pages as usize);

    // The workload lives on a handful of *active* sites scattered over
    // the whole id range — a fleet where most machines are quiet. Site 0
    // (the library home) always participates; at least one active site
    // has an id past 63, so chunked reader masks actually circulate.
    let mut active: Vec<usize> = vec![0];
    let extras = 2 + rng.below(3) as usize; // 2..=4 more sites
    while active.len() < 1 + extras {
        let s = rng.below(n_sites as u64) as usize;
        if !active.contains(&s) {
            active.push(s);
        }
    }
    if !active.iter().any(|&s| s > 63) {
        let s = 64 + rng.below((n_sites - 64) as u64) as usize;
        if !active.contains(&s) {
            active.push(s);
        }
    }

    let horizon_ms = 1_500 + rng.below(2_500);
    let horizon = SimTime::ZERO + SimDuration::from_millis(horizon_ms);
    let mut plan = FaultPlan::none();
    plan.seed = seed;
    plan.horizon = horizon;
    plan.gap_wait = SimDuration::from_millis(25);
    plan.default_link = LinkFaults {
        drop_pm: rng.below(300) as u32,
        dup_pm: rng.below(200) as u32,
        delay_pm: rng.below(1_500) as u32,
        max_delay: SimDuration::from_millis(1 + rng.below(30)),
    };
    // Crashes hit *active* sites (crashing an idle spectator exercises
    // nothing), including the library home with its sharded roles.
    let mut candidates = active.clone();
    for _ in 0..rng.below(3) {
        let site = candidates.swap_remove(rng.below(candidates.len() as u64) as usize);
        let at = SimTime::ZERO + SimDuration::from_millis(200 + rng.below(horizon_ms - 400));
        let down = SimDuration::from_millis(80 + rng.below(600));
        plan.crashes.push(CrashEvent { site: SiteId(site as u16), at, back_at: at + down });
    }
    let fault_active = plan.is_active();
    world.install_fault_plan(plan);

    // Per-shard migrations are the point of the large scenario, so the
    // schedule is unconditional: 1–4 handoffs, each aimed at one shard
    // (or occasionally the whole segment), racing the storm above.
    let mut mrng = Prng::new(seed ^ 0x5AA5_D15C_0BA1);
    let moves = 1 + mrng.below(4);
    let schedule: Vec<MigrationEvent> = (0..moves)
        .map(|_| MigrationEvent {
            at: SimTime::ZERO + SimDuration::from_millis(300 + mrng.below(horizon_ms + 5_000)),
            seg,
            to: SiteId(active[mrng.below(active.len() as u64) as usize] as u16),
            shard: if mrng.below(5) == 0 {
                None
            } else {
                Some(mrng.below(shard_count as u64) as u32)
            },
        })
        .collect();
    world.set_placement_policy(PlacementPolicy::Manual(schedule));

    // 1–2 processes per active site, each with a dedicated word per page.
    let per_site: Vec<(usize, usize)> =
        active.iter().map(|&s| (s, 1 + rng.below(2) as usize)).collect();
    let total_procs: u64 = per_site.iter().map(|&(_, c)| c as u64).sum();
    let mut expected_handles: Vec<Arc<Mutex<Vec<Option<u32>>>>> = Vec::new();
    let mut k = 0u64;
    for &(site, count) in &per_site {
        for _ in 0..count {
            let expected = Arc::new(Mutex::new(vec![None; pages as usize]));
            expected_handles.push(Arc::clone(&expected));
            let prog = FuzzProgram {
                seg,
                pages,
                offset: k as usize * 4,
                total_procs,
                rng: Prng::new(seed.wrapping_add(0x9E37 * (k + 1))),
                ops_left: 12 + rng.below(20) as u32,
                done: 0,
                next_val: (k as u32) * 1_000_000 + 1,
                expected,
            };
            world.spawn(site, Box::new(prog), pages as usize);
            k += 1;
        }
    }

    let deadline = horizon + SimDuration::from_millis(120_000);
    let completed = world.run_to_completion(deadline);
    world.run_for(SimDuration::from_millis(5_000));

    let mut violations = Vec::new();
    if completed {
        for p in 0..pages {
            let page = PageNum(p as u32);
            let stores: Vec<(SiteId, &dyn PageStore)> =
                world.sites.iter().map(|s| (s.id, &s.store as &dyn PageStore)).collect();
            for v in invariants::check_page(&stores, seg, page) {
                violations.push(format!("page {p}: {v:?}"));
            }
        }
        for (k, handle) in expected_handles.iter().enumerate() {
            let exp = handle.lock().expect("poisoned");
            for (p, want) in exp.iter().enumerate() {
                let Some(want) = want else { continue };
                let page = PageNum(p as u32);
                let got = resident_value(&world, seg, page, k * 4);
                if got != Some(*want) {
                    violations.push(format!(
                        "write visibility: proc {k} page {p}: last wrote {want}, \
                         resident copy holds {got:?}"
                    ));
                }
            }
        }
    }

    let trace = world.take_trace();
    if traced && completed {
        let report = mirage_trace::check(&trace);
        for v in report.violations {
            violations.push(format!("trace checker: {v}"));
        }
    }

    (
        FuzzOutcome {
            seed,
            completed,
            violations,
            stuck: world.stuck_pids(),
            stats: if fault_active { world.fault_stats() } else { None },
            accesses: world.total_accesses(),
        },
        trace,
    )
}

fn run_fuzz_seed_inner(
    seed: u64,
    traced: bool,
    migrate: bool,
    delta_grants: bool,
    protocol: FuzzProtocol,
) -> (FuzzOutcome, Vec<mirage_trace::TraceEvent>) {
    let (out, trace, _pages) =
        run_fuzz_seed_full(seed, traced, migrate, delta_grants, protocol);
    (out, trace)
}

fn run_fuzz_seed_full(
    seed: u64,
    traced: bool,
    migrate: bool,
    delta_grants: bool,
    protocol: FuzzProtocol,
) -> (FuzzOutcome, Vec<mirage_trace::TraceEvent>, Vec<Vec<u8>>) {
    let mut rng = Prng::new(seed ^ 0xF0_55ED);
    let n_sites = 2 + rng.below(3) as usize; // 2..=4
    let pages = 1 + rng.below(2); // 1..=2

    let mut cfg = SimConfig::default();
    cfg.protocol.delta = DeltaPolicy::Uniform(Delta(rng.below(3) as u32));
    cfg.protocol.retry = Some(RetryPolicy::default());
    // Set after every PRNG draw: delta mode replays the classic seed's
    // exact scenario, changing only the grants' wire form.
    cfg.protocol.delta_grants = delta_grants;
    // Likewise after every draw: the rival protocols replay the exact
    // classic scenario, changing only the coherence machinery.
    protocol.apply(&mut cfg);

    let mut world = World::new(n_sites, cfg);
    if traced {
        world.enable_tracing();
    }
    let seg = world.create_segment(0, pages as usize);

    // The fault storm: random link misbehaviour until `horizon`, then a
    // perfect network so the run must *converge*, not merely survive.
    let horizon_ms = 1_500 + rng.below(2_500);
    let horizon = SimTime::ZERO + SimDuration::from_millis(horizon_ms);
    let mut plan = FaultPlan::none();
    plan.seed = seed;
    plan.horizon = horizon;
    plan.gap_wait = SimDuration::from_millis(25);
    plan.default_link = LinkFaults {
        drop_pm: rng.below(300) as u32,
        dup_pm: rng.below(200) as u32,
        delay_pm: rng.below(1_500) as u32,
        max_delay: SimDuration::from_millis(1 + rng.below(30)),
    };
    // Up to two distinct sites crash (any site — including the library
    // site, whose request queue must be reconstructed on restart).
    let mut candidates: Vec<usize> = (0..n_sites).collect();
    for _ in 0..rng.below(3) {
        let site = candidates.swap_remove(rng.below(candidates.len() as u64) as usize);
        let at = SimTime::ZERO + SimDuration::from_millis(200 + rng.below(horizon_ms - 400));
        let down = SimDuration::from_millis(80 + rng.below(600));
        plan.crashes.push(CrashEvent { site: SiteId(site as u16), at, back_at: at + down });
    }
    let active = plan.is_active();
    world.install_fault_plan(plan);

    if migrate {
        // A separate PRNG stream: adding the schedule must not perturb
        // the world shape, workload, or fault plan above.
        let mut mrng = Prng::new(seed ^ 0x4D31_6772_A7E5);
        let moves = 1 + mrng.below(3); // 1..=3 handoffs
        let schedule: Vec<MigrationEvent> = (0..moves)
            .map(|_| MigrationEvent {
                at: SimTime::ZERO
                    + SimDuration::from_millis(300 + mrng.below(horizon_ms + 5_000)),
                seg,
                to: SiteId(mrng.below(n_sites as u64) as u16),
                shard: None,
            })
            .collect();
        world.set_placement_policy(PlacementPolicy::Manual(schedule));
    }

    // Processes: 1–2 per site, each with a dedicated word per page.
    let per_site: Vec<usize> = (0..n_sites).map(|_| 1 + rng.below(2) as usize).collect();
    let total_procs: u64 = per_site.iter().map(|&c| c as u64).sum();
    let mut expected_handles: Vec<Arc<Mutex<Vec<Option<u32>>>>> = Vec::new();
    let mut k = 0u64;
    for (site, &count) in per_site.iter().enumerate() {
        for _ in 0..count {
            let expected = Arc::new(Mutex::new(vec![None; pages as usize]));
            expected_handles.push(Arc::clone(&expected));
            let prog = FuzzProgram {
                seg,
                pages,
                offset: k as usize * 4,
                total_procs,
                rng: Prng::new(seed.wrapping_add(0x9E37 * (k + 1))),
                ops_left: 12 + rng.below(20) as u32,
                done: 0,
                next_val: (k as u32) * 1_000_000 + 1,
                expected,
            };
            world.spawn(site, Box::new(prog), pages as usize);
            k += 1;
        }
    }

    let deadline = horizon + SimDuration::from_millis(120_000);
    let completed = world.run_to_completion(deadline);
    // Quiescence: drain residual protocol traffic (trailing acks and
    // retransmissions) in the clean window before checking state.
    world.run_for(SimDuration::from_millis(5_000));

    let mut violations = Vec::new();
    if completed {
        violations.extend(structural_violations(&world, seg, pages, protocol));
        for (k, handle) in expected_handles.iter().enumerate() {
            let exp = handle.lock().expect("poisoned");
            for (p, want) in exp.iter().enumerate() {
                let Some(want) = want else { continue };
                let page = PageNum(p as u32);
                let got = authoritative_value(&world, seg, page, k * 4, protocol);
                if got != Some(*want) {
                    violations.push(format!(
                        "write visibility: proc {k} page {p}: last wrote {want}, \
                         resident copy holds {got:?}"
                    ));
                }
            }
        }
    }

    let trace = world.take_trace();
    if traced && completed {
        // Both offline oracles run regardless of protocol: each is
        // vacuous over the other protocol's event kinds, and running
        // both keeps a stray cross-protocol emission from hiding.
        let report = mirage_trace::check(&trace);
        for v in report.violations {
            violations.push(format!("trace checker: {v}"));
        }
        let ts = mirage_trace::check_timestamps(&trace);
        for v in ts.violations {
            violations.push(format!("timestamp oracle: {v}"));
        }
    }

    let final_pages = if completed {
        authoritative_page_bytes(&world, seg, pages, protocol)
    } else {
        Vec::new()
    };

    (
        FuzzOutcome {
            seed,
            completed,
            violations,
            stuck: world.stuck_pids(),
            stats: if active { world.fault_stats() } else { None },
            accesses: world.total_accesses(),
        },
        trace,
        final_pages,
    )
}

/// Tardis structural invariants at quiescence. Unlike Mirage, stale
/// read copies at non-owner sites are *legal* (their leases simply
/// ended in logical time), so byte-identity across copies is not
/// checked; what must hold is exclusive-ownership discipline.
fn tardis_quiescence_violations(world: &World, seg: SegmentId, pages: u64) -> Vec<String> {
    let mut violations = Vec::new();
    for p in 0..pages {
        let page = PageNum(p as u32);
        let exclusive: Vec<SiteId> = world
            .sites
            .iter()
            .filter(|s| s.store.prot(seg, page) == PageProt::ReadWrite)
            .map(|s| s.id)
            .collect();
        if exclusive.len() > 1 {
            violations.push(format!(
                "page {p}: multiple exclusive holders at quiescence: {exclusive:?}"
            ));
        }
        let home = &world.sites[seg.library.index()];
        match home.driver.engine().tardis_home_view(seg, page).and_then(|h| h.owner) {
            Some(owner) => {
                if let Some(&bad) = exclusive.iter().find(|&&s| s != owner) {
                    violations.push(format!(
                        "page {p}: home records owner {owner:?} but {bad:?} holds an \
                         exclusive frame"
                    ));
                }
            }
            None => {
                if !exclusive.is_empty() {
                    violations.push(format!(
                        "page {p}: exclusive holders {exclusive:?} but the home \
                         records no owner"
                    ));
                }
            }
        }
    }
    violations
}

/// The value of `(page, offset)` in the Tardis authoritative copy: the
/// exclusive owner's frame if ownership is out, else the home's master.
fn tardis_authoritative_value(
    world: &World,
    seg: SegmentId,
    page: PageNum,
    offset: usize,
) -> Option<u32> {
    for s in &world.sites {
        if s.store.prot(seg, page) == PageProt::ReadWrite {
            return s
                .store
                .segment(seg)
                .and_then(|ls| ls.frame(page))
                .map(|f| f.load_u32(offset));
        }
    }
    world.sites[seg.library.index()]
        .driver
        .engine()
        .tardis_master(seg, page)
        .map(|d| d.load_u32(offset))
}

/// Every page's authoritative bytes at quiescence, for the
/// cross-protocol diff: under Mirage/Li the writer's copy (else any
/// reader's — byte-identical when the invariants hold), under Tardis
/// the owner's frame (else the home master).
fn authoritative_page_bytes(
    world: &World,
    seg: SegmentId,
    pages: u64,
    protocol: FuzzProtocol,
) -> Vec<Vec<u8>> {
    (0..pages)
        .map(|p| {
            let page = PageNum(p as u32);
            let bytes = match protocol {
                FuzzProtocol::Tardis => world
                    .sites
                    .iter()
                    .find(|s| s.store.prot(seg, page) == PageProt::ReadWrite)
                    .and_then(|s| {
                        s.store
                            .segment(seg)
                            .and_then(|ls| ls.frame(page))
                            .map(|f| f.as_bytes().to_vec())
                    })
                    .or_else(|| {
                        world.sites[seg.library.index()]
                            .driver
                            .engine()
                            .tardis_master(seg, page)
                            .map(|d| d.as_bytes().to_vec())
                    }),
                _ => {
                    let mut fallback = None;
                    let mut writer = None;
                    for s in &world.sites {
                        let val = || {
                            s.store
                                .segment(seg)
                                .and_then(|ls| ls.frame(page))
                                .map(|f| f.as_bytes().to_vec())
                        };
                        match s.store.prot(seg, page) {
                            PageProt::ReadWrite => writer = val(),
                            PageProt::Read => {
                                if fallback.is_none() {
                                    fallback = val();
                                }
                            }
                            PageProt::None => {}
                        }
                    }
                    writer.or(fallback)
                }
            };
            bytes.unwrap_or_default()
        })
        .collect()
}
