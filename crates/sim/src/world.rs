//! The simulation world: global event queue, wire, and site collection.

use mirage_core::{
    ProtoMsg,
    ProtocolConfig,
    ProtocolDriver,
    RefLogEntry,
};
use mirage_mem::LocalSegment;
use mirage_net::NetCosts;
use mirage_types::{
    Pid,
    SegmentId,
    SimDuration,
    SimTime,
    SiteId,
};

use crate::{
    calendar::CalendarQueue,
    instrument::{
        FetchPhase,
        Instrumentation,
    },
    process::Process,
    program::Program,
    site::{
        msg_size,
        OutEffect,
        SchedParams,
        ServerWork,
        Site,
    },
};

/// World configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Component costs (defaults: the paper's measured VAX/Locus values).
    pub costs: NetCosts,
    /// Scheduler parameters.
    pub sched: SchedParams,
    /// Protocol configuration (Δ policy and optimizations).
    pub protocol: ProtocolConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            costs: NetCosts::vax_locus(),
            sched: SchedParams::default(),
            protocol: ProtocolConfig::default(),
        }
    }
}

/// Global events.
#[derive(Debug)]
enum Ev {
    /// A message finishing its wire transit.
    Arrival { to: usize, from: SiteId, msg: ProtoMsg },
    /// A site asked to be re-examined.
    SiteWake { site: usize },
    /// An engine timer firing.
    EngineTimer { site: usize, token: u64 },
}

/// Sentinel for "no delivery recorded yet" in the circuit matrix.
const NO_DELIVERY: SimTime = SimTime(u64::MAX);

/// The simulation world.
pub struct World {
    /// All sites.
    pub sites: Vec<Site>,
    events: CalendarQueue<Ev>,
    now: SimTime,
    cfg: SimConfig,
    /// Instrumentation counters.
    pub instr: Instrumentation,
    /// Library reference log (§9), in arrival order. Collected only
    /// after [`World::enable_ref_log`]: long experiment runs would
    /// otherwise grow it without bound and distort throughput numbers.
    pub ref_log: Vec<RefLogEntry>,
    collect_ref_log: bool,
    next_serial: u32,
    /// Per-circuit last delivery time, dense `n×n` (row = sender,
    /// column = receiver): the Locus virtual circuit sequences messages,
    /// so a short message sent after a large one must not overtake it on
    /// the wire.
    circuit_last: Vec<SimTime>,
    /// Reusable effect buffer for [`World::poke`] (the per-step sink;
    /// same pattern as the driver's `ActionSink`).
    scratch: Vec<OutEffect>,
}

impl World {
    /// Builds a world of `n` sites.
    pub fn new(n: usize, cfg: SimConfig) -> Self {
        let sites = (0..n)
            .map(|i| {
                let id = SiteId(i as u16);
                Site::new(
                    id,
                    ProtocolDriver::from_config(id, cfg.protocol.clone()),
                    cfg.sched.clone(),
                    cfg.costs.clone(),
                )
            })
            .collect();
        Self {
            sites,
            events: CalendarQueue::new(),
            now: SimTime::ZERO,
            cfg,
            instr: Instrumentation::new(n),
            ref_log: Vec::new(),
            collect_ref_log: false,
            next_serial: 1,
            circuit_last: vec![NO_DELIVERY; n * n],
            scratch: Vec::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The active configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Creates a segment with its library (and initial pages) at `lib`.
    pub fn create_segment(&mut self, lib: usize, pages: usize) -> SegmentId {
        let seg = SegmentId::new(SiteId(lib as u16), self.next_serial);
        self.next_serial += 1;
        for (i, site) in self.sites.iter_mut().enumerate() {
            let view = if i == lib {
                LocalSegment::fully_resident(seg, pages)
            } else {
                LocalSegment::absent(seg, pages)
            };
            site.store.add_segment(view);
            site.driver.register_segment(seg, pages);
        }
        seg
    }

    /// Spawns a process at a site. `shm_pages` drives the lazy-remap
    /// charge at every dispatch of this process (§6.2).
    pub fn spawn(&mut self, site: usize, program: Box<dyn Program>, shm_pages: usize) -> Pid {
        let local = self.sites[site].procs.len() as u32 + 1;
        let pid = Pid::new(SiteId(site as u16), local);
        self.sites[site].spawn(Process::new(pid, program, shm_pages));
        self.push(self.now, Ev::SiteWake { site });
        pid
    }

    fn push(&mut self, at: SimTime, ev: Ev) {
        self.events.push(at, ev);
    }

    fn next_event_time(&mut self) -> Option<SimTime> {
        self.events.peek().map(|(t, _)| t)
    }

    /// Applies (and drains) effects a site produced during a step.
    fn apply_effects(&mut self, from: usize, effects: &mut Vec<OutEffect>) {
        for e in effects.drain(..) {
            match e {
                OutEffect::Send { to, msg, depart } => {
                    let size = msg_size(&msg);
                    self.instr.record_msg(msg.kind(), size);
                    if self.instr.trace_phases {
                        let phase = match (&msg, size) {
                            (ProtoMsg::PageRequest { .. }, _) => Some(FetchPhase::RequestSent),
                            (ProtoMsg::PageGrant { .. }, _) => Some(FetchPhase::PageSent),
                            _ => None,
                        };
                        if let Some(p) = phase {
                            self.instr.record_phase(SiteId(from as u16), p, depart);
                        }
                    }
                    let mut arrive = depart + self.cfg.costs.one_way(size);
                    // Virtual-circuit sequencing (§7.1): per (src, dst)
                    // pair, deliveries are FIFO — a later short message
                    // queues behind an in-flight page-carrying one.
                    let key = from * self.sites.len() + to.index();
                    let last = self.circuit_last[key];
                    if last != NO_DELIVERY && arrive <= last {
                        arrive = SimTime(last.0 + 1);
                    }
                    self.circuit_last[key] = arrive;
                    self.push(
                        arrive,
                        Ev::Arrival { to: to.index(), from: SiteId(from as u16), msg },
                    );
                }
                OutEffect::SetTimer { at, token } => {
                    self.push(at, Ev::EngineTimer { site: from, token });
                }
                OutEffect::Log(entry) => {
                    if self.collect_ref_log {
                        self.ref_log.push(entry);
                    }
                }
                OutEffect::RemoteFault => {
                    self.instr.remote_faults += 1;
                    self.instr.record_phase(
                        SiteId(from as u16),
                        FetchPhase::FaultTaken,
                        self.now,
                    );
                }
                OutEffect::LocalFault => self.instr.local_faults += 1,
                OutEffect::Denial => self.instr.denials += 1,
                OutEffect::ServerCpu(d) => self.instr.server_cpu[from] += d,
            }
        }
    }

    /// Steps a site until it asks to be woken later (or goes idle).
    fn poke(&mut self, site: usize) {
        // Take the pooled effect buffer for the whole poke (capacity is
        // retained across steps and pokes; `poke` never re-enters).
        let mut effects = std::mem::take(&mut self.scratch);
        loop {
            let horizon = self.next_event_time().unwrap_or(SimTime(u64::MAX));
            let res = self.sites[site].step(self.now, horizon, &mut effects);
            let made_progress = !effects.is_empty();
            self.apply_effects(site, &mut effects);
            match res {
                Some(t) if t > self.now => {
                    self.push(t, Ev::SiteWake { site });
                    break;
                }
                Some(_) => {
                    if made_progress {
                        // Scheduling point at `now` with visible effects;
                        // step again immediately.
                        continue;
                    }
                    if self.sites[site].is_idle() {
                        break;
                    }
                    // The site cannot advance because another event is
                    // pending at the current instant (the horizon is
                    // `now`). Defer behind it: re-wake after the queue
                    // drains this instant. Never loop here — that would
                    // spin forever.
                    self.push(self.now, Ev::SiteWake { site });
                    break;
                }
                None => break,
            }
        }
        self.scratch = effects;
    }

    /// Runs until the given simulated time (events at exactly `until`
    /// are processed).
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(t) = self.next_event_time() {
            if t > until {
                break;
            }
            let (t, _, ev) = self.events.pop().expect("peeked");
            if t > self.now {
                self.now = t;
            }
            match ev {
                Ev::Arrival { to, from, msg } => {
                    if self.instr.trace_phases {
                        let phase = match &msg {
                            ProtoMsg::PageRequest { .. } => Some(FetchPhase::RequestReceived),
                            ProtoMsg::PageGrant { .. } => Some(FetchPhase::PageReceived),
                            _ => None,
                        };
                        if let Some(p) = phase {
                            self.instr.record_phase(SiteId(to as u16), p, self.now);
                        }
                        if matches!(msg, ProtoMsg::ReaderInvalidate { .. }) {
                            self.instr.reader_invalidations += 1;
                        }
                        if matches!(msg, ProtoMsg::UpgradeGrant { .. }) {
                            self.instr.upgrades += 1;
                        }
                    } else {
                        if matches!(msg, ProtoMsg::ReaderInvalidate { .. }) {
                            self.instr.reader_invalidations += 1;
                        }
                        if matches!(msg, ProtoMsg::UpgradeGrant { .. }) {
                            self.instr.upgrades += 1;
                        }
                    }
                    self.sites[to]
                        .queue_server_work(ServerWork::Deliver { from, msg }, self.now);
                    self.poke(to);
                }
                Ev::SiteWake { site } => self.poke(site),
                Ev::EngineTimer { site, token } => {
                    self.sites[site].queue_server_work(ServerWork::Timer { token }, self.now);
                    self.poke(site);
                }
            }
        }
        if until > self.now {
            self.now = until;
        }
    }

    /// Runs for a duration from the current time.
    pub fn run_for(&mut self, d: SimDuration) {
        let until = self.now + d;
        self.run_until(until);
    }

    /// Runs until every program has exited or the deadline passes.
    /// Returns true if all programs finished.
    pub fn run_to_completion(&mut self, deadline: SimTime) -> bool {
        while self.now < deadline {
            if self.sites.iter().all(Site::all_done) {
                return true;
            }
            let Some(t) = self.next_event_time() else {
                return self.sites.iter().all(Site::all_done);
            };
            if t > deadline {
                break;
            }
            self.run_until(t);
        }
        self.sites.iter().all(Site::all_done)
    }

    /// Sum of a metric across all processes at a site.
    pub fn site_metric(&self, site: usize) -> u64 {
        self.sites[site].procs.iter().map(Process::metric).sum()
    }

    /// Sum of all program metrics in the world.
    pub fn total_metric(&self) -> u64 {
        (0..self.sites.len()).map(|s| self.site_metric(s)).sum()
    }

    /// Total completed shared-memory accesses in the world.
    pub fn total_accesses(&self) -> u64 {
        self.sites.iter().flat_map(|s| s.procs.iter()).map(|p| p.accesses).sum()
    }

    /// Total protocol events dispatched through the driver layer across
    /// all sites (faults, deliveries, timer firings).
    pub fn engine_events(&self) -> u64 {
        self.sites.iter().map(|s| s.driver.events_dispatched()).sum()
    }

    /// Enables Table 3 phase tracing (preallocates the trace buffer).
    pub fn enable_phase_trace(&mut self) {
        self.instr.trace_phases = true;
        self.instr.phases.reserve(256);
    }

    /// Enables §9 reference-log collection. Off by default: every
    /// library reference appends an entry, so long runs would grow the
    /// log without bound and the allocations would distort throughput.
    pub fn enable_ref_log(&mut self) {
        self.collect_ref_log = true;
    }
}
