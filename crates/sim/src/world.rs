//! The simulation world: global event queue, wire, and site collection.

use std::{
    collections::{
        HashMap,
        VecDeque,
    },
    sync::Arc,
};

use mirage_core::{
    ProtoMsg,
    ProtocolConfig,
    ProtocolDriver,
    RefLogEntry,
};
use mirage_mem::LocalSegment;
use mirage_net::{
    FaultPlan,
    NetCosts,
    Verdict,
};
use mirage_trace::{
    PlacementAdvisor,
    TraceEvent,
    TraceKind,
};
use mirage_types::{
    PageNum,
    Pid,
    SegmentId,
    SimDuration,
    SimTime,
    SiteId,
};

use crate::{
    calendar::CalendarQueue,
    faults::{
        FaultState,
        FaultStats,
        Stamp,
    },
    instrument::{
        FetchPhase,
        Instrumentation,
    },
    openloop::{
        self,
        OpenLoopStation,
        StationHandle,
    },
    process::{
        ProcState,
        Process,
    },
    program::Program,
    site::{
        msg_size,
        OutEffect,
        SchedParams,
        ServerWork,
        Site,
    },
};

/// World configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Component costs (defaults: the paper's measured VAX/Locus values).
    pub costs: NetCosts,
    /// Scheduler parameters.
    pub sched: SchedParams,
    /// Protocol configuration (Δ policy and optimizations).
    pub protocol: ProtocolConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            costs: NetCosts::vax_locus(),
            sched: SchedParams::default(),
            protocol: ProtocolConfig::default(),
        }
    }
}

/// One scripted library-role move ([`PlacementPolicy::Manual`]).
#[derive(Clone, Copy, Debug)]
pub struct MigrationEvent {
    /// When to initiate the handoff.
    pub at: SimTime,
    /// The segment whose library moves.
    pub seg: SegmentId,
    /// The site that takes over the role.
    pub to: SiteId,
    /// Which page-range shard moves; `None` moves every shard (the
    /// whole role, matching the unsharded protocol).
    pub shard: Option<u32>,
}

/// How the world places segment library roles over time.
#[derive(Clone, Debug, Default)]
pub enum PlacementPolicy {
    /// Libraries never move. The default — runs are byte-identical to
    /// the fixed-library protocol.
    #[default]
    Off,
    /// A pre-scripted handoff schedule (tests, fuzzing, and the manual
    /// arm of the M1 experiment).
    Manual(Vec<MigrationEvent>),
    /// The §9 advisor runs *online*: every `interval` it scores the
    /// most recent `window` of reference-log traffic and, once the same
    /// foreign site has dominated a segment's request stream for
    /// `hysteresis` consecutive ticks, hands the library to it.
    Advised {
        /// Gap between advisor evaluations.
        interval: SimDuration,
        /// How far back the sliding reference window reaches.
        window: SimDuration,
        /// Leader-count floor below which the advisor stays quiet.
        min_requests: u64,
        /// Consecutive ticks the same target must win before a move.
        hysteresis: u32,
    },
}

/// Live state of an [`PlacementPolicy::Advised`] policy.
struct PlacementState {
    interval: SimDuration,
    window: SimDuration,
    min_requests: u64,
    hysteresis: u32,
    /// Sliding window of library references (time-evicted each tick).
    log: VecDeque<mirage_trace::log::Entry>,
    /// Per library shard: the currently favoured target and how many
    /// consecutive ticks it has been favoured.
    streak: HashMap<(SegmentId, u32), (SiteId, u32)>,
}

/// Global events.
#[derive(Debug)]
enum Ev {
    /// A message finishing its wire transit. `stamp` carries the circuit
    /// sequence/incarnation stamp in fault mode; `None` on the pristine
    /// (no-fault-layer) path.
    Arrival { to: usize, from: SiteId, msg: ProtoMsg, stamp: Option<Stamp> },
    /// A site asked to be re-examined.
    SiteWake { site: usize },
    /// An engine timer firing.
    EngineTimer { site: usize, token: u64 },
    /// A scheduled site crash (fault mode only).
    Crash { site: usize },
    /// A scheduled site restart (fault mode only).
    Restart { site: usize },
    /// `gap_wait` expired on a directed link with held-back messages:
    /// declare the missing sequence numbers lost and release the queue.
    LinkProbe { src: usize, dst: usize },
    /// Initiate a library-role handoff (placement policy).
    Migrate { seg: SegmentId, to: SiteId, shard: Option<u32> },
    /// Periodic evaluation of an [`PlacementPolicy::Advised`] policy.
    /// Pure observation: a tick that moves nothing changes nothing.
    PolicyTick,
    /// An open-loop station's next scheduled demand arrives: inject it
    /// into the station queue (even while the site is down — the
    /// backlog is the point) and wake any parked workers.
    OpenLoopArrival { station: usize },
}

/// Sentinel for "no delivery recorded yet" in the circuit matrix.
const NO_DELIVERY: SimTime = SimTime(u64::MAX);

/// Site count up to which the circuit table stays a dense `n×n` matrix.
/// Beyond it, rows allocate lazily: a 1,024-site world has a million
/// potential circuits, but real workloads touch a vanishing fraction.
const CIRCUIT_DENSE_LIMIT: usize = 128;

/// Per-circuit last-delivery bookkeeping (row = sender, column =
/// receiver), behind one get/set interface with two representations:
/// dense below [`CIRCUIT_DENSE_LIMIT`] sites (one flat allocation, the
/// historical layout), paged above (per-sender rows allocated on first
/// send, `None` until then), so planet-scale worlds don't pre-commit
/// O(n²) memory for circuits that never carry a message. Lookups on
/// both paths are branch-plus-index; the choice never affects
/// timestamps, only where they are stored.
enum CircuitTable {
    Dense { n: usize, last: Vec<SimTime> },
    Paged { n: usize, rows: Vec<Option<Box<[SimTime]>>> },
}

impl CircuitTable {
    fn new(n: usize) -> Self {
        if n <= CIRCUIT_DENSE_LIMIT {
            CircuitTable::Dense { n, last: vec![NO_DELIVERY; n * n] }
        } else {
            CircuitTable::Paged { n, rows: (0..n).map(|_| None).collect() }
        }
    }

    fn get(&self, src: usize, dst: usize) -> SimTime {
        match self {
            CircuitTable::Dense { n, last } => last[src * n + dst],
            CircuitTable::Paged { rows, .. } => {
                rows[src].as_ref().map_or(NO_DELIVERY, |r| r[dst])
            }
        }
    }

    fn set(&mut self, src: usize, dst: usize, at: SimTime) {
        match self {
            CircuitTable::Dense { n, last } => last[src * *n + dst] = at,
            CircuitTable::Paged { n, rows } => {
                let row =
                    rows[src].get_or_insert_with(|| vec![NO_DELIVERY; *n].into_boxed_slice());
                row[dst] = at;
            }
        }
    }
}

/// The simulation world.
pub struct World {
    /// All sites.
    pub sites: Vec<Site>,
    events: CalendarQueue<Ev>,
    now: SimTime,
    cfg: SimConfig,
    /// Instrumentation counters.
    pub instr: Instrumentation,
    /// Library reference log (§9), in arrival order. Collected only
    /// after [`World::enable_ref_log`]: long experiment runs would
    /// otherwise grow it without bound and distort throughput numbers.
    pub ref_log: Vec<RefLogEntry>,
    collect_ref_log: bool,
    /// Protocol trace events (observability layer), in emission order.
    /// Collected only after [`World::enable_tracing`]; the disabled path
    /// constructs no events at all.
    pub trace: Vec<TraceEvent>,
    collect_trace: bool,
    next_serial: u32,
    /// Per-circuit last delivery time (row = sender, column =
    /// receiver): the Locus virtual circuit sequences messages, so a
    /// short message sent after a large one must not overtake it on the
    /// wire. Dense at small n, paged at large n ([`CircuitTable`]).
    circuit_last: CircuitTable,
    /// Reusable effect buffer for [`World::poke`] (the per-step sink;
    /// same pattern as the driver's `ActionSink`).
    scratch: Vec<OutEffect>,
    /// Fault-execution state; `None` unless an *active* plan was
    /// installed, so the pristine path pays nothing.
    faults: Option<FaultState>,
    /// Where each library shard currently lives, keyed by
    /// `(segment, shard index)` (tracks the handoffs the world itself
    /// initiated; the engines' hint tables are the per-site view of the
    /// same fact). Unsharded segments have a single shard 0.
    lib_where: HashMap<(SegmentId, u32), SiteId>,
    /// Live advisor state; `None` unless [`PlacementPolicy::Advised`]
    /// was installed, so other runs pay nothing for the window.
    placement: Option<PlacementState>,
    /// Installed open-loop stations, in install order (the index is the
    /// [`Ev::OpenLoopArrival`] key).
    openloop: Vec<OpenLoopRt>,
}

/// World-side runtime state of one open-loop station.
struct OpenLoopRt {
    site: usize,
    state: StationHandle,
    /// The precomputed arrival schedule (ascending).
    arrivals: Vec<SimTime>,
    /// Next schedule index to inject.
    next: usize,
    /// The station's worker pids (for parked-worker wakes).
    pids: Vec<Pid>,
}

impl World {
    /// Builds a world of `n` sites.
    pub fn new(n: usize, cfg: SimConfig) -> Self {
        let sites = (0..n)
            .map(|i| {
                let id = SiteId(i as u16);
                Site::new(
                    id,
                    ProtocolDriver::from_config(id, cfg.protocol.clone()),
                    cfg.sched.clone(),
                    cfg.costs.clone(),
                )
            })
            .collect();
        Self {
            sites,
            events: CalendarQueue::new(),
            now: SimTime::ZERO,
            cfg,
            instr: Instrumentation::new(n),
            ref_log: Vec::new(),
            collect_ref_log: false,
            trace: Vec::new(),
            collect_trace: false,
            next_serial: 1,
            circuit_last: CircuitTable::new(n),
            scratch: Vec::new(),
            faults: None,
            lib_where: HashMap::new(),
            placement: None,
            openloop: Vec::new(),
        }
    }

    /// Installs a fault plan. An inactive plan ([`FaultPlan::none`])
    /// installs nothing at all — the run is byte-identical to one
    /// without the fault layer. An active plan seeds the fault PRNG,
    /// schedules the crash/restart events, and routes every subsequent
    /// send and arrival through the circuit-stamping machinery.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        if !plan.is_active() {
            return;
        }
        for c in &plan.crashes {
            assert!(c.back_at > c.at, "restart must follow crash");
            assert!((c.site.index()) < self.sites.len(), "crash event names an unknown site");
            self.push(c.at, Ev::Crash { site: c.site.index() });
            self.push(c.back_at, Ev::Restart { site: c.site.index() });
        }
        self.faults = Some(FaultState::new(plan, self.sites.len()));
    }

    /// The fault layer's counters, if a plan is installed.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.faults.as_ref().map(|f| f.stats)
    }

    /// Whether `site` is currently crashed.
    fn site_down(&self, site: usize) -> bool {
        self.faults.as_ref().is_some_and(|f| f.down[site])
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The active configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Creates a segment with its library (and initial pages) at `lib`.
    pub fn create_segment(&mut self, lib: usize, pages: usize) -> SegmentId {
        let seg = SegmentId::new(SiteId(lib as u16), self.next_serial);
        self.next_serial += 1;
        for (i, site) in self.sites.iter_mut().enumerate() {
            let view = if i == lib {
                LocalSegment::fully_resident(seg, pages)
            } else {
                LocalSegment::absent(seg, pages)
            };
            site.store.add_segment(view);
            site.driver.register_segment(seg, pages);
        }
        for shard in 0..self.shard_count(pages) {
            self.lib_where.insert((seg, shard), SiteId(lib as u16));
        }
        seg
    }

    /// How many library shards a segment of `pages` pages has under the
    /// active protocol configuration.
    fn shard_count(&self, pages: usize) -> u32 {
        let sp = self.cfg.protocol.shard_pages;
        if sp == 0 {
            1
        } else {
            (pages as u32).div_ceil(sp).max(1)
        }
    }

    /// Installs a library placement policy. [`PlacementPolicy::Manual`]
    /// schedules its handoffs immediately; [`PlacementPolicy::Advised`]
    /// starts the periodic advisor. Call after the segments exist and
    /// before running. Moving policies require retry mode: a handoff
    /// leans on the retransmission chains to re-aim in-flight traffic.
    pub fn set_placement_policy(&mut self, policy: PlacementPolicy) {
        match policy {
            PlacementPolicy::Off => {}
            PlacementPolicy::Manual(events) => {
                assert!(
                    self.cfg.protocol.retry.is_some(),
                    "library migration requires retry mode"
                );
                for e in events {
                    self.push(e.at, Ev::Migrate { seg: e.seg, to: e.to, shard: e.shard });
                }
            }
            PlacementPolicy::Advised { interval, window, min_requests, hysteresis } => {
                assert!(
                    self.cfg.protocol.retry.is_some(),
                    "library migration requires retry mode"
                );
                assert!(interval.0 > 0, "advisor interval must be positive");
                self.placement = Some(PlacementState {
                    interval,
                    window,
                    min_requests,
                    hysteresis,
                    log: VecDeque::new(),
                    streak: HashMap::new(),
                });
                self.push(self.now + interval, Ev::PolicyTick);
            }
        }
    }

    /// Where the world last placed `seg`'s library role (the handoff
    /// may still be in flight on the wire). For a sharded segment this
    /// reports shard 0; use [`World::library_shard_site`] for the rest.
    pub fn library_site(&self, seg: SegmentId) -> Option<SiteId> {
        self.library_shard_site(seg, 0)
    }

    /// Where the world last placed one page-range shard of `seg`'s
    /// library role.
    pub fn library_shard_site(&self, seg: SegmentId, shard: u32) -> Option<SiteId> {
        self.lib_where.get(&(seg, shard)).copied()
    }

    /// Spawns a process at a site. `shm_pages` drives the lazy-remap
    /// charge at every dispatch of this process (§6.2).
    pub fn spawn(&mut self, site: usize, program: Box<dyn Program>, shm_pages: usize) -> Pid {
        let local = self.sites[site].procs.len() as u32 + 1;
        let pid = Pid::new(SiteId(site as u16), local);
        self.sites[site].spawn(Process::new(pid, program, shm_pages));
        self.push(self.now, Ev::SiteWake { site });
        pid
    }

    /// Installs an open-loop station: spawns its workers at the
    /// station's site and schedules the first arrival. Returns the
    /// shared state handle the harness reads records from after the
    /// run. Arrivals fire at their scheduled sim-times regardless of
    /// how far behind the workers are — that independence is what makes
    /// the traffic open-loop.
    pub fn install_open_loop(&mut self, st: OpenLoopStation) -> StationHandle {
        let (state, workers, arrivals) = openloop::build_station(&st);
        let pids = workers
            .into_iter()
            .map(|w| self.spawn(st.site, Box::new(w), st.shm_pages))
            .collect();
        let idx = self.openloop.len();
        if let Some(&first) = arrivals.first() {
            self.push(first.max(self.now), Ev::OpenLoopArrival { station: idx });
        }
        self.openloop.push(OpenLoopRt {
            site: st.site,
            state: Arc::clone(&state),
            arrivals,
            next: 0,
            pids,
        });
        state
    }

    /// One scheduled arrival fires: inject the demand, schedule the
    /// next one, and wake a parked worker if the site is up. A down
    /// site still accumulates backlog — its workers drain the queue
    /// after restart.
    fn openloop_arrival(&mut self, idx: usize) {
        let (site, next_at) = {
            let rt = &mut self.openloop[idx];
            let i = rt.next;
            rt.next += 1;
            openloop::inject(&rt.state, i);
            (rt.site, rt.arrivals.get(rt.next).copied())
        };
        if let Some(at) = next_at {
            self.push(at.max(self.now), Ev::OpenLoopArrival { station: idx });
        }
        if !self.site_down(site) {
            let pids = std::mem::take(&mut self.openloop[idx].pids);
            let woke = self.sites[site].wake_parked(&pids);
            self.openloop[idx].pids = pids;
            if woke {
                self.push(self.now, Ev::SiteWake { site });
            }
        }
    }

    fn push(&mut self, at: SimTime, ev: Ev) {
        self.events.push(at, ev);
    }

    fn next_event_time(&mut self) -> Option<SimTime> {
        self.events.peek().map(|(t, _)| t)
    }

    /// Applies (and drains) effects a site produced during a step.
    fn apply_effects(&mut self, from: usize, effects: &mut Vec<OutEffect>) {
        for e in effects.drain(..) {
            match e {
                OutEffect::Send { to, msg, depart } => {
                    let size = msg_size(&msg);
                    self.instr.record_msg(msg.kind(), size);
                    if self.instr.trace_phases {
                        let phase = match (&msg, size) {
                            (ProtoMsg::PageRequest { .. }, _) => Some(FetchPhase::RequestSent),
                            (ProtoMsg::PageGrant { .. }, _) => Some(FetchPhase::PageSent),
                            _ => None,
                        };
                        if let Some(p) = phase {
                            self.instr.record_phase(SiteId(from as u16), p, depart);
                        }
                    }
                    let base = depart + self.cfg.costs.one_way(size);
                    if self.faults.is_some() {
                        // Fault mode: the sender-side FIFO clamp is off.
                        // Ordering is enforced at the receiver by the
                        // circuit sequence numbers instead, and
                        // reordering is precisely what the plan wants to
                        // exercise.
                        let dst = to.index();
                        let f = self.faults.as_mut().expect("checked");
                        match f.outbound(from, dst, depart, base) {
                            None => {
                                // Dropped by the plan.
                                if self.collect_trace {
                                    let mut ev = self.wire_event(
                                        depart,
                                        from,
                                        TraceKind::MsgDropped,
                                        &msg,
                                    );
                                    ev.peer = Some(to);
                                    self.trace.push(ev);
                                }
                            }
                            Some((stamp, arrive, dup)) => {
                                let src = SiteId(from as u16);
                                if self.collect_trace {
                                    let mut ev =
                                        self.wire_event(depart, from, TraceKind::MsgSent, &msg);
                                    ev.peer = Some(to);
                                    ev.detail = arrive.0 - depart.0;
                                    self.trace.push(ev);
                                    if arrive > base {
                                        let mut ev = self.wire_event(
                                            depart,
                                            from,
                                            TraceKind::MsgDelayed,
                                            &msg,
                                        );
                                        ev.peer = Some(to);
                                        ev.detail = arrive.0 - base.0;
                                        self.trace.push(ev);
                                    }
                                    if dup.is_some() {
                                        let mut ev = self.wire_event(
                                            depart,
                                            from,
                                            TraceKind::MsgDuplicated,
                                            &msg,
                                        );
                                        ev.peer = Some(to);
                                        self.trace.push(ev);
                                    }
                                }
                                if let Some(dup_at) = dup {
                                    self.push(
                                        dup_at,
                                        Ev::Arrival {
                                            to: dst,
                                            from: src,
                                            msg: msg.clone(),
                                            stamp: Some(stamp),
                                        },
                                    );
                                }
                                self.push(
                                    arrive,
                                    Ev::Arrival { to: dst, from: src, msg, stamp: Some(stamp) },
                                );
                            }
                        }
                    } else {
                        let mut arrive = base;
                        // Virtual-circuit sequencing (§7.1): per (src, dst)
                        // pair, deliveries are FIFO — a later short message
                        // queues behind an in-flight page-carrying one.
                        let last = self.circuit_last.get(from, to.index());
                        if last != NO_DELIVERY && arrive <= last {
                            arrive = SimTime(last.0 + 1);
                        }
                        self.circuit_last.set(from, to.index(), arrive);
                        if self.collect_trace {
                            let mut ev =
                                self.wire_event(depart, from, TraceKind::MsgSent, &msg);
                            ev.peer = Some(to);
                            ev.detail = arrive.0 - depart.0;
                            self.trace.push(ev);
                        }
                        self.push(
                            arrive,
                            Ev::Arrival {
                                to: to.index(),
                                from: SiteId(from as u16),
                                msg,
                                stamp: None,
                            },
                        );
                    }
                }
                OutEffect::SetTimer { at, token } => {
                    self.push(at, Ev::EngineTimer { site: from, token });
                }
                OutEffect::Log(entry) => {
                    if let Some(p) = self.placement.as_mut() {
                        p.log.push_back(mirage_trace::log::Entry {
                            seg: entry.seg,
                            page: entry.page,
                            at: entry.at,
                            pid: entry.pid,
                            access: entry.access,
                        });
                    }
                    if self.collect_ref_log {
                        self.ref_log.push(entry);
                    }
                }
                OutEffect::Trace(ev) => {
                    if self.collect_trace {
                        self.trace.push(ev);
                    }
                }
                OutEffect::RemoteFault => {
                    self.instr.remote_faults += 1;
                    self.instr.remote_faults_by_site[from] += 1;
                    self.instr.record_phase(
                        SiteId(from as u16),
                        FetchPhase::FaultTaken,
                        self.now,
                    );
                }
                OutEffect::LocalFault => self.instr.local_faults += 1,
                OutEffect::Denial => self.instr.denials += 1,
                OutEffect::ServerCpu(d) => self.instr.server_cpu[from] += d,
            }
        }
    }

    /// Steps a site until it asks to be woken later (or goes idle).
    fn poke(&mut self, site: usize) {
        // Take the pooled effect buffer for the whole poke (capacity is
        // retained across steps and pokes; `poke` never re-enters).
        let mut effects = std::mem::take(&mut self.scratch);
        loop {
            let horizon = self.next_event_time().unwrap_or(SimTime(u64::MAX));
            let res = self.sites[site].step(self.now, horizon, &mut effects);
            // Trace effects are pure observation: they must not count as
            // progress, or enabling tracing would change the scheduler's
            // re-step decisions (and therefore simulated timestamps).
            let made_progress = effects.iter().any(|e| !matches!(e, OutEffect::Trace(_)));
            self.apply_effects(site, &mut effects);
            match res {
                Some(t) if t > self.now => {
                    self.push(t, Ev::SiteWake { site });
                    break;
                }
                Some(_) => {
                    if made_progress {
                        // Scheduling point at `now` with visible effects;
                        // step again immediately.
                        continue;
                    }
                    if self.sites[site].is_idle() {
                        break;
                    }
                    // The site cannot advance because another event is
                    // pending at the current instant (the horizon is
                    // `now`). Defer behind it: re-wake after the queue
                    // drains this instant. Never loop here — that would
                    // spin forever.
                    self.push(self.now, Ev::SiteWake { site });
                    break;
                }
                None => break,
            }
        }
        self.scratch = effects;
    }

    /// Hands a message to the destination site's kernel (instrumentation
    /// plus server-work queueing). Shared by the pristine and fault
    /// delivery paths.
    fn deliver_msg(&mut self, to: usize, from: SiteId, msg: ProtoMsg) {
        if self.instr.trace_phases {
            let phase = match &msg {
                ProtoMsg::PageRequest { .. } => Some(FetchPhase::RequestReceived),
                ProtoMsg::PageGrant { .. } => Some(FetchPhase::PageReceived),
                _ => None,
            };
            if let Some(p) = phase {
                self.instr.record_phase(SiteId(to as u16), p, self.now);
            }
        }
        if matches!(msg, ProtoMsg::ReaderInvalidate { .. }) {
            self.instr.reader_invalidations += 1;
        }
        if matches!(msg, ProtoMsg::UpgradeGrant { .. }) {
            self.instr.upgrades += 1;
        }
        self.sites[to].queue_server_work(ServerWork::Deliver { from, msg }, self.now);
        self.poke(to);
    }

    /// Fault-mode delivery: screen for a down receiver and stale
    /// incarnations, then classify against the receiver's circuit. In-
    /// order messages are delivered (and release any consecutive held
    /// messages); duplicates are discarded; gapped messages are held
    /// back with a probe scheduled to declare the gap lost.
    fn deliver_faulty(&mut self, to: usize, from: SiteId, msg: ProtoMsg, stamp: Stamp) {
        let f = self.faults.as_mut().expect("stamped arrival without fault state");
        if f.down[to]
            || stamp.src_inc != f.incarnation[from.index()]
            || stamp.dst_inc != f.incarnation[to]
        {
            f.stats.stale_dropped += 1;
            if f.trace {
                eprintln!("[fault] stale {}->{} seq {}", from.0, to, stamp.seq);
            }
            if self.collect_trace {
                let mut ev = self.wire_event(self.now, to, TraceKind::MsgStaleDropped, &msg);
                ev.peer = Some(from);
                ev.detail = stamp.seq;
                self.trace.push(ev);
            }
            return;
        }
        match f.check(from, to, stamp.seq) {
            Verdict::InOrder => {
                self.deliver_msg(to, from, msg);
                self.drain_holdback(from.index(), to);
            }
            Verdict::Duplicate => {
                f.stats.dup_discarded += 1;
                if f.trace {
                    eprintln!("[fault] dup-discard {}->{} seq {}", from.0, to, stamp.seq);
                }
                if self.collect_trace {
                    let mut ev =
                        self.wire_event(self.now, to, TraceKind::MsgDupDiscarded, &msg);
                    ev.peer = Some(from);
                    ev.detail = stamp.seq;
                    self.trace.push(ev);
                }
            }
            Verdict::Gap { expected, got } => {
                f.stats.held_back += 1;
                if f.trace {
                    eprintln!(
                        "[fault] holdback {}->{} seq {} (expected {})",
                        from.0, to, got, expected
                    );
                }
                if self.collect_trace {
                    let mut ev = self.wire_event(self.now, to, TraceKind::MsgHeldBack, &msg);
                    ev.peer = Some(from);
                    ev.detail = got;
                    self.trace.push(ev);
                }
                let f = self.faults.as_mut().expect("fault state");
                let wait = f.plan.gap_wait;
                f.holdback.entry((from.index(), to)).or_default().insert(stamp.seq, msg);
                self.push(self.now + wait, Ev::LinkProbe { src: from.index(), dst: to });
            }
        }
    }

    /// Releases held-back messages on `(src, dst)` that have become
    /// deliverable (consecutive from the circuit's expectation).
    fn drain_holdback(&mut self, src: usize, dst: usize) {
        loop {
            let f = self.faults.as_mut().expect("fault state");
            let Some(q) = f.holdback.get_mut(&(src, dst)) else { return };
            let Some((&seq, _)) = q.first_key_value() else {
                f.holdback.remove(&(src, dst));
                return;
            };
            match f.tables[dst].check_seq(SiteId(src as u16), seq) {
                Verdict::InOrder => {
                    let msg = q.remove(&seq).expect("first key present");
                    self.deliver_msg(dst, SiteId(src as u16), msg);
                }
                Verdict::Duplicate => {
                    q.remove(&seq);
                    f.stats.dup_discarded += 1;
                }
                Verdict::Gap { .. } => return,
            }
        }
    }

    /// `gap_wait` expired: if the link still has held-back messages,
    /// declare the missing sequence numbers lost (the protocol's retry
    /// layer resupplies the content) and release the queue.
    fn link_probe(&mut self, src: usize, dst: usize) {
        let Some(f) = self.faults.as_mut() else { return };
        if f.down[dst] {
            return;
        }
        let Some(q) = f.holdback.get(&(src, dst)) else { return };
        let Some((&seq, _)) = q.first_key_value() else {
            f.holdback.remove(&(src, dst));
            return;
        };
        f.tables[dst].advance_to(SiteId(src as u16), seq);
        f.stats.gaps_declared += 1;
        if f.trace {
            eprintln!("[fault] gap-lost {}->{}: advance to seq {}", src, dst, seq);
        }
        if self.collect_trace {
            let mut ev = TraceEvent::new(self.now, SiteId(dst as u16), TraceKind::GapDeclared);
            ev.peer = Some(SiteId(src as u16));
            ev.detail = seq;
            self.trace.push(ev);
        }
        self.drain_holdback(src, dst);
        let still_held = self
            .faults
            .as_ref()
            .expect("fault state")
            .holdback
            .get(&(src, dst))
            .is_some_and(|q| !q.is_empty());
        if still_held {
            let wait = self.faults.as_ref().expect("fault state").plan.gap_wait;
            self.push(self.now + wait, Ev::LinkProbe { src, dst });
        }
    }

    /// Executes a scheduled crash: bump the incarnation, sever circuits,
    /// and discard the site's volatile protocol and scheduler state.
    fn apply_crash(&mut self, site: usize) {
        let Some(f) = self.faults.as_mut() else { return };
        if f.down[site] {
            return;
        }
        f.down[site] = true;
        f.incarnation[site] += 1;
        f.stats.crashes += 1;
        f.sever(site);
        if f.trace {
            eprintln!("[fault] crash site{} at {:?}", site, self.now);
        }
        if self.collect_trace {
            let ev = TraceEvent::new(self.now, SiteId(site as u16), TraceKind::SiteCrash);
            self.trace.push(ev);
        }
        self.sites[site].crash();
    }

    /// Executes a scheduled restart: the site comes back with cold
    /// volatile state, reconstructs its retransmission obligations from
    /// the persistent tables, and resumes its frozen processes (whose
    /// interrupted accesses re-fault against the recovered store).
    fn apply_restart(&mut self, site: usize) {
        let Some(f) = self.faults.as_mut() else { return };
        if !f.down[site] {
            return;
        }
        f.down[site] = false;
        f.stats.restarts += 1;
        let incarnation = f.incarnation[site];
        let trace = f.trace;
        if trace {
            eprintln!("[fault] restart site{} at {:?}", site, self.now);
        }
        if self.collect_trace {
            let mut ev = TraceEvent::new(self.now, SiteId(site as u16), TraceKind::SiteRestart);
            ev.detail = u64::from(incarnation);
            self.trace.push(ev);
        }
        let mut effects = std::mem::take(&mut self.scratch);
        let now = self.now;
        self.sites[site].restart(now, &mut effects);
        self.apply_effects(site, &mut effects);
        self.scratch = effects;
        self.push(self.now, Ev::SiteWake { site });
    }

    /// Initiates a library-role handoff for `seg` toward `to`. `shard`
    /// selects one page-range shard; `None` moves every shard (each
    /// from wherever it currently lives). A move is quietly skipped
    /// when it is meaningless (already there), impossible (either
    /// endpoint down), or premature (a previous handoff of the same
    /// shard is still in flight, so no site holds the active role to
    /// freeze from — the policy will re-advise).
    fn apply_migrate(&mut self, seg: SegmentId, to: SiteId, shard: Option<u32>) {
        match shard {
            Some(s) => self.apply_migrate_shard(seg, to, s),
            None => {
                let mut shards: Vec<u32> = self
                    .lib_where
                    .keys()
                    .filter(|&&(s, _)| s == seg)
                    .map(|&(_, i)| i)
                    .collect();
                shards.sort_unstable();
                for s in shards {
                    self.apply_migrate_shard(seg, to, s);
                }
            }
        }
    }

    fn apply_migrate_shard(&mut self, seg: SegmentId, to: SiteId, shard: u32) {
        let Some(&cur) = self.lib_where.get(&(seg, shard)) else { return };
        if cur == to || to.index() >= self.sites.len() {
            return;
        }
        let src = cur.index();
        if self.site_down(src) || self.site_down(to.index()) {
            return;
        }
        // The shard's anchor page tells the engine which range to check.
        let anchor = PageNum(shard * self.cfg.protocol.shard_pages);
        if !self.sites[src].driver.engine().library_active_for(seg, anchor) {
            return;
        }
        let mut effects = std::mem::take(&mut self.scratch);
        let now = self.now;
        self.sites[src].migrate_library(now, seg, to, Some(shard), &mut effects);
        self.apply_effects(src, &mut effects);
        self.scratch = effects;
        self.lib_where.insert((seg, shard), to);
        self.push(self.now, Ev::SiteWake { site: src });
    }

    /// One advisor evaluation: evict the reference window, score it,
    /// bump or reset per-segment streaks, and initiate the moves whose
    /// streaks cleared the hysteresis bar. Re-arms itself until every
    /// program has exited, so a completed run's event queue drains.
    fn policy_tick(&mut self) {
        let mut moves = Vec::new();
        let interval = {
            let Some(p) = self.placement.as_mut() else { return };
            while p.log.front().is_some_and(|e| e.at + p.window < self.now) {
                p.log.pop_front();
            }
            let advisor =
                PlacementAdvisor::sharded(p.min_requests, self.cfg.protocol.shard_pages);
            let advice = advisor.advise(p.log.make_contiguous());
            for a in advice {
                if self.lib_where.get(&(a.seg, a.shard)) == Some(&a.to) {
                    p.streak.remove(&(a.seg, a.shard));
                    continue;
                }
                let s = p.streak.entry((a.seg, a.shard)).or_insert((a.to, 0));
                if s.0 == a.to {
                    s.1 += 1;
                } else {
                    *s = (a.to, 1);
                }
                if s.1 >= p.hysteresis {
                    p.streak.remove(&(a.seg, a.shard));
                    moves.push((a.seg, a.shard, a.to));
                }
            }
            p.interval
        };
        for (seg, shard, to) in moves {
            self.apply_migrate(seg, to, Some(shard));
        }
        if !self.sites.iter().all(Site::all_done) {
            self.push(self.now + interval, Ev::PolicyTick);
        }
    }

    /// Runs until the given simulated time (events at exactly `until`
    /// are processed).
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(t) = self.next_event_time() {
            if t > until {
                break;
            }
            let (t, _, ev) = self.events.pop().expect("peeked");
            if t > self.now {
                self.now = t;
            }
            match ev {
                Ev::Arrival { to, from, msg, stamp } => {
                    if let Some(stamp) = stamp {
                        self.deliver_faulty(to, from, msg, stamp);
                    } else {
                        self.deliver_msg(to, from, msg);
                    }
                }
                Ev::SiteWake { site } => {
                    if !self.site_down(site) {
                        self.poke(site);
                    }
                }
                Ev::EngineTimer { site, token } => {
                    if !self.site_down(site) {
                        self.sites[site]
                            .queue_server_work(ServerWork::Timer { token }, self.now);
                        self.poke(site);
                    }
                }
                Ev::Crash { site } => self.apply_crash(site),
                Ev::Restart { site } => self.apply_restart(site),
                Ev::LinkProbe { src, dst } => self.link_probe(src, dst),
                Ev::Migrate { seg, to, shard } => self.apply_migrate(seg, to, shard),
                Ev::PolicyTick => self.policy_tick(),
                Ev::OpenLoopArrival { station } => self.openloop_arrival(station),
            }
        }
        if until > self.now {
            self.now = until;
        }
    }

    /// Runs for a duration from the current time.
    pub fn run_for(&mut self, d: SimDuration) {
        let until = self.now + d;
        self.run_until(until);
    }

    /// Runs until every program has exited or the deadline passes.
    /// Returns true if all programs finished. On failure the stuck
    /// processes are reported to stderr — a silent `false` used to leave
    /// no clue *which* pid hung, which made protocol hangs needlessly
    /// painful to localize.
    pub fn run_to_completion(&mut self, deadline: SimTime) -> bool {
        while self.now < deadline {
            if self.sites.iter().all(Site::all_done) {
                return true;
            }
            let Some(t) = self.next_event_time() else {
                break;
            };
            if t > deadline {
                break;
            }
            self.run_until(t);
        }
        let stuck = self.stuck_pids();
        if stuck.is_empty() {
            return true;
        }
        eprintln!(
            "run_to_completion: {} process(es) stuck at {:?} (deadline {:?}): {:?}",
            stuck.len(),
            self.now,
            deadline,
            stuck
        );
        // For each stuck process, dump the offending page's library
        // record — queue, current epoch, pending serve — plus the stuck
        // site's own routing hint, so a wedged handoff (role in flight,
        // stale hint, orphaned serve) is visible from the log alone.
        for (pid, _) in &stuck {
            let site = &self.sites[pid.site.index()];
            let Some(proc_) = site.procs.iter().find(|p| p.pid == *pid) else { continue };
            let Some((r, access)) = proc_.pending.as_ref().and_then(|(op, _)| op.access())
            else {
                continue;
            };
            let engine = site.driver.engine();
            eprintln!(
                "  {:?} blocked on {:?} page {} ({:?}); hint: library at site{} epoch {}",
                pid,
                r.seg,
                r.page.0,
                access,
                engine.resolved_library(r.seg, r.page).0,
                engine.library_epoch(r.seg, r.page),
            );
            let mut live = false;
            for s in &self.sites {
                if let Some(d) = s.driver.engine().library_debug(r.seg, r.page) {
                    eprintln!("    library role live at site{}: {}", s.id.0, d);
                    live = true;
                }
            }
            if !live {
                eprintln!(
                    "    no site holds the active library role for {:?} (handoff in flight?)",
                    r.seg
                );
            }
        }
        false
    }

    /// Processes that have not exited, with their scheduling state —
    /// the diagnostic payload for a failed [`World::run_to_completion`].
    pub fn stuck_pids(&self) -> Vec<(Pid, ProcState)> {
        self.sites
            .iter()
            .flat_map(|s| s.procs.iter())
            .filter(|p| p.state != ProcState::Done)
            .map(|p| (p.pid, p.state))
            .collect()
    }

    /// Sum of a metric across all processes at a site.
    pub fn site_metric(&self, site: usize) -> u64 {
        self.sites[site].procs.iter().map(Process::metric).sum()
    }

    /// Sum of all program metrics in the world.
    pub fn total_metric(&self) -> u64 {
        (0..self.sites.len()).map(|s| self.site_metric(s)).sum()
    }

    /// Total completed shared-memory accesses in the world.
    pub fn total_accesses(&self) -> u64 {
        self.sites.iter().flat_map(|s| s.procs.iter()).map(|p| p.accesses).sum()
    }

    /// Total protocol events dispatched through the driver layer across
    /// all sites (faults, deliveries, timer firings).
    pub fn engine_events(&self) -> u64 {
        self.sites.iter().map(|s| s.driver.events_dispatched()).sum()
    }

    /// Enables Table 3 phase tracing (preallocates the trace buffer).
    pub fn enable_phase_trace(&mut self) {
        self.instr.trace_phases = true;
        self.instr.phases.reserve(256);
    }

    /// Enables §9 reference-log collection. Off by default: every
    /// library reference appends an entry, so long runs would grow the
    /// log without bound and the allocations would distort throughput.
    pub fn enable_ref_log(&mut self) {
        self.collect_ref_log = true;
    }

    /// Enables protocol trace collection: flips the engines' trace flag
    /// at every site and starts buffering the resulting events (plus the
    /// world's own wire and fault-layer events). Enabling tracing never
    /// changes simulated timestamps — trace effects are excluded from
    /// the scheduler's progress accounting.
    pub fn enable_tracing(&mut self) {
        self.collect_trace = true;
        for s in &mut self.sites {
            s.driver.set_tracing(true);
        }
    }

    /// The collected protocol trace (empty unless
    /// [`World::enable_tracing`] was called).
    pub fn trace_events(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// Takes ownership of the collected trace, leaving it empty.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.trace)
    }

    /// Builds a wire-layer trace event (sender's perspective).
    fn wire_event(
        &self,
        at: SimTime,
        site: usize,
        kind: TraceKind,
        msg: &ProtoMsg,
    ) -> TraceEvent {
        let mut ev = TraceEvent::new(at, SiteId(site as u16), kind);
        ev.subject = Some(msg.subject());
        ev.msg = Some(msg.kind());
        ev
    }
}
