//! Validation of the simulator against the paper's measured anchors:
//! local ping-pong rates (§7.2), the Table 3 fetch breakdown, and the
//! uncontended access rate underlying Figure 8.

use mirage_core::{
    DeltaPolicy,
    ProtocolConfig,
};
use mirage_sim::{
    instrument::FetchPhase,
    SimConfig,
    World,
};
use mirage_types::{
    Delta,
    SimDuration,
    SimTime,
};
use mirage_workloads::{
    Decrementer,
    PingPongPinger,
    PingPongPonger,
};

fn config(delta: Delta) -> SimConfig {
    SimConfig {
        protocol: ProtocolConfig { delta: DeltaPolicy::Uniform(delta), ..Default::default() },
        ..Default::default()
    }
}

/// §7.2: the original busy-waiting version measured "surprisingly only 5
/// cycles/second" on a single site — each process burns its whole
/// quantum spinning.
#[test]
fn local_pingpong_without_yield_is_quantum_bound() {
    let mut w = World::new(1, config(Delta::ZERO));
    let seg = w.create_segment(0, 1);
    w.spawn(0, Box::new(PingPongPinger::new(seg, 100_000, false)), 1);
    w.spawn(0, Box::new(PingPongPonger::new(seg, false)), 1);
    w.run_until(SimTime::from_millis(10_000));
    let cycles = w.site_metric(0) / 2; // both processes count the cycle
    let rate = cycles as f64 / 10.0;
    assert!(
        (3.0..=7.0).contains(&rate),
        "local no-yield rate should be ≈5 cycles/s, got {rate}"
    );
}

/// §7.2: with `yield()` the local rate rose to 166 cycles/second, "a
/// factor of 35 speedup".
#[test]
fn local_pingpong_with_yield_matches_paper() {
    let mut w = World::new(1, config(Delta::ZERO));
    let seg = w.create_segment(0, 1);
    w.spawn(0, Box::new(PingPongPinger::new(seg, 100_000, true)), 1);
    w.spawn(0, Box::new(PingPongPonger::new(seg, true)), 1);
    w.run_until(SimTime::from_millis(10_000));
    let cycles = w.site_metric(0) / 2;
    let rate = cycles as f64 / 10.0;
    assert!(
        (140.0..=200.0).contains(&rate),
        "local yield rate should be ≈166 cycles/s, got {rate}"
    );
}

/// The speedup factor between the two local versions is ≈35×.
#[test]
fn local_yield_speedup_factor() {
    let run = |use_yield: bool| {
        let mut w = World::new(1, config(Delta::ZERO));
        let seg = w.create_segment(0, 1);
        w.spawn(0, Box::new(PingPongPinger::new(seg, 100_000, use_yield)), 1);
        w.spawn(0, Box::new(PingPongPonger::new(seg, use_yield)), 1);
        w.run_until(SimTime::from_millis(20_000));
        w.site_metric(0) as f64 / 2.0 / 20.0
    };
    let slow = run(false);
    let fast = run(true);
    let factor = fast / slow;
    assert!(
        (20.0..=50.0).contains(&factor),
        "yield speedup should be ≈35x, got {factor:.1}x ({slow} vs {fast})"
    );
}

/// Table 3: obtaining an in-memory page from an idle remote site takes
/// ≈27.5 ms end to end.
#[test]
fn table3_remote_fetch_elapsed() {
    use mirage_sim::{
        MemRef,
        Op,
        Program,
    };
    use mirage_types::PageNum;

    struct OneRead {
        r: MemRef,
        done: bool,
    }
    impl Program for OneRead {
        fn step(&mut self, _v: Option<u32>) -> Op {
            if self.done {
                return Op::Exit;
            }
            self.done = true;
            Op::Read(self.r)
        }
        fn label(&self) -> &str {
            "one-read"
        }
    }

    let mut w = World::new(2, config(Delta::ZERO));
    let seg = w.create_segment(0, 1); // library and page at site 0
    w.enable_phase_trace();
    // One process at site 1 performs a single remote read.
    w.spawn(1, Box::new(OneRead { r: MemRef::new(seg, PageNum(0), 0), done: false }), 1);
    w.run_until(SimTime::from_millis(500));
    let total = w
        .instr
        .phase_gap(FetchPhase::FaultTaken, FetchPhase::PageReceived)
        .expect("fetch completed");
    let ms = total.as_millis_f64();
    assert!((26.0..=29.5).contains(&ms), "remote fetch should be ≈27.5 ms, got {ms:.2} ms");
}

/// The uncontended read-write loop rate caps Figure 8's peak at
/// ≈115,000 accesses/second (single process, page resident locally).
#[test]
fn uncontended_decrement_rate_matches_figure8_peak() {
    let mut w = World::new(1, config(Delta::ZERO));
    let seg = w.create_segment(0, 1);
    w.spawn(0, Box::new(Decrementer::new(seg, 0, 10_000_000)), 1);
    w.run_until(SimTime::from_millis(10_000));
    // Each iteration is one read + one write.
    let rate = w.total_accesses() as f64 / 10.0;
    assert!(
        (100_000.0..=130_000.0).contains(&rate),
        "uncontended loop should run ≈115k read-write instr/s, got {rate}"
    );
}

/// Two-site worst case at Δ=0 with yield: the paper calculates a 9
/// cycles/s communication bound and observes scheduling keeps real
/// throughput below it.
#[test]
fn remote_pingpong_under_communication_bound() {
    let mut w = World::new(2, config(Delta::ZERO));
    let seg = w.create_segment(0, 1);
    w.spawn(0, Box::new(PingPongPinger::new(seg, 100_000, true)), 1);
    w.spawn(1, Box::new(PingPongPonger::new(seg, true)), 1);
    w.run_until(SimTime::from_millis(20_000));
    let cycles = w.sites[0].procs[0].metric();
    let rate = cycles as f64 / 20.0;
    assert!(rate > 1.0, "the application must make progress, got {rate}");
    assert!(
        rate <= 9.5,
        "throughput cannot beat the 9 cycles/s communication bound, got {rate}"
    );
}

/// Messages per worst-case cycle: the paper counts 9 messages, 3 of
/// them large. Interleaving details shift ours slightly; assert the
/// band and that larges are page grants only.
#[test]
fn remote_pingpong_message_accounting() {
    let mut w = World::new(2, config(Delta::ZERO));
    let seg = w.create_segment(0, 1);
    w.spawn(0, Box::new(PingPongPinger::new(seg, 100_000, true)), 1);
    w.spawn(1, Box::new(PingPongPonger::new(seg, true)), 1);
    w.run_until(SimTime::from_millis(30_000));
    let cycles = w.sites[0].procs[0].metric();
    assert!(cycles > 20, "need a meaningful sample, got {cycles}");
    let per_cycle = w.instr.msgs.total() as f64 / cycles as f64;
    let large_per_cycle = w.instr.msgs.large as f64 / cycles as f64;
    assert!(
        (7.0..=11.0).contains(&per_cycle),
        "paper counts 9 messages/cycle; got {per_cycle:.2}"
    );
    assert!(
        (1.5..=3.5).contains(&large_per_cycle),
        "paper counts 3 large/cycle; got {large_per_cycle:.2}"
    );
}

/// Data integrity: the ping-pong protocol itself validates every
/// handoff (a cycle only completes when the partner's value is seen),
/// so completing many cycles at various Δ proves coherence under the
/// simulator's timing.
#[test]
fn remote_pingpong_completes_cycles_at_various_delta() {
    for delta in [0u32, 2, 6, 10] {
        let mut w = World::new(2, config(Delta(delta)));
        let seg = w.create_segment(0, 1);
        w.spawn(0, Box::new(PingPongPinger::new(seg, 100_000, true)), 1);
        w.spawn(1, Box::new(PingPongPonger::new(seg, true)), 1);
        w.run_until(SimTime::from_millis(20_000));
        let p1 = w.sites[0].procs[0].metric();
        let p2 = w.sites[1].procs[0].metric();
        assert!(p1 > 5, "Δ={delta}: progress stalled at {p1} cycles");
        assert!(
            p1.abs_diff(p2) <= 1,
            "Δ={delta}: processes must advance in lockstep ({p1} vs {p2})"
        );
    }
}

/// Yield-sleep accounting: the paper observed "2.75 sleeps of 33 msecs"
/// per cycle at Δ=2. Require the same order of magnitude.
#[test]
fn yield_sleep_accounting_at_delta_two() {
    let mut w = World::new(2, config(Delta(2)));
    let seg = w.create_segment(0, 1);
    w.spawn(0, Box::new(PingPongPinger::new(seg, 100_000, true)), 1);
    w.spawn(1, Box::new(PingPongPonger::new(seg, true)), 1);
    w.run_until(SimTime::from_millis(30_000));
    let cycles = w.sites[0].procs[0].metric();
    assert!(cycles > 10);
    let sleeps: u64 = w.sites.iter().flat_map(|s| s.procs.iter()).map(|p| p.yield_sleeps).sum();
    let per_cycle = sleeps as f64 / cycles as f64;
    assert!(
        (1.0..=6.0).contains(&per_cycle),
        "paper: ≈2.75 yield sleeps per cycle at Δ=2; got {per_cycle:.2}"
    );
}

/// A Δ hold delays remote steals: cycle rate must fall as Δ grows
/// beyond the handoff time.
#[test]
fn delta_throttles_worst_case() {
    let rate = |delta: u32| {
        let mut w = World::new(2, config(Delta(delta)));
        let seg = w.create_segment(0, 1);
        w.spawn(0, Box::new(PingPongPinger::new(seg, 100_000, true)), 1);
        w.spawn(1, Box::new(PingPongPonger::new(seg, true)), 1);
        w.run_until(SimTime::from_millis(20_000));
        w.sites[0].procs[0].metric() as f64 / 20.0
    };
    let r0 = rate(0);
    let r10 = rate(10);
    assert!(r10 < r0, "Δ=10 ticks must slow the thrasher: Δ0={r0:.2} Δ10={r10:.2}");
}

/// Background compute on a third site is unaffected by thrashing
/// elsewhere, but background compute *on a thrashing site* benefits from
/// larger Δ (E10, §7.3).
#[test]
fn larger_delta_helps_background_work() {
    use mirage_workloads::Background;
    let bg_chunks = |delta: u32| {
        let mut w = World::new(2, config(Delta(delta)));
        let seg = w.create_segment(0, 1);
        w.spawn(0, Box::new(PingPongPinger::new(seg, 100_000, true)), 1);
        w.spawn(1, Box::new(PingPongPonger::new(seg, true)), 1);
        w.spawn(1, Box::new(Background::new(SimDuration::from_millis(5))), 0);
        w.run_until(SimTime::from_millis(20_000));
        w.sites[1].procs[1].metric()
    };
    let small = bg_chunks(0);
    let large = bg_chunks(30);
    // The effect is modest when the thrasher already yields (its sleeps
    // release the CPU either way), but the direction must hold: fewer
    // thrash cycles per second at larger Δ leaves more CPU over.
    assert!(large > small, "Δ=30 should free CPU for background work: Δ0={small} Δ30={large}");
}
