//! Differential test: enabling protocol tracing must be *pure
//! observation*. The traced run and the untraced run of the same
//! workload must agree on every simulated observable — the clock, the
//! event count, the instrumentation, the reference log, and the final
//! page bytes. Tracing buys a causal event record; it may not buy even
//! one nanosecond of simulated time.

use mirage_sim::{
    program::Script,
    run_fuzz_seed,
    run_fuzz_seed_traced,
    world::{
        SimConfig,
        World,
    },
    MemRef,
    Op,
};
use mirage_types::{
    PageNum,
    SegmentId,
    SimDuration,
    SimTime,
};

/// The fault_differential workload: writers on two sites ping-ponging
/// two pages while a third site reads both.
fn build(traced: bool) -> (World, SegmentId) {
    let mut world = World::new(3, SimConfig::default());
    world.enable_ref_log();
    if traced {
        world.enable_tracing();
    }
    let seg = world.create_segment(0, 2);
    let p0 = PageNum(0);
    let p1 = PageNum(1);
    for site in 0..2 {
        let mut ops = Vec::new();
        for i in 0..25u32 {
            let page = if i % 2 == 0 { p0 } else { p1 };
            ops.push(Op::Write(MemRef::new(seg, page, site * 4), i));
            ops.push(Op::Read(MemRef::new(seg, page, (1 - site) * 4)));
            if i % 5 == 0 {
                ops.push(Op::Yield);
            }
        }
        ops.push(Op::Exit);
        world.spawn(site, Box::new(Script::new(ops)), 2);
    }
    let mut reader_ops = Vec::new();
    for i in 0..30u32 {
        let page = if i % 3 == 0 { p0 } else { p1 };
        reader_ops.push(Op::Read(MemRef::new(seg, page, ((i % 2) * 4) as usize)));
        reader_ops.push(Op::Compute(SimDuration::from_micros(500)));
    }
    reader_ops.push(Op::Exit);
    world.spawn(2, Box::new(Script::new(reader_ops)), 2);
    (world, seg)
}

fn page_bytes(world: &World, seg: SegmentId, page: PageNum) -> Vec<Option<Vec<u8>>> {
    world
        .sites
        .iter()
        .map(|s| {
            s.store.segment(seg).and_then(|ls| ls.frame(page)).map(|f| f.as_bytes().to_vec())
        })
        .collect()
}

#[test]
fn tracing_is_invisible_to_the_simulation() {
    let (mut plain, seg_a) = build(false);
    let (mut traced, seg_b) = build(true);
    assert_eq!(seg_a, seg_b);

    let deadline = SimTime::ZERO + SimDuration::from_millis(600_000);
    assert!(plain.run_to_completion(deadline), "untraced run must complete");
    assert!(traced.run_to_completion(deadline), "traced run must complete");

    // Same simulated clock, event for event.
    assert_eq!(plain.now(), traced.now());
    assert_eq!(plain.engine_events(), traced.engine_events());

    // Same observable work.
    assert_eq!(plain.total_accesses(), traced.total_accesses());
    assert_eq!(plain.total_metric(), traced.total_metric());

    // Same instrumentation, down to per-kind message counts.
    assert_eq!(plain.instr.msgs.short, traced.instr.msgs.short);
    assert_eq!(plain.instr.msgs.large, traced.instr.msgs.large);
    assert_eq!(plain.instr.msgs.by_kind, traced.instr.msgs.by_kind);
    assert_eq!(plain.instr.remote_faults, traced.instr.remote_faults);
    assert_eq!(plain.instr.denials, traced.instr.denials);
    assert_eq!(plain.instr.reader_invalidations, traced.instr.reader_invalidations);
    assert_eq!(plain.instr.upgrades, traced.instr.upgrades);

    // Same reference log (§9) and final page bytes at every site.
    assert_eq!(plain.ref_log, traced.ref_log);
    for page in [PageNum(0), PageNum(1)] {
        assert_eq!(page_bytes(&plain, seg_a, page), page_bytes(&traced, seg_b, page));
    }

    // The untraced run collected nothing; the traced run collected a
    // self-consistent causal record of the same execution.
    assert!(plain.trace_events().is_empty());
    let trace = traced.trace_events();
    assert!(!trace.is_empty(), "traced run produced no events");
    // Every traced timestamp lies within the simulated run.
    assert!(trace.iter().all(|e| e.at <= traced.now()));
    let report = mirage_trace::check(trace);
    assert!(report.violations.is_empty(), "trace checker: {:?}", report.violations);
}

/// The same invariance must hold under fault storms: for a spread of
/// fuzz seeds, the traced scenario reaches the identical outcome —
/// completion, access counts, and fault-layer statistics — as the
/// untraced one. (The fuzz generator derives everything from the seed;
/// any drift here means tracing leaked into scheduling or RNG state.)
#[test]
fn traced_fuzz_seeds_match_untraced_outcomes() {
    for seed in [0u64, 1, 7, 13, 42, 99, 123, 1000] {
        let plain = run_fuzz_seed(seed);
        let (traced, trace) = run_fuzz_seed_traced(seed);
        assert_eq!(plain.completed, traced.completed, "seed {seed}: completion diverged");
        assert_eq!(plain.accesses, traced.accesses, "seed {seed}: access count diverged");
        assert_eq!(plain.violations, traced.violations, "seed {seed}: violation sets diverged");
        match (&plain.stats, &traced.stats) {
            (None, None) => {}
            (Some(a), Some(b)) => assert_eq!(a, b, "seed {seed}: fault stats diverged"),
            _ => panic!("seed {seed}: fault-layer activation diverged"),
        }
        assert!(!trace.is_empty(), "seed {seed}: traced run produced no events");
    }
}
