//! Regression: a failed `run_to_completion` must identify the stuck
//! processes. It used to return a bare `false`, which made protocol
//! hangs (the exact thing the fuzz harness exists to catch) opaque.

use mirage_sim::{
    program::Script,
    world::{
        SimConfig,
        World,
    },
    MemRef,
    Op,
    ProcState,
};
use mirage_types::{
    PageNum,
    SimDuration,
    SimTime,
};

#[test]
fn completion_reports_no_stuck_pids() {
    let mut world = World::new(2, SimConfig::default());
    let seg = world.create_segment(0, 1);
    let r = MemRef::new(seg, PageNum(0), 0);
    world.spawn(1, Box::new(Script::new(vec![Op::Write(r, 7), Op::Read(r), Op::Exit])), 1);
    let done = world.run_to_completion(SimTime::ZERO + SimDuration::from_millis(60_000));
    assert!(done);
    assert!(world.stuck_pids().is_empty());
}

#[test]
fn deadline_overrun_names_the_stuck_process() {
    let mut world = World::new(2, SimConfig::default());
    let seg = world.create_segment(0, 1);
    let r = MemRef::new(seg, PageNum(0), 0);
    // One well-behaved process and one that sleeps far past the deadline.
    let finisher = world.spawn(0, Box::new(Script::new(vec![Op::Write(r, 1), Op::Exit])), 1);
    let sleeper = world.spawn(
        1,
        Box::new(Script::new(vec![Op::Sleep(SimDuration::from_millis(3_600_000)), Op::Exit])),
        1,
    );
    let done = world.run_to_completion(SimTime::ZERO + SimDuration::from_millis(1_000));
    assert!(!done, "the sleeper cannot have finished");
    let stuck = world.stuck_pids();
    assert_eq!(stuck.len(), 1, "exactly one process is stuck: {stuck:?}");
    assert_eq!(stuck[0].0, sleeper);
    assert!(matches!(stuck[0].1, ProcState::Sleeping(_)), "stuck state: {:?}", stuck[0].1);
    assert!(!world.stuck_pids().iter().any(|(p, _)| *p == finisher));
}

#[test]
fn empty_event_queue_with_unfinished_work_reports_stuck() {
    // A process blocked forever (faulting on a page whose library never
    // answers because we never spawn it... not constructible here), so
    // approximate: a world whose only process exits immediately reports
    // clean, and stuck_pids is empty even before running.
    let mut world = World::new(1, SimConfig::default());
    let _seg = world.create_segment(0, 1);
    world.spawn(0, Box::new(Script::new(vec![Op::Exit])), 1);
    assert_eq!(world.stuck_pids().len(), 1, "not yet run: the process is pending");
    let done = world.run_to_completion(SimTime::ZERO + SimDuration::from_millis(1_000));
    assert!(done);
    assert!(world.stuck_pids().is_empty());
}
