//! Differential test: installing `FaultPlan::none()` must be
//! *indistinguishable* from never touching the fault layer. The
//! pristine simulation path is the one every repro binary runs; the
//! fault layer must cost it nothing — not one message, not one
//! reordered event, not one extra nanosecond of simulated time.

use mirage_net::FaultPlan;
use mirage_sim::{
    program::Script,
    world::{
        SimConfig,
        World,
    },
    MemRef,
    Op,
};
use mirage_types::{
    PageNum,
    SegmentId,
    SimDuration,
    SimTime,
};

/// A small cross-site workload with real contention: writers on two
/// sites ping-ponging two pages while a third site reads both.
fn build(install_none_plan: bool) -> (World, SegmentId) {
    let mut world = World::new(3, SimConfig::default());
    world.enable_ref_log();
    let seg = world.create_segment(0, 2);
    if install_none_plan {
        world.install_fault_plan(FaultPlan::none());
    }
    let p0 = PageNum(0);
    let p1 = PageNum(1);
    for site in 0..2 {
        let mut ops = Vec::new();
        for i in 0..25u32 {
            let page = if i % 2 == 0 { p0 } else { p1 };
            ops.push(Op::Write(MemRef::new(seg, page, site * 4), i));
            ops.push(Op::Read(MemRef::new(seg, page, (1 - site) * 4)));
            if i % 5 == 0 {
                ops.push(Op::Yield);
            }
        }
        ops.push(Op::Exit);
        world.spawn(site, Box::new(Script::new(ops)), 2);
    }
    let mut reader_ops = Vec::new();
    for i in 0..30u32 {
        let page = if i % 3 == 0 { p0 } else { p1 };
        reader_ops.push(Op::Read(MemRef::new(seg, page, ((i % 2) * 4) as usize)));
        reader_ops.push(Op::Compute(SimDuration::from_micros(500)));
    }
    reader_ops.push(Op::Exit);
    world.spawn(2, Box::new(Script::new(reader_ops)), 2);
    (world, seg)
}

fn page_bytes(world: &World, seg: SegmentId, page: PageNum) -> Vec<Option<Vec<u8>>> {
    world
        .sites
        .iter()
        .map(|s| {
            s.store.segment(seg).and_then(|ls| ls.frame(page)).map(|f| f.as_bytes().to_vec())
        })
        .collect()
}

#[test]
fn none_plan_is_byte_identical_to_no_fault_layer() {
    let (mut plain, seg_a) = build(false);
    let (mut with_plan, seg_b) = build(true);
    assert_eq!(seg_a, seg_b);

    let deadline = SimTime::ZERO + SimDuration::from_millis(600_000);
    assert!(plain.run_to_completion(deadline), "baseline must complete");
    assert!(with_plan.run_to_completion(deadline), "none-plan run must complete");

    // Same simulated clock, event for event.
    assert_eq!(plain.now(), with_plan.now());
    assert_eq!(plain.engine_events(), with_plan.engine_events());

    // Same observable work.
    assert_eq!(plain.total_accesses(), with_plan.total_accesses());
    assert_eq!(plain.total_metric(), with_plan.total_metric());

    // Same instrumentation, down to per-kind message counts.
    assert_eq!(plain.instr.msgs.short, with_plan.instr.msgs.short);
    assert_eq!(plain.instr.msgs.large, with_plan.instr.msgs.large);
    assert_eq!(plain.instr.msgs.by_kind, with_plan.instr.msgs.by_kind);
    assert_eq!(plain.instr.remote_faults, with_plan.instr.remote_faults);
    assert_eq!(plain.instr.local_faults, with_plan.instr.local_faults);
    assert_eq!(plain.instr.denials, with_plan.instr.denials);
    assert_eq!(plain.instr.reader_invalidations, with_plan.instr.reader_invalidations);
    assert_eq!(plain.instr.upgrades, with_plan.instr.upgrades);

    // Same reference log (§9), entry for entry.
    assert_eq!(plain.ref_log, with_plan.ref_log);

    // Same final page bytes at every site.
    for page in [PageNum(0), PageNum(1)] {
        assert_eq!(page_bytes(&plain, seg_a, page), page_bytes(&with_plan, seg_b, page));
    }

    // And the none-plan world never materialized fault state at all.
    assert!(with_plan.fault_stats().is_none());
}
