//! Schedule-fuzzing coherence harness (bounded sweep).
//!
//! Each seed builds a random world, workload, and fault plan
//! (drop/duplicate/delay/reorder plus site crash/restart), runs the
//! storm with the timeout/retry machinery enabled, and asserts at
//! quiescence that (1) the structural coherence invariants hold and
//! (2) every process's last write is visible in the surviving copy.
//!
//! The default sweep is sized for CI; widen it with
//! `MIRAGE_FUZZ_SEEDS=5000` (count) and/or `MIRAGE_FUZZ_START=1000`
//! (first seed). The `fault_storm` binary in `mirage-bench` runs the
//! same scenarios at scale. A failing seed replays deterministically:
//!
//! ```text
//! cargo run --release -p mirage-bench --bin fault_storm -- --seed <N> --trace
//! ```

use mirage_sim::{
    run_fuzz_seed,
    run_fuzz_seed_delta_traced,
    run_fuzz_seed_large_traced,
    run_fuzz_seed_matrix,
    run_fuzz_seed_migrating_traced,
    run_fuzz_seed_protocol_traced,
    run_fuzz_seed_traced,
    FuzzProtocol,
};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

#[test]
fn randomized_fault_storms_preserve_coherence() {
    let start = env_u64("MIRAGE_FUZZ_START", 0);
    let count = env_u64("MIRAGE_FUZZ_SEEDS", 60);
    let mut failures = Vec::new();
    for seed in start..start + count {
        // Run traced: the causal trace checker cross-checks the
        // structural `check_page` oracle on every seed, and its
        // violations land in the same outcome.
        let (outcome, _trace) = run_fuzz_seed_traced(seed);
        if !outcome.is_ok() {
            eprintln!("{}", outcome.describe());
            eprintln!(
                "replay: cargo run --release -p mirage-bench --bin fault_storm -- \
                 --seed {seed} --trace"
            );
            failures.push(seed);
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {count} fuzz seeds failed: {failures:?} (see stderr for replay commands)",
        failures.len()
    );
}

/// The same storms with a seeded manual library-migration schedule
/// layered underneath: epoch-stamped role handoffs must survive message
/// loss, duplication, and site crashes (including the library site
/// crashing mid-handoff) without violating either oracle, and the
/// epoch-aware trace checker must accept every traced run.
#[test]
fn randomized_fault_storms_with_migration_preserve_coherence() {
    let start = env_u64("MIRAGE_FUZZ_START", 0);
    let count = env_u64("MIRAGE_FUZZ_SEEDS", 60);
    let mut failures = Vec::new();
    for seed in start..start + count {
        let (outcome, _trace) = run_fuzz_seed_migrating_traced(seed);
        if !outcome.is_ok() {
            eprintln!("{}", outcome.describe());
            eprintln!(
                "replay: cargo run --release -p mirage-bench --bin fault_storm -- \
                 --seed {seed} --migrate --trace"
            );
            failures.push(seed);
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {count} migrating fuzz seeds failed: {failures:?} \
         (see stderr for replay commands)",
        failures.len()
    );
}

/// Planet-scale storms: 65–160 sites (chunked reader masks, paged
/// circuit table), a multi-page segment split into library shards, and
/// a shard-aware handoff schedule racing the same fault plan. Both
/// oracles run on every seed. Fewer seeds than the classic sweep — each
/// world is bigger — but the same env knobs widen it.
#[test]
fn large_sharded_fault_storms_preserve_coherence() {
    let start = env_u64("MIRAGE_FUZZ_START", 0);
    let count = env_u64("MIRAGE_FUZZ_LARGE_SEEDS", 16);
    let mut failures = Vec::new();
    for seed in start..start + count {
        let (outcome, _trace) = run_fuzz_seed_large_traced(seed);
        if !outcome.is_ok() {
            eprintln!("{}", outcome.describe());
            eprintln!(
                "replay: cargo run --release -p mirage-bench --bin fault_storm -- \
                 --seed {seed} --large --trace"
            );
            failures.push(seed);
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {count} large fuzz seeds failed: {failures:?} \
         (see stderr for replay commands)",
        failures.len()
    );
}

/// The classic storms replayed with `delta_grants` on: the flag is set
/// after every PRNG draw, so each seed's world, workload, and fault
/// plan are bit-identical to the plain run — only the grants' wire form
/// changes. Both oracles run on every seed (traced runs feed the causal
/// checker, which verifies each patched page against the full-serve
/// bytes), plus the §7.2-style completion check; at least one seed must
/// actually ship a delta so the sweep can't silently degenerate into
/// full grants.
#[test]
fn delta_mode_fault_storms_preserve_coherence() {
    let start = env_u64("MIRAGE_FUZZ_START", 0);
    let count = env_u64("MIRAGE_FUZZ_SEEDS", 60);
    let mut failures = Vec::new();
    let mut deltas_shipped = false;
    for seed in start..start + count {
        let (outcome, trace) = run_fuzz_seed_delta_traced(seed);
        if !outcome.is_ok() {
            eprintln!("{}", outcome.describe());
            eprintln!(
                "replay: cargo run --release -p mirage-bench --bin fault_storm -- \
                 --seed {seed} --delta --trace"
            );
            failures.push(seed);
        }
        deltas_shipped |=
            trace.iter().any(|ev| ev.kind == mirage_trace::TraceKind::DeltaGrantSent);
    }
    assert!(
        failures.is_empty(),
        "{} of {count} delta-mode fuzz seeds failed: {failures:?} \
         (see stderr for replay commands)",
        failures.len()
    );
    assert!(
        deltas_shipped,
        "no delta grant shipped across {count} delta-mode seeds — the mode is inert"
    );
}

/// One protocol's sweep over the pinned seed range, traced: both
/// offline oracles (copy-state and timestamp-ordering) cross-check the
/// in-world quiescence checks on every seed. A failure prints the
/// protocol-qualified `fault_storm` replay command.
fn protocol_sweep(protocol: FuzzProtocol) {
    let start = env_u64("MIRAGE_FUZZ_START", 0);
    let count = env_u64("MIRAGE_FUZZ_SEEDS", 60);
    let mut failures = Vec::new();
    for seed in start..start + count {
        let (outcome, _trace) = run_fuzz_seed_protocol_traced(seed, protocol);
        if !outcome.is_ok() {
            eprintln!("{}", outcome.describe());
            eprintln!(
                "replay: cargo run --release -p mirage-bench --bin fault_storm -- \
                 --seed {seed} --protocol {} --trace",
                protocol.name()
            );
            failures.push(seed);
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {count} {} fuzz seeds failed: {failures:?} (see stderr for replay commands)",
        failures.len(),
        protocol.name()
    );
}

/// The classic storms replayed under the Li–Hudak degenerate (Δ = 0,
/// both §6.1 optimizations off): the selector is applied after every
/// PRNG draw, so each seed's world, workload, and fault plan are
/// bit-identical to the Mirage sweep.
#[test]
fn li_fault_storms_preserve_coherence() {
    protocol_sweep(FuzzProtocol::Li);
}

/// The classic storms replayed under Tardis timestamp coherence: same
/// worlds, same workloads, same fault plans; the quiescence oracle
/// checks exclusive-ownership discipline and write visibility against
/// the authoritative copy, and the timestamp-ordering trace oracle
/// checks every grant the home issued.
#[test]
fn tardis_fault_storms_preserve_coherence() {
    protocol_sweep(FuzzProtocol::Tardis);
}

/// Cross-protocol differential: each seed runs under all three
/// protocols and the authoritative page bytes at quiescence must be
/// identical — every protocol must agree on what was written, not
/// merely stay internally coherent.
#[test]
fn cross_protocol_matrix_converges() {
    let start = env_u64("MIRAGE_FUZZ_START", 0);
    let count = env_u64("MIRAGE_FUZZ_MATRIX_SEEDS", 20);
    let mut failures = Vec::new();
    for seed in start..start + count {
        for outcome in run_fuzz_seed_matrix(seed) {
            if !outcome.is_ok() {
                eprintln!("{}", outcome.describe());
                eprintln!(
                    "replay: cargo run --release -p mirage-bench --bin fault_storm -- \
                     --seed {seed} --matrix"
                );
                failures.push(seed);
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} matrix runs diverged across protocols: {failures:?} \
         (see stderr for replay commands)",
        failures.len()
    );
}

#[test]
fn a_known_stormy_seed_does_real_work() {
    // Guard against the harness degenerating into a no-op: at least one
    // seed in the default range must actually exercise the fault layer
    // and the workload.
    let mut exercised = false;
    for seed in 0..20 {
        let outcome = run_fuzz_seed(seed);
        assert!(outcome.is_ok(), "{}", outcome.describe());
        if let Some(stats) = outcome.stats {
            if outcome.accesses > 0
                && (stats.dropped > 0 || stats.crashes > 0 || stats.dup_discarded > 0)
            {
                exercised = true;
            }
        }
    }
    assert!(exercised, "no seed in 0..20 injected any fault — generator is broken");
}
