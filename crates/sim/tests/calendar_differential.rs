//! Differential test: [`CalendarQueue`] against the `BinaryHeap` it
//! replaced, kept here as the executable ordering specification.
//!
//! The contract is exact: events pop in ascending `(time, seq)` order,
//! `seq` being the queue-assigned push counter (FIFO within an
//! instant). Both queues assign `seq` the same way, so every popped
//! triple — time, sequence number, payload — must match, over schedules
//! chosen to stress the calendar structure: same-instant clusters, far
//! jumps across year boundaries, and pushes behind an already-advanced
//! cursor.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mirage_sim::CalendarQueue;
use mirage_types::{
    Prng,
    SimTime,
};

/// The old event queue, verbatim in structure: a min-heap over
/// `(time, seq, payload)` with a monotone push counter.
struct HeapSpec {
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    seq: u64,
}

impl HeapSpec {
    fn new() -> Self {
        Self { heap: BinaryHeap::new(), seq: 0 }
    }

    fn push(&mut self, at: SimTime, item: u32) -> u64 {
        self.seq += 1;
        self.heap.push(Reverse((at, self.seq, item)));
        self.seq
    }

    fn peek(&self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(|Reverse((t, s, _))| (*t, *s))
    }

    fn pop(&mut self) -> Option<(SimTime, u64, u32)> {
        self.heap.pop().map(|Reverse(e)| e)
    }
}

/// Pushes to both queues, asserting the assigned sequence numbers agree.
fn push_both(cal: &mut CalendarQueue<u32>, spec: &mut HeapSpec, at: SimTime, item: u32) {
    assert_eq!(cal.push(at, item), spec.push(at, item), "push seq diverged");
}

/// Peeks and pops one event from both queues, asserting identity.
fn pop_both(cal: &mut CalendarQueue<u32>, spec: &mut HeapSpec) {
    assert_eq!(cal.peek(), spec.peek(), "peek diverged");
    assert_eq!(cal.pop(), spec.pop(), "pop diverged");
    assert_eq!(cal.len(), spec.heap.len(), "length diverged");
}

/// Fully arbitrary times: the cursor must chase pushes backwards and
/// forwards across year boundaries (a day is 2²¹ ns, a year 512 days).
#[test]
fn matches_heap_on_random_schedules() {
    for seed in 0..8u64 {
        let mut rng = Prng::new(seed);
        let mut cal = CalendarQueue::new();
        let mut spec = HeapSpec::new();
        // Up to ~3 "years" of spread so bucket indices collide.
        let span = 3 * 512 * (1u64 << 21);
        for i in 0..2000u32 {
            if rng.below(5) < 3 {
                push_both(&mut cal, &mut spec, SimTime(rng.below(span)), i);
            } else {
                pop_both(&mut cal, &mut spec);
            }
        }
        while !cal.is_empty() {
            pop_both(&mut cal, &mut spec);
        }
        assert_eq!(cal.pop(), spec.pop());
    }
}

/// The world's actual pattern: monotone `now`, short hops clustered
/// around the cursor, occasional timer pushes far ahead, and pushes at
/// exactly `now` right after a peek has advanced the cursor.
#[test]
fn matches_heap_on_simulation_shaped_schedule() {
    for seed in 100..104u64 {
        let mut rng = Prng::new(seed);
        let mut cal = CalendarQueue::new();
        let mut spec = HeapSpec::new();
        let mut now = SimTime(0);
        push_both(&mut cal, &mut spec, now, 0);
        for i in 1..3000u32 {
            // Drain to the next event, as run_until does.
            if let Some((t, _)) = cal.peek() {
                assert_eq!(spec.peek().map(|(t, _)| t), Some(t));
                now = t;
                pop_both(&mut cal, &mut spec);
            } else {
                break;
            }
            // React: a few new events near now (wire hops, wakes)...
            for _ in 0..rng.below(3) {
                push_both(&mut cal, &mut spec, SimTime(now.0 + rng.below(2_000_000)), i);
            }
            // ...sometimes a same-instant wake (the push-behind-cursor
            // case: the peek above already advanced the cursor)...
            if rng.below(4) == 0 {
                push_both(&mut cal, &mut spec, now, i);
            }
            // ...and rarely a timer a simulated second out.
            if rng.below(50) == 0 {
                push_both(&mut cal, &mut spec, SimTime(now.0 + 1_500_000_000), i);
            }
        }
        while !cal.is_empty() {
            pop_both(&mut cal, &mut spec);
        }
    }
}

/// A dense same-instant cluster interleaved with pops: FIFO order must
/// survive partial drains of the instant.
#[test]
fn matches_heap_within_one_instant() {
    let mut cal = CalendarQueue::new();
    let mut spec = HeapSpec::new();
    let t = SimTime(42);
    for i in 0..10 {
        push_both(&mut cal, &mut spec, t, i);
    }
    for i in 10..20 {
        pop_both(&mut cal, &mut spec);
        push_both(&mut cal, &mut spec, t, i);
    }
    while !cal.is_empty() {
        pop_both(&mut cal, &mut spec);
    }
}
