//! End-to-end tests of the open-loop station machinery: scheduled
//! arrivals injected by the world, parked workers woken per arrival,
//! lifecycle records stamped in order, and full determinism.

use mirage_sim::{
    MemRef,
    OpenLoopDemand,
    OpenLoopStation,
    SimConfig,
    World,
};
use mirage_types::{
    Access,
    Prng,
    SimDuration,
    SimTime,
};
use mirage_workloads::{
    build_demands,
    sample_arrivals,
    ArrivalProcess,
    DemandProfile,
};

/// A light schedule completes, every record is granted, and the stamps
/// are ordered `arrival ≤ submit ≤ grant` with FIFO submits.
#[test]
fn records_complete_and_stamp_in_order() {
    let mut world = World::new(2, SimConfig::default());
    let seg = world.create_segment(0, 1);
    let demands: Vec<(SimTime, OpenLoopDemand)> = (1..=40)
        .map(|i| {
            (
                SimTime::ZERO + SimDuration::from_millis(5 * i),
                OpenLoopDemand {
                    r: MemRef::new(seg, mirage_types::PageNum(0), 0),
                    access: if i % 3 == 0 { Access::Read } else { Access::Write },
                    value: i as u32,
                },
            )
        })
        .collect();
    let n = demands.len();
    let station =
        world.install_open_loop(OpenLoopStation { site: 1, demands, workers: 1, shm_pages: 1 });

    let completed = world.run_to_completion(SimTime::ZERO + SimDuration::from_millis(60_000));
    assert!(completed, "open-loop workers should drain the schedule and exit");

    let s = station.lock().unwrap();
    assert_eq!(s.records.len(), n);
    assert_eq!(s.completed(), n);
    let mut last_submit = SimTime::ZERO;
    for r in &s.records {
        let submit = r.submit.expect("every record submitted");
        let grant = r.grant.expect("every record granted");
        assert!(r.arrival <= submit, "submit cannot precede arrival");
        assert!(submit <= grant, "grant cannot precede submit");
        assert!(last_submit <= submit, "single worker submits FIFO");
        last_submit = submit;
    }
}

/// Overload: arrivals far faster than the service rate build real queue
/// depth (the open-loop property a closed loop cannot exhibit), and the
/// backlog still drains once arrivals stop. Two stations at different
/// sites write the same page, so ownership ping-pongs and every write
/// stays a genuine cross-site fault.
#[test]
fn saturating_schedule_builds_queue_depth() {
    let mut world = World::new(2, SimConfig::default());
    let seg = world.create_segment(0, 1);
    let schedule = |site: usize| -> Vec<(SimTime, OpenLoopDemand)> {
        (1..=200u64)
            .map(|i| {
                (
                    SimTime::ZERO + SimDuration::from_micros(100 * i),
                    OpenLoopDemand {
                        r: MemRef::new(seg, mirage_types::PageNum(0), site * 4),
                        access: Access::Write,
                        value: i as u32,
                    },
                )
            })
            .collect()
    };
    let stations: Vec<_> = (0..2)
        .map(|site| {
            world.install_open_loop(OpenLoopStation {
                site,
                demands: schedule(site),
                workers: 1,
                shm_pages: 1,
            })
        })
        .collect();

    let completed = world.run_to_completion(SimTime::ZERO + SimDuration::from_millis(600_000));
    assert!(completed, "backlog should drain after the schedule ends");

    let max_depth = stations
        .iter()
        .flat_map(|st| {
            let s = st.lock().unwrap();
            assert_eq!(s.completed(), 200);
            s.records.iter().map(|r| r.depth_at_submit).collect::<Vec<_>>()
        })
        .max()
        .unwrap();
    assert!(
        max_depth > 50,
        "a saturating schedule should build deep queues, saw max depth {max_depth}"
    );
    // Queueing delay accumulates in overload: the last request's
    // sojourn dwarfs the first's. (Station 0 gives the clean signal —
    // its first request is served before contention sets in, while
    // station 1's very first fault already queues behind station 0.)
    let s = stations[0].lock().unwrap();
    let sojourn = |i: usize| {
        let r = &s.records[i];
        r.grant.unwrap().since(r.arrival)
    };
    assert!(sojourn(199).0 > sojourn(0).0 * 5, "overload sojourn should balloon");
}

/// The same seed twice produces byte-identical schedules and records —
/// the determinism pin the whole latency pipeline rests on.
#[test]
fn open_loop_runs_are_deterministic() {
    let run = || {
        let mut world = World::new(3, SimConfig::default());
        let seg = world.create_segment(0, 2);
        let mut rng = Prng::new(0xD15C);
        let mut out = Vec::new();
        for site in 0..3usize {
            let arrivals = sample_arrivals(
                ArrivalProcess::Poisson { rate_per_sec: 60.0 },
                &mut rng,
                SimDuration::from_millis(800),
            );
            let profile = DemandProfile {
                seg,
                pages: 2,
                write_offset: site * 4,
                read_words: 3,
                write_pct: 50,
                value_base: (site as u32 + 1) * 1_000,
            };
            let (demands, _) = build_demands(&arrivals, &profile, &mut rng);
            out.push(world.install_open_loop(OpenLoopStation {
                site,
                demands,
                workers: 1,
                shm_pages: 2,
            }));
        }
        let completed =
            world.run_to_completion(SimTime::ZERO + SimDuration::from_millis(120_000));
        assert!(completed);
        out.iter()
            .map(|h| {
                let s = h.lock().unwrap();
                s.records
                    .iter()
                    .map(|r| {
                        (
                            r.arrival.0,
                            r.submit.unwrap().0,
                            r.grant.unwrap().0,
                            r.depth_at_submit,
                        )
                    })
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run(), "identical seeds must replay identical records");
}

/// Multiple workers drain one queue concurrently (FCFS, multi-server).
#[test]
fn multiple_workers_share_one_station() {
    let mut world = World::new(2, SimConfig::default());
    let seg = world.create_segment(0, 1);
    let demands: Vec<(SimTime, OpenLoopDemand)> = (1..=60)
        .map(|i| {
            (
                SimTime::ZERO + SimDuration::from_millis(2 * i),
                OpenLoopDemand {
                    r: MemRef::new(seg, mirage_types::PageNum(0), 0),
                    access: Access::Read,
                    value: 0,
                },
            )
        })
        .collect();
    let station =
        world.install_open_loop(OpenLoopStation { site: 1, demands, workers: 3, shm_pages: 1 });
    let completed = world.run_to_completion(SimTime::ZERO + SimDuration::from_millis(60_000));
    assert!(completed, "all three workers should exit once the queue drains");
    assert_eq!(station.lock().unwrap().completed(), 60);
}
