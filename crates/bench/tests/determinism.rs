//! Parallel-sweep determinism: every experiment must produce identical
//! results at any worker count, and the `--quick` `repro_all` report
//! must match its committed golden output byte for byte.
//!
//! The worker count is process-global ([`set_jobs`]), so the tests that
//! flip it serialize on one mutex.

use std::sync::Mutex;

use mirage_bench::{
    ablation_opts,
    baseline_compare,
    baseline_compare_with_tardis,
    dynamic_delta_with,
    false_sharing,
    fig7,
    fig8,
    harness::set_jobs,
    invalidation_scaling,
    local_pingpong,
    migration_hotspot,
    migration_hotspot_sharded,
    openloop_cdf,
    openloop_knees,
    openloop_ladder,
    openloop_storm,
    repro_all_report,
    test_and_set,
    thrash_system,
    timestamp_compare,
    traced_storm_metrics,
    ReproParams,
};

static JOBS_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` at one worker and at four, returning both Debug renderings.
/// The lock serializes every test that touches the global worker count.
fn at_jobs_1_and_4<R: std::fmt::Debug>(f: impl Fn() -> R) -> (String, String) {
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_jobs(1);
    let sequential = format!("{:?}", f());
    set_jobs(4);
    let parallel = format!("{:?}", f());
    set_jobs(0);
    (sequential, parallel)
}

#[test]
fn fig7_is_identical_at_any_worker_count() {
    let (a, b) = at_jobs_1_and_4(|| fig7(&[0, 2, 6], 2));
    assert_eq!(a, b);
}

#[test]
fn fig8_is_identical_at_any_worker_count() {
    let (a, b) = at_jobs_1_and_4(|| fig8(&[0, 6, 60], 5_000));
    assert_eq!(a, b);
}

#[test]
fn local_pingpong_is_identical_at_any_worker_count() {
    let (a, b) = at_jobs_1_and_4(|| local_pingpong(2));
    assert_eq!(a, b);
}

#[test]
fn test_and_set_is_identical_at_any_worker_count() {
    let (a, b) = at_jobs_1_and_4(|| test_and_set(&[0, 6], false, 2));
    assert_eq!(a, b);
}

#[test]
fn thrash_system_is_identical_at_any_worker_count() {
    let (a, b) = at_jobs_1_and_4(|| thrash_system(&[0, 6], 2));
    assert_eq!(a, b);
}

#[test]
fn false_sharing_is_identical_at_any_worker_count() {
    let (a, b) = at_jobs_1_and_4(|| false_sharing(&[1, 2], 300));
    assert_eq!(a, b);
}

#[test]
fn ablation_opts_is_identical_at_any_worker_count() {
    let (a, b) = at_jobs_1_and_4(|| ablation_opts(2));
    assert_eq!(a, b);
}

#[test]
fn invalidation_scaling_is_identical_at_any_worker_count() {
    let (a, b) = at_jobs_1_and_4(|| invalidation_scaling(&[1, 2]));
    assert_eq!(a, b);
}

#[test]
fn baseline_compare_is_identical_at_any_worker_count() {
    let (a, b) = at_jobs_1_and_4(baseline_compare);
    assert_eq!(a, b);
}

/// The `--tardis` arm of the baseline comparison adds a fourth
/// analytical row per trace; the flagged table must be as
/// schedule-independent as the default one.
#[test]
fn baseline_compare_with_tardis_is_identical_at_any_worker_count() {
    let (a, b) = at_jobs_1_and_4(baseline_compare_with_tardis);
    assert_eq!(a, b);
}

/// The T1 matrix mixes direct world simulation with traced fuzz-storm
/// sweeps; both halves run under `par_map`, so the whole table — every
/// message count, wire-byte total, and renewal/invalidation split —
/// must be byte-identical at any worker count.
#[test]
fn timestamp_compare_is_identical_at_any_worker_count() {
    let (a, b) = at_jobs_1_and_4(|| timestamp_compare(true));
    assert_eq!(a, b);
}

#[test]
fn dynamic_delta_is_identical_at_any_worker_count() {
    let (a, b) = at_jobs_1_and_4(|| dynamic_delta_with(2_000, 2));
    assert_eq!(a, b);
}

/// The M1 arms each run a library handoff mid-flight (manual schedule
/// or the live advisor); the sweep must still be byte-identical at any
/// worker count — migration decisions are driven entirely by simulated
/// time, never by wall-clock worker scheduling.
#[test]
fn migration_is_identical_at_any_worker_count() {
    let (a, b) = at_jobs_1_and_4(|| migration_hotspot(120));
    assert_eq!(a, b);
}

/// The sharded M2 arms migrate two library shards of one segment
/// independently (manual schedule and advisor-discovered); per-range
/// epochs and shard-bucketed advice must not introduce any worker-count
/// dependence.
#[test]
fn sharded_migration_is_identical_at_any_worker_count() {
    let (a, b) = at_jobs_1_and_4(|| migration_hotspot_sharded(120));
    assert_eq!(a, b);
}

/// Past the 64-site ceiling the reader masks run chunked and the
/// circuit table runs paged; the sweep must stay byte-identical at any
/// worker count there too.
#[test]
fn large_world_invalidation_scaling_is_identical_at_any_worker_count() {
    let (a, b) = at_jobs_1_and_4(|| invalidation_scaling(&[256]));
    assert_eq!(a, b);
}

/// Metrics registries merged across a traced sweep must render the
/// same report at any worker count: per-seed shards are produced in
/// input order and the merge is commutative, so worker scheduling has
/// nothing to perturb.
#[test]
fn storm_metrics_merge_is_identical_at_any_worker_count() {
    let seeds: Vec<u64> = (0..12).collect();
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_jobs(1);
    let sequential = traced_storm_metrics(&seeds);
    set_jobs(4);
    let parallel = traced_storm_metrics(&seeds);
    set_jobs(0);
    assert_eq!(sequential, parallel);
    assert_eq!(sequential.render(), parallel.render());
    assert!(sequential.counter("demand.requests") > 0, "sweep traced no protocol work");
}

/// The quick report both pins determinism across worker counts and
/// serves as the golden output the CI smoke compares against.
/// Regenerate with:
/// `cargo run --release -p mirage-bench --bin repro_all -- --quick \
///  > crates/bench/tests/golden/repro_all_quick.txt`
#[test]
fn repro_all_quick_matches_golden() {
    let golden = include_str!("golden/repro_all_quick.txt");
    let (a, b) = at_jobs_1_and_4(|| repro_all_report(&ReproParams::quick()));
    assert_eq!(a, b, "quick report must not depend on worker count");
    // `at_jobs_1_and_4` Debug-escapes the string; compare the raw one.
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    assert_eq!(repro_all_report(&ReproParams::quick()), golden);
}

/// The L1 open-loop ladder, knee finder, storm overlay, and CDF dump
/// together form the latency report; each must be byte-identical at
/// any worker count (and the binary's output with them).
#[test]
fn openloop_ladder_is_identical_at_any_worker_count() {
    let (a, b) = at_jobs_1_and_4(|| openloop_ladder(true));
    assert_eq!(a, b);
}

#[test]
fn openloop_knees_are_identical_at_any_worker_count() {
    let (a, b) = at_jobs_1_and_4(|| openloop_knees(true));
    assert_eq!(a, b);
}

#[test]
fn openloop_storm_is_identical_at_any_worker_count() {
    let (a, b) = at_jobs_1_and_4(|| openloop_storm(true));
    assert_eq!(a, b);
}

#[test]
fn openloop_cdf_is_identical_across_reruns() {
    let a = openloop_cdf(true, 80);
    let b = openloop_cdf(true, 80);
    assert_eq!(a, b, "CDF dump must replay byte-identically");
    assert!(a.lines().count() > 10, "CDF should carry one line per record");
}
