//! Protocol-engine throughput: complete fault→grant exchanges per
//! second through the real engines (no simulated time costs).

use mirage_baseline::{
    DsmProtocol,
    MirageCost,
    TraceOp,
};
use mirage_bench::harness::bench;
use mirage_core::ProtocolConfig;
use mirage_net::NetCosts;
use mirage_types::{
    Access,
    PageNum,
    SiteId,
};

fn main() {
    {
        let mut m = MirageCost::new(2, 1, ProtocolConfig::default(), NetCosts::vax_locus());
        let mut i = 0u64;
        bench("pingpong_exchange", || {
            let site = SiteId((i % 2) as u16);
            i += 1;
            let w = m.access(TraceOp { site, page: PageNum(0), access: Access::Write });
            let r = m.access(TraceOp {
                site: SiteId(((i + 1) % 2) as u16),
                page: PageNum(0),
                access: Access::Read,
            });
            std::hint::black_box((w, r))
        });
    }
    {
        let mut m = MirageCost::new(2, 1, ProtocolConfig::default(), NetCosts::vax_locus());
        let mut i = 0u64;
        bench("upgrade_exchange", || {
            let site = SiteId((i % 2) as u16);
            i += 1;
            let r = m.access(TraceOp { site, page: PageNum(0), access: Access::Read });
            let w = m.access(TraceOp { site, page: PageNum(0), access: Access::Write });
            std::hint::black_box((r, w))
        });
    }
}
