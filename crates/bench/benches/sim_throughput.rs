//! Simulator throughput: how much simulated time per real second the
//! discrete-event engine sustains on the Figure 8 workload.

use mirage_bench::harness::bench;
use mirage_bench::sim_config;
use mirage_sim::World;
use mirage_types::{Delta, SimTime};
use mirage_workloads::Decrementer;

fn main() {
    bench("fig8_one_simulated_second", || {
        let mut w = World::new(2, sim_config(Delta(6)));
        let seg = w.create_segment(0, 1);
        w.spawn(0, Box::new(Decrementer::new(seg, 0, u32::MAX / 2)), 1);
        w.spawn(1, Box::new(Decrementer::new(seg, 128, u32::MAX / 2)), 1);
        w.run_until(SimTime::from_millis(1000));
        std::hint::black_box(w.total_accesses())
    });
}
