//! Simulator throughput: how much simulated time per real second the
//! discrete-event engine sustains, and how many protocol events per
//! second flow through the driver layer (`ProtocolDriver::dispatch`
//! calls: faults, deliveries, timer firings).
//!
//! Four scenarios:
//!
//! * `fig8_one_simulated_second` — the Figure 8 decrementer pair with
//!   Δ = 6 ticks. Dominated by simulated user ops; protocol events are
//!   rare (the window keeps ownership put). Tracks overall sim speed.
//! * `delta0_pingpong` — the same pair with Δ = 0 (pure
//!   write-invalidate): every ownership transfer runs the full
//!   request/invalidate/grant exchange, so the protocol engine and the
//!   driver layer dominate. Tracks driver-layer events/sec.
//! * `driver_pingpong` — two engines wired back to back with no
//!   simulator at all: the pinned n≤64 hot-path number.
//! * `invalidation_1024` — a 1,026-site read fan-out invalidated by one
//!   writer: chunked reader masks and the paged circuit table.
//!
//! The committed before/after numbers live in `BENCH_sim_throughput.json`
//! at the repo root; regenerate the "after" entries by running this
//! bench on the current tree. A scenario-substring filter skips the
//! rest (`cargo bench --bench sim_throughput -p mirage-bench --
//! driver_pingpong` re-checks the n≤64 pin without the ~2s 1,024-site
//! fan-out).

use std::collections::VecDeque;

use mirage_bench::harness::bench;
use mirage_bench::sim_config;
use mirage_core::{
    Event,
    InMemStore,
    ProtoMsg,
    ProtocolConfig,
    ProtocolDriver,
    RecordedOps,
};
use mirage_mem::LocalSegment;
use mirage_sim::World;
use mirage_types::{
    Access,
    Delta,
    PageNum,
    Pid,
    SegmentId,
    SimDuration,
    SimTime,
    SiteId,
};
use mirage_workloads::{
    Decrementer,
    PeriodicWriter,
    Rereader,
};

/// One iteration of a decrementer ping-pong over one shared page.
fn pingpong(delta: Delta, sim_ms: u64) -> World {
    let mut w = World::new(2, sim_config(delta));
    let seg = w.create_segment(0, 1);
    w.spawn(0, Box::new(Decrementer::new(seg, 0, u32::MAX / 2)), 1);
    w.spawn(1, Box::new(Decrementer::new(seg, 128, u32::MAX / 2)), 1);
    w.run_until(SimTime::ZERO + SimDuration::from_millis(sim_ms));
    w
}

/// Runs one scenario and prints its human and JSON result lines.
fn scenario(name: &str, delta: Delta, sim_ms: u64) -> String {
    // The workload is fully deterministic, so one instrumented run
    // yields the exact per-iteration event count.
    let probe = pingpong(delta, sim_ms);
    let events_per_iter = probe.engine_events();
    let accesses = probe.total_accesses();
    drop(probe);

    let r = bench(name, || std::hint::black_box(pingpong(delta, sim_ms).total_accesses()));

    let events_per_sec = events_per_iter as f64 * r.per_sec();
    println!(
        "{name}: {events_per_iter} driver events/iter, {accesses} accesses/iter, \
         {:.3} M driver events/sec",
        events_per_sec / 1e6
    );
    format!(
        "{{\"scenario\":\"{name}\",\"ns_per_iter\":{:.1},\
         \"events_per_iter\":{events_per_iter},\"events_per_sec\":{:.0}}}",
        r.ns_per_iter, events_per_sec
    )
}

/// Two sites driven directly through the driver layer — no simulated
/// time, no scheduler: pure protocol-engine throughput.
struct DirectPair {
    drivers: [ProtocolDriver; 2],
    stores: [InMemStore; 2],
    ops: RecordedOps,
    net: VecDeque<(SiteId, SiteId, ProtoMsg)>,
    seg: SegmentId,
}

impl DirectPair {
    fn new() -> Self {
        let seg = SegmentId::new(SiteId(0), 1);
        let mut drivers = [
            ProtocolDriver::from_config(SiteId(0), ProtocolConfig::default()),
            ProtocolDriver::from_config(SiteId(1), ProtocolConfig::default()),
        ];
        let mut stores = [InMemStore::new(), InMemStore::new()];
        for (i, (d, s)) in drivers.iter_mut().zip(stores.iter_mut()).enumerate() {
            s.add_segment(if i == 0 {
                LocalSegment::fully_resident(seg, 1)
            } else {
                LocalSegment::absent(seg, 1)
            });
            d.register_segment(seg, 1);
        }
        Self { drivers, stores, ops: RecordedOps::new(), net: VecDeque::new(), seg }
    }

    /// Dispatches one event and moves the resulting sends onto the wire.
    fn pump(&mut self, site: usize, ev: Event) {
        self.drivers[site].drive(ev, SimTime::ZERO, &mut self.stores[site], &mut self.ops);
        let from = SiteId(site as u16);
        for (to, msg) in self.ops.sends.drain(..) {
            self.net.push_back((from, to, msg));
        }
        self.ops.clear();
    }

    /// Raises a write fault and delivers messages until quiescent.
    fn fault_and_settle(&mut self, site: usize) {
        let ev = Event::Fault {
            pid: Pid::new(SiteId(site as u16), 1),
            seg: self.seg,
            page: PageNum(0),
            access: Access::Write,
        };
        self.pump(site, ev);
        while let Some((from, to, msg)) = self.net.pop_front() {
            self.pump(to.index(), Event::Deliver { from, msg });
        }
    }

    /// One full ownership round trip between the two sites.
    fn cycle(&mut self) {
        self.fault_and_settle(1);
        self.fault_and_settle(0);
    }

    fn events(&self) -> u64 {
        self.drivers.iter().map(ProtocolDriver::events_dispatched).sum()
    }
}

/// Benchmarks the driver layer directly: one iteration is a full write
/// ping-pong (two ownership transfers).
fn driver_scenario() -> String {
    let name = "driver_pingpong";
    let mut probe = DirectPair::new();
    let before = {
        probe.cycle();
        probe.events()
    };
    probe.cycle();
    let events_per_iter = probe.events() - before;
    drop(probe);

    let mut pair = DirectPair::new();
    pair.cycle(); // warm every buffer to steady-state capacity
    let r = bench(name, || pair.cycle());

    let events_per_sec = events_per_iter as f64 * r.per_sec();
    println!(
        "{name}: {events_per_iter} driver events/iter, {:.3} M driver events/sec",
        events_per_sec / 1e6
    );
    format!(
        "{{\"scenario\":\"{name}\",\"ns_per_iter\":{:.1},\
         \"events_per_iter\":{events_per_iter},\"events_per_sec\":{:.0}}}",
        r.ns_per_iter, events_per_sec
    )
}

/// A 1,024-reader invalidation fan-out — the planet-scale path: reader
/// masks spill past the inline 64-bit word, and the circuit table runs
/// in its paged (lazily allocated) representation. One iteration is the
/// full world: 1,024 sites each take a read copy of one page, then a
/// writer invalidates every one of them.
fn largen_scenario() -> String {
    const N: usize = 1024;
    let name = "invalidation_1024";
    fn run() -> World {
        let mut w = World::new(N + 2, sim_config(Delta(0)));
        let seg = w.create_segment(0, 1);
        for s in 1..=N {
            w.spawn(s, Box::new(Rereader::new(seg, 1, SimDuration::ZERO)), 1);
        }
        w.run_to_completion(SimTime::from_millis(60_000));
        w.spawn(N + 1, Box::new(PeriodicWriter::new(seg, 1, SimDuration::ZERO)), 1);
        w.run_to_completion(SimTime::from_millis(120_000));
        w
    }

    let probe = run();
    let events_per_iter = probe.engine_events();
    drop(probe);

    let r = bench(name, || std::hint::black_box(run().total_accesses()));
    let events_per_sec = events_per_iter as f64 * r.per_sec();
    println!(
        "{name}: {events_per_iter} driver events/iter, {:.3} M driver events/sec",
        events_per_sec / 1e6
    );
    format!(
        "{{\"scenario\":\"{name}\",\"ns_per_iter\":{:.1},\
         \"events_per_iter\":{events_per_iter},\"events_per_sec\":{:.0}}}",
        r.ns_per_iter, events_per_sec
    )
}

fn main() {
    // `cargo bench --bench sim_throughput -- <substr>` runs only the
    // scenarios whose name contains the filter, like libtest harnesses.
    // Cargo itself passes `--bench` to the harness; skip flag-shaped
    // arguments so a plain `cargo bench` still runs everything.
    let filter = std::env::args().skip(1).find(|a| !a.starts_with("--")).unwrap_or_default();
    let mut results = Vec::new();
    if "fig8_one_simulated_second".contains(&filter) {
        results.push(scenario("fig8_one_simulated_second", Delta(6), 1000));
    }
    if "delta0_pingpong".contains(&filter) {
        results.push(scenario("delta0_pingpong", Delta(0), 250));
    }
    if "driver_pingpong".contains(&filter) {
        results.push(driver_scenario());
    }
    if "invalidation_1024".contains(&filter) {
        results.push(largen_scenario());
    }
    println!("{{\"bench\":\"sim_throughput\",\"results\":[{}]}}", results.join(","));
}
