//! Wire-codec throughput: encode/decode of short and page-carrying
//! protocol messages.

use criterion::{criterion_group, criterion_main, Criterion};
use mirage_core::ProtoMsg;
use mirage_net::wire::{from_bytes, to_bytes};
use mirage_types::{Access, Delta, PageNum, Pid, SegmentId, SiteId, PAGE_SIZE};

fn messages() -> (ProtoMsg, ProtoMsg) {
    let seg = SegmentId::new(SiteId(0), 1);
    let short = ProtoMsg::PageRequest {
        seg,
        page: PageNum(3),
        access: Access::Write,
        pid: Pid::new(SiteId(1), 7),
    };
    let large = ProtoMsg::PageGrant {
        seg,
        page: PageNum(3),
        access: Access::Read,
        window: Delta(2),
        data: vec![0xAB; PAGE_SIZE],
    };
    (short, large)
}

fn bench_codec(c: &mut Criterion) {
    let (short, large) = messages();
    let short_bytes = to_bytes(&short);
    let large_bytes = to_bytes(&large);
    c.bench_function("encode_short", |b| b.iter(|| to_bytes(std::hint::black_box(&short))));
    c.bench_function("encode_page_grant", |b| {
        b.iter(|| to_bytes(std::hint::black_box(&large)))
    });
    c.bench_function("decode_short", |b| {
        b.iter(|| from_bytes::<ProtoMsg>(std::hint::black_box(&short_bytes)).unwrap())
    });
    c.bench_function("decode_page_grant", |b| {
        b.iter(|| from_bytes::<ProtoMsg>(std::hint::black_box(&large_bytes)).unwrap())
    });
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
