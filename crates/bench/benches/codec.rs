//! Wire-codec throughput: encode/decode of short and page-carrying
//! protocol messages.

use mirage_bench::harness::bench;
use mirage_core::ProtoMsg;
use mirage_mem::PageData;
use mirage_net::wire::{
    from_bytes,
    to_bytes,
};
use mirage_types::{
    Access,
    Delta,
    PageNum,
    Pid,
    SegmentId,
    SiteId,
    PAGE_SIZE,
};

fn messages() -> (ProtoMsg, ProtoMsg) {
    let seg = SegmentId::new(SiteId(0), 1);
    let short = ProtoMsg::PageRequest {
        seg,
        page: PageNum(3),
        access: Access::Write,
        pid: Pid::new(SiteId(1), 7),
        epoch: 0,
    };
    let large = ProtoMsg::PageGrant {
        seg,
        page: PageNum(3),
        access: Access::Read,
        window: Delta(2),
        data: PageData::from_bytes(&[0xAB; PAGE_SIZE]),
        serial: 0,
    };
    (short, large)
}

fn main() {
    let (short, large) = messages();
    let short_bytes = to_bytes(&short);
    let large_bytes = to_bytes(&large);
    bench("encode_short", || to_bytes(std::hint::black_box(&short)));
    bench("encode_page_grant", || to_bytes(std::hint::black_box(&large)));
    bench("decode_short", || {
        from_bytes::<ProtoMsg>(std::hint::black_box(&short_bytes)).unwrap()
    });
    bench("decode_page_grant", || {
        from_bytes::<ProtoMsg>(std::hint::black_box(&large_bytes)).unwrap()
    });
}
