//! E3 substrate bench: the lazy PTE remap operation itself.
//!
//! The paper's measured 106–125 µs per page is VAX kernel time; this
//! bench measures our Rust substrate's own remap speed (vastly faster),
//! demonstrating the operation scales linearly in mapped pages.

use mirage_bench::harness::bench;
use mirage_mem::{
    remap_process,
    MasterTable,
    ProcessTable,
};
use mirage_types::{
    SegmentId,
    SimDuration,
    SiteId,
};

fn main() {
    for pages in [2usize, 16, 64, 256] {
        let master = MasterTable::new(SegmentId::new(SiteId(0), 1), pages);
        let mut proc = ProcessTable::new();
        proc.attach(&master);
        bench(&format!("remap_process/{pages}"), || {
            remap_process(
                std::hint::black_box(&mut proc),
                core::iter::once(&master),
                SimDuration::from_micros(110),
            )
        });
    }
}
