//! The experiment drivers. Each function corresponds to a row of the
//! per-experiment index in `DESIGN.md`.
//!
//! Every multi-point sweep runs its independent worlds through
//! [`par_map`], one world per worker, collecting results in input order:
//! output is byte-identical at any `--jobs` value (checked by
//! `tests/determinism.rs`).

use mirage_baseline::{
    AccessTrace,
    CostReport,
    DsmProtocol,
    LiCentral,
    LiDistributed,
    MirageCost,
    TardisCost,
};
use mirage_core::{
    DeltaPolicy,
    ProtocolConfig,
    RetryPolicy,
};
use mirage_net::NetCosts;
use mirage_sim::{
    instrument::FetchPhase,
    MemRef,
    MigrationEvent,
    Op,
    PlacementPolicy,
    Program,
    SimConfig,
    World,
};
use mirage_types::{
    Delta,
    PageNum,
    SimDuration,
    SimTime,
    SiteId,
};
use mirage_workloads::{
    Background,
    Decrementer,
    FalseSharing,
    LockHolder,
    LockTester,
    PeriodicWriter,
    PingPongPinger,
    PingPongPonger,
    Rereader,
    WriteReadMix,
};

use crate::harness::par_map;

/// Builds a default simulation config with a uniform Δ.
pub fn sim_config(delta: Delta) -> SimConfig {
    SimConfig {
        protocol: ProtocolConfig { delta: DeltaPolicy::Uniform(delta), ..Default::default() },
        ..Default::default()
    }
}

fn pingpong_world(sites: usize, cfg: SimConfig, use_yield: bool) -> World {
    let mut w = World::new(sites, cfg);
    let seg = w.create_segment(0, 1);
    w.spawn(0, Box::new(PingPongPinger::new(seg, u32::MAX / 4, use_yield)), 1);
    w.spawn(1, Box::new(PingPongPonger::new(seg, use_yield)), 1);
    w
}

/// One point of Figure 7.
#[derive(Clone, Copy, Debug)]
pub struct Fig7Point {
    /// Δ in scheduler ticks.
    pub delta: u32,
    /// Cycles/second with `yield()` in the wait loops.
    pub yield_rate: f64,
    /// Cycles/second busy-waiting.
    pub noyield_rate: f64,
}

/// E5 / Figure 7: worst-case throughput versus Δ, yield and no-yield.
pub fn fig7(deltas: &[u32], seconds: u64) -> Vec<Fig7Point> {
    let runs: Vec<(u32, bool)> = deltas.iter().flat_map(|&d| [(d, true), (d, false)]).collect();
    let rates = par_map(&runs, |&(delta, use_yield)| {
        let mut w = pingpong_world(2, sim_config(Delta(delta)), use_yield);
        w.run_until(SimTime::from_millis(seconds * 1000));
        w.sites[0].procs[0].metric() as f64 / seconds as f64
    });
    deltas
        .iter()
        .zip(rates.chunks_exact(2))
        .map(|(&d, pair)| Fig7Point { delta: d, yield_rate: pair[0], noyield_rate: pair[1] })
        .collect()
}

/// One point of Figure 8.
#[derive(Clone, Copy, Debug)]
pub struct Fig8Point {
    /// Δ in scheduler ticks.
    pub delta: u32,
    /// Combined read-write accesses per second over the makespan.
    pub throughput: f64,
    /// Makespan in seconds.
    pub makespan: f64,
}

/// E7 / Figure 8: two conflicting read-writers, throughput versus Δ.
///
/// `task` is the per-process decrement count; the paper sized it so the
/// loops "execute for 10 seconds" — 560 000 decrements runs just under
/// 10 s at the uncontended rate, so a Δ=600 (10 s) window covers one
/// whole task.
pub fn fig8(deltas: &[u32], task: u32) -> Vec<Fig8Point> {
    par_map(deltas, |&d| {
        let mut w = World::new(2, sim_config(Delta(d)));
        let seg = w.create_segment(0, 1);
        w.spawn(0, Box::new(Decrementer::new(seg, 0, task)), 1);
        w.spawn(1, Box::new(Decrementer::new(seg, 128, task)), 1);
        let finished = w.run_to_completion(SimTime::from_millis(600_000));
        debug_assert!(finished, "Δ={d}: duel must finish within 10 minutes");
        let makespan = w.now().as_secs_f64();
        let throughput = w.total_accesses() as f64 / makespan;
        Fig8Point { delta: d, throughput, makespan }
    })
}

/// One row of Table 3.
#[derive(Clone, Debug)]
pub struct Table3Row {
    /// Row label.
    pub label: &'static str,
    /// Our measured value (ms).
    pub ours_ms: f64,
    /// The paper's value (ms).
    pub paper_ms: f64,
}

/// E2 / Table 3: component breakdown of one remote page fetch.
pub fn table3() -> Vec<Table3Row> {
    struct OneRead {
        r: MemRef,
        done: bool,
    }
    impl Program for OneRead {
        fn step(&mut self, _v: Option<u32>) -> Op {
            if self.done {
                return Op::Exit;
            }
            self.done = true;
            Op::Read(self.r)
        }
        fn label(&self) -> &str {
            "one-read"
        }
    }
    let mut w = World::new(2, sim_config(Delta::ZERO));
    let seg = w.create_segment(0, 1);
    w.enable_phase_trace();
    w.spawn(1, Box::new(OneRead { r: MemRef::new(seg, PageNum(0), 0), done: false }), 1);
    w.run_until(SimTime::from_millis(500));
    let gap = |a, b| w.instr.phase_gap(a, b).map(|d| d.as_millis_f64()).unwrap_or(f64::NAN);
    vec![
        Table3Row {
            label: "Using-site read request CPU",
            ours_ms: gap(FetchPhase::FaultTaken, FetchPhase::RequestSent),
            paper_ms: 2.5,
        },
        Table3Row {
            label: "Request transit (output 3.2 + input 3.2)",
            ours_ms: gap(FetchPhase::RequestSent, FetchPhase::RequestReceived),
            paper_ms: 6.4,
        },
        Table3Row {
            label: "Server process (1.5) + processing (2.0)",
            ours_ms: gap(FetchPhase::RequestReceived, FetchPhase::PageSent),
            paper_ms: 3.5,
        },
        Table3Row {
            label: "Page transit (output 7.5 + input 7.5)",
            ours_ms: gap(FetchPhase::PageSent, FetchPhase::PageReceived),
            paper_ms: 15.0,
        },
        Table3Row {
            label: "TOTAL ELAPSED",
            ours_ms: gap(FetchPhase::FaultTaken, FetchPhase::PageReceived),
            paper_ms: 27.5,
        },
    ]
}

/// E1: the raw message-cost anchors.
pub fn component_costs() -> Vec<Table3Row> {
    let c = NetCosts::vax_locus();
    vec![
        Table3Row {
            label: "Short message round trip",
            ours_ms: c.short_round_trip().as_millis_f64(),
            paper_ms: 12.9,
        },
        Table3Row {
            label: "1024-byte buffer + short response round trip",
            ours_ms: c.large_round_trip().as_millis_f64(),
            paper_ms: 21.5,
        },
        Table3Row {
            label: "1024-byte message one-way (extrapolated)",
            ours_ms: c.one_way(mirage_net::SizeClass::Large).as_millis_f64(),
            paper_ms: 15.0,
        },
        Table3Row {
            label: "Lazy remap of one 512-byte page (µs, not ms)",
            ours_ms: c.remap_per_page.0 as f64 / 1000.0,
            paper_ms: 115.5, // midpoint of the measured 106–125 µs
        },
    ]
}

/// E4: single-site ping-pong rates (busy-wait vs `yield()`).
pub fn local_pingpong(seconds: u64) -> (f64, f64) {
    let rates = par_map(&[false, true], |&use_yield| {
        let mut w = World::new(1, sim_config(Delta::ZERO));
        let seg = w.create_segment(0, 1);
        w.spawn(0, Box::new(PingPongPinger::new(seg, u32::MAX / 4, use_yield)), 1);
        w.spawn(0, Box::new(PingPongPonger::new(seg, use_yield)), 1);
        w.run_until(SimTime::from_millis(seconds * 1000));
        w.sites[0].procs[0].metric() as f64 / seconds as f64
    });
    (rates[0], rates[1])
}

/// E6 result: message accounting for the 2-site worst case.
#[derive(Clone, Debug)]
pub struct MsgAccounting {
    /// Completed cycles.
    pub cycles: u64,
    /// Network messages per cycle (paper: 9).
    pub per_cycle: f64,
    /// Page-carrying messages per cycle (paper: 3).
    pub large_per_cycle: f64,
    /// Per-message-kind counts per cycle.
    pub by_tag: Vec<(&'static str, f64)>,
    /// Measured cycle rate (paper bound: 9 cycles/s).
    pub cycles_per_sec: f64,
}

/// E6: exact message counts for the worst case at Δ=0 with `yield()`.
pub fn msg_accounting(seconds: u64) -> MsgAccounting {
    let mut w = pingpong_world(2, sim_config(Delta::ZERO), true);
    w.run_until(SimTime::from_millis(seconds * 1000));
    let cycles = w.sites[0].procs[0].metric().max(1);
    let mut by_tag: Vec<(&'static str, f64)> = mirage_net::MsgKind::ALL
        .iter()
        .map(|&k| (k.name(), w.instr.msgs.count(k) as f64 / cycles as f64))
        .filter(|&(_, n)| n > 0.0)
        .collect();
    by_tag.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(core::cmp::Ordering::Equal));
    MsgAccounting {
        cycles,
        per_cycle: w.instr.msgs.total() as f64 / cycles as f64,
        large_per_cycle: w.instr.msgs.large as f64 / cycles as f64,
        by_tag,
        cycles_per_sec: cycles as f64 / seconds as f64,
    }
}

/// E9 result: one test&set configuration.
#[derive(Clone, Copy, Debug)]
pub struct SpinlockPoint {
    /// Δ in ticks.
    pub delta: u32,
    /// Critical sections completed per second by the locking writer.
    pub sections_per_sec: f64,
    /// Network messages per critical section.
    pub msgs_per_section: f64,
}

/// E9: the test&set experiment — a locking writer and a busy-testing
/// reader thrash the lock page; Δ>0 shelters the writer.
pub fn test_and_set(deltas: &[u32], tester_yields: bool, seconds: u64) -> Vec<SpinlockPoint> {
    par_map(deltas, |&d| {
        let mut w = World::new(2, sim_config(Delta(d)));
        let seg = w.create_segment(0, 1);
        w.spawn(0, Box::new(LockHolder::new(seg, u32::MAX / 4, 8)), 1);
        w.spawn(1, Box::new(LockTester::new(seg, u32::MAX / 4, tester_yields)), 1);
        w.run_until(SimTime::from_millis(seconds * 1000));
        let sections = w.sites[0].procs[0].metric().max(1);
        SpinlockPoint {
            delta: d,
            sections_per_sec: sections as f64 / seconds as f64,
            msgs_per_section: w.instr.msgs.total() as f64 / sections as f64,
        }
    })
}

/// E10 result: system throughput while an application thrashes.
#[derive(Clone, Copy, Debug)]
pub struct ThrashPoint {
    /// Δ in ticks.
    pub delta: u32,
    /// Thrasher cycles per second.
    pub app_rate: f64,
    /// Background compute chunks per second (other work on the site).
    pub bg_rate: f64,
}

/// E10: raising Δ throttles the thrasher but frees the system.
pub fn thrash_system(deltas: &[u32], seconds: u64) -> Vec<ThrashPoint> {
    par_map(deltas, |&d| {
        let mut w = World::new(2, sim_config(Delta(d)));
        let seg = w.create_segment(0, 1);
        w.spawn(0, Box::new(PingPongPinger::new(seg, u32::MAX / 4, true)), 1);
        w.spawn(1, Box::new(PingPongPonger::new(seg, true)), 1);
        w.spawn(1, Box::new(Background::new(SimDuration::from_millis(5))), 0);
        w.run_until(SimTime::from_millis(seconds * 1000));
        ThrashPoint {
            delta: d,
            app_rate: w.sites[0].procs[0].metric() as f64 / seconds as f64,
            bg_rate: w.sites[1].procs[1].metric() as f64 / seconds as f64,
        }
    })
}

/// M1 result row: one placement-policy arm of the hot-spot workload.
#[derive(Clone, Debug)]
pub struct MigrationRow {
    /// Policy arm name.
    pub policy: &'static str,
    /// Remote faults taken by the hot site (site 2).
    pub hot_remote_faults: u64,
    /// Remote faults world-wide.
    pub remote_faults: u64,
    /// Faults served inline by a colocated library.
    pub local_faults: u64,
    /// Combined accesses per second over the makespan.
    pub throughput: f64,
    /// Where the segment's library role ended up.
    pub final_library: u16,
}

/// M1: library placement on a hot-spot workload. The segment's library
/// is created at site 0, but the traffic comes from elsewhere: a hot
/// read-modify-write loop at site 2 duels a periodic pure writer at
/// site 1 over false-shared words of the same page. Each steal cycle
/// costs the hot site *two* library requests (read fault, then §6.1
/// write upgrade) against the writer's one, so the §9 reference log
/// shows site 2 dominating — and with the role pinned at its creation
/// site every one of those requests pays the remote path. The three
/// arms run the identical workload with placement off, a manual
/// one-shot handoff to the hot site, and the live advisor loop — which
/// should discover the same move on its own and cut the hot site's
/// remote-fault count. Δ = 0 keeps the duel unthrottled so the fault
/// stream is dense enough to advise on.
pub fn migration_hotspot(task: u32) -> Vec<MigrationRow> {
    let arms: [(&'static str, u8); 3] = [("off", 0), ("manual", 1), ("advised", 2)];
    par_map(&arms, |&(policy, arm)| {
        let protocol = ProtocolConfig {
            delta: DeltaPolicy::Uniform(Delta(0)),
            retry: Some(RetryPolicy::default()),
            ..Default::default()
        };
        let mut w = World::new(3, SimConfig { protocol, ..Default::default() });
        let seg = w.create_segment(0, 1);
        w.spawn(2, Box::new(Decrementer::new(seg, 128, task * 150)), 1);
        w.spawn(1, Box::new(PeriodicWriter::new(seg, task, SimDuration::from_millis(10))), 1);
        match arm {
            1 => w.set_placement_policy(PlacementPolicy::Manual(vec![MigrationEvent {
                at: SimTime::from_millis(300),
                seg,
                to: SiteId(2),
                shard: None,
            }])),
            2 => w.set_placement_policy(PlacementPolicy::Advised {
                interval: SimDuration::from_millis(100),
                window: SimDuration::from_millis(1_000),
                min_requests: 8,
                hysteresis: 2,
            }),
            _ => {}
        }
        let finished = w.run_to_completion(SimTime::from_millis(600_000));
        debug_assert!(finished, "M1 {policy}: hot-spot run must converge");
        let makespan = w.now().as_secs_f64();
        MigrationRow {
            policy,
            hot_remote_faults: w.instr.remote_faults_by_site[2],
            remote_faults: w.instr.remote_faults,
            local_faults: w.instr.local_faults,
            throughput: w.total_accesses() as f64 / makespan,
            final_library: w.library_site(seg).map_or(0, |s| s.0),
        }
    })
}

/// M2 result row: one placement-policy arm of the sharded hot-spot
/// workload.
#[derive(Clone, Debug)]
pub struct ShardMigrationRow {
    /// Policy arm name.
    pub policy: &'static str,
    /// Remote faults taken by the two hot sites (1 and 2).
    pub hot_remote_faults: [u64; 2],
    /// Remote faults world-wide.
    pub remote_faults: u64,
    /// Faults served inline by a colocated library shard.
    pub local_faults: u64,
    /// Combined accesses per second over the makespan.
    pub throughput: f64,
    /// Where each library shard's role ended up.
    pub shard_sites: Vec<u16>,
}

/// M2: *range-sharded* library placement. One four-page segment is
/// split into two two-page shards (`shard_pages = 2`), and each shard
/// has its own hot spot at a different site: site 1 duels over page 0
/// (shard 0) while site 2 duels over page 2 (shard 1), each against a
/// periodic writer at site 3. A whole-segment library could satisfy at
/// most one hot site; per-range placement moves shard 0 to site 1 and
/// shard 1 to site 2 independently. Arms mirror M1: placement off, a
/// manual per-shard schedule, and the live advisor (which must discover
/// both moves from the shard-bucketed reference log).
pub fn migration_hotspot_sharded(task: u32) -> Vec<ShardMigrationRow> {
    let arms: [(&'static str, u8); 3] = [("off", 0), ("manual", 1), ("advised", 2)];
    par_map(&arms, |&(policy, arm)| {
        let protocol = ProtocolConfig {
            delta: DeltaPolicy::Uniform(Delta(0)),
            retry: Some(RetryPolicy::default()),
            shard_pages: 2,
            ..Default::default()
        };
        let mut w = World::new(4, SimConfig { protocol, ..Default::default() });
        let seg = w.create_segment(0, 4);
        w.spawn(1, Box::new(Decrementer::on_page(seg, PageNum(0), 128, task * 150)), 4);
        w.spawn(2, Box::new(Decrementer::on_page(seg, PageNum(2), 128, task * 150)), 4);
        let period = SimDuration::from_millis(10);
        w.spawn(3, Box::new(PeriodicWriter::on_page(seg, PageNum(0), task, period)), 4);
        w.spawn(3, Box::new(PeriodicWriter::on_page(seg, PageNum(2), task, period)), 4);
        match arm {
            1 => w.set_placement_policy(PlacementPolicy::Manual(vec![
                MigrationEvent {
                    at: SimTime::from_millis(300),
                    seg,
                    to: SiteId(1),
                    shard: Some(0),
                },
                MigrationEvent {
                    at: SimTime::from_millis(300),
                    seg,
                    to: SiteId(2),
                    shard: Some(1),
                },
            ])),
            2 => w.set_placement_policy(PlacementPolicy::Advised {
                interval: SimDuration::from_millis(100),
                window: SimDuration::from_millis(1_000),
                min_requests: 8,
                hysteresis: 2,
            }),
            _ => {}
        }
        let finished = w.run_to_completion(SimTime::from_millis(600_000));
        debug_assert!(finished, "M2 {policy}: sharded hot-spot run must converge");
        let makespan = w.now().as_secs_f64();
        ShardMigrationRow {
            policy,
            hot_remote_faults: [
                w.instr.remote_faults_by_site[1],
                w.instr.remote_faults_by_site[2],
            ],
            remote_faults: w.instr.remote_faults,
            local_faults: w.instr.local_faults,
            throughput: w.total_accesses() as f64 / makespan,
            shard_sites: (0..2)
                .map(|s| w.library_shard_site(seg, s).map_or(0, |site| site.0))
                .collect(),
        }
    })
}

/// S1 result row: one (seed, arm) point of the false-sharing sweep.
#[derive(Clone, Debug)]
pub struct FalseSharingRow {
    /// Workload seed.
    pub seed: u64,
    /// Whether diff-based write propagation was on.
    pub delta_grants: bool,
    /// Data-carrying grants served (full pages + deltas).
    pub serves: u64,
    /// Of those, full 512-byte `PageGrant`s.
    pub full_grants: u64,
    /// Of those, `PageGrantDelta` diffs.
    pub delta_grants_sent: u64,
    /// Grant payload bytes on the wire (1024 per full grant — the §7.2
    /// page buffer — plus each delta's encoded size).
    pub wire_bytes: u64,
    /// `wire_bytes / serves`.
    pub bytes_per_serve: f64,
    /// Simulated completion time under the size-aware cost model (ms).
    pub makespan_ms: f64,
}

/// S1: two writers on disjoint halves of one page (the false-sharing
/// workload), with delta grants off and on, at Δ=0 so every transfer
/// pays the wire. The off arm ships 1024 bytes per serve; the on arm
/// should ship a few words once the steady-state shadow pair forms,
/// and finish sooner because the size-aware cost model charges deltas
/// by their encoded size.
pub fn false_sharing(seeds: &[u64], writes: u32) -> Vec<FalseSharingRow> {
    let runs: Vec<(u64, bool)> = seeds.iter().flat_map(|&s| [(s, false), (s, true)]).collect();
    par_map(&runs, |&(seed, delta_grants)| {
        let protocol = ProtocolConfig {
            delta: DeltaPolicy::Uniform(Delta(0)),
            delta_grants,
            ..Default::default()
        };
        let mut w = World::new(2, SimConfig { protocol, ..Default::default() });
        let seg = w.create_segment(0, 1);
        w.spawn(0, Box::new(FalseSharing::new(seg, 0, seed, writes)), 1);
        w.spawn(1, Box::new(FalseSharing::new(seg, 1, seed, writes)), 1);
        let finished = w.run_to_completion(SimTime::from_millis(600_000));
        debug_assert!(finished, "S1 seed {seed}: false-sharing run must finish");
        let full_grants = w.instr.msgs.count(mirage_net::MsgKind::PageGrant);
        let delta_grants_sent = w.instr.msgs.count(mirage_net::MsgKind::PageGrantDelta);
        let serves = full_grants + delta_grants_sent;
        let wire_bytes = w.instr.msgs.payload(mirage_net::MsgKind::PageGrant)
            + w.instr.msgs.payload(mirage_net::MsgKind::PageGrantDelta);
        FalseSharingRow {
            seed,
            delta_grants,
            serves,
            full_grants,
            delta_grants_sent,
            wire_bytes,
            bytes_per_serve: wire_bytes as f64 / serves.max(1) as f64,
            makespan_ms: w.now().as_secs_f64() * 1000.0,
        }
    })
}

/// A1–A3 result row.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Configuration name.
    pub name: &'static str,
    /// Worst-case cycles per second.
    pub cycles_per_sec: f64,
    /// Short messages per cycle.
    pub shorts_per_cycle: f64,
    /// Page-carrying messages per cycle.
    pub larges_per_cycle: f64,
}

/// A1/A2/A3: toggle each protocol feature on the worst case (Δ=2, the
/// contended regime where the optimizations matter).
pub fn ablation_opts(seconds: u64) -> Vec<AblationRow> {
    let base = ProtocolConfig { delta: DeltaPolicy::Uniform(Delta(2)), ..Default::default() };
    let configs: Vec<(&'static str, ProtocolConfig)> = vec![
        ("paper defaults", base.clone()),
        (
            "A1: no upgrade optimization",
            ProtocolConfig { upgrade_optimization: false, ..base.clone() },
        ),
        (
            "A2: no downgrade optimization",
            ProtocolConfig { downgrade_optimization: false, ..base.clone() },
        ),
        (
            "A3: queued invalidation ON",
            ProtocolConfig { queued_invalidation: true, ..base.clone() },
        ),
        (
            "A1+A2: both optimizations off",
            ProtocolConfig {
                upgrade_optimization: false,
                downgrade_optimization: false,
                ..base
            },
        ),
    ];
    par_map(&configs, |(name, cfg)| {
        let mut w =
            pingpong_world(2, SimConfig { protocol: cfg.clone(), ..Default::default() }, true);
        w.run_until(SimTime::from_millis(seconds * 1000));
        let cycles = w.sites[0].procs[0].metric().max(1);
        AblationRow {
            name,
            cycles_per_sec: cycles as f64 / seconds as f64,
            shorts_per_cycle: w.instr.msgs.short as f64 / cycles as f64,
            larges_per_cycle: w.instr.msgs.large as f64 / cycles as f64,
        }
    })
}

/// A4 result row.
#[derive(Clone, Copy, Debug)]
pub struct InvScalePoint {
    /// Number of reader sites invalidated.
    pub readers: usize,
    /// Milliseconds for the write to complete, sequential invalidation.
    pub sequential_ms: f64,
    /// Milliseconds for the write to complete, multicast invalidation.
    pub multicast_ms: f64,
}

/// A4: invalidation cost versus reader count, sequential (the paper's
/// Locus constraint) versus multicast (§7.1 caveat 2).
pub fn invalidation_scaling(reader_counts: &[usize]) -> Vec<InvScalePoint> {
    let runs: Vec<(usize, bool)> =
        reader_counts.iter().flat_map(|&n| [(n, false), (n, true)]).collect();
    let times = par_map(&runs, |&(n, multicast)| {
        let cfg = SimConfig {
            protocol: ProtocolConfig {
                multicast_invalidation: multicast,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut w = World::new(n + 2, cfg);
        let seg = w.create_segment(0, 1);
        // Readers 1..=n each take a read copy.
        for s in 1..=n {
            w.spawn(s, Box::new(Rereader::new(seg, 1, SimDuration::ZERO)), 1);
        }
        w.run_to_completion(SimTime::from_millis(60_000));
        // The last site writes, invalidating all n readers.
        let start = w.now();
        w.spawn(n + 1, Box::new(PeriodicWriter::new(seg, 1, SimDuration::ZERO)), 1);
        w.run_to_completion(SimTime::from_millis(120_000));
        (w.now() - start).as_millis_f64()
    });
    reader_counts
        .iter()
        .zip(times.chunks_exact(2))
        .map(|(&n, pair)| InvScalePoint {
            readers: n,
            sequential_ms: pair[0],
            multicast_ms: pair[1],
        })
        .collect()
}

/// B1 result row.
#[derive(Clone, Debug)]
pub struct BaselineRow {
    /// Protocol name.
    pub protocol: &'static str,
    /// Trace name.
    pub trace: &'static str,
    /// Aggregate costs.
    pub report: CostReport,
}

/// B1: identical access traces through Mirage and both Li protocols.
///
/// The default report excludes the Tardis cost model so its output (and
/// the `repro_all` golden built on it) is unchanged by the timestamp
/// work; [`baseline_compare_with_tardis`] adds the fourth rival.
pub fn baseline_compare() -> Vec<BaselineRow> {
    baseline_compare_rows(false)
}

/// [`baseline_compare`] plus a [`TardisCost`] row per trace.
pub fn baseline_compare_with_tardis() -> Vec<BaselineRow> {
    baseline_compare_rows(true)
}

fn baseline_compare_rows(include_tardis: bool) -> Vec<BaselineRow> {
    let costs = NetCosts::vax_locus();
    let traces: Vec<(&'static str, AccessTrace, usize)> = vec![
        ("ping-pong ×250", AccessTrace::ping_pong(250), 2),
        ("read-mostly 4r", AccessTrace::read_mostly(4, 100, 20), 5),
        ("mixed 4s×4p", AccessTrace::mixed(4, 4, 4000, 7), 4),
    ];
    let per_trace = par_map(&traces, |(name, trace, sites)| {
        let mut mirage = MirageCost::new(*sites, 4, ProtocolConfig::default(), costs.clone());
        let mut central = LiCentral::new(SiteId(0), costs.clone());
        let mut dist = LiDistributed::new(*sites, SiteId(0), costs.clone());
        let mut rows = vec![
            BaselineRow { protocol: "mirage", trace: name, report: mirage.replay(trace) },
            BaselineRow { protocol: "li-central", trace: name, report: central.replay(trace) },
            BaselineRow { protocol: "li-distributed", trace: name, report: dist.replay(trace) },
        ];
        if include_tardis {
            let mut tardis = TardisCost::new(SiteId(0), 8, costs.clone());
            rows.push(BaselineRow {
                protocol: "tardis",
                trace: name,
                report: tardis.replay(trace),
            });
        }
        rows
    });
    per_trace.into_iter().flatten().collect()
}

/// T1 result row: one scenario under one coherence protocol.
#[derive(Clone, Debug)]
pub struct TimestampRow {
    /// Scenario label.
    pub scenario: &'static str,
    /// Protocol label (`mirage`, `li`, or `tardis`).
    pub protocol: &'static str,
    /// Shared-memory accesses completed inside the horizon.
    pub accesses: u64,
    /// Engine events processed per simulated second — the progress
    /// measure that is meaningful even when a scenario makes no
    /// application progress (the spin row under Tardis).
    pub events_per_sec: f64,
    /// Total protocol messages sent.
    pub msgs: u64,
    /// Payload bytes on the wire (full pages, deltas, write-backs).
    pub wire_bytes: u64,
    /// Data-free lease renewals granted (`TsRenew` — Tardis only).
    pub renewals: u64,
    /// Invalidation messages (`Invalidate` + `ReaderInvalidate` —
    /// Mirage/Li only; Tardis never messages a reader).
    pub invalidations: u64,
    /// Owner write-back recalls (`TsRecall` — Tardis only).
    pub recalls: u64,
}

/// The three full-engine protocol configurations T1 compares. Mirage
/// runs the paper's prototype at Δ=6 (the Figure 8 knee); the rivals
/// are the Li–Hudak degenerate and Tardis with a short lease (2): T1's
/// horizons are seconds of simulated time, and program timestamps
/// advance a tick or two per ownership transfer (tens of wall-clock
/// milliseconds on the paper's network), so the default lease of 8
/// would let hardly any lease expire inside the table's window.
fn t1_protocols() -> [(&'static str, ProtocolConfig); 3] {
    [
        ("mirage", ProtocolConfig::paper(Delta(6))),
        ("li", ProtocolConfig::li()),
        ("tardis", ProtocolConfig { ts_lease: 2, ..ProtocolConfig::tardis() }),
    ]
}

/// Runs one already-populated world to the horizon and reads the T1
/// metrics off the instrumentation counters.
fn t1_measure(
    scenario: &'static str,
    protocol: &'static str,
    mut w: World,
    horizon: SimTime,
) -> TimestampRow {
    w.run_until(horizon);
    let secs = w.now().as_secs_f64().max(1e-9);
    let m = &w.instr.msgs;
    TimestampRow {
        scenario,
        protocol,
        accesses: w.total_accesses(),
        events_per_sec: w.engine_events() as f64 / secs,
        msgs: m.total(),
        wire_bytes: m.payload_bytes,
        renewals: m.count(mirage_net::MsgKind::TsRenew),
        invalidations: m.count(mirage_net::MsgKind::Invalidate)
            + m.count(mirage_net::MsgKind::ReaderInvalidate),
        recalls: m.count(mirage_net::MsgKind::TsRecall),
    }
}

/// Aggregates the T1 metrics over a batch of traced fault-storm seeds
/// replayed under one protocol (the bit-identical cross-protocol
/// worlds from the fuzz matrix, faults and all).
fn t1_storm(
    scenario: &'static str,
    name: &'static str,
    seeds: std::ops::Range<u64>,
) -> TimestampRow {
    let fp = mirage_sim::FuzzProtocol::from_name(name).expect("t1 protocol name");
    let mut row = TimestampRow {
        scenario,
        protocol: name,
        accesses: 0,
        events_per_sec: 0.0,
        msgs: 0,
        wire_bytes: 0,
        renewals: 0,
        invalidations: 0,
        recalls: 0,
    };
    let mut sim_secs = 0.0f64;
    let mut engine_events = 0u64;
    for seed in seeds {
        let (outcome, events) = mirage_sim::run_fuzz_seed_protocol_traced(seed, fp);
        assert!(outcome.is_ok(), "T1 storm seed {seed} under {name}: {}", outcome.describe());
        sim_secs += events.last().map_or(0.0, |ev| ev.at.as_secs_f64());
        engine_events += events.len() as u64;
        let reg = mirage_trace::from_trace(&events);
        for ev in &events {
            if ev.kind != mirage_trace::TraceKind::MsgSent {
                continue;
            }
            let Some(msg) = ev.msg else { continue };
            row.msgs += 1;
            match msg.name() {
                "TsRenew" => row.renewals += 1,
                "TsRecall" => row.recalls += 1,
                "Invalidate" | "ReaderInvalidate" => row.invalidations += 1,
                _ => {}
            }
        }
        for kind in ["PageGrant", "LibraryHandoff", "TsReadData", "TsWriteGrant", "TsWriteBack"]
        {
            row.wire_bytes += reg.counter(&format!("wire.bytes.{kind}"));
        }
        row.wire_bytes += reg.counter("wire.bytes.PageGrantDelta");
        row.accesses += reg.counter("copy.installs") + reg.counter("ts.installs");
    }
    row.events_per_sec = engine_events as f64 / sim_secs.max(1e-9);
    row
}

/// T1: the renewal-versus-invalidation matrix. Every scenario runs the
/// *same* world shape under the three coherence protocols (Mirage at
/// Δ=6, Li–Hudak, Tardis at a 2-version lease) and reports events/sec,
/// messages, bytes on the wire, and the renewal/invalidation/recall
/// split.
///
/// Scenario notes:
///
/// * `spin ping-pong` makes **no application progress under Tardis** by
///   design: the ponger's reads are stale-but-leased hits, its program
///   timestamp only advances at protocol events, and a site doing
///   nothing but reads never expires its own lease. This is the
///   documented physical-Δ vs logical-lease trade (DESIGN.md
///   "Timestamp coherence"); the engine-events column shows the world
///   is live even though the cycle count is not moving.
/// * `renewal mix` is the shape Tardis is built for: private-page
///   write faults drag each site's timestamp forward, so the shared
///   page's leases expire and renew data-free while Mirage/Li pay a
///   reader-set invalidation for every periodic write.
/// * `fault storm ×N` replays the cross-protocol fuzz worlds (faulty
///   network, crashes, restarts) and aggregates, tying the table to
///   the same seeds CI sweeps.
pub fn timestamp_compare(quick: bool) -> Vec<TimestampRow> {
    let horizon = SimTime::from_millis(if quick { 1_000 } else { 6_000 });
    let scenarios: &[&'static str] =
        &["spin ping-pong", "decrement duel", "renewal mix", "reader fan-out", "false sharing"];
    let runs: Vec<(&'static str, &'static str, ProtocolConfig)> = scenarios
        .iter()
        .flat_map(|&s| t1_protocols().map(|(name, cfg)| (s, name, cfg)))
        .collect();
    let mut rows = par_map(&runs, |(scenario, name, cfg)| {
        let cfg = SimConfig { protocol: cfg.clone(), ..Default::default() };
        let w = match *scenario {
            "spin ping-pong" => pingpong_world(2, cfg, true),
            "decrement duel" => {
                let mut w = World::new(2, cfg);
                let seg = w.create_segment(0, 1);
                w.spawn(0, Box::new(Decrementer::new(seg, 0, u32::MAX / 2)), 1);
                w.spawn(1, Box::new(Decrementer::new(seg, 128, u32::MAX / 2)), 1);
                w
            }
            "renewal mix" => {
                let mut w = World::new(5, cfg);
                let seg = w.create_segment(0, 5);
                // The home site bumps the shared page 0 occasionally —
                // rarely enough that most Tardis lease expiries find
                // the version unchanged and renew data-free. (A faster
                // writer would turn every re-read into a full fetch
                // and hide the renewal column this row exists to
                // measure; lease expiries land every ~180 ms of sim
                // time here.)
                w.spawn(
                    0,
                    Box::new(PeriodicWriter::new(
                        seg,
                        u32::MAX / 2,
                        SimDuration::from_millis(400),
                    )),
                    1,
                );
                // …while site pairs {1,2} and {3,4} duel over their own
                // write pages and poll the shared one. The write pages
                // must be *contended*: an uncontested owner writes
                // locally forever, its program timestamp never moves,
                // and its lease on page 0 never expires — no renewals
                // to measure.
                for s in 1..5u32 {
                    w.spawn(
                        s as usize,
                        Box::new(WriteReadMix::new(
                            seg,
                            PageNum(1 + (s - 1) / 2),
                            PageNum(0),
                            SimDuration::from_micros(500),
                        )),
                        1,
                    );
                }
                w
            }
            "reader fan-out" => {
                let mut w = World::new(10, cfg);
                let seg = w.create_segment(0, 1);
                for s in 1..=8 {
                    w.spawn(
                        s,
                        Box::new(Rereader::new(seg, u32::MAX / 2, SimDuration::from_millis(2))),
                        1,
                    );
                }
                w.spawn(
                    9,
                    Box::new(PeriodicWriter::new(
                        seg,
                        u32::MAX / 2,
                        SimDuration::from_millis(10),
                    )),
                    1,
                );
                w
            }
            "false sharing" => {
                let mut w = World::new(2, cfg);
                let seg = w.create_segment(0, 1);
                w.spawn(0, Box::new(FalseSharing::new(seg, 0, 5, u32::MAX / 2)), 1);
                w.spawn(1, Box::new(FalseSharing::new(seg, 1, 5, u32::MAX / 2)), 1);
                w
            }
            other => unreachable!("unknown T1 scenario {other}"),
        };
        t1_measure(scenario, name, w, horizon)
    });
    // The storm aggregate reuses the fuzz-matrix worlds; its seeds are
    // small so the quick table stays quick.
    let seeds = if quick { 0..3 } else { 0..8 };
    let storm_label: &'static str = if quick { "fault storm ×3" } else { "fault storm ×8" };
    let storm: Vec<(&'static str, std::ops::Range<u64>)> =
        t1_protocols().map(|(name, _)| (name, seeds.clone())).to_vec();
    rows.extend(par_map(&storm, |(name, seeds)| t1_storm(storm_label, name, seeds.clone())));
    rows
}

/// E3 row: modeled lazy-remap cost at context switch per segment size.
#[derive(Clone, Copy, Debug)]
pub struct RemapRow {
    /// Segment size in KiB.
    pub kib: usize,
    /// Pages remapped.
    pub pages: usize,
    /// Modeled cost in µs (110 µs/page — inside the measured 106–125).
    pub model_us: f64,
}

/// E3: remap cost scaling up to the 128 KiB configuration limit.
pub fn remap_model() -> Vec<RemapRow> {
    [1usize, 4, 16, 64, 128]
        .iter()
        .map(|&kib| {
            let pages = kib * 1024 / mirage_types::PAGE_SIZE;
            RemapRow { kib, pages, model_us: pages as f64 * 110.0 }
        })
        .collect()
}

/// A5 result row: dynamic Δ versus fixed values.
#[derive(Clone, Debug)]
pub struct DynamicRow {
    /// Configuration label.
    pub name: String,
    /// Figure 8 duel throughput (read-write instr/s).
    pub fig8_throughput: f64,
    /// Worst-case ping-pong rate (cycles/s).
    pub pingpong_rate: f64,
}

/// A5: the §8.0 dynamic tuning routine (disabled in the paper's
/// prototype, implemented here) against fixed windows, on both the
/// retention-sensitive duel and the thrash-sensitive worst case.
pub fn dynamic_delta() -> Vec<DynamicRow> {
    dynamic_delta_with(100_000, 30)
}

/// [`dynamic_delta`] with an explicit duel size and ping-pong horizon,
/// for the short-horizon `repro_all --quick` mode.
pub fn dynamic_delta_with(task: u32, seconds: u64) -> Vec<DynamicRow> {
    let policies = [
        ("fixed Δ=0", DeltaPolicy::Uniform(Delta(0))),
        ("fixed Δ=6", DeltaPolicy::Uniform(Delta(6))),
        ("fixed Δ=60", DeltaPolicy::Uniform(Delta(60))),
        (
            "dynamic (0..600)",
            DeltaPolicy::Dynamic { initial: Delta(2), min: Delta(0), max: Delta(600) },
        ),
    ];
    par_map(&policies, |(name, policy)| {
        let protocol = ProtocolConfig { delta: policy.clone(), ..Default::default() };
        // Figure 8 duel (short version).
        let mut w =
            World::new(2, SimConfig { protocol: protocol.clone(), ..Default::default() });
        let seg = w.create_segment(0, 1);
        w.spawn(0, Box::new(Decrementer::new(seg, 0, task)), 1);
        w.spawn(1, Box::new(Decrementer::new(seg, 128, task)), 1);
        w.run_to_completion(SimTime::from_millis(300_000));
        let fig8_throughput = w.total_accesses() as f64 / w.now().as_secs_f64();
        // Worst-case ping-pong.
        let mut w = World::new(2, SimConfig { protocol, ..Default::default() });
        let seg = w.create_segment(0, 1);
        w.spawn(0, Box::new(PingPongPinger::new(seg, u32::MAX / 4, true)), 1);
        w.spawn(1, Box::new(PingPongPonger::new(seg, true)), 1);
        w.run_until(SimTime::from_millis(seconds * 1000));
        let pingpong_rate = w.sites[0].procs[0].metric() as f64 / seconds as f64;
        DynamicRow { name: name.to_string(), fig8_throughput, pingpong_rate }
    })
}

// ---------------------------------------------------------------------------
// L1: open-loop latency distributions and saturation knees.

/// One measured rung of the L1 open-loop ladder: three stations (sites
/// 1–3 of a 4-site world) inject Poisson demands at `rate` req/s each
/// against a 4-page segment, and every granted request's sojourn
/// (arrival → grant) feeds an exact-quantile [`LatencySet`](mirage_trace::LatencySet).
#[derive(Clone, Debug)]
pub struct OpenLoopRow {
    /// Protocol name (`mirage` / `li` / `tardis`).
    pub protocol: &'static str,
    /// Config variant (`base` / `delta_grants` / `shard`).
    pub config: &'static str,
    /// Whether a fault storm ran under the schedule.
    pub storm: bool,
    /// Offered load per station, requests per simulated second.
    pub rate: u64,
    /// Demands scheduled across all stations.
    pub offered: u64,
    /// Demands granted before the drain deadline.
    pub granted: u64,
    /// Median sojourn (arrival → grant) over granted requests, µs.
    pub p50_us: u64,
    /// 99th-percentile sojourn, µs.
    pub p99_us: u64,
    /// Mean sojourn, µs.
    pub mean_us: u64,
    /// Deepest station queue observed at any submit.
    pub max_depth: u32,
}

/// The saturation knee of one protocol × config combination, found by
/// integer bisection on the offered-load axis.
#[derive(Clone, Debug)]
pub struct KneeRow {
    /// Protocol name.
    pub protocol: &'static str,
    /// Config variant.
    pub config: &'static str,
    /// p99 sojourn at the unloaded anchor rate, µs.
    pub unloaded_p99_us: u64,
    /// Smallest probed per-station rate that saturates (req/s), or the
    /// ladder ceiling if nothing saturated.
    pub knee_rate: u64,
    /// p99 sojourn at the knee, µs.
    pub p99_at_knee_us: u64,
    /// Percent of offered demands granted at the knee.
    pub granted_pct: u64,
}

/// The protocol × config combinations L1 sweeps. Protocols reuse the
/// T1 configurations (Mirage at the paper's Δ=6 knee, the Li–Hudak
/// degenerate, Tardis with the short lease); the two Mirage variants
/// add sub-page delta grants and a 2-page library shard split.
fn l1_combos() -> Vec<(&'static str, &'static str, ProtocolConfig)> {
    let mut combos: Vec<(&'static str, &'static str, ProtocolConfig)> =
        t1_protocols().into_iter().map(|(name, cfg)| (name, "base", cfg)).collect();
    combos.push((
        "mirage",
        "delta_grants",
        ProtocolConfig { delta_grants: true, ..ProtocolConfig::paper(Delta(6)) },
    ));
    combos.push((
        "mirage",
        "shard",
        ProtocolConfig { shard_pages: 2, ..ProtocolConfig::paper(Delta(6)) },
    ));
    combos
}

/// Sim-time an L1 world accepts arrivals for, and the post-schedule
/// drain allowance before latencies are read (ungranted records stay
/// ungranted and count against completion — rival protocols can starve
/// outright past saturation, so the drain must not wait for them).
fn l1_horizons(quick: bool) -> (SimDuration, SimDuration) {
    if quick {
        (SimDuration::from_millis(1_000), SimDuration::from_millis(3_000))
    } else {
        (SimDuration::from_millis(2_000), SimDuration::from_millis(6_000))
    }
}

/// A moderate L1 storm plan: drops, delays, and one mid-schedule crash
/// of station-site 2. Deterministic per seed; `horizon` should cover
/// the arrival window so the drain happens on a clean network.
fn l1_storm_plan(seed: u64, horizon: SimTime) -> mirage_net::FaultPlan {
    let mut plan = mirage_net::FaultPlan::none();
    plan.seed = seed;
    plan.horizon = horizon;
    plan.gap_wait = SimDuration::from_millis(25);
    plan.default_link = mirage_net::LinkFaults {
        drop_pm: 150,
        dup_pm: 100,
        delay_pm: 500,
        max_delay: SimDuration::from_millis(8),
    };
    plan.crashes.push(mirage_net::CrashEvent {
        site: SiteId(2),
        at: SimTime::ZERO + SimDuration::from_millis(300),
        back_at: SimTime::ZERO + SimDuration::from_millis(500),
    });
    plan
}

/// Runs one L1 world and reduces its records to an [`OpenLoopRow`].
///
/// The arrival schedules depend only on `rate` and the shared seed —
/// never on the protocol — so every combo at a given rung replays the
/// bit-identical demand sequence and rows are directly comparable.
fn openloop_run(
    protocol: &'static str,
    config: &'static str,
    mut proto_cfg: ProtocolConfig,
    rate: u64,
    quick: bool,
    storm: bool,
) -> OpenLoopRow {
    use mirage_trace::{
        LatencyPhase,
        LatencySet,
    };
    use mirage_workloads::{
        build_demands,
        latency_records,
        sample_arrivals,
        ArrivalProcess,
    };

    let (arrive, drain) = l1_horizons(quick);
    if storm {
        proto_cfg.retry = Some(RetryPolicy::default());
    }
    let cfg = SimConfig { protocol: proto_cfg, ..Default::default() };
    let mut w = World::new(4, cfg);
    let seg = w.create_segment(0, 4);
    if storm {
        w.install_fault_plan(l1_storm_plan(0x0057_084D ^ rate, SimTime::ZERO + arrive));
    }
    let mut stations = Vec::new();
    for site in 1..4usize {
        // One PRNG stream per (station, rate): schedules are identical
        // across protocols and configs at the same rung.
        let mut rng = mirage_types::Prng::new(0x0001_1AD7_0000 ^ (rate << 8) ^ site as u64);
        let arrivals = sample_arrivals(
            ArrivalProcess::Poisson { rate_per_sec: rate as f64 },
            &mut rng,
            arrive,
        );
        let profile = mirage_workloads::DemandProfile {
            seg,
            pages: 4,
            write_offset: site * 4,
            read_words: 4,
            write_pct: 20,
            value_base: (site as u32) * 1_000_000,
        };
        let (demands, _) = build_demands(&arrivals, &profile, &mut rng);
        stations.push(w.install_open_loop(mirage_sim::OpenLoopStation {
            site,
            demands,
            workers: 1,
            shm_pages: 4,
        }));
    }
    w.run_until(SimTime::ZERO + arrive + drain);

    let mut set = LatencySet::new();
    let mut offered = 0u64;
    let mut max_depth = 0u32;
    for st in &stations {
        offered += st.lock().expect("station poisoned").records.len() as u64;
        for r in latency_records(st) {
            max_depth = max_depth.max(r.depth_at_submit);
            set.push(r);
        }
    }
    let q = |p: f64| set.quantile_ns(LatencyPhase::Sojourn, p).unwrap_or(0) / 1_000;
    OpenLoopRow {
        protocol,
        config,
        storm,
        rate,
        offered,
        granted: set.len() as u64,
        p50_us: q(0.50),
        p99_us: q(0.99),
        mean_us: set.mean_ns(LatencyPhase::Sojourn) / 1_000,
        max_depth,
    }
}

/// The offered-load rungs of the L1 ladder (per-station req/s).
fn l1_ladder_rates(quick: bool) -> Vec<u64> {
    if quick {
        vec![5, 20, 80, 320]
    } else {
        vec![5, 10, 20, 40, 80, 160, 320, 640]
    }
}

/// L1 ladder: every protocol × config combo at every rung, in combo-
/// major order. Each world is independent, so the sweep fans out
/// through [`par_map`] and the output is byte-identical at any `--jobs`.
pub fn openloop_ladder(quick: bool) -> Vec<OpenLoopRow> {
    let mut points = Vec::new();
    for (protocol, config, cfg) in l1_combos() {
        for rate in l1_ladder_rates(quick) {
            points.push((protocol, config, cfg.clone(), rate));
        }
    }
    par_map(&points, |(protocol, config, cfg, rate)| {
        openloop_run(protocol, config, cfg.clone(), *rate, quick, false)
    })
}

/// The same ladder's middle rung re-run under the L1 fault storm, per
/// combo: latency distributions under drops, delays, and a crash.
pub fn openloop_storm(quick: bool) -> Vec<OpenLoopRow> {
    let combos = l1_combos();
    par_map(&combos, |(protocol, config, cfg)| {
        openloop_run(protocol, config, cfg.clone(), 20, quick, true)
    })
}

/// Whether a rung counts as saturated: p99 sojourn beyond
/// `L1_KNEE_MULT` × the unloaded p99, or more than 1 % of demands
/// never granted by the drain deadline (rival protocols can starve
/// outright in overload, which no latency quantile of the granted
/// subset would show).
const L1_KNEE_MULT: u64 = 8;

fn l1_saturated(row: &OpenLoopRow, unloaded_p99_us: u64) -> bool {
    row.granted * 100 < row.offered * 99 || row.p99_us > unloaded_p99_us * L1_KNEE_MULT
}

/// L1 knee finder: integer bisection on the offered-load axis for the
/// lowest saturating rate. The unloaded anchor is the ladder's bottom
/// rung; the ceiling is its top. Bisection stops at 12.5 % relative
/// resolution, so the whole search is a bounded, deterministic probe
/// sequence (every probe a fresh world with the shared arrival seed).
pub fn openloop_knees(quick: bool) -> Vec<KneeRow> {
    let rates = l1_ladder_rates(quick);
    let (floor, ceil) = (rates[0], *rates.last().expect("ladder non-empty"));
    let combos = l1_combos();
    par_map(&combos, |(protocol, config, cfg)| {
        let run = |rate: u64, storm: bool| {
            openloop_run(protocol, config, cfg.clone(), rate, quick, storm)
        };
        let unloaded = run(floor, false);
        let unloaded_p99_report = unloaded.p99_us;
        let unloaded_p99 = unloaded.p99_us.max(1);
        // Establish the bracket: lo never saturated, hi saturated (or
        // the ceiling, if the combo never saturates in range).
        let (mut lo, mut hi) = (floor, ceil);
        let mut at_hi = run(hi, false);
        if l1_saturated(&unloaded, unloaded_p99) {
            // Already saturated at the anchor (can't happen with the
            // multiplicative predicate, kept for the completion arm).
            hi = lo;
            at_hi = unloaded;
        } else if !l1_saturated(&at_hi, unloaded_p99) {
            // Never saturates in range: report the ceiling rung.
            return KneeRow {
                protocol,
                config,
                unloaded_p99_us: unloaded_p99_report,
                knee_rate: ceil,
                p99_at_knee_us: at_hi.p99_us,
                granted_pct: at_hi.granted * 100 / at_hi.offered.max(1),
            };
        }
        while hi - lo > (lo / 8).max(1) {
            let mid = lo + (hi - lo) / 2;
            let probe = run(mid, false);
            if l1_saturated(&probe, unloaded_p99) {
                hi = mid;
                at_hi = probe;
            } else {
                lo = mid;
            }
        }
        KneeRow {
            protocol,
            config,
            unloaded_p99_us: unloaded_p99_report,
            knee_rate: hi,
            p99_at_knee_us: at_hi.p99_us,
            granted_pct: at_hi.granted * 100 / at_hi.offered.max(1),
        }
    })
}

/// The merged sojourn CDF of one combo at one rate, as the exact
/// `(value, cumulative)` text rendering from [`cdf_text`](mirage_trace::LatencySet::cdf_text)
/// — the `openloop_latency --cdf` payload.
pub fn openloop_cdf(quick: bool, rate: u64) -> String {
    use mirage_trace::{
        LatencyPhase,
        LatencySet,
    };
    let (protocol, config, cfg) = l1_combos().into_iter().next().expect("combos");
    let _ = openloop_run(protocol, config, cfg.clone(), rate, quick, false);
    // Re-run capturing the set itself (openloop_run reduces to a row).
    let mut set = LatencySet::new();
    {
        use mirage_workloads::{
            build_demands,
            latency_records,
            sample_arrivals,
            ArrivalProcess,
        };
        let (arrive, drain) = l1_horizons(quick);
        let mut w = World::new(4, SimConfig { protocol: cfg, ..Default::default() });
        let seg = w.create_segment(0, 4);
        let mut stations = Vec::new();
        for site in 1..4usize {
            let mut rng = mirage_types::Prng::new(0x0001_1AD7_0000 ^ (rate << 8) ^ site as u64);
            let arrivals = sample_arrivals(
                ArrivalProcess::Poisson { rate_per_sec: rate as f64 },
                &mut rng,
                arrive,
            );
            let profile = mirage_workloads::DemandProfile {
                seg,
                pages: 4,
                write_offset: site * 4,
                read_words: 4,
                write_pct: 20,
                value_base: (site as u32) * 1_000_000,
            };
            let (demands, _) = build_demands(&arrivals, &profile, &mut rng);
            stations.push(w.install_open_loop(mirage_sim::OpenLoopStation {
                site,
                demands,
                workers: 1,
                shm_pages: 4,
            }));
        }
        w.run_until(SimTime::ZERO + arrive + drain);
        for st in &stations {
            for r in latency_records(st) {
                set.push(r);
            }
        }
    }
    set.cdf_text(LatencyPhase::Sojourn)
}
