//! B1: Mirage versus Li's shared virtual memory protocols.

use mirage_bench::{
    baseline_compare,
    harness::parse_jobs_flag,
    print_table,
};

fn main() {
    parse_jobs_flag(std::env::args().skip(1));
    println!("B1 — identical traces through Mirage and Li-Hudak SVM (Appendix I comparison)\n");
    let rows: Vec<Vec<String>> = baseline_compare()
        .into_iter()
        .map(|r| {
            vec![
                r.trace.to_string(),
                r.protocol.to_string(),
                r.report.faults.to_string(),
                r.report.shorts.to_string(),
                r.report.larges.to_string(),
                format!("{:.0}", r.report.wire_time.as_millis_f64()),
            ]
        })
        .collect();
    print_table(
        &["trace", "protocol", "faults", "short msgs", "page msgs", "wire time (ms)"],
        &rows,
    );
}
