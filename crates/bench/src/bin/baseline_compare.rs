//! B1: Mirage versus Li's shared virtual memory protocols.
//!
//! `--tardis` adds the timestamp-coherence cost model as a fourth row
//! per trace; the default table is unchanged (and golden-pinned via
//! `repro_all`).

use mirage_bench::{
    baseline_compare,
    baseline_compare_with_tardis,
    harness::parse_jobs_flag,
    print_table,
};

fn main() {
    let tardis = std::env::args().skip(1).any(|a| a == "--tardis");
    parse_jobs_flag(std::env::args().skip(1).filter(|a| a.as_str() != "--tardis"));
    println!("B1 — identical traces through Mirage and Li-Hudak SVM (Appendix I comparison)\n");
    let results = if tardis { baseline_compare_with_tardis() } else { baseline_compare() };
    let rows: Vec<Vec<String>> = results
        .into_iter()
        .map(|r| {
            vec![
                r.trace.to_string(),
                r.protocol.to_string(),
                r.report.faults.to_string(),
                r.report.shorts.to_string(),
                r.report.larges.to_string(),
                format!("{:.0}", r.report.wire_time.as_millis_f64()),
            ]
        })
        .collect();
    print_table(
        &["trace", "protocol", "faults", "short msgs", "page msgs", "wire time (ms)"],
        &rows,
    );
}
