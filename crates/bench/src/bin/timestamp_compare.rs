//! T1: the renewal-versus-invalidation matrix — Mirage, Li–Hudak, and
//! Tardis timestamp coherence over identical world shapes.
//!
//! ```text
//! timestamp_compare            # full horizons (6 s sim per cell)
//! timestamp_compare --quick    # 1 s horizons, 3 storm seeds
//! timestamp_compare --jobs 4   # parallel cells, byte-identical output
//! ```
//!
//! The `spin ping-pong` row intentionally shows ~zero Tardis accesses:
//! a pure reader never advances its own program timestamp, so its
//! stale-but-leased copy keeps serving — the documented trade against
//! Mirage's physical Δ window (DESIGN.md, "Timestamp coherence").

use mirage_bench::{
    harness::parse_jobs_flag,
    print_table,
    timestamp_compare,
};

fn main() {
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    parse_jobs_flag(std::env::args().skip(1).filter(|a| a.as_str() != "--quick"));
    println!(
        "T1 — timestamp coherence vs invalidation coherence (renewal/invalidation split)\n"
    );
    let rows: Vec<Vec<String>> = timestamp_compare(quick)
        .into_iter()
        .map(|r| {
            vec![
                r.scenario.to_string(),
                r.protocol.to_string(),
                r.accesses.to_string(),
                format!("{:.0}", r.events_per_sec),
                r.msgs.to_string(),
                r.wire_bytes.to_string(),
                r.renewals.to_string(),
                r.invalidations.to_string(),
                r.recalls.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "scenario",
            "protocol",
            "accesses",
            "events/s",
            "msgs",
            "wire bytes",
            "renewals",
            "invalidations",
            "recalls",
        ],
        &rows,
    );
}
