//! E5b: the N-site version of the worst case (§7.2) — one page
//! circulating through N sites as a token ring.

use mirage_bench::{
    print_table,
    sim_config,
};
use mirage_sim::World;
use mirage_types::{
    Delta,
    SimTime,
};
use mirage_workloads::RingMember;

fn main() {
    println!("E5b — N-site worst case: one page circulating through N sites\n");
    let mut rows = Vec::new();
    for n in [2usize, 3, 4, 6, 8] {
        for delta in [0u32, 2] {
            let mut w = World::new(n, sim_config(Delta(delta)));
            let seg = w.create_segment(0, 1);
            for i in 0..n {
                w.spawn(
                    i,
                    Box::new(RingMember::new(seg, i as u32, n as u32, u32::MAX / 4, true)),
                    1,
                );
            }
            w.run_until(SimTime::from_millis(30_000));
            // One lap = every member incremented once.
            let laps = w.sites[0].procs[0].metric() as f64 / 30.0;
            let msgs = w.instr.msgs.total() as f64 / w.sites[0].procs[0].metric().max(1) as f64;
            rows.push(vec![
                n.to_string(),
                delta.to_string(),
                format!("{laps:.2}"),
                format!("{:.1}", msgs / n as f64),
            ]);
        }
    }
    print_table(&["sites", "Δ", "laps/s", "msgs per handoff"], &rows);
    println!("\n(the paper: \"in a network with a larger number of sites sharing");
    println!(" pages than ours, invalidations may become expensive\", §10)");
}
