//! H2: live library migration on the real-memory runtime over Unix
//! sockets — the §9 ref-log advisor follows a shifting hot site with
//! two epoch-stamped handoffs, mid-run.
//!
//! Exits non-zero when the library fails to follow, so CI can gate on
//! it. The full multi-process variant is `mirage-cluster` (see
//! `EXPERIMENTS.md` §H2).

use mirage_bench::h2_live_migration;

fn main() {
    println!("H2 — host-driven live migration (3 sites, UDS wire, advisor on)\n");
    let report = h2_live_migration();
    if report.migrations.is_empty() {
        println!("no migrations issued");
    }
    for (i, m) in report.migrations.iter().enumerate() {
        println!(
            "move {}: seg {:?} site {} -> site {} at {:.1} ms ({} requests in window)",
            i + 1,
            m.seg,
            m.from.0,
            m.to.0,
            m.at.0 as f64 / 1e6,
            m.requests,
        );
    }
    println!("\nresult: {}", if report.pass { "PASS" } else { "FAIL" });
    if std::env::args().any(|a| a == "--metrics") {
        println!("\n## merged metrics\n{}", report.metrics);
    }
    std::process::exit(i32::from(!report.pass));
}
