//! E9: the test&set experiment (§7.2): lock and data on one page.

use mirage_bench::{
    harness::parse_jobs_flag,
    print_table,
    test_and_set,
};

fn main() {
    parse_jobs_flag(std::env::args().skip(1));
    println!(
        "E9 — test&set busy-wait lock thrashing (paper §7.2: Δ>0 helps the locking writer)\n"
    );
    for yields in [false, true] {
        println!(
            "tester {}:",
            if yields { "with yield()" } else { "busy-waiting (paper's warning case)" }
        );
        let pts = test_and_set(&[0, 2, 6, 12], yields, 30);
        let rows: Vec<Vec<String>> = pts
            .iter()
            .map(|p| {
                vec![
                    p.delta.to_string(),
                    format!("{:.2}", p.sections_per_sec),
                    format!("{:.1}", p.msgs_per_section),
                ]
            })
            .collect();
        print_table(&["Δ", "critical sections/s", "msgs/section"], &rows);
        println!();
    }
}
