//! E2 / Table 3: time to obtain an in-memory page remotely.

use mirage_bench::{
    print_table,
    table3,
};

fn main() {
    println!("E2 — Table 3: remote page fetch breakdown (ms)\n");
    let rows: Vec<Vec<String>> = table3()
        .into_iter()
        .map(|r| {
            vec![r.label.to_string(), format!("{:.2}", r.ours_ms), format!("{:.2}", r.paper_ms)]
        })
        .collect();
    print_table(&["operation", "ours (ms)", "paper (ms)"], &rows);
}
