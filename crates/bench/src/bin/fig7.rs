//! E5 / Figure 7: worst-case throughput as a function of Δ.

use mirage_bench::{
    fig7,
    harness::parse_jobs_flag,
    print_table,
};

fn main() {
    parse_jobs_flag(std::env::args().skip(1));
    println!("E5 — Figure 7: two-site worst case, cycles/s vs Δ (ticks)");
    println!("(paper: yield ≈50% better at Δ=2; curves intersect at Δ=6, the quantum)\n");
    let pts = fig7(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 14], 60);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.delta.to_string(),
                format!("{:.2}", p.yield_rate),
                format!("{:.2}", p.noyield_rate),
                format!("{:+.0}%", (p.yield_rate / p.noyield_rate - 1.0) * 100.0),
            ]
        })
        .collect();
    print_table(&["Δ", "yield (cycles/s)", "no-yield (cycles/s)", "yield gain"], &rows);
    let cross = pts
        .windows(2)
        .find(|w| {
            (w[0].yield_rate >= w[0].noyield_rate) != (w[1].yield_rate >= w[1].noyield_rate)
        })
        .map(|w| w[1].delta);
    match cross {
        Some(d) => println!("\ncurves cross near Δ={d} (paper: Δ=6, the scheduling quantum)"),
        None => println!("\ncurves do not cross in this range"),
    }
}
