//! E10: thrashing amelioration — Δ trades thrasher throughput for
//! system throughput (§7.3).

use mirage_bench::{
    harness::parse_jobs_flag,
    print_table,
    thrash_system,
};

fn main() {
    parse_jobs_flag(std::env::args().skip(1));
    println!("E10 — system throughput while an application thrashes (paper §7.3)\n");
    let pts = thrash_system(&[0, 2, 6, 12, 30, 60], 40);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![p.delta.to_string(), format!("{:.2}", p.app_rate), format!("{:.1}", p.bg_rate)]
        })
        .collect();
    print_table(&["Δ", "thrasher cycles/s", "background chunks/s"], &rows);
    println!("\n(expected: thrasher falls, background rises as Δ grows)");
}
