//! E3: lazy remap cost versus segment size (§6.2).

use mirage_bench::{
    print_table,
    remap_model,
};

fn main() {
    println!("E3 — lazy PTE remap at context switch (paper: 106-125 µs per 512-byte page)\n");
    let rows: Vec<Vec<String>> = remap_model()
        .into_iter()
        .map(|r| {
            vec![
                format!("{} KiB", r.kib),
                r.pages.to_string(),
                format!("{:.0}", r.model_us),
                format!("{:.2}", r.model_us / 1000.0),
            ]
        })
        .collect();
    print_table(&["segment", "pages", "remap (µs)", "remap (ms)"], &rows);
    println!("\n(the 128 KiB maximum segment costs ≈28 ms per context switch — why the paper");
    println!(" notes \"processes that do not use shared memory pay no penalty\")");
}
