//! E8 / Table 1: the clock-site action matrix.

use mirage_bench::print_table;
use mirage_core::table1::{
    row,
    Current,
    Invalidation,
};
use mirage_types::Access;

fn main() {
    println!("E8 — Table 1: page operations for read and write requests\n");
    let mut rows = Vec::new();
    for (current, cname) in [(Current::Readers, "Readers"), (Current::Writer, "Writer")] {
        for (incoming, iname) in [(Access::Read, "Readers"), (Access::Write, "Writer")] {
            let in_set = current == Current::Readers && incoming == Access::Write;
            let r = row(current, incoming, in_set, true);
            let inv = match r.invalidation {
                Invalidation::No => "No".to_string(),
                Invalidation::Yes => "Yes".to_string(),
                Invalidation::YesWithUpgrade => {
                    "Yes, upgrade (requester in read set)".to_string()
                }
                Invalidation::DowngradeWriter => "Downgrade writer to reader".to_string(),
            };
            rows.push(vec![
                cname.to_string(),
                iname.to_string(),
                if r.clock_check { "Yes" } else { "No" }.to_string(),
                inv,
            ]);
        }
    }
    print_table(&["Current", "Incoming", "Clock Check", "Invalidation"], &rows);
}
