//! L1: open-loop latency distributions and saturation knees — Mirage,
//! Li–Hudak, and Tardis under identical seeded arrival schedules.
//!
//! ```text
//! openloop_latency              # full ladder (2 s arrivals per point)
//! openloop_latency --quick     # 1 s arrivals, 4-rung ladder
//! openloop_latency --jobs 4    # parallel points, byte-identical output
//! openloop_latency --cdf 80    # also dump the sojourn CDF at one rate
//! ```
//!
//! Offered load is per station (three stations fault against a fourth
//! site's library), so the schedule keeps arriving whether or not the
//! protocol keeps up. Quantiles are exact, over granted requests only;
//! the `granted` column against `offered` is the starvation signal —
//! Li–Hudak (Δ=0 by definition) visibly stops granting under overload,
//! the open-loop face of the §7.2 thrashing that Mirage's Δ window
//! exists to prevent. The knee is the lowest rate where p99 exceeds
//! 8× the unloaded p99 or completions fall below 99% of offered.

use mirage_bench::{
    harness::parse_jobs_flag,
    openloop_cdf,
    openloop_knees,
    openloop_ladder,
    openloop_storm,
    print_table,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let cdf_at = args.iter().position(|a| a == "--cdf");
    let cdf_rate: Option<u64> =
        cdf_at.map(|i| args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(80));
    // Strip --quick and --cdf (with its optional rate) before the jobs
    // parser; --jobs and its value pass through intact.
    let rest: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            a.as_str() != "--quick"
                && cdf_at != Some(*i)
                && !(cdf_at == Some(i.wrapping_sub(1)) && a.parse::<u64>().is_ok())
        })
        .map(|(_, a)| a.clone())
        .collect();
    parse_jobs_flag(rest.into_iter());

    println!("L1 — open-loop latency ladder (Poisson arrivals, per-station req/s)\n");
    let ladder: Vec<Vec<String>> = openloop_ladder(quick)
        .into_iter()
        .map(|r| {
            vec![
                r.protocol.to_string(),
                r.config.to_string(),
                r.rate.to_string(),
                r.offered.to_string(),
                r.granted.to_string(),
                r.p50_us.to_string(),
                r.p99_us.to_string(),
                r.mean_us.to_string(),
                r.max_depth.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "protocol",
            "config",
            "req/s",
            "offered",
            "granted",
            "p50 µs",
            "p99 µs",
            "mean µs",
            "max depth",
        ],
        &ladder,
    );

    println!("\nL1 — saturation knees (bisection; p99 > 8× unloaded or granted < 99%)\n");
    let knees: Vec<Vec<String>> = openloop_knees(quick)
        .into_iter()
        .map(|k| {
            vec![
                k.protocol.to_string(),
                k.config.to_string(),
                k.unloaded_p99_us.to_string(),
                k.knee_rate.to_string(),
                k.p99_at_knee_us.to_string(),
                format!("{}%", k.granted_pct),
            ]
        })
        .collect();
    print_table(
        &[
            "protocol",
            "config",
            "unloaded p99 µs",
            "knee req/s",
            "p99 at knee µs",
            "granted at knee",
        ],
        &knees,
    );

    println!("\nL1 — fault-storm overlay (drops, dups, delays, one crash; 20 req/s)\n");
    let storm: Vec<Vec<String>> = openloop_storm(quick)
        .into_iter()
        .map(|r| {
            vec![
                r.protocol.to_string(),
                r.config.to_string(),
                r.offered.to_string(),
                r.granted.to_string(),
                r.p50_us.to_string(),
                r.p99_us.to_string(),
            ]
        })
        .collect();
    print_table(&["protocol", "config", "offered", "granted", "p50 µs", "p99 µs"], &storm);

    if let Some(rate) = cdf_rate {
        println!("\nL1 — mirage/base sojourn CDF at {rate} req/s per station\n");
        print!("{}", openloop_cdf(quick, rate));
    }
}
