//! E1: the paper's raw message-cost anchors versus our cost model.

use mirage_bench::{
    component_costs,
    print_table,
};

fn main() {
    println!("E1 — component costs (paper §7.1 / §6.2)\n");
    let rows: Vec<Vec<String>> = component_costs()
        .into_iter()
        .map(|r| {
            vec![r.label.to_string(), format!("{:.2}", r.ours_ms), format!("{:.2}", r.paper_ms)]
        })
        .collect();
    print_table(&["component", "ours", "paper"], &rows);
}
