//! S1: false sharing with and without sub-page delta grants.
//!
//! Two writers scribble disjoint halves of one page at Δ=0; the sweep
//! compares wire bytes per serve and makespan with diff-based write
//! propagation off and on. Deterministic at any `--jobs` value.

use mirage_bench::{
    false_sharing,
    harness::parse_jobs_flag,
    print_table,
};

fn main() {
    parse_jobs_flag(std::env::args().skip(1));
    println!("S1 — false sharing: two writers, disjoint halves of one page (Δ=0)");
    println!("(delta grants ship XOR diffs against the recipient's last copy; full grants ship the §7.2 1024-byte page buffer)\n");
    let seeds = [1, 2, 3, 4];
    let rows_raw = false_sharing(&seeds, 2_000);
    let rows: Vec<Vec<String>> = rows_raw
        .iter()
        .map(|r| {
            vec![
                r.seed.to_string(),
                if r.delta_grants { "on" } else { "off" }.to_string(),
                r.serves.to_string(),
                r.full_grants.to_string(),
                r.delta_grants_sent.to_string(),
                r.wire_bytes.to_string(),
                format!("{:.1}", r.bytes_per_serve),
                format!("{:.1}", r.makespan_ms),
            ]
        })
        .collect();
    print_table(
        &[
            "seed",
            "deltas",
            "serves",
            "full",
            "delta",
            "wire bytes",
            "bytes/serve",
            "makespan ms",
        ],
        &rows,
    );
    // The headline ratio: how much smaller a serve got, averaged over seeds.
    let mean = |on: bool| {
        let sel: Vec<_> = rows_raw.iter().filter(|r| r.delta_grants == on).collect();
        sel.iter().map(|r| r.bytes_per_serve).sum::<f64>() / sel.len().max(1) as f64
    };
    let (off, on) = (mean(false), mean(true));
    println!("\nmean bytes/serve: off {off:.1}, on {on:.1} — {:.1}x reduction", off / on);
}
