//! M1: library placement on a hot-spot workload — the relocatable
//! library role (epoch-stamped handoff) driven by the §9 reference-log
//! advisor, versus a pinned library and a manual one-shot handoff.

use mirage_bench::{
    harness::parse_jobs_flag,
    migration_hotspot,
    print_table,
};

fn main() {
    let mut task: u32 = 600;
    let mut args = std::env::args().skip(1);
    let mut rest = Vec::new();
    while let Some(a) = args.next() {
        if a == "--task" {
            task = args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--task needs a positive integer");
        } else {
            rest.push(a);
        }
    }
    parse_jobs_flag(rest.into_iter());

    println!("M1 — library placement on a hot-spot workload ({task} partner writes)\n");
    let rows: Vec<Vec<String>> = migration_hotspot(task)
        .into_iter()
        .map(|r| {
            vec![
                r.policy.into(),
                r.hot_remote_faults.to_string(),
                r.remote_faults.to_string(),
                r.local_faults.to_string(),
                format!("{:.0}", r.throughput),
                format!("site{}", r.final_library),
            ]
        })
        .collect();
    print_table(
        &["policy", "hot remote faults", "remote faults", "local faults", "instr/s", "library"],
        &rows,
    );
    println!("\n(the advisor should discover the manual move on its own: the hot");
    println!(" site's remote-fault count collapses once the library lands there)");
}
