//! M1: library placement on a hot-spot workload — the relocatable
//! library role (epoch-stamped handoff) driven by the §9 reference-log
//! advisor, versus a pinned library and a manual one-shot handoff.

use mirage_bench::{
    harness::parse_jobs_flag,
    migration_hotspot,
    migration_hotspot_sharded,
    print_table,
};

fn main() {
    let mut task: u32 = 600;
    let mut sharded = false;
    let mut args = std::env::args().skip(1);
    let mut rest = Vec::new();
    while let Some(a) = args.next() {
        if a == "--task" {
            task = args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--task needs a positive integer");
        } else if a == "--sharded" {
            sharded = true;
        } else {
            rest.push(a);
        }
    }
    parse_jobs_flag(rest.into_iter());

    if sharded {
        println!("M2 — range-sharded placement, two hot shards ({task} partner writes)\n");
        let rows: Vec<Vec<String>> = migration_hotspot_sharded(task)
            .into_iter()
            .map(|r| {
                vec![
                    r.policy.into(),
                    r.hot_remote_faults[0].to_string(),
                    r.hot_remote_faults[1].to_string(),
                    r.remote_faults.to_string(),
                    r.local_faults.to_string(),
                    format!("{:.0}", r.throughput),
                    r.shard_sites
                        .iter()
                        .enumerate()
                        .map(|(i, s)| format!("s{i}@site{s}"))
                        .collect::<Vec<_>>()
                        .join(" "),
                ]
            })
            .collect();
        print_table(
            &[
                "policy",
                "site1 remote",
                "site2 remote",
                "remote faults",
                "local faults",
                "instr/s",
                "shards",
            ],
            &rows,
        );
        println!("\n(each shard should land at its own hot site: a whole-segment");
        println!(" library could chase at most one of the two hot ranges)");
        return;
    }

    println!("M1 — library placement on a hot-spot workload ({task} partner writes)\n");
    let rows: Vec<Vec<String>> = migration_hotspot(task)
        .into_iter()
        .map(|r| {
            vec![
                r.policy.into(),
                r.hot_remote_faults.to_string(),
                r.remote_faults.to_string(),
                r.local_faults.to_string(),
                format!("{:.0}", r.throughput),
                format!("site{}", r.final_library),
            ]
        })
        .collect();
    print_table(
        &["policy", "hot remote faults", "remote faults", "local faults", "instr/s", "library"],
        &rows,
    );
    println!("\n(the advisor should discover the manual move on its own: the hot");
    println!(" site's remote-fault count collapses once the library lands there)");
}
