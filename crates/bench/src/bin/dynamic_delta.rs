//! A5: the §8.0 dynamic Δ-tuning routine versus fixed windows.

use mirage_bench::{
    dynamic_delta,
    harness::parse_jobs_flag,
    print_table,
};

fn main() {
    parse_jobs_flag(std::env::args().skip(1));
    println!("A5 — dynamic per-page Δ (the paper's disabled routine, implemented)\n");
    let rows: Vec<Vec<String>> = dynamic_delta()
        .into_iter()
        .map(|r| {
            vec![r.name, format!("{:.0}", r.fig8_throughput), format!("{:.2}", r.pingpong_rate)]
        })
        .collect();
    print_table(&["policy", "fig8 duel (instr/s)", "worst case (cycles/s)"], &rows);
    println!("\n(a good dynamic policy should approach the best fixed Δ on BOTH");
    println!(" workloads, without knowing either in advance)");
}
