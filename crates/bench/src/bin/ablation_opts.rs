//! A1–A3: protocol-feature ablations on the worst case.

use mirage_bench::{
    ablation_opts,
    harness::parse_jobs_flag,
    print_table,
};

fn main() {
    parse_jobs_flag(std::env::args().skip(1));
    println!("A1–A3 — protocol optimizations, worst case at Δ=2\n");
    let rows: Vec<Vec<String>> = ablation_opts(40)
        .into_iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{:.2}", r.cycles_per_sec),
                format!("{:.2}", r.shorts_per_cycle),
                format!("{:.2}", r.larges_per_cycle),
            ]
        })
        .collect();
    print_table(&["configuration", "cycles/s", "short msgs/cycle", "page msgs/cycle"], &rows);
}
