//! E7 / Figure 8: two conflicting read-writers, throughput vs Δ.

use mirage_bench::{
    fig8,
    harness::parse_jobs_flag,
    print_table,
};

fn main() {
    parse_jobs_flag(std::env::args().skip(1));
    println!("E7 — Figure 8: two conflicting read-writers (ticks; 600 ticks = 10 s)");
    println!("(paper: contention side Δ<120 low; peak ≈115k instr/s at Δ=600; gradual retention falloff beyond)\n");
    let deltas = [0, 2, 6, 12, 30, 60, 120, 240, 360, 480, 600, 660, 780, 900, 1200];
    let pts = fig8(&deltas, 560_000);
    let peak = pts.iter().cloned().fold(f64::MIN, |m, p| m.max(p.throughput));
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.delta.to_string(),
                format!("{:.0}", p.throughput),
                format!("{:.1}", p.makespan),
                format!("{:.0}%", p.throughput / peak * 100.0),
            ]
        })
        .collect();
    print_table(&["Δ (ticks)", "read-write instr/s", "makespan (s)", "% of peak"], &rows);
}
