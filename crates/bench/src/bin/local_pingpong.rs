//! E4: single-site worst case — busy waiting versus yield().

use mirage_bench::{
    harness::parse_jobs_flag,
    local_pingpong,
};

fn main() {
    parse_jobs_flag(std::env::args().skip(1));
    println!("E4 — local ping-pong (paper §7.2: 5 vs 166 cycles/s, x35)\n");
    let (noy, y) = local_pingpong(20);
    println!("busy-wait : {noy:.1} cycles/s   (paper:   5)");
    println!("yield()   : {y:.1} cycles/s   (paper: 166)");
    println!("speedup   : x{:.1}          (paper: x35)", y / noy);
}
