//! E6: message accounting for the worst-case cycle.

use mirage_bench::{
    msg_accounting,
    print_table,
};

fn main() {
    println!(
        "E6 — messages per worst-case cycle (paper: 9 messages, 3 large; ≈9 cycles/s bound)\n"
    );
    let m = msg_accounting(60);
    println!("cycles measured      : {}", m.cycles);
    println!(
        "cycle rate           : {:.2} cycles/s (paper bound: 9; observed ≈3-5)",
        m.cycles_per_sec
    );
    println!("messages per cycle   : {:.2} (paper: 9)", m.per_cycle);
    println!("large (page) / cycle : {:.2} (paper: 3)\n", m.large_per_cycle);
    let rows: Vec<Vec<String>> =
        m.by_tag.iter().map(|(t, n)| vec![t.to_string(), format!("{n:.2}")]).collect();
    print_table(&["message kind", "per cycle"], &rows);
}
