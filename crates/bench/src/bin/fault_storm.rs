//! Fault-storm fuzzer: thousands of randomized fault schedules against
//! the coherence protocol with timeout/retry enabled.
//!
//! Each seed deterministically generates a world (2–4 sites, 1–2
//! pages, 1–2 processes per site), a workload, and a fault plan
//! (drop/duplicate/delay rates, site crash/restart times) via
//! `mirage_sim::run_fuzz_seed`; the run must complete, satisfy the
//! structural coherence invariants, and show every process's last
//! write in the surviving copy.
//!
//! ```text
//! fault_storm                  # sweep seeds 0..1000
//! fault_storm --seeds 5000     # wider sweep
//! fault_storm --start 1000     # shifted seed range
//! fault_storm --seed 42        # one seed, verbose outcome
//! fault_storm --seed 42 --trace# same, narrating every fault decision
//! ```
//!
//! Exit status is non-zero if any seed fails; each failure prints the
//! seed and the replay command, so a CI hit is reproducible locally
//! with a single copy-paste.

use mirage_sim::run_fuzz_seed;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seeds: u64 = 1000;
    let mut start: u64 = 0;
    let mut single: Option<u64> = None;
    let mut trace = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => {
                i += 1;
                seeds = args[i].parse().expect("--seeds takes a count");
            }
            "--start" => {
                i += 1;
                start = args[i].parse().expect("--start takes a seed");
            }
            "--seed" => {
                i += 1;
                single = Some(args[i].parse().expect("--seed takes a seed"));
            }
            "--trace" => trace = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: fault_storm [--seeds N] [--start S] [--seed S [--trace]]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if trace {
        // The fault layer narrates to stderr when this is set; the env
        // var (rather than a parameter) keeps the replay identical to
        // what the integration test prints.
        std::env::set_var("MIRAGE_FAULT_TRACE", "1");
    }

    if let Some(seed) = single {
        let outcome = run_fuzz_seed(seed);
        println!("{}", outcome.describe());
        if let Some(stats) = outcome.stats {
            println!(
                "faults: dropped {} dup-injected {} dup-discarded {} delayed {} \
                 held {} gaps-declared {} stale {} crashes {} restarts {}",
                stats.dropped,
                stats.duplicated,
                stats.dup_discarded,
                stats.delayed,
                stats.held_back,
                stats.gaps_declared,
                stats.stale_dropped,
                stats.crashes,
                stats.restarts
            );
        } else {
            println!("faults: plan inactive for this seed");
        }
        std::process::exit(if outcome.is_ok() { 0 } else { 1 });
    }

    let mut failed = 0u64;
    let mut active = 0u64;
    let mut crashes = 0u64;
    let mut dropped = 0u64;
    for seed in start..start + seeds {
        let outcome = run_fuzz_seed(seed);
        if let Some(stats) = outcome.stats {
            active += 1;
            crashes += stats.crashes;
            dropped += stats.dropped;
        }
        if !outcome.is_ok() {
            failed += 1;
            eprintln!("{}", outcome.describe());
            eprintln!("replay: fault_storm --seed {seed} --trace");
        }
        if (seed - start + 1).is_multiple_of(200) {
            println!("… {}/{} seeds, {} failed", seed - start + 1, seeds, failed);
        }
    }
    println!(
        "fault_storm: {} seeds ({} with active plans), {} messages dropped, \
         {} crashes injected, {} failures",
        seeds, active, dropped, crashes, failed
    );
    std::process::exit(if failed > 0 { 1 } else { 0 });
}
