//! Fault-storm fuzzer: thousands of randomized fault schedules against
//! the coherence protocol with timeout/retry enabled.
//!
//! Each seed deterministically generates a world (2–4 sites, 1–2
//! pages, 1–2 processes per site), a workload, and a fault plan
//! (drop/duplicate/delay rates, site crash/restart times) via
//! `mirage_sim::run_fuzz_seed`; the run must complete, satisfy the
//! structural coherence invariants, and show every process's last
//! write in the surviving copy.
//!
//! ```text
//! fault_storm                  # sweep seeds 0..1000
//! fault_storm --seeds 5000     # wider sweep
//! fault_storm --start 1000     # shifted seed range
//! fault_storm --check-trace    # sweep with the causal trace oracle too
//! fault_storm --migrate        # layer a seeded library-handoff schedule
//! fault_storm --delta          # same seeds with sub-page delta grants on
//! fault_storm --protocol li    # same seeds under a rival protocol
//! fault_storm --matrix         # every seed under all three protocols
//! fault_storm --seed 42        # one seed, verbose outcome
//! fault_storm --seed 42 --trace# same, narrating every fault decision
//! ```
//!
//! `--migrate` draws 1–3 manual library migrations from a separate PRNG
//! stream (the world shape, workload, and fault plan are unchanged) and
//! runs them under the same drop/dup/delay/crash schedule, so role
//! handoffs race messages losses and site crashes.
//!
//! `--delta` replays the classic seeds with `delta_grants` enabled: the
//! world, workload, and fault plan are bit-identical to the plain run
//! (the flag is set after every PRNG draw), so any divergence in the
//! oracles is attributable to the diff-based wire form alone.
//!
//! `--protocol {mirage,li,tardis}` replays the classic seeds under the
//! named coherence protocol. The selector is applied after every PRNG
//! draw, so each seed's world, workload, and fault plan are
//! bit-identical across protocols — only the protocol logic differs.
//! `--matrix` runs each seed under all three and additionally asserts
//! that the authoritative page bytes at quiescence agree.
//!
//! `--openloop` switches to the open-loop family: seeded arrival
//! schedules (Poisson, deterministic, MMPP per station) inject page
//! demands at fixed sim-times regardless of service progress, so fault
//! storms land on real queue backlogs. Mirage-only: with Δ pinned ≥ 1
//! the granted access always completes before the page leaves, while
//! Li–Hudak (Δ=0 by definition) and Tardis livelock under sustained
//! open-loop overload — the §7.2 starvation rotation Mirage's window
//! exists to break (see DESIGN.md, "Open-loop traffic").
//!
//! `--large` switches to the planet-scale generator: 65–160 sites
//! (chunked site sets, paged circuit table), a sharded library
//! (`shard_pages` 1–3), and a shard-aware handoff schedule — the same
//! fault plan shape at ~25× the site count. `--sites N` pins the world
//! to exactly N sites (implies `--large`); use `--sites 1024` for the
//! CI smoke world.
//!
//! Single-seed observability flags (each implies a traced run; tracing
//! never changes the simulated execution):
//!
//! ```text
//! --metrics                    # print the protocol metrics registry
//! --check-trace                # run the offline trace checker
//! --export-chrome PATH         # write a Chrome trace-event JSON file
//! --export-jsonl PATH          # write the raw event trace as JSONL
//! ```
//!
//! Exit status is non-zero if any seed fails; each failure prints the
//! seed and the replay command, so a CI hit is reproducible locally
//! with a single copy-paste.

use std::io::Write;

use mirage_sim::{
    run_fuzz_seed,
    run_fuzz_seed_delta,
    run_fuzz_seed_delta_traced,
    run_fuzz_seed_large,
    run_fuzz_seed_large_traced,
    run_fuzz_seed_matrix,
    run_fuzz_seed_migrating,
    run_fuzz_seed_migrating_traced,
    run_fuzz_seed_protocol,
    run_fuzz_seed_protocol_traced,
    run_fuzz_seed_sized_traced,
    run_fuzz_seed_traced,
    FuzzProtocol,
};
use mirage_trace::{
    chrome,
    event_to_json,
    from_trace,
};
use mirage_workloads::{
    run_fuzz_seed_openloop,
    run_fuzz_seed_openloop_traced,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seeds: u64 = 1000;
    let mut start: u64 = 0;
    let mut single: Option<u64> = None;
    let mut trace = false;
    let mut metrics = false;
    let mut check_trace = false;
    let mut migrate = false;
    let mut delta = false;
    let mut large = false;
    let mut openloop = false;
    let mut protocol = FuzzProtocol::Mirage;
    let mut matrix = false;
    let mut sites: Option<usize> = None;
    let mut export_chrome: Option<String> = None;
    let mut export_jsonl: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => {
                i += 1;
                seeds = args[i].parse().expect("--seeds takes a count");
            }
            "--start" => {
                i += 1;
                start = args[i].parse().expect("--start takes a seed");
            }
            "--seed" => {
                i += 1;
                single = Some(args[i].parse().expect("--seed takes a seed"));
            }
            "--trace" => trace = true,
            "--metrics" => metrics = true,
            "--check-trace" => check_trace = true,
            "--migrate" => migrate = true,
            "--delta" => delta = true,
            "--large" => large = true,
            "--openloop" => openloop = true,
            "--protocol" => {
                i += 1;
                let name = args.get(i).expect("--protocol takes mirage|li|tardis");
                protocol = FuzzProtocol::from_name(name).unwrap_or_else(|| {
                    eprintln!("unknown protocol: {name} (expected mirage, li, or tardis)");
                    std::process::exit(2);
                });
            }
            "--matrix" => matrix = true,
            "--sites" => {
                i += 1;
                sites = Some(args[i].parse().expect("--sites takes a site count"));
                large = true;
            }
            "--export-chrome" => {
                i += 1;
                export_chrome =
                    Some(args.get(i).expect("--export-chrome takes a path").clone());
            }
            "--export-jsonl" => {
                i += 1;
                export_jsonl = Some(args.get(i).expect("--export-jsonl takes a path").clone());
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: fault_storm [--seeds N] [--start S] [--check-trace] \
                     [--migrate | --delta | --openloop | --large [--sites N] | \
                     --protocol {{mirage,li,tardis}} | --matrix] [--seed S [--trace] \
                     [--metrics] [--check-trace] [--export-chrome PATH] \
                     [--export-jsonl PATH]]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if trace {
        // The fault layer narrates to stderr when this is set; the env
        // var (rather than a parameter) keeps the replay identical to
        // what the integration test prints.
        std::env::set_var("MIRAGE_FAULT_TRACE", "1");
    }
    let want_trace =
        check_trace || metrics || export_chrome.is_some() || export_jsonl.is_some();

    if matrix {
        if let Some(seed) = single {
            let mut ok = true;
            for outcome in run_fuzz_seed_matrix(seed) {
                println!("{}", outcome.describe());
                ok &= outcome.is_ok();
            }
            std::process::exit(if ok { 0 } else { 1 });
        }
        let mut failed = 0u64;
        for seed in start..start + seeds {
            for outcome in run_fuzz_seed_matrix(seed) {
                if !outcome.is_ok() {
                    failed += 1;
                    eprintln!("{}", outcome.describe());
                    eprintln!(
                        "replay: cargo run --release -p mirage-bench --bin fault_storm -- \
                         --seed {seed} --matrix"
                    );
                }
            }
            if (seed - start + 1).is_multiple_of(200) {
                println!("… {}/{} seeds, {} failed", seed - start + 1, seeds, failed);
            }
        }
        println!("fault_storm: {seeds} matrix seeds × 3 protocols, {failed} failures");
        std::process::exit(if failed > 0 { 1 } else { 0 });
    }

    if let Some(seed) = single {
        let (outcome, events) = if let Some(n) = sites {
            // A pinned site count always runs traced: the point of
            // `--sites` is putting a specific-scale world through the
            // oracles, and tracing never changes the execution.
            run_fuzz_seed_sized_traced(seed, n)
        } else if openloop {
            if want_trace {
                run_fuzz_seed_openloop_traced(seed)
            } else {
                (run_fuzz_seed_openloop(seed), Vec::new())
            }
        } else if large {
            if want_trace {
                run_fuzz_seed_large_traced(seed)
            } else {
                (run_fuzz_seed_large(seed), Vec::new())
            }
        } else if delta {
            if want_trace {
                run_fuzz_seed_delta_traced(seed)
            } else {
                (run_fuzz_seed_delta(seed), Vec::new())
            }
        } else if protocol != FuzzProtocol::Mirage {
            if want_trace {
                run_fuzz_seed_protocol_traced(seed, protocol)
            } else {
                (run_fuzz_seed_protocol(seed, protocol), Vec::new())
            }
        } else {
            match (want_trace, migrate) {
                (true, true) => run_fuzz_seed_migrating_traced(seed),
                (true, false) => run_fuzz_seed_traced(seed),
                (false, true) => (run_fuzz_seed_migrating(seed), Vec::new()),
                (false, false) => (run_fuzz_seed(seed), Vec::new()),
            }
        };
        println!("{}", outcome.describe());
        if let Some(stats) = outcome.stats {
            println!(
                "faults: dropped {} dup-injected {} dup-discarded {} delayed {} \
                 held {} gaps-declared {} stale {} crashes {} restarts {}",
                stats.dropped,
                stats.duplicated,
                stats.dup_discarded,
                stats.delayed,
                stats.held_back,
                stats.gaps_declared,
                stats.stale_dropped,
                stats.crashes,
                stats.restarts
            );
        } else {
            println!("faults: plan inactive for this seed");
        }
        if want_trace {
            println!("trace: {} events", events.len());
        }
        if check_trace {
            // The checker already ran inside the traced scenario and
            // merged any violations into the outcome above; confirm.
            println!("trace checker: {}", if outcome.is_ok() { "ok" } else { "VIOLATIONS" });
        }
        if metrics {
            print!("{}", from_trace(&events).render());
        }
        if let Some(path) = export_jsonl {
            let mut f = std::fs::File::create(&path).expect("create jsonl export");
            for ev in &events {
                writeln!(f, "{}", event_to_json(ev)).expect("write jsonl export");
            }
            println!("wrote {} JSONL events to {path}", events.len());
        }
        if let Some(path) = export_chrome {
            let json = chrome::export(&events);
            chrome::validate(&json).expect("exported Chrome trace must validate");
            std::fs::write(&path, &json).expect("write chrome export");
            println!("wrote Chrome trace ({} bytes) to {path}", json.len());
        }
        std::process::exit(if outcome.is_ok() { 0 } else { 1 });
    }

    let mut failed = 0u64;
    let mut active = 0u64;
    let mut crashes = 0u64;
    let mut dropped = 0u64;
    for seed in start..start + seeds {
        let outcome = if openloop {
            if check_trace {
                run_fuzz_seed_openloop_traced(seed).0
            } else {
                run_fuzz_seed_openloop(seed)
            }
        } else if large {
            if check_trace {
                run_fuzz_seed_large_traced(seed).0
            } else {
                run_fuzz_seed_large(seed)
            }
        } else if delta {
            if check_trace {
                run_fuzz_seed_delta_traced(seed).0
            } else {
                run_fuzz_seed_delta(seed)
            }
        } else if protocol != FuzzProtocol::Mirage {
            if check_trace {
                run_fuzz_seed_protocol_traced(seed, protocol).0
            } else {
                run_fuzz_seed_protocol(seed, protocol)
            }
        } else {
            match (check_trace, migrate) {
                (true, true) => run_fuzz_seed_migrating_traced(seed).0,
                (true, false) => run_fuzz_seed_traced(seed).0,
                (false, true) => run_fuzz_seed_migrating(seed),
                (false, false) => run_fuzz_seed(seed),
            }
        };
        if let Some(stats) = outcome.stats {
            active += 1;
            crashes += stats.crashes;
            dropped += stats.dropped;
        }
        if !outcome.is_ok() {
            failed += 1;
            eprintln!("{}", outcome.describe());
            let flag = if openloop {
                " --openloop".to_string()
            } else if large {
                " --large".to_string()
            } else if migrate {
                " --migrate".to_string()
            } else if delta {
                " --delta".to_string()
            } else if protocol != FuzzProtocol::Mirage {
                format!(" --protocol {}", protocol.name())
            } else {
                String::new()
            };
            // The full cargo invocation, matching what the integration
            // test prints: a copy-paste replays the seed from a clean
            // checkout without hunting for the binary.
            eprintln!(
                "replay: cargo run --release -p mirage-bench --bin fault_storm -- \
                 --seed {seed}{flag} --trace"
            );
        }
        if (seed - start + 1).is_multiple_of(200) {
            println!("… {}/{} seeds, {} failed", seed - start + 1, seeds, failed);
        }
    }
    println!(
        "fault_storm: {} seeds ({} with active plans), {} messages dropped, \
         {} crashes injected, {} failures",
        seeds, active, dropped, crashes, failed
    );
    std::process::exit(if failed > 0 { 1 } else { 0 });
}
