//! Runs every experiment and prints the full EXPERIMENTS summary.
//!
//! `cargo run --release -p mirage-bench --bin repro_all [--jobs N] [--quick] [--metrics]`
//!
//! `--quick` runs the same experiments at seconds-long horizons (for
//! smoke tests); the default is the full-scale report recorded in
//! `EXPERIMENTS.md`. `--metrics` appends a protocol-metrics section
//! derived from dedicated traced runs — the default report is
//! golden-pinned and stays byte-identical with or without tracing
//! compiled in.

use mirage_bench::{
    harness::parse_jobs_flag,
    observability_report,
    repro_all_report,
    ReproParams,
};

fn main() {
    let rest = parse_jobs_flag(std::env::args().skip(1));
    let quick = rest.iter().any(|a| a == "--quick");
    let metrics = rest.iter().any(|a| a == "--metrics");
    let params = if quick { ReproParams::quick() } else { ReproParams::full() };
    print!("{}", repro_all_report(&params));
    if metrics {
        print!("\n{}", observability_report(quick));
    }
}
