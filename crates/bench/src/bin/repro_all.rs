//! Runs every experiment and prints the full EXPERIMENTS summary.
//!
//! `cargo run --release -p mirage-bench --bin repro_all`

use mirage_bench::*;

fn main() {
    println!("# Mirage reproduction — all experiments\n");

    println!("## E1 — component cost anchors (§7.1, §6.2)\n");
    let rows: Vec<Vec<String>> = component_costs()
        .into_iter()
        .map(|r| {
            vec![r.label.into(), format!("{:.2}", r.ours_ms), format!("{:.2}", r.paper_ms)]
        })
        .collect();
    print_table(&["component", "ours", "paper"], &rows);

    println!("\n## E2 — Table 3: remote page fetch breakdown (ms)\n");
    let rows: Vec<Vec<String>> = table3()
        .into_iter()
        .map(|r| {
            vec![r.label.into(), format!("{:.2}", r.ours_ms), format!("{:.2}", r.paper_ms)]
        })
        .collect();
    print_table(&["operation", "ours (ms)", "paper (ms)"], &rows);

    println!("\n## E3 — lazy remap model (paper: 106-125 µs/page)\n");
    let rows: Vec<Vec<String>> = remap_model()
        .into_iter()
        .map(|r| {
            vec![format!("{} KiB", r.kib), r.pages.to_string(), format!("{:.0} µs", r.model_us)]
        })
        .collect();
    print_table(&["segment", "pages", "remap cost"], &rows);

    println!("\n## E4 — local ping-pong (paper: 5 vs 166 cycles/s)\n");
    let (noy, y) = local_pingpong(20);
    println!(
        "busy-wait {noy:.1} cycles/s | yield() {y:.1} cycles/s | speedup x{:.1} (paper x35)",
        y / noy
    );

    println!("\n## E5 — Figure 7: worst case, cycles/s vs Δ\n");
    let pts = fig7(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 14], 60);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.delta.to_string(),
                format!("{:.2}", p.yield_rate),
                format!("{:.2}", p.noyield_rate),
            ]
        })
        .collect();
    print_table(&["Δ", "yield", "no-yield"], &rows);

    println!("\n## E6 — worst-case message accounting (paper: 9 msgs, 3 large)\n");
    let m = msg_accounting(60);
    println!(
        "{:.2} msgs/cycle, {:.2} large/cycle over {} cycles ({:.2} cycles/s)",
        m.per_cycle, m.large_per_cycle, m.cycles, m.cycles_per_sec
    );

    println!("\n## E7 — Figure 8: conflicting read-writers vs Δ (peak paper: 115k at Δ=600)\n");
    let deltas = [0, 2, 6, 12, 30, 60, 120, 240, 360, 480, 600, 660, 780, 900, 1200];
    let pts = fig8(&deltas, 560_000);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.delta.to_string(),
                format!("{:.0}", p.throughput),
                format!("{:.1}s", p.makespan),
            ]
        })
        .collect();
    print_table(&["Δ (ticks)", "instr/s", "makespan"], &rows);

    println!("\n## E9 — test&set (busy tester)\n");
    let pts = test_and_set(&[0, 2, 6, 12], false, 30);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.delta.to_string(),
                format!("{:.2}", p.sections_per_sec),
                format!("{:.1}", p.msgs_per_section),
            ]
        })
        .collect();
    print_table(&["Δ", "sections/s", "msgs/section"], &rows);

    println!("\n## E10 — thrashing amelioration\n");
    let pts = thrash_system(&[0, 2, 6, 12, 30, 60], 40);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![p.delta.to_string(), format!("{:.2}", p.app_rate), format!("{:.1}", p.bg_rate)]
        })
        .collect();
    print_table(&["Δ", "thrasher cycles/s", "background chunks/s"], &rows);

    println!("\n## A1–A3 — optimization ablations (Δ=2 worst case)\n");
    let rows: Vec<Vec<String>> = ablation_opts(40)
        .into_iter()
        .map(|r| {
            vec![
                r.name.into(),
                format!("{:.2}", r.cycles_per_sec),
                format!("{:.2}", r.shorts_per_cycle),
                format!("{:.2}", r.larges_per_cycle),
            ]
        })
        .collect();
    print_table(&["configuration", "cycles/s", "shorts/cycle", "pages/cycle"], &rows);

    println!("\n## A5 — dynamic Δ (the paper's disabled §8.0 routine, implemented)\n");
    let rows: Vec<Vec<String>> = dynamic_delta()
        .into_iter()
        .map(|r| {
            vec![r.name, format!("{:.0}", r.fig8_throughput), format!("{:.2}", r.pingpong_rate)]
        })
        .collect();
    print_table(&["policy", "fig8 duel (instr/s)", "worst case (cycles/s)"], &rows);

    println!("\n## A4 — invalidation scaling\n");
    let pts = invalidation_scaling(&[1, 2, 4, 8, 16, 32]);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.readers.to_string(),
                format!("{:.1}", p.sequential_ms),
                format!("{:.1}", p.multicast_ms),
            ]
        })
        .collect();
    print_table(&["readers", "sequential (ms)", "multicast (ms)"], &rows);

    println!("\n## B1 — baseline comparison\n");
    let rows: Vec<Vec<String>> = baseline_compare()
        .into_iter()
        .map(|r| {
            vec![
                r.trace.into(),
                r.protocol.into(),
                r.report.faults.to_string(),
                r.report.shorts.to_string(),
                r.report.larges.to_string(),
                format!("{:.0}", r.report.wire_time.as_millis_f64()),
            ]
        })
        .collect();
    print_table(&["trace", "protocol", "faults", "shorts", "pages", "wire ms"], &rows);
}
