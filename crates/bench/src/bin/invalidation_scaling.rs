//! A4: invalidation cost versus reader count; sequential vs multicast.

use mirage_bench::{
    harness::parse_jobs_flag,
    invalidation_scaling,
    print_table,
};

fn main() {
    parse_jobs_flag(std::env::args().skip(1));
    println!("A4 — invalidating N readers (paper §7.1 caveat 2 / §10 concern)\n");
    let pts = invalidation_scaling(&[1, 2, 4, 8, 16, 32]);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.readers.to_string(),
                format!("{:.1}", p.sequential_ms),
                format!("{:.1}", p.multicast_ms),
                format!("x{:.1}", p.sequential_ms / p.multicast_ms),
            ]
        })
        .collect();
    print_table(&["readers", "sequential (ms)", "multicast (ms)", "seq/mc"], &rows);
}
