//! A4: invalidation cost versus reader count; sequential vs multicast.

use mirage_bench::{
    harness::parse_jobs_flag,
    invalidation_scaling,
    print_table,
};

fn main() {
    let rest = parse_jobs_flag(std::env::args().skip(1));
    // `--large` extends the sweep past the old 64-site ceiling: reader
    // masks go chunked, the circuit table goes paged, and sequential
    // invalidation cost scales linearly into the hundreds.
    let counts: &[usize] = if rest.iter().any(|a| a == "--large") {
        &[1, 2, 4, 8, 16, 32, 64, 256, 1024]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };
    println!("A4 — invalidating N readers (paper §7.1 caveat 2 / §10 concern)\n");
    let pts = invalidation_scaling(counts);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.readers.to_string(),
                format!("{:.1}", p.sequential_ms),
                format!("{:.1}", p.multicast_ms),
                format!("x{:.1}", p.sequential_ms / p.multicast_ms),
            ]
        })
        .collect();
    print_table(&["readers", "sequential (ms)", "multicast (ms)", "seq/mc"], &rows);
}
