//! The observability report: dedicated traced runs summarized through
//! the metrics registry.
//!
//! The repro binaries' default output is golden-pinned, so metrics are
//! never derived from the experiment runs themselves — a *separate*
//! traced run of the same scenario produces the trace (tracing is
//! behaviour-invisible, so it measures the identical execution), and
//! [`mirage_trace::from_trace`] turns it into counters and histograms.
//! Per-seed registries merge commutatively, so a `--jobs N` sweep
//! renders the same report at any worker count.

use mirage_core::{
    DeltaPolicy,
    ProtocolConfig,
};
use mirage_sim::{
    run_fuzz_seed_traced,
    SimConfig,
    World,
};
use mirage_trace::{
    from_trace,
    Registry,
};
use mirage_types::{
    Delta,
    SimTime,
};
use mirage_workloads::{
    FalseSharing,
    PingPongPinger,
    PingPongPonger,
};

use crate::{
    experiments::sim_config,
    harness::par_map,
};

/// Metrics from one traced worst-case ping-pong run (the Figure 7
/// scenario) at the given Δ.
pub fn traced_pingpong_metrics(delta: u32, seconds: u64) -> Registry {
    let mut w = World::new(2, sim_config(Delta(delta)));
    w.enable_tracing();
    let seg = w.create_segment(0, 1);
    w.spawn(0, Box::new(PingPongPinger::new(seg, u32::MAX / 4, true)), 1);
    w.spawn(1, Box::new(PingPongPonger::new(seg, true)), 1);
    w.run_until(SimTime::from_millis(seconds * 1000));
    from_trace(w.trace_events())
}

/// Metrics merged across a traced fault-storm sweep. Each seed runs on
/// its own worker; per-seed registries are merged in input order, and
/// the merge itself is commutative, so the result is independent of the
/// worker count. Panics if any seed fails either coherence oracle —
/// metrics from an incoherent run would be lies.
pub fn traced_storm_metrics(seeds: &[u64]) -> Registry {
    let shards = par_map(seeds, |&seed| {
        let (outcome, trace) = run_fuzz_seed_traced(seed);
        assert!(outcome.is_ok(), "{}", outcome.describe());
        from_trace(&trace)
    });
    let mut merged = Registry::new();
    for shard in &shards {
        merged.merge(shard);
    }
    merged
}

/// Metrics from one traced false-sharing run (the S1 scenario: two
/// writers on disjoint halves of one page at Δ=0) with sub-page delta
/// grants on or off. The delta-mode registry surfaces the
/// full-vs-delta grant split and the per-kind bytes-on-wire counters
/// (`grant.full_sent` / `grant.delta_sent` / `wire.bytes.*`).
pub fn traced_false_sharing_metrics(delta_grants: bool, writes: u32) -> Registry {
    let protocol = ProtocolConfig {
        delta: DeltaPolicy::Uniform(Delta(0)),
        delta_grants,
        ..Default::default()
    };
    let mut w = World::new(2, SimConfig { protocol, ..Default::default() });
    w.enable_tracing();
    let seg = w.create_segment(0, 1);
    w.spawn(0, Box::new(FalseSharing::new(seg, 0, 1, writes)), 1);
    w.spawn(1, Box::new(FalseSharing::new(seg, 1, 1, writes)), 1);
    w.run_to_completion(SimTime::from_millis(600_000));
    from_trace(w.trace_events())
}

/// Renders the full observability section: ping-pong protocol metrics
/// at two Δ settings, the S1 false-sharing wire-byte split with delta
/// grants off and on, plus a merged fault-storm summary.
pub fn observability_report(quick: bool) -> String {
    let (seconds, seeds): (u64, Vec<u64>) =
        if quick { (2, (0..8).collect()) } else { (10, (0..64).collect()) };
    let mut out = String::new();
    out.push_str("# Observability — protocol metrics from traced runs\n");
    for delta in [0u32, 6] {
        out.push_str(&format!("\n## ping-pong, Δ={delta} ({seconds}s simulated)\n\n"));
        out.push_str(&traced_pingpong_metrics(delta, seconds).render());
    }
    let writes = if quick { 300 } else { 2_000 };
    for delta_grants in [false, true] {
        out.push_str(&format!(
            "\n## false sharing (S1), delta grants {} ({writes} writes/site)\n\n",
            if delta_grants { "on" } else { "off" }
        ));
        out.push_str(&traced_false_sharing_metrics(delta_grants, writes).render());
    }
    out.push_str(&format!("\n## fault storm, {} seeds merged\n\n", seeds.len()));
    out.push_str(&traced_storm_metrics(&seeds).render());
    out
}
