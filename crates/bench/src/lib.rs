//! Experiment drivers regenerating every table and figure of the paper.
//!
//! Each public function runs one experiment on the simulator (or the
//! protocol engines directly) and returns structured results; the
//! binaries in `src/bin/` print them, and `repro_all` emits the summary
//! recorded in `EXPERIMENTS.md`. See `DESIGN.md` for the per-experiment
//! index (E1–E10, A1–A4, B1, H1).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod harness;
pub mod host_cluster;
pub mod observability;
pub mod repro;
pub mod table;

pub use experiments::*;
pub use harness::bench;
pub use host_cluster::{
    h2_live_migration,
    H2Report,
};
pub use observability::{
    observability_report,
    traced_pingpong_metrics,
    traced_storm_metrics,
};
pub use repro::{
    repro_all_report,
    ReproParams,
};
pub use table::print_table;
