//! A minimal wall-clock bench harness for the `benches/` targets.
//!
//! The workspace builds fully offline, so the benches use this small
//! std-only timer instead of an external framework: warm up, then run
//! timed batches until a fixed measurement budget elapses, and report
//! the per-iteration time of the fastest batch (least scheduler noise).

use std::time::{
    Duration,
    Instant,
};

/// Result of one benchmark: best-batch nanoseconds per iteration.
#[derive(Clone, Copy, Debug)]
pub struct BenchResult {
    /// Nanoseconds per iteration in the fastest measured batch.
    pub ns_per_iter: f64,
    /// Total iterations executed during measurement.
    pub iters: u64,
}

impl BenchResult {
    /// Iterations per second implied by `ns_per_iter`.
    pub fn per_sec(&self) -> f64 {
        1e9 / self.ns_per_iter
    }
}

/// Runs `f` repeatedly and reports per-iteration time.
///
/// Prints one line in the style `name ... 123.4 ns/iter (8.10 M/s)` and
/// returns the numbers for callers that aggregate (e.g. the JSON
/// baseline emitted by `sim_throughput`).
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> BenchResult {
    // Warm-up: let caches/branch predictors settle and estimate cost.
    let warm_budget = Duration::from_millis(200);
    let start = Instant::now();
    let mut warm_iters = 0u64;
    while start.elapsed() < warm_budget {
        std::hint::black_box(f());
        warm_iters += 1;
    }
    let est_ns = (start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
    // Aim for batches of ~10 ms so each batch amortizes timer overhead.
    let batch = ((10e6 / est_ns) as u64).max(1);

    let measure_budget = Duration::from_millis(800);
    let mut best = f64::INFINITY;
    let mut total_iters = 0u64;
    let begun = Instant::now();
    while begun.elapsed() < measure_budget {
        let t = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        let ns = t.elapsed().as_nanos() as f64 / batch as f64;
        best = best.min(ns);
        total_iters += batch;
    }
    let result = BenchResult { ns_per_iter: best, iters: total_iters };
    let rate = result.per_sec();
    let (scaled, unit) = if rate >= 1e6 {
        (rate / 1e6, "M/s")
    } else if rate >= 1e3 {
        (rate / 1e3, "K/s")
    } else {
        (rate, "/s")
    };
    println!("{name:<40} {best:>12.1} ns/iter ({scaled:.2} {unit})");
    result
}
