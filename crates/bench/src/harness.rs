//! A minimal wall-clock bench harness for the `benches/` targets, and
//! the scoped-thread work pool behind every parallel experiment sweep.
//!
//! The workspace builds fully offline, so the benches use this small
//! std-only timer instead of an external framework: warm up, then run
//! timed batches until a fixed measurement budget elapses, and report
//! the per-iteration time of the fastest batch (least scheduler noise).
//!
//! # The parallel sweep executor
//!
//! Every Δ-sweep in `experiments.rs` runs one independent `World` per
//! point — embarrassingly parallel work that used to run sequentially.
//! [`par_map`] fans the points out over scoped worker threads and
//! collects results **in input order**, so a sweep's output is
//! byte-for-byte identical at any worker count: each world is a sealed
//! deterministic simulation, and ordering is the only thing threads
//! could perturb. The worker count comes from [`jobs`]: the `--jobs`
//! flag (see [`parse_jobs_flag`]), else `MIRAGE_JOBS`, else all
//! available cores.

use std::num::NonZeroUsize;
use std::sync::atomic::{
    AtomicUsize,
    Ordering,
};
use std::sync::Mutex;
use std::time::{
    Duration,
    Instant,
};

/// Explicit worker-count override (0 = unset; resolve via env/cores).
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the sweep worker count, overriding `MIRAGE_JOBS` and the core
/// count. `0` clears the override. Tests use this to compare runs at
/// different worker counts within one process.
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::SeqCst);
}

/// The sweep worker count: [`set_jobs`] override, else the `MIRAGE_JOBS`
/// environment variable, else all available cores.
pub fn jobs() -> usize {
    let j = JOBS.load(Ordering::SeqCst);
    if j != 0 {
        return j;
    }
    std::env::var("MIRAGE_JOBS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
        })
}

/// Applies a `--jobs N` (or `--jobs=N`) flag from a binary's argument
/// list, returning the remaining arguments. Call at the top of `main` in
/// every sweep binary.
pub fn parse_jobs_flag(args: impl Iterator<Item = String>) -> Vec<String> {
    let mut rest = Vec::new();
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        if a == "--jobs" {
            let n = args
                .next()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or_else(die_jobs);
            set_jobs(n);
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            let n = v.parse::<usize>().ok().filter(|&n| n >= 1).unwrap_or_else(die_jobs);
            set_jobs(n);
        } else {
            rest.push(a);
        }
    }
    rest
}

fn die_jobs() -> usize {
    eprintln!("--jobs requires a positive integer (e.g. --jobs 4)");
    std::process::exit(2);
}

/// Maps `f` over `items` on up to [`jobs`] scoped worker threads,
/// returning results in input order.
///
/// Work is handed out by an atomic cursor, so threads race only over
/// *which* index they compute, never over where a result lands — output
/// is identical to the sequential map for any worker count. A panic in
/// any worker propagates when its thread joins.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = jobs().min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(item);
                *slots[i].lock().expect("no poisoned result slot") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("no poisoned result slot")
                .expect("every slot filled by a worker")
        })
        .collect()
}

/// Result of one benchmark: best-batch nanoseconds per iteration.
#[derive(Clone, Copy, Debug)]
pub struct BenchResult {
    /// Nanoseconds per iteration in the fastest measured batch.
    pub ns_per_iter: f64,
    /// Total iterations executed during measurement.
    pub iters: u64,
}

impl BenchResult {
    /// Iterations per second implied by `ns_per_iter`.
    pub fn per_sec(&self) -> f64 {
        1e9 / self.ns_per_iter
    }
}

/// Runs `f` repeatedly and reports per-iteration time.
///
/// Prints one line in the style `name ... 123.4 ns/iter (8.10 M/s)` and
/// returns the numbers for callers that aggregate (e.g. the JSON
/// baseline emitted by `sim_throughput`).
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> BenchResult {
    // Warm-up: let caches/branch predictors settle and estimate cost.
    let warm_budget = Duration::from_millis(200);
    let start = Instant::now();
    let mut warm_iters = 0u64;
    while start.elapsed() < warm_budget {
        std::hint::black_box(f());
        warm_iters += 1;
    }
    let est_ns = (start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
    // Aim for batches of ~10 ms so each batch amortizes timer overhead.
    let batch = ((10e6 / est_ns) as u64).max(1);

    let measure_budget = Duration::from_millis(800);
    let mut best = f64::INFINITY;
    let mut total_iters = 0u64;
    let begun = Instant::now();
    while begun.elapsed() < measure_budget {
        let t = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        let ns = t.elapsed().as_nanos() as f64 / batch as f64;
        best = best.min(ns);
        total_iters += batch;
    }
    let result = BenchResult { ns_per_iter: best, iters: total_iters };
    let rate = result.per_sec();
    let (scaled, unit) = if rate >= 1e6 {
        (rate / 1e6, "M/s")
    } else if rate >= 1e3 {
        (rate / 1e3, "K/s")
    } else {
        (rate, "/s")
    };
    println!("{name:<40} {best:>12.1} ns/iter ({scaled:.2} {unit})");
    result
}
