//! Minimal aligned-table printing for the repro binaries.

/// Prints a markdown-style table with aligned columns.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut s = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(" {:<w$} |", c, w = widths[i]));
        }
        s
    };
    let headers_owned: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&headers_owned));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("{}", fmt_row(&sep));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn print_table_does_not_panic_on_ragged_rows() {
        super::print_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
