//! Minimal aligned-table printing for the repro binaries.

/// Renders a markdown-style table with aligned columns, one `\n` per
/// line. [`print_table`] prints this; `repro_all_report` collects it
/// into the report string the golden test compares.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut s = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(" {:<w$} |", c, w = widths[i]));
        }
        s.push('\n');
        s
    };
    let mut out = String::new();
    let headers_owned: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&headers_owned));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&fmt_row(&sep));
    for row in rows {
        out.push_str(&fmt_row(row));
    }
    out
}

/// Prints a markdown-style table with aligned columns.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    print!("{}", format_table(headers, rows));
}

#[cfg(test)]
mod tests {
    #[test]
    fn print_table_does_not_panic_on_ragged_rows() {
        super::print_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
