//! H2: host-driven live migration on the real-memory runtime over a
//! real wire.
//!
//! A three-site [`HostCluster`] runs over Unix-domain sockets with the
//! placement advisor sampling live §9 reference logs. The hot site
//! shifts mid-run — first site 1 write-faults every page, then site 2
//! does — and the library role must *follow*: two advisor-issued,
//! epoch-stamped handoffs, each landing on the site whose faults
//! dominated the sampling window.

use std::time::{
    Duration,
    Instant,
};

use mirage_core::{
    ProtocolConfig,
    RetryPolicy,
};
use mirage_host::{
    AdvisorOpts,
    ClusterOpts,
    HostCluster,
    MigrationRecord,
    WireChoice,
};
use mirage_types::{
    Delta,
    PageNum,
    SiteId,
};

/// Pages in the shared segment; every one is swept by each hot phase,
/// so each phase contributes at least this many logged requests.
const PAGES: usize = 16;
/// Advisor sensitivity: well below one sweep, so a sweep split across
/// sampling windows still trips it.
const MIN_REQUESTS: u64 = 4;
/// Advisor sampling interval.
const INTERVAL: Duration = Duration::from_millis(50);
/// How long each phase may wait for its migration before failing.
const PHASE_DEADLINE: Duration = Duration::from_secs(10);

/// What one H2 run produced.
#[derive(Clone, Debug)]
pub struct H2Report {
    /// Advisor-issued library moves, in order.
    pub migrations: Vec<MigrationRecord>,
    /// Merged per-site metrics (deterministic line shape).
    pub metrics: String,
    /// True when the library followed the hot site twice: 0→1, then
    /// 1→2.
    pub pass: bool,
}

fn wait_for_moves(cluster: &HostCluster, want: usize) -> bool {
    let deadline = Instant::now() + PHASE_DEADLINE;
    while cluster.migrations().len() < want {
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    true
}

/// One hot phase: `site` write-faults every page exactly once. Every
/// fault is a request the current library logs against `site`.
fn sweep(cluster: &HostCluster, seg: mirage_types::SegmentId, site: usize, tag: u32) {
    let v = cluster.view(site, seg);
    let h = std::thread::spawn(move || {
        for p in 0..PAGES as u32 {
            v.write_u32(PageNum(p), 0, (tag << 16) | p);
        }
    });
    h.join().expect("sweep thread panicked");
}

/// Runs H2 and reports. The wire is real (Unix-domain sockets between
/// the site kernels); the advisor and both handoffs happen mid-run with
/// application threads faulting throughout.
pub fn h2_live_migration() -> H2Report {
    let mut config = ProtocolConfig::paper(Delta(1));
    config.retry = Some(RetryPolicy::default());
    let cluster = HostCluster::start_with(ClusterOpts {
        sites: 3,
        config,
        wire: WireChoice::Uds(None),
        advisor: Some(AdvisorOpts { min_requests: MIN_REQUESTS, interval: INTERVAL }),
    });
    let seg = cluster.create_segment(0, PAGES);

    // Phase 1: site 1 runs hot; the library starts at site 0 and must
    // move to site 1.
    sweep(&cluster, seg, 1, 0xA);
    let phase1 = wait_for_moves(&cluster, 1);
    // Let the advisor drain any handoff-tail log entries before the hot
    // spot shifts, so phase 2's window is cleanly site 2's.
    std::thread::sleep(INTERVAL * 2);

    // Phase 2: the hot spot shifts to site 2; the library must follow.
    sweep(&cluster, seg, 2, 0xB);
    let phase2 = phase1 && wait_for_moves(&cluster, 2);

    let migrations = cluster.migrations();
    let metrics = cluster.metrics().render();
    let pass = phase2
        && migrations.len() >= 2
        && migrations[0].from == SiteId(0)
        && migrations[0].to == SiteId(1)
        && migrations[1].from == SiteId(1)
        && migrations[1].to == SiteId(2);
    H2Report { migrations, metrics, pass }
}
